// Quickstart: mine frequent sequences from a tiny inline database.
//
//   $ ./quickstart
//
// Walks the full public API surface in ~50 lines: build a database, pick a
// miner, mine, inspect the result set, and handle failures without
// aborting. Exits 0 on success, 3 on a mining error (docs/ROBUSTNESS.md).
#include <cstdio>
#include <utility>

#include "disc/algo/miner.h"
#include "disc/seq/parse.h"

int main() {
  // The paper's Table 1 example: four customers, transactions in
  // parentheses, items a..z.
  const disc::SequenceDatabase db = disc::MakeDatabase({
      "(a,e,g)(b)(h)(f)(c)(b,f)",
      "(b)(d,f)(e)",
      "(b,f,g)",
      "(f)(a,g)(b,f,h)(b,f)",
  });

  // A pattern is frequent if at least 2 of the 4 customers contain it.
  disc::MineOptions options;
  options.min_support_count = 2;

  // "disc-all" is this library's contribution (the paper's DISC strategy);
  // "prefixspan", "pseudo", "gsp", "spade" and "spam" are drop-in
  // replacements that return identical results. TryMine is the
  // non-aborting surface: failures, cancellation, and deadline overruns
  // come back as a Status next to the (then partial) patterns.
  const auto miner = disc::CreateMiner("disc-all");
  disc::MineResult result = miner->TryMine(db, options);
  if (!result.status.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status.ToString().c_str());
    return 3;
  }
  const disc::PatternSet patterns = std::move(result.patterns);

  std::printf("%zu frequent sequences (min support %u):\n\n", patterns.size(),
              options.min_support_count);
  for (const auto& [pattern, support] : patterns) {
    std::printf("  %-16s support %u\n", pattern.ToString().c_str(), support);
  }

  // PatternSet supports point lookups too.
  const disc::Sequence probe = disc::ParseSequence("(a,g)(h)(f)");
  std::printf("\nsupport of %s = %u\n", probe.ToString().c_str(),
              patterns.SupportOf(probe));

  // Every run leaves a MineStats behind: wall time, result shape, peak
  // RSS, and the work counters the mining pass incremented.
  std::printf("\n%s\n", miner->last_stats().ToString().c_str());
  return 0;
}
