// seqmined — the resident mining server: the line protocol of
// docs/SERVER.md on stdin/stdout over one engine (engine/engine.h), whose
// query cache turns a minsup sweep into one first-level build plus N
// cache hits. Pipe a script in, or drive it interactively:
//
//   $ ./seqmined [input.spmf] [--permissive] [--serve-threads=N]
//   info seqmined ready
//   load data.spmf
//   ok load sequences=1000 items=8234 max_item=100 skipped=0
//   mine --minsup 0.02
//   ok mine id=1 algo=disc-all delta=20 status=complete reason=none ...
//   1 -1 #SUP: 412
//   ...
//   end
//   quit
//   ok quit
//
// The optional positional argument preloads a database (same as a first
// `load` command); --permissive applies to the preload AND sets nothing
// else — per-command parse mode is `load ... --permissive`.
// --serve-threads sizes the engine's session pool: how many queries can
// run concurrently, independent of each query's own --threads.
//
// `seqmine --serve` is the same server inside the one-shot CLI binary.
//
// Exit codes (docs/ROBUSTNESS.md): 0 the session reached quit/EOF (command
// failures are reported in-band as `error` responses), 2 usage error,
// 3 preload failure.
#include <iostream>
#include <cstdio>

#include "disc/disc.h"
#include "disc/common/flags.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitDataError = 3;

int Usage() {
  std::fprintf(stderr,
               "usage: seqmined [input.spmf] [--permissive] "
               "[--serve-threads=N]\n"
               "serves the seqmined line protocol on stdin/stdout "
               "(docs/SERVER.md); `help` lists commands\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    Usage();
    return 0;  // asked-for usage is a success, not a usage error
  }
  if (flags.positional().size() > 1) return Usage();
  const long long serve_threads = flags.GetInt("serve-threads", 2);
  if (serve_threads < 0) {
    std::fprintf(stderr, "seqmined: --serve-threads must be >= 0\n");
    return kExitUsage;
  }

  disc::engine::Engine::Config config;
  config.session_threads = static_cast<std::uint32_t>(serve_threads);
  disc::engine::Engine engine(config);

  if (!flags.positional().empty()) {
    auto info = engine.LoadSpmf(flags.positional()[0],
                                flags.GetBool("permissive", false)
                                    ? disc::ParseOptions::Permissive()
                                    : disc::ParseOptions::Strict());
    if (!info.ok()) {
      std::fprintf(stderr, "seqmined: %s\n", info.status().message().c_str());
      return kExitDataError;
    }
    std::fprintf(stderr, "seqmined: preloaded %zu sequences from %s\n",
                 info->sequences, flags.positional()[0].c_str());
  }

  disc::server::Server server(&engine, std::cin, std::cout);
  return server.Run();
}
