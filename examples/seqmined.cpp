// seqmined — the resident mining server: the line protocol of
// docs/SERVER.md over one engine (engine/engine.h), whose query cache
// turns a minsup sweep into one first-level build plus N cache hits.
//
// Two transports share the engine:
//
//   stdin/stdout (default) — one trusted client; pipe a script in, or
//   drive it interactively:
//
//     $ ./seqmined [input.spmf | --db=input.dsa] [--permissive]
//                  [--serve-threads=N]
//     info seqmined ready
//     load data.spmf
//     ok load sequences=1000 items=8234 max_item=100 skipped=0
//     mine --minsup 0.02
//     ok mine id=1 algo=disc-all delta=20 status=complete reason=none ...
//     1 -1 #SUP: 412
//     ...
//     end
//     quit
//     ok quit
//
//   sockets (--listen-unix and/or --listen-tcp) — many clients, each on
//   its own connection, under admission control (docs/SERVER.md,
//   "Transport & admission"):
//
//     $ ./seqmined data.spmf --listen-unix=/tmp/seqmined.sock
//         --listen-tcp=0 --max-inflight=4 --per-client=2
//     seqmined: listening on unix:/tmp/seqmined.sock
//     seqmined: listening on tcp:127.0.0.1:43651
//
//   --listen-tcp=0 picks an ephemeral port; the resolved address lines go
//   to stdout (flushed) so scripts can scrape them. Over-limit `mine`
//   commands are shed with `err busy retry-after-ms=<hint>`; SIGTERM or
//   SIGINT drains: stop accepting, cancel in-flight mines (each client
//   still receives its byte-prefix partial result), exit 0 within
//   --drain-deadline-ms.
//
// The optional positional argument preloads a database (same as a first
// `load` command); --db=PATH is the same preload spelled as a flag —
// natural for packed .dsa arena files (docs/STORAGE.md), which mmap in
// O(1) instead of parsing; either spelling accepts either format.
// --permissive applies to the preload AND sets nothing
// else — per-command parse mode is `load ... --permissive`.
// --serve-threads sizes the engine's session pool: how many queries can
// run concurrently, independent of each query's own --threads.
// --cache-slots sizes the first-level LRU (how many databases stay warm).
//
// `seqmine --serve` is the same stdin server inside the one-shot CLI
// binary; `seqmine --connect` is the matching socket client.
//
// Exit codes (docs/ROBUSTNESS.md): 0 the session reached quit/EOF — or,
// in socket mode, a clean drain (command failures are reported in-band as
// `error` responses), 2 usage error, 3 preload or listen failure.
#include <cstdio>
#include <iostream>

#include "disc/common/flags.h"
#include "disc/disc.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitDataError = 3;

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqmined [input.spmf | --db=input.dsa] [--permissive]\n"
      "                [--serve-threads=N] [--cache-slots=N]\n"
      "                [--listen-unix=PATH] [--listen-tcp=PORT (0=ephemeral)]\n"
      "                [--listen-host=ADDR] [--max-inflight=N] "
      "[--max-pending=N]\n"
      "                [--per-client=N] [--default-deadline-ms=MS]\n"
      "                [--idle-timeout-ms=MS] [--write-timeout-ms=MS]\n"
      "                [--drain-deadline-ms=MS]\n"
      "serves the seqmined line protocol (docs/SERVER.md) on stdin/stdout,\n"
      "or on sockets when --listen-unix/--listen-tcp is given; `help` "
      "lists commands\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    Usage();
    return 0;  // asked-for usage is a success, not a usage error
  }
  if (flags.positional().size() > 1) return Usage();
  const long long serve_threads = flags.GetInt("serve-threads", 2);
  if (serve_threads < 0) {
    std::fprintf(stderr, "seqmined: --serve-threads must be >= 0\n");
    return kExitUsage;
  }
  const long long cache_slots = flags.GetInt("cache-slots", 4);
  if (cache_slots < 1) {
    std::fprintf(stderr, "seqmined: --cache-slots must be >= 1\n");
    return kExitUsage;
  }

  disc::engine::Engine::Config config;
  config.session_threads = static_cast<std::uint32_t>(serve_threads);
  config.cache_slots = static_cast<std::uint32_t>(cache_slots);
  disc::engine::Engine engine(config);

  std::string preload = flags.GetString("db", "");
  if (!flags.positional().empty()) {
    if (!preload.empty()) {
      std::fprintf(stderr,
                   "seqmined: give a positional input or --db, not both\n");
      return kExitUsage;
    }
    preload = flags.positional()[0];
  }
  if (!preload.empty()) {
    auto info = engine.LoadPath(preload, flags.GetBool("permissive", false)
                                             ? disc::ParseOptions::Permissive()
                                             : disc::ParseOptions::Strict());
    if (!info.ok()) {
      std::fprintf(stderr, "seqmined: %s\n", info.status().message().c_str());
      return kExitDataError;
    }
    std::fprintf(stderr, "seqmined: preloaded %zu sequences from %s\n",
                 info->sequences, preload.c_str());
  }

  const bool socket_mode = flags.Has("listen-unix") || flags.Has("listen-tcp");
  if (!socket_mode) {
    disc::server::Server server(&engine, std::cin, std::cout);
    return server.Run();
  }

  disc::server::TransportOptions options;
  options.unix_path = flags.GetString("listen-unix", "");
  const long long tcp_port = flags.GetInt("listen-tcp", -1);
  if (flags.Has("listen-tcp") && (tcp_port < 0 || tcp_port > 65535)) {
    std::fprintf(stderr, "seqmined: --listen-tcp must be in [0, 65535]\n");
    return kExitUsage;
  }
  options.tcp_port = static_cast<int>(tcp_port);
  options.tcp_host = flags.GetString("listen-host", "127.0.0.1");
  options.idle_timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("idle-timeout-ms", 300000));
  options.write_timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("write-timeout-ms", 10000));
  options.drain_deadline_ms =
      static_cast<std::uint64_t>(flags.GetInt("drain-deadline-ms", 5000));
  options.admission.max_inflight =
      static_cast<std::uint32_t>(flags.GetInt("max-inflight", 4));
  options.admission.max_pending =
      static_cast<std::uint32_t>(flags.GetInt("max-pending", 8));
  options.admission.per_client =
      static_cast<std::uint32_t>(flags.GetInt("per-client", 2));
  options.admission.default_deadline_ms =
      static_cast<std::uint64_t>(flags.GetInt("default-deadline-ms", 0));
  if (options.admission.max_inflight < 1 ||
      options.admission.per_client < 1) {
    std::fprintf(stderr,
                 "seqmined: --max-inflight and --per-client must be >= 1\n");
    return kExitUsage;
  }

  disc::server::SocketTransport transport(&engine, options);
  disc::Status listening = transport.Listen();
  if (!listening.ok()) {
    std::fprintf(stderr, "seqmined: %s\n", listening.ToString().c_str());
    return kExitDataError;
  }
  // Resolved addresses on stdout, flushed: scripts block on these lines to
  // learn the ephemeral port before connecting.
  if (!transport.unix_path().empty()) {
    std::printf("seqmined: listening on unix:%s\n",
                transport.unix_path().c_str());
  }
  if (transport.tcp_port() > 0) {
    std::printf("seqmined: listening on tcp:%s:%d\n",
                options.tcp_host.c_str(), transport.tcp_port());
  }
  std::fflush(stdout);

  disc::server::InstallDrainSignalHandlers(&transport);
  const int exit_code = transport.Serve();
  disc::server::InstallDrainSignalHandlers(nullptr);
  return exit_code;
}
