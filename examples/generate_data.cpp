// Data-generator CLI: produce an IBM Quest-style customer-sequence database
// (the paper's Table 11 parameters) as an SPMF text file, then optionally
// mine it right back.
//
//   $ ./generate_data out.spmf --ncust=10000 --slen=10 --tlen=2.5 \
//         --nitems=1000 --seq_patlen=4 [--mine --minsup=0.005]
//
// Round-trip demo of the gen + io + algo layers. Exit codes follow the
// library convention (docs/ROBUSTNESS.md): 0 success, 2 usage error,
// 3 data/I-O error.
#include <cstdio>

#include "disc/algo/miner.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"
#include "disc/gen/quest.h"
#include "disc/seq/io.h"

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: generate_data <out.spmf> [--ncust=N] [--slen=F] "
                 "[--tlen=F] [--nitems=N] [--seq_patlen=F] [--seed=N] "
                 "[--mine] [--minsup=F] [--algo=NAME]\n");
    return 2;
  }

  disc::QuestParams params;
  if (flags.GetInt("ncust", 10000) < 1 || flags.GetInt("nitems", 1000) < 1 ||
      flags.GetDouble("slen", 10.0) <= 0.0 ||
      flags.GetDouble("tlen", 2.5) <= 0.0) {
    std::fprintf(stderr,
                 "generate_data: --ncust/--nitems must be >= 1 and "
                 "--slen/--tlen positive\n");
    return 2;
  }
  params.ncust = static_cast<std::uint32_t>(flags.GetInt("ncust", 10000));
  params.slen = flags.GetDouble("slen", 10.0);
  params.tlen = flags.GetDouble("tlen", 2.5);
  params.nitems = static_cast<std::uint32_t>(flags.GetInt("nitems", 1000));
  params.seq_patlen = flags.GetDouble("seq_patlen", 4.0);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  disc::Timer timer;
  const disc::SequenceDatabase db = disc::GenerateQuestDatabase(params);
  std::printf("generated %zu sequences (%llu items, avg %.2f txns x %.2f "
              "items) in %.2fs\n",
              db.size(), static_cast<unsigned long long>(db.TotalItems()),
              db.AvgTransactionsPerCustomer(), db.AvgItemsPerTransaction(),
              timer.Seconds());

  const std::string& path = flags.positional()[0];
  if (!disc::SaveSpmf(db, path)) {
    std::fprintf(stderr, "generate_data: cannot write %s\n", path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", path.c_str());

  if (flags.GetBool("mine", false)) {
    auto loaded_or = disc::TryLoadSpmf(path);
    if (!loaded_or.ok()) {
      std::fprintf(stderr, "generate_data: %s\n",
                   loaded_or.status().message().c_str());
      return 3;
    }
    const disc::SequenceDatabase loaded = std::move(*loaded_or);
    disc::MineOptions options;
    options.min_support_count = disc::MineOptions::CountForFraction(
        loaded.size(), flags.GetDouble("minsup", 0.005));
    const std::string algo = flags.GetString("algo", "disc-all");
    auto miner_or = disc::TryCreateMiner(algo);
    if (!miner_or.ok()) {
      std::fprintf(stderr, "generate_data: %s\n",
                   miner_or.status().message().c_str());
      return 2;
    }
    timer.Reset();
    const disc::PatternSet patterns = (*miner_or)->Mine(loaded, options);
    std::printf("%s: %zu frequent sequences (delta=%u, max length %u) in "
                "%.2fs\n",
                algo.c_str(), patterns.size(), options.min_support_count,
                patterns.MaxLength(), timer.Seconds());
  }
  return 0;
}
