// Weighted DNA-fragment mining — the paper's second §5 application ("in
// DNA sequence analysis, some genes may be more important than the others
// in a particular disease"). Fragments are sequences of codon-class
// symbols; each fragment carries a disease-association weight, and a motif
// matters when the total weight of the fragments containing it passes a
// threshold — even if its plain occurrence count is unremarkable.
//
//   $ ./dna_motifs [--fragments=4000] [--min-weight=2000]
//
// Demonstrates disc::MineWeighted against plain counting: the demo plants
// a motif that is RARE but concentrated in high-weight fragments, and a
// DECOY that is common but spread over low-weight ones; weighted mining
// ranks the planted motif first while plain support prefers the decoy.
#include <cstdio>
#include <vector>

#include "disc/common/flags.h"
#include "disc/common/rng.h"
#include "disc/core/weighted.h"
#include "disc/seq/parse.h"

namespace {

// Symbols 1..12: four bases x three codon positions, rendered as a1,c2,...
std::string Render(const disc::Sequence& s) {
  static const char* kBase = "acgt";
  std::string out;
  for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
    if (t > 0) out += '-';
    for (const disc::Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
      out += kBase[(*p - 1) % 4];
      out += static_cast<char>('1' + (*p - 1) / 4);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  const std::uint32_t fragments =
      static_cast<std::uint32_t>(flags.GetInt("fragments", 4000));
  disc::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 11)));

  const disc::Sequence motif = disc::ParseSequence("(2)(7)(12)");  // planted
  const disc::Sequence decoy = disc::ParseSequence("(1)(5)(9)");   // common

  disc::SequenceDatabase db;
  std::vector<double> weights;
  std::uint32_t motif_count = 0;
  std::uint32_t decoy_count = 0;
  for (std::uint32_t i = 0; i < fragments; ++i) {
    // Disease association: a small high-weight cohort (weight ~ 20) and a
    // large background (weight ~ 0.2).
    const bool diseased = rng.NextBounded(20) == 0;
    const double weight = diseased ? 15.0 + rng.NextDouble() * 10.0
                                   : 0.1 + rng.NextDouble() * 0.2;
    std::vector<disc::Itemset> symbols;
    const std::uint32_t len =
        8 + static_cast<std::uint32_t>(rng.NextBounded(6));
    for (std::uint32_t j = 0; j < len; ++j) {
      symbols.push_back(
          disc::Itemset({static_cast<disc::Item>(rng.NextBounded(12)) + 1}));
    }
    // Plant: the motif goes into most diseased fragments; the decoy into a
    // slice of the background.
    auto plant = [&symbols, &rng](const disc::Sequence& pattern) {
      std::uint32_t at = static_cast<std::uint32_t>(
          rng.NextBounded(symbols.size() - pattern.Length() + 1));
      for (std::uint32_t t = 0; t < pattern.NumTransactions(); ++t) {
        symbols[at + t] = pattern.TxnItemset(t);
      }
    };
    if (diseased && rng.NextBounded(10) < 8) {
      plant(motif);
      ++motif_count;
    } else if (!diseased && rng.NextBounded(10) < 3) {
      plant(decoy);
      ++decoy_count;
    }
    db.Add(disc::Sequence(symbols));
    weights.push_back(weight);
  }
  std::printf("%u fragments; planted motif in %u (high-weight), decoy in %u "
              "(background)\n",
              fragments, motif_count, decoy_count);

  disc::WeightedOptions options;
  options.weights = weights;
  options.min_weight = flags.GetDouble("min-weight", 2000.0);
  options.max_length = 3;
  const disc::WeightedPatternSet mined = disc::MineWeighted(db, options);

  std::printf("\nweighted-frequent 3-motifs (weight >= %.0f):\n",
              options.min_weight);
  int shown = 0;
  for (const auto& [p, w] : mined) {
    if (p.Length() != 3) continue;
    const double plain = disc::WeightedSupport(
        db, std::vector<double>(db.size(), 1.0), p);
    std::printf("  %-12s weight %8.1f   (plain support %.0f)\n",
                Render(p).c_str(), w, plain);
    ++shown;
  }
  if (shown == 0) std::printf("  (none; lower --min-weight)\n");

  const double motif_w = disc::WeightedSupport(db, weights, motif);
  const double decoy_w = disc::WeightedSupport(db, weights, decoy);
  std::printf("\nplanted motif %s: weight %.1f — %s the threshold\n",
              Render(motif).c_str(), motif_w,
              motif_w >= options.min_weight ? "passes" : "misses");
  std::printf("decoy %s: weight %.1f despite being far more common — "
              "weighting suppresses it\n",
              Render(decoy).c_str(), decoy_w);
  return 0;
}
