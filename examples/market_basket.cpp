// Market-basket analysis on synthetic retail data — the workload the
// paper's introduction motivates: customers with repeat visits, each visit
// a basket of items; the miner finds cross-visit purchase sequences.
//
//   $ ./market_basket [--ncust=4000] [--minsup=0.01] [--algo=disc-all]
//
// Generates an IBM Quest-style database, mines it, prints the longest and
// the strongest patterns, and compares the DISC-all runtime against
// pseudo-projection PrefixSpan on the same input.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "disc/algo/miner.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"
#include "disc/gen/quest.h"

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);

  disc::QuestParams params;
  params.ncust = static_cast<std::uint32_t>(flags.GetInt("ncust", 4000));
  params.slen = 6.0;    // visits per customer
  params.tlen = 3.0;    // items per basket
  params.nitems = 400;  // catalog size
  params.seq_patlen = 3.0;
  params.npats = 300;
  params.nlits = 600;
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2024));
  const disc::SequenceDatabase db = disc::GenerateQuestDatabase(params);
  std::printf("generated %zu customers, %llu purchases, catalog %u items\n",
              db.size(), static_cast<unsigned long long>(db.TotalItems()),
              params.nitems);

  disc::MineOptions options;
  options.min_support_count = disc::MineOptions::CountForFraction(
      db.size(), flags.GetDouble("minsup", 0.01));

  const std::string algo = flags.GetString("algo", "disc-all");
  disc::Timer timer;
  const disc::PatternSet patterns =
      disc::CreateMiner(algo)->Mine(db, options);
  const double mine_s = timer.Seconds();
  std::printf("%s mined %zu patterns in %.3fs (support >= %u)\n\n",
              algo.c_str(), patterns.size(), mine_s,
              options.min_support_count);

  // Strongest associations: longest patterns first, then by support.
  std::vector<std::pair<disc::Sequence, std::uint32_t>> ranked(
      patterns.begin(), patterns.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first.Length() != b.first.Length()) {
                       return a.first.Length() > b.first.Length();
                     }
                     return a.second > b.second;
                   });
  std::printf("top repeat-purchase sequences:\n");
  const std::size_t top = std::min<std::size_t>(10, ranked.size());
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("  %-28s %5u customers (%.1f%%)\n",
                ranked[i].first.ToString().c_str(), ranked[i].second,
                100.0 * ranked[i].second / static_cast<double>(db.size()));
  }

  // Cross-check against the classic baseline on the same input.
  timer.Reset();
  const disc::PatternSet baseline =
      disc::CreateMiner("pseudo")->Mine(db, options);
  std::printf("\npseudo-PrefixSpan: %.3fs, results %s\n", timer.Seconds(),
              baseline == patterns ? "identical" : "DIFFER (bug!)");
  // Exit 3 = internal/data error per the library convention
  // (docs/ROBUSTNESS.md).
  return baseline == patterns ? 0 : 3;
}
