// seqmine — the command-line face of the library: mine an SPMF sequence
// database with any of the seven algorithms, write SPMF-format patterns,
// and report summary statistics.
//
//   $ ./seqmine input.spmf [--algo=disc-all] [--minsup=0.01 | --delta=25]
//               [--max-length=N] [--threads=N] [--top-k=K] [--maximal]
//               [--closed] [--out=patterns.spmf] [--quiet] [--stats]
//               [--trace-out=trace.json] [--json-out=report.json]
//
// --stats prints the per-run work counters, --trace-out writes a
// chrome://tracing span file, --json-out a machine-readable report.
//
// Uses the umbrella header, exercising the full public API.
#include <cstdio>

#include "disc/disc.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(
        stderr,
        "usage: seqmine <input.spmf> [--algo=NAME] [--minsup=F | --delta=N]\n"
        "               [--max-length=N] [--threads=N] [--top-k=K]\n"
        "               [--maximal] [--closed] [--out=FILE] [--quiet]\n"
        "               [--stats] [--trace-out=FILE] [--json-out=FILE]\n"
        "algorithms:");
    for (const std::string& name : disc::AllMinerNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  disc::ObsSession obs("seqmine", flags);
  disc::Timer total;
  const disc::SequenceDatabase db =
      disc::LoadSpmf(flags.positional()[0]);
  obs.SetWorkload(
      disc::MakeWorkloadInfo(db, "spmf:" + flags.positional()[0]));
  const bool quiet = flags.GetBool("quiet", false);
  if (!quiet) {
    std::printf("loaded %zu sequences (%llu items, %u distinct) in %.2fs\n",
                db.size(),
                static_cast<unsigned long long>(db.TotalItems()),
                db.max_item(), total.Seconds());
  }

  const std::string algo = flags.GetString("algo", "disc-all");
  disc::PatternSet patterns;
  disc::Timer mine_timer;
  if (flags.Has("top-k")) {
    disc::TopKOptions topk;
    topk.k = static_cast<std::size_t>(flags.GetInt("top-k", 10));
    topk.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    topk.algorithm = algo;
    patterns = disc::MineTopK(db, topk);
  } else {
    disc::MineOptions options;
    if (flags.Has("delta")) {
      options.min_support_count =
          static_cast<std::uint32_t>(flags.GetInt("delta", 2));
    } else {
      options.min_support_count = disc::MineOptions::CountForFraction(
          db.size(), flags.GetDouble("minsup", 0.01));
    }
    options.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    options.threads = disc::ThreadsFromFlags(flags);
    const std::unique_ptr<disc::Miner> miner = disc::CreateMiner(algo);
    patterns = miner->Mine(db, options);
    obs.Record(miner->last_stats());
  }
  const double mine_s = mine_timer.Seconds();

  if (flags.GetBool("maximal", false)) {
    patterns = disc::MaximalPatterns(patterns);
  } else if (flags.GetBool("closed", false)) {
    patterns = disc::ClosedPatterns(patterns);
  }

  if (!quiet) {
    const disc::PatternSummary summary = disc::Summarize(patterns);
    std::printf(
        "%s: %zu patterns (%zu maximal, %zu closed), max length %u, max "
        "support %u, %.3fs\n",
        algo.c_str(), summary.total, summary.maximal, summary.closed,
        summary.max_length, summary.max_support, mine_s);
  }

  if (flags.Has("out")) {
    const std::string out_path = flags.GetString("out", "");
    if (!disc::SavePatterns(patterns, out_path)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    if (!quiet) std::printf("wrote %s\n", out_path.c_str());
  } else if (quiet) {
    std::fputs(disc::ToSpmfPatternString(patterns).c_str(), stdout);
  }
  return obs.Finish() ? 0 : 1;
}
