// seqmine — the command-line face of the library: mine an SPMF sequence
// database with any of the seven algorithms, write SPMF-format patterns,
// and report summary statistics.
//
//   $ ./seqmine input.spmf [--algo=disc-all] [--minsup=0.01 | --delta=25]
//               [--max-length=N] [--threads=N] [--top-k=K] [--maximal]
//               [--closed] [--out=patterns.spmf] [--quiet] [--stats]
//               [--permissive] [--deadline-ms=N] [--failpoints=SPEC]
//               [--trace-out=trace.json] [--json-out=report.json]
//               [--progress] [--progress-period-ms=N]
//               [--metrics-out=m.prom] [--events-out=e.jsonl]
//               [--simd=off|sse2|avx2|auto]
//
// --stats prints the per-run work counters, --trace-out writes a
// chrome://tracing span file, --json-out a machine-readable report.
// --progress prints a live partition-progress/ETA ticker to stderr (period
// --progress-period-ms, default 200); --metrics-out writes a Prometheus
// text exposition of the run, --events-out a structured JSONL event log
// (docs/OBSERVABILITY.md). --permissive skips (and counts) malformed input
// records instead of failing; --deadline-ms stops the run cooperatively,
// keeping the exact partial result; --failpoints arms fault-injection
// sites (same syntax as the DISC_FAILPOINTS environment variable; see
// docs/ROBUSTNESS.md). --simd pins the mismatch-scan kernel tier for the
// encoded comparative order (same values as the DISC_SIMD environment
// variable; the flag wins — see docs/BENCHMARKS.md); the mined patterns
// are byte-identical at every tier.
//
// Exit codes (docs/ROBUSTNESS.md): 0 success, 2 usage error, 3 data or
// internal error, 4 stopped by deadline/cancellation (partial result
// written).
//
// Uses the umbrella header, exercising the full public API.
#include <cstdio>

#include "disc/disc.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitDataError = 3;
constexpr int kExitStopped = 4;

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqmine <input.spmf> [--algo=NAME] [--minsup=F | --delta=N]\n"
      "               [--max-length=N] [--threads=N] [--top-k=K]\n"
      "               [--maximal] [--closed] [--out=FILE] [--quiet]\n"
      "               [--permissive] [--deadline-ms=N] [--failpoints=SPEC]\n"
      "               [--stats] [--trace-out=FILE] [--json-out=FILE]\n"
      "               [--progress] [--progress-period-ms=N]\n"
      "               [--metrics-out=FILE] [--events-out=FILE]\n"
      "               [--simd=off|sse2|avx2|auto]\n"
      "algorithms:");
  for (const std::string& name : disc::AllMinerNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.positional().empty()) return Usage();

  if (flags.Has("simd") &&
      !disc::ConfigureSimd(flags.GetString("simd", "auto"))) {
    std::fprintf(stderr,
                 "seqmine: --simd=%s is invalid or unsupported on this "
                 "machine (best tier: %s)\n",
                 flags.GetString("simd", "").c_str(),
                 disc::SimdTierName(disc::BestSimdTier()));
    return kExitUsage;
  }

  if (flags.Has("failpoints")) {
    const disc::Status status =
        disc::failpoint::Configure(flags.GetString("failpoints", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "seqmine: --failpoints: %s\n",
                   status.message().c_str());
      return kExitUsage;
    }
  }

  disc::MineOptions options;
  if (flags.Has("delta")) {
    const long long delta = flags.GetInt("delta", 2);
    if (delta < 1) {
      std::fprintf(stderr, "seqmine: --delta must be >= 1\n");
      return kExitUsage;
    }
    options.min_support_count = static_cast<std::uint32_t>(delta);
  }
  const double minsup = flags.GetDouble("minsup", 0.01);
  if (minsup <= 0.0 || minsup > 1.0) {
    std::fprintf(stderr, "seqmine: --minsup must be in (0, 1]\n");
    return kExitUsage;
  }
  const long long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms < 0) {
    std::fprintf(stderr, "seqmine: --deadline-ms must be >= 0\n");
    return kExitUsage;
  }
  options.deadline_ms = static_cast<std::uint64_t>(deadline_ms);

  const std::string algo = flags.GetString("algo", "disc-all");
  auto miner_or = disc::TryCreateMiner(algo);
  if (!miner_or.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", miner_or.status().message().c_str());
    return kExitUsage;
  }
  const std::unique_ptr<disc::Miner> miner = std::move(*miner_or);

  disc::ObsSession obs("seqmine", flags);
  disc::Timer total;
  disc::ParseOptions parse_options = flags.GetBool("permissive", false)
                                         ? disc::ParseOptions::Permissive()
                                         : disc::ParseOptions::Strict();
  disc::ParseReport parse_report;
  auto db_or =
      disc::TryLoadSpmf(flags.positional()[0], parse_options, &parse_report);
  if (!db_or.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", db_or.status().message().c_str());
    return kExitDataError;
  }
  const disc::SequenceDatabase db = std::move(*db_or);
  obs.SetWorkload(
      disc::MakeWorkloadInfo(db, "spmf:" + flags.positional()[0]));
  const bool quiet = flags.GetBool("quiet", false);
  if (parse_report.skipped > 0) {
    std::fprintf(stderr,
                 "seqmine: skipped %zu malformed record%s (first: %s)\n",
                 parse_report.skipped, parse_report.skipped == 1 ? "" : "s",
                 parse_report.first_error.c_str());
  }
  if (!quiet) {
    std::printf("loaded %zu sequences (%llu items, %u distinct) in %.2fs\n",
                db.size(),
                static_cast<unsigned long long>(db.TotalItems()),
                db.max_item(), total.Seconds());
  }

  disc::PatternSet patterns;
  disc::Status mine_status;
  disc::Timer mine_timer;
  if (flags.Has("top-k")) {
    disc::TopKOptions topk;
    topk.k = static_cast<std::size_t>(flags.GetInt("top-k", 10));
    topk.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    topk.algorithm = algo;
    patterns = disc::MineTopK(db, topk);
  } else {
    if (!flags.Has("delta")) {
      options.min_support_count =
          disc::MineOptions::CountForFraction(db.size(), minsup);
    }
    options.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    options.threads = disc::ThreadsFromFlags(flags);
    disc::MineResult result = miner->TryMine(db, options);
    patterns = std::move(result.patterns);
    mine_status = result.status;
    obs.Record(miner->last_stats());
    if (mine_status.code() == disc::StatusCode::kCancelled ||
        mine_status.code() == disc::StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr, "seqmine: %s — writing partial result\n",
                   mine_status.ToString().c_str());
    } else if (!mine_status.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", mine_status.ToString().c_str());
    }
  }
  const double mine_s = mine_timer.Seconds();

  if (flags.GetBool("maximal", false)) {
    patterns = disc::MaximalPatterns(patterns);
  } else if (flags.GetBool("closed", false)) {
    patterns = disc::ClosedPatterns(patterns);
  }

  if (!quiet) {
    const disc::PatternSummary summary = disc::Summarize(patterns);
    std::printf(
        "%s: %zu patterns (%zu maximal, %zu closed), max length %u, max "
        "support %u, %.3fs\n",
        algo.c_str(), summary.total, summary.maximal, summary.closed,
        summary.max_length, summary.max_support, mine_s);
  }

  int exit_code = kExitOk;
  if (flags.Has("out")) {
    const std::string out_path = flags.GetString("out", "");
    if (!disc::SavePatterns(patterns, out_path)) {
      std::fprintf(stderr, "seqmine: cannot write %s\n", out_path.c_str());
      exit_code = kExitDataError;
    } else if (!quiet) {
      std::printf("wrote %s\n", out_path.c_str());
    }
  } else if (quiet) {
    std::fputs(disc::ToSpmfPatternString(patterns).c_str(), stdout);
  }
  if (!obs.Finish() && exit_code == kExitOk) exit_code = kExitDataError;
  if (exit_code == kExitOk && !mine_status.ok()) {
    exit_code = (mine_status.code() == disc::StatusCode::kCancelled ||
                 mine_status.code() == disc::StatusCode::kDeadlineExceeded)
                    ? kExitStopped
                    : kExitDataError;
  }
  return exit_code;
}
