// seqmine — the command-line face of the library: mine an SPMF sequence
// database with any of the seven algorithms, write SPMF-format patterns,
// and report summary statistics. A thin client of the engine layer
// (engine/engine.h): load and mine go through an Engine, the same path
// the seqmined server and the bench drivers drive.
//
//   $ ./seqmine input.spmf [--algo=disc-all] [--minsup=0.01 | --delta=25]
//               [--max-length=N] [--threads=N] [--top-k=K] [--maximal]
//               [--closed] [--out=patterns.spmf] [--quiet] [--stats]
//               [--permissive] [--deadline-ms=N] [--failpoints=SPEC]
//               [--trace-out=trace.json] [--json-out=report.json]
//               [--progress] [--progress-period-ms=N]
//               [--metrics-out=m.prom] [--events-out=e.jsonl]
//               [--simd=off|sse2|avx2|auto]
//   $ ./seqmine --serve [input.spmf] [--permissive] [--serve-threads=N]
//
// --stats prints the per-run work counters, --trace-out writes a
// chrome://tracing span file, --json-out a machine-readable report.
// --progress prints a live partition-progress/ETA ticker to stderr (period
// --progress-period-ms, default 200); --metrics-out writes a Prometheus
// text exposition of the run, --events-out a structured JSONL event log
// (docs/OBSERVABILITY.md). --permissive skips (and counts) malformed input
// records instead of failing; --deadline-ms stops the run cooperatively,
// keeping the exact partial result; --failpoints arms fault-injection
// sites (same syntax as the DISC_FAILPOINTS environment variable; see
// docs/ROBUSTNESS.md). --simd pins the mismatch-scan kernel tier for the
// encoded comparative order (same values as the DISC_SIMD environment
// variable; the flag wins — see docs/BENCHMARKS.md); the mined patterns
// are byte-identical at every tier.
//
// --serve enters the seqmined line protocol on stdin/stdout (docs/
// SERVER.md) — identical to running the seqmined binary — optionally
// preloading a database first; --serve-threads sizes the engine's session
// pool (concurrent queries, not per-mine parallelism).
//
// Exit codes (docs/ROBUSTNESS.md): 0 success, 2 usage error, 3 data or
// internal error, 4 stopped by deadline/cancellation (partial result
// written).
//
// Uses the umbrella header, exercising the full public API.
#include <iostream>
#include <cstdio>

#include "disc/disc.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitDataError = 3;
constexpr int kExitStopped = 4;

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqmine <input.spmf> [--algo=NAME] [--minsup=F | --delta=N]\n"
      "               [--max-length=N] [--threads=N] [--top-k=K]\n"
      "               [--maximal] [--closed] [--out=FILE] [--quiet]\n"
      "               [--permissive] [--deadline-ms=N] [--failpoints=SPEC]\n"
      "               [--stats] [--trace-out=FILE] [--json-out=FILE]\n"
      "               [--progress] [--progress-period-ms=N]\n"
      "               [--metrics-out=FILE] [--events-out=FILE]\n"
      "               [--simd=off|sse2|avx2|auto]\n"
      "       seqmine --serve [input.spmf] [--permissive]\n"
      "               [--serve-threads=N]\n"
      "algorithms:");
  for (const std::string& name : disc::AllMinerNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return kExitUsage;
}

// The seqmined line protocol on stdin/stdout (--serve).
int Serve(const disc::Flags& flags) {
  if (flags.positional().size() > 1) return Usage();
  const long long serve_threads = flags.GetInt("serve-threads", 2);
  if (serve_threads < 0) {
    std::fprintf(stderr, "seqmine: --serve-threads must be >= 0\n");
    return kExitUsage;
  }
  disc::engine::Engine::Config config;
  config.session_threads = static_cast<std::uint32_t>(serve_threads);
  disc::engine::Engine engine(config);
  if (!flags.positional().empty()) {
    auto info = engine.LoadSpmf(flags.positional()[0],
                                flags.GetBool("permissive", false)
                                    ? disc::ParseOptions::Permissive()
                                    : disc::ParseOptions::Strict());
    if (!info.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", info.status().message().c_str());
      return kExitDataError;
    }
    std::fprintf(stderr, "seqmine: preloaded %zu sequences from %s\n",
                 info->sequences, flags.positional()[0].c_str());
  }
  disc::server::Server server(&engine, std::cin, std::cout);
  return server.Run();
}

}  // namespace

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    Usage();
    return kExitOk;  // asked-for usage is a success, not a usage error
  }
  const bool serve = flags.GetBool("serve", false);
  if (flags.positional().empty() && !serve) return Usage();

  if (flags.Has("simd") &&
      !disc::ConfigureSimd(flags.GetString("simd", "auto"))) {
    std::fprintf(stderr,
                 "seqmine: --simd=%s is invalid or unsupported on this "
                 "machine (best tier: %s)\n",
                 flags.GetString("simd", "").c_str(),
                 disc::SimdTierName(disc::BestSimdTier()));
    return kExitUsage;
  }

  if (flags.Has("failpoints")) {
    const disc::Status status =
        disc::failpoint::Configure(flags.GetString("failpoints", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "seqmine: --failpoints: %s\n",
                   status.message().c_str());
      return kExitUsage;
    }
  }

  if (serve) return Serve(flags);

  disc::engine::MineRequest request;
  if (flags.Has("delta")) {
    const long long delta = flags.GetInt("delta", 2);
    if (delta < 1) {
      std::fprintf(stderr, "seqmine: --delta must be >= 1\n");
      return kExitUsage;
    }
    request.options.min_support_count = static_cast<std::uint32_t>(delta);
  } else {
    request.min_support = flags.GetDouble("minsup", 0.01);
    if (request.min_support <= 0.0 || request.min_support > 1.0) {
      std::fprintf(stderr, "seqmine: --minsup must be in (0, 1]\n");
      return kExitUsage;
    }
  }
  const long long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms < 0) {
    std::fprintf(stderr, "seqmine: --deadline-ms must be >= 0\n");
    return kExitUsage;
  }
  request.options.deadline_ms = static_cast<std::uint64_t>(deadline_ms);

  request.algo = flags.GetString("algo", "disc-all");
  if (auto check = disc::TryCreateMiner(request.algo); !check.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", check.status().message().c_str());
    return kExitUsage;
  }

  // One-shot client: a single query gains nothing from the first-level
  // cache (it would pay the alphabet build to use it once), and mining
  // happens on the calling session's worker.
  disc::engine::Engine::Config config;
  config.session_threads = 1;
  config.enable_cache = false;
  disc::engine::Engine engine(config);

  disc::ObsSession obs("seqmine", flags);
  disc::Timer total;
  auto load = engine.LoadSpmf(flags.positional()[0],
                              flags.GetBool("permissive", false)
                                  ? disc::ParseOptions::Permissive()
                                  : disc::ParseOptions::Strict());
  if (!load.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", load.status().message().c_str());
    return kExitDataError;
  }
  const std::shared_ptr<const disc::SequenceDatabase> db = engine.database();
  obs.SetWorkload(
      disc::MakeWorkloadInfo(*db, "spmf:" + flags.positional()[0]));
  const bool quiet = flags.GetBool("quiet", false);
  if (load->skipped > 0) {
    std::fprintf(stderr,
                 "seqmine: skipped %zu malformed record%s (first: %s)\n",
                 load->skipped, load->skipped == 1 ? "" : "s",
                 load->first_error.c_str());
  }
  if (!quiet) {
    std::printf("loaded %zu sequences (%llu items, %u distinct) in %.2fs\n",
                load->sequences,
                static_cast<unsigned long long>(load->total_items),
                load->max_item, total.Seconds());
  }

  disc::PatternSet patterns;
  disc::Status mine_status;
  disc::Timer mine_timer;
  if (flags.Has("top-k")) {
    // Top-k probes thresholds itself and runs single-threaded; say so
    // instead of silently ignoring flags the user passed.
    for (const char* ignored : {"minsup", "delta", "threads", "deadline-ms"}) {
      if (flags.Has(ignored)) {
        std::fprintf(stderr, "seqmine: --top-k ignores --%s\n", ignored);
      }
    }
    disc::TopKOptions topk;
    topk.k = static_cast<std::size_t>(flags.GetInt("top-k", 10));
    topk.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    topk.algorithm = request.algo;
    patterns = disc::MineTopK(*db, topk);
  } else {
    request.options.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    request.options.threads = disc::ThreadsFromFlags(flags);
    disc::engine::MineResponse response = engine.Mine(request);
    patterns = std::move(response.patterns);
    mine_status = response.status;
    obs.Record(response.stats);
    if (response.partial()) {
      std::fprintf(stderr, "seqmine: %s — writing partial result\n",
                   mine_status.ToString().c_str());
    } else if (!mine_status.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", mine_status.ToString().c_str());
    }
  }
  const double mine_s = mine_timer.Seconds();

  if (flags.GetBool("maximal", false)) {
    patterns = disc::MaximalPatterns(patterns);
  } else if (flags.GetBool("closed", false)) {
    patterns = disc::ClosedPatterns(patterns);
  }

  if (!quiet) {
    const disc::PatternSummary summary = disc::Summarize(patterns);
    std::printf(
        "%s: %zu patterns (%zu maximal, %zu closed), max length %u, max "
        "support %u, %.3fs\n",
        request.algo.c_str(), summary.total, summary.maximal, summary.closed,
        summary.max_length, summary.max_support, mine_s);
  }

  int exit_code = kExitOk;
  if (flags.Has("out")) {
    const std::string out_path = flags.GetString("out", "");
    if (!disc::SavePatterns(patterns, out_path)) {
      std::fprintf(stderr, "seqmine: cannot write %s\n", out_path.c_str());
      exit_code = kExitDataError;
    } else if (!quiet) {
      std::printf("wrote %s\n", out_path.c_str());
    }
  } else if (quiet) {
    std::fputs(disc::ToSpmfPatternString(patterns).c_str(), stdout);
  }
  if (!obs.Finish() && exit_code == kExitOk) exit_code = kExitDataError;
  if (exit_code == kExitOk && !mine_status.ok()) {
    exit_code = (mine_status.code() == disc::StatusCode::kCancelled ||
                 mine_status.code() == disc::StatusCode::kDeadlineExceeded)
                    ? kExitStopped
                    : kExitDataError;
  }
  return exit_code;
}
