// seqmine — the command-line face of the library: mine an SPMF sequence
// database with any of the seven algorithms, write SPMF-format patterns,
// and report summary statistics. A thin client of the engine layer
// (engine/engine.h): load and mine go through an Engine, the same path
// the seqmined server and the bench drivers drive.
//
//   $ ./seqmine input.spmf [--algo=disc-all] [--minsup=0.01 | --delta=25]
//               [--max-length=N] [--threads=N] [--top-k=K] [--maximal]
//               [--closed] [--out=patterns.spmf] [--quiet] [--stats]
//               [--permissive] [--deadline-ms=N] [--failpoints=SPEC]
//               [--trace-out=trace.json] [--json-out=report.json]
//               [--progress] [--progress-period-ms=N]
//               [--metrics-out=m.prom] [--events-out=e.jsonl]
//               [--simd=off|sse2|avx2|auto]
//   $ ./seqmine --serve [input.spmf] [--permissive] [--serve-threads=N]
//   $ ./seqmine --connect=ADDR [input.spmf] [--minsup=F | --delta=N] ...
//   $ ./seqmine input.spmf --pack=out.dsa [--shards=N]
//   $ ./seqmine --mine-shards=BASE --shards=N [mine options]
//
// The positional input may be SPMF text or a packed .dsa arena file
// (docs/STORAGE.md) — .dsa loads mmap in O(1) instead of parsing.
// --pack converts the input to a .dsa file (or, with --shards=N, to N
// λ-range shard files next to the output base); --mine-shards mines a
// packed shard set one shard at a time (out-of-core: peak memory is one
// shard) and merges — byte-identical to mining the corpus unsharded.
//
// --stats prints the per-run work counters, --trace-out writes a
// chrome://tracing span file, --json-out a machine-readable report.
// --progress prints a live partition-progress/ETA ticker to stderr (period
// --progress-period-ms, default 200); --metrics-out writes a Prometheus
// text exposition of the run, --events-out a structured JSONL event log
// (docs/OBSERVABILITY.md). --permissive skips (and counts) malformed input
// records instead of failing; --deadline-ms stops the run cooperatively,
// keeping the exact partial result; --failpoints arms fault-injection
// sites (same syntax as the DISC_FAILPOINTS environment variable; see
// docs/ROBUSTNESS.md). --simd pins the mismatch-scan kernel tier for the
// encoded comparative order (same values as the DISC_SIMD environment
// variable; the flag wins — see docs/BENCHMARKS.md); the mined patterns
// are byte-identical at every tier.
//
// --serve enters the seqmined line protocol on stdin/stdout (docs/
// SERVER.md) — identical to running the seqmined binary — optionally
// preloading a database first; --serve-threads sizes the engine's session
// pool (concurrent queries, not per-mine parallelism).
//
// --connect=ADDR ("unix:<path>" or "<host>:<port>") runs one query
// against a socket-mode seqmined (docs/SERVER.md, "Transport &
// admission"): connect (retrying with capped exponential backoff,
// --retries/--retry-base-ms/--retry-max-ms), optionally `load` the
// positional file server-side, send one `mine`, and print the pattern
// block to stdout. An `err busy retry-after-ms=<hint>` shed response is
// retried after max(hint, backoff) — the polite-client half of the
// server's load-shedding contract.
//
// Exit codes (docs/ROBUSTNESS.md): 0 success, 2 usage error, 3 data or
// internal error, 4 stopped by deadline/cancellation (partial result
// written).
//
// Uses the umbrella header, exercising the full public API.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "disc/disc.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitDataError = 3;
constexpr int kExitStopped = 4;

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqmine <input.spmf> [--algo=NAME] [--minsup=F | --delta=N]\n"
      "               [--max-length=N] [--threads=N] [--top-k=K]\n"
      "               [--maximal] [--closed] [--out=FILE] [--quiet]\n"
      "               [--permissive] [--deadline-ms=N] [--failpoints=SPEC]\n"
      "               [--stats] [--trace-out=FILE] [--json-out=FILE]\n"
      "               [--progress] [--progress-period-ms=N]\n"
      "               [--metrics-out=FILE] [--events-out=FILE]\n"
      "               [--simd=off|sse2|avx2|auto]\n"
      "       seqmine --serve [input.spmf] [--permissive]\n"
      "               [--serve-threads=N]\n"
      "       seqmine --connect=ADDR [input.spmf] [--permissive]\n"
      "               [mine options] [--retries=N] [--retry-base-ms=MS]\n"
      "               [--retry-max-ms=MS]  (ADDR: unix:<path> | "
      "<host>:<port>)\n"
      "       seqmine <input.spmf|.dsa> --pack=OUT.dsa [--shards=N]\n"
      "       seqmine --mine-shards=BASE --shards=N [mine options]\n"
      "algorithms:");
  for (const std::string& name : disc::AllMinerNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return kExitUsage;
}

// The seqmined line protocol on stdin/stdout (--serve).
int Serve(const disc::Flags& flags) {
  if (flags.positional().size() > 1) return Usage();
  const long long serve_threads = flags.GetInt("serve-threads", 2);
  if (serve_threads < 0) {
    std::fprintf(stderr, "seqmine: --serve-threads must be >= 0\n");
    return kExitUsage;
  }
  disc::engine::Engine::Config config;
  config.session_threads = static_cast<std::uint32_t>(serve_threads);
  disc::engine::Engine engine(config);
  if (!flags.positional().empty()) {
    auto info = engine.LoadPath(flags.positional()[0],
                                flags.GetBool("permissive", false)
                                    ? disc::ParseOptions::Permissive()
                                    : disc::ParseOptions::Strict());
    if (!info.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", info.status().message().c_str());
      return kExitDataError;
    }
    std::fprintf(stderr, "seqmine: preloaded %zu sequences from %s\n",
                 info->sequences, flags.positional()[0].c_str());
  }
  disc::server::Server server(&engine, std::cin, std::cout);
  return server.Run();
}

// One query against a socket-mode seqmined (--connect). Exit codes follow
// the one-shot CLI: 0 complete, 4 partial, 3 connection/protocol failure
// or retries exhausted.
int Connect(const disc::Flags& flags) {
  const std::string address = flags.GetString("connect", "");
  if (address.empty() || flags.positional().size() > 1) return Usage();
  const long long retries = flags.GetInt("retries", 5);
  const long long retry_base = flags.GetInt("retry-base-ms", 100);
  const long long retry_max = flags.GetInt("retry-max-ms", 2000);
  if (retries < 0 || retry_base < 1 || retry_max < retry_base) {
    std::fprintf(stderr,
                 "seqmine: need --retries >= 0 and "
                 "1 <= --retry-base-ms <= --retry-max-ms\n");
    return kExitUsage;
  }
  const bool quiet = flags.GetBool("quiet", false);

  const auto backoff_ms = [&](long long attempt) -> std::uint64_t {
    const long long shift = std::min<long long>(attempt, 16);
    return static_cast<std::uint64_t>(
        std::min<long long>(retry_base << shift, retry_max));
  };

  // Connect, retrying with capped exponential backoff: a server mid-start
  // (or mid-drain-and-restart) is a transient, not a failure.
  int fd = -1;
  for (long long attempt = 0;; ++attempt) {
    disc::StatusOr<int> dial = disc::server::DialAddress(address);
    if (dial.ok()) {
      fd = *dial;
      break;
    }
    if (attempt >= retries) {
      std::fprintf(stderr, "seqmine: %s (after %lld attempts)\n",
                   dial.status().ToString().c_str(), attempt + 1);
      return kExitDataError;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(attempt)));
  }
  disc::server::FdStream stream(fd);

  std::string line;
  if (!std::getline(stream, line)) {
    std::fprintf(stderr, "seqmine: no greeting from %s\n", address.c_str());
    return kExitDataError;
  }

  if (!flags.positional().empty()) {
    stream << "load " << flags.positional()[0]
           << (flags.GetBool("permissive", false) ? " --permissive" : "")
           << "\n"
           << std::flush;
    if (!std::getline(stream, line) || line.rfind("ok load", 0) != 0) {
      std::fprintf(stderr, "seqmine: load failed: %s\n", line.c_str());
      return kExitDataError;
    }
    if (!quiet) std::fprintf(stderr, "seqmine: %s\n", line.c_str());
  }

  std::string mine = "mine";
  if (flags.Has("delta")) {
    mine += " --delta " + std::to_string(flags.GetInt("delta", 2));
  } else if (flags.Has("minsup")) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " --minsup %g",
                  flags.GetDouble("minsup", 0.01));
    mine += buf;
  }
  if (flags.Has("algo")) mine += " --algo " + flags.GetString("algo", "");
  if (flags.Has("threads")) {
    mine += " --threads " + std::to_string(flags.GetInt("threads", 1));
  }
  if (flags.Has("max-length")) {
    mine += " --max-length " + std::to_string(flags.GetInt("max-length", 0));
  }
  if (flags.Has("deadline-ms")) {
    mine += " --deadline-ms " + std::to_string(flags.GetInt("deadline-ms", 0));
  }
  if (flags.Has("cancel-after")) {
    mine +=
        " --cancel-after " + std::to_string(flags.GetInt("cancel-after", 0));
  }

  // Send the query; an `err busy` shed response carries the server's
  // retry-after hint, which a polite client honors (taking the larger of
  // the hint and its own exponential backoff).
  for (long long attempt = 0;; ++attempt) {
    stream << mine << "\n" << std::flush;
    if (!std::getline(stream, line)) {
      std::fprintf(stderr, "seqmine: connection to %s lost\n",
                   address.c_str());
      return kExitDataError;
    }
    if (line.rfind("err busy", 0) != 0) break;
    if (attempt >= retries) {
      std::fprintf(stderr, "seqmine: server busy, retries exhausted (%s)\n",
                   line.c_str());
      return kExitDataError;
    }
    std::uint64_t hint = 0;
    const std::size_t pos = line.find("retry-after-ms=");
    if (pos != std::string::npos) {
      hint = std::strtoull(line.c_str() + pos + 15, nullptr, 10);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(hint, backoff_ms(attempt))));
  }
  if (line.rfind("ok mine", 0) != 0) {
    std::fprintf(stderr, "seqmine: %s\n", line.c_str());
    return kExitDataError;
  }
  if (!quiet) std::fprintf(stderr, "seqmine: %s\n", line.c_str());
  const bool partial = line.find(" status=partial") != std::string::npos;

  // The pattern block, verbatim, up to the bare `end` frame.
  bool saw_end = false;
  while (std::getline(stream, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  if (!saw_end) {
    std::fprintf(stderr, "seqmine: response truncated (no end frame)\n");
    return kExitDataError;
  }
  stream << "quit\n" << std::flush;
  while (std::getline(stream, line)) {
  }  // drain through `ok quit` so the server sees a clean close
  return partial ? kExitStopped : kExitOk;
}

// Loads the positional input as either format (--pack / --mine-shards
// helpers go straight through seq/io + seq/storage, no engine needed).
disc::StatusOr<disc::SequenceDatabase> LoadInput(const disc::Flags& flags) {
  const std::string& path = flags.positional()[0];
  if (disc::IsDsaPath(path)) return disc::TryLoadDsa(path);
  return disc::TryLoadSpmf(path, flags.GetBool("permissive", false)
                                     ? disc::ParseOptions::Permissive()
                                     : disc::ParseOptions::Strict());
}

// --pack=OUT.dsa [--shards=N]: convert the input to the on-disk arena
// format, optionally split into λ-range shards (docs/STORAGE.md).
int Pack(const disc::Flags& flags) {
  if (flags.positional().size() != 1) return Usage();
  const std::string out = flags.GetString("pack", "");
  const long long shards = flags.GetInt("shards", 1);
  if (out.empty() || shards < 1) {
    std::fprintf(stderr,
                 "seqmine: --pack needs an output path and --shards >= 1\n");
    return kExitUsage;
  }
  auto db = LoadInput(flags);
  if (!db.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", db.status().ToString().c_str());
    return kExitDataError;
  }
  const bool quiet = flags.GetBool("quiet", false);
  if (shards == 1) {
    if (const disc::Status s = disc::SaveDsa(*db, out); !s.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", s.ToString().c_str());
      return kExitDataError;
    }
    if (!quiet) {
      std::printf("packed %zu sequences (%llu items) -> %s\n", db->size(),
                  static_cast<unsigned long long>(db->TotalItems()),
                  out.c_str());
    }
    return kExitOk;
  }
  std::vector<std::string> paths;
  const disc::Status s = disc::PackShards(
      *db, out, static_cast<std::uint32_t>(shards), &paths);
  if (!s.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", s.ToString().c_str());
    return kExitDataError;
  }
  if (!quiet) {
    std::printf("packed %zu sequences into %zu shard%s:\n", db->size(),
                paths.size(), paths.size() == 1 ? "" : "s");
    for (const std::string& p : paths) std::printf("  %s\n", p.c_str());
  }
  return kExitOk;
}

// --mine-shards=BASE --shards=N: out-of-core mine over a packed shard
// set, one mapped shard at a time, merged byte-identically.
int MineShards(const disc::Flags& flags) {
  if (!flags.positional().empty()) return Usage();
  const std::string base = flags.GetString("mine-shards", "");
  const long long shards = flags.GetInt("shards", 0);
  if (base.empty() || shards < 1) {
    std::fprintf(stderr, "seqmine: --mine-shards needs --shards=N (>= 1)\n");
    return kExitUsage;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(shards);
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < n; ++i) {
    paths.push_back(disc::ShardPath(base, i, n));
  }

  const std::string algo = flags.GetString("algo", "disc-all");
  disc::MineOptions options;
  if (flags.Has("delta")) {
    const long long delta = flags.GetInt("delta", 2);
    if (delta < 1) {
      std::fprintf(stderr, "seqmine: --delta must be >= 1\n");
      return kExitUsage;
    }
    options.min_support_count = static_cast<std::uint32_t>(delta);
  } else {
    // A fraction resolves against the *unsharded* corpus size, which every
    // shard header records.
    const double minsup = flags.GetDouble("minsup", 0.01);
    if (minsup <= 0.0 || minsup > 1.0) {
      std::fprintf(stderr, "seqmine: --minsup must be in (0, 1]\n");
      return kExitUsage;
    }
    auto info = disc::ReadDsaInfo(paths[0]);
    if (!info.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", info.status().ToString().c_str());
      return kExitDataError;
    }
    options.min_support_count = disc::MineOptions::CountForFraction(
        static_cast<std::size_t>(info->shard.total_customers), minsup);
  }
  options.max_length = static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
  options.threads = disc::ThreadsFromFlags(flags);
  const long long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms < 0) {
    std::fprintf(stderr, "seqmine: --deadline-ms must be >= 0\n");
    return kExitUsage;
  }
  options.deadline_ms = static_cast<std::uint64_t>(deadline_ms);

  disc::Timer mine_timer;
  disc::MineResult result = disc::MineShardFiles(paths, algo, options);
  const bool quiet = flags.GetBool("quiet", false);
  if (!result.status.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", result.status.ToString().c_str());
  }
  if (!quiet) {
    std::printf("%s over %u shards: %zu patterns, delta %u, %.3fs\n",
                algo.c_str(), n, result.patterns.size(),
                options.min_support_count, mine_timer.Seconds());
  }
  int exit_code = kExitOk;
  if (flags.Has("out")) {
    const std::string out_path = flags.GetString("out", "");
    if (!disc::SavePatterns(result.patterns, out_path)) {
      std::fprintf(stderr, "seqmine: cannot write %s\n", out_path.c_str());
      exit_code = kExitDataError;
    } else if (!quiet) {
      std::printf("wrote %s\n", out_path.c_str());
    }
  } else if (quiet) {
    std::fputs(disc::ToSpmfPatternString(result.patterns).c_str(), stdout);
  }
  if (exit_code == kExitOk && !result.status.ok()) {
    exit_code = (result.status.code() == disc::StatusCode::kCancelled ||
                 result.status.code() == disc::StatusCode::kDeadlineExceeded)
                    ? kExitStopped
                    : kExitDataError;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    Usage();
    return kExitOk;  // asked-for usage is a success, not a usage error
  }
  const bool serve = flags.GetBool("serve", false);
  const bool connect = flags.Has("connect");
  const bool pack = flags.Has("pack");
  const bool mine_shards = flags.Has("mine-shards");
  if (flags.positional().empty() && !serve && !connect && !mine_shards) {
    return Usage();
  }

  if (flags.Has("simd") &&
      !disc::ConfigureSimd(flags.GetString("simd", "auto"))) {
    std::fprintf(stderr,
                 "seqmine: --simd=%s is invalid or unsupported on this "
                 "machine (best tier: %s)\n",
                 flags.GetString("simd", "").c_str(),
                 disc::SimdTierName(disc::BestSimdTier()));
    return kExitUsage;
  }

  if (flags.Has("failpoints")) {
    const disc::Status status =
        disc::failpoint::Configure(flags.GetString("failpoints", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "seqmine: --failpoints: %s\n",
                   status.message().c_str());
      return kExitUsage;
    }
  }

  if (serve) return Serve(flags);
  if (connect) return Connect(flags);
  if (pack) return Pack(flags);
  if (mine_shards) return MineShards(flags);

  disc::engine::MineRequest request;
  if (flags.Has("delta")) {
    const long long delta = flags.GetInt("delta", 2);
    if (delta < 1) {
      std::fprintf(stderr, "seqmine: --delta must be >= 1\n");
      return kExitUsage;
    }
    request.options.min_support_count = static_cast<std::uint32_t>(delta);
  } else {
    request.min_support = flags.GetDouble("minsup", 0.01);
    if (request.min_support <= 0.0 || request.min_support > 1.0) {
      std::fprintf(stderr, "seqmine: --minsup must be in (0, 1]\n");
      return kExitUsage;
    }
  }
  const long long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms < 0) {
    std::fprintf(stderr, "seqmine: --deadline-ms must be >= 0\n");
    return kExitUsage;
  }
  request.options.deadline_ms = static_cast<std::uint64_t>(deadline_ms);

  request.algo = flags.GetString("algo", "disc-all");
  if (auto check = disc::TryCreateMiner(request.algo); !check.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", check.status().message().c_str());
    return kExitUsage;
  }

  // One-shot client: a single query gains nothing from the first-level
  // cache (it would pay the alphabet build to use it once), and mining
  // happens on the calling session's worker.
  disc::engine::Engine::Config config;
  config.session_threads = 1;
  config.enable_cache = false;
  disc::engine::Engine engine(config);

  disc::ObsSession obs("seqmine", flags);
  disc::Timer total;
  auto load = engine.LoadPath(flags.positional()[0],
                              flags.GetBool("permissive", false)
                                  ? disc::ParseOptions::Permissive()
                                  : disc::ParseOptions::Strict());
  if (!load.ok()) {
    std::fprintf(stderr, "seqmine: %s\n", load.status().message().c_str());
    return kExitDataError;
  }
  const std::shared_ptr<const disc::SequenceDatabase> db = engine.database();
  obs.SetWorkload(disc::MakeWorkloadInfo(
      *db, (disc::IsDsaPath(flags.positional()[0]) ? "dsa:" : "spmf:") +
               flags.positional()[0]));
  const bool quiet = flags.GetBool("quiet", false);
  if (load->skipped > 0) {
    std::fprintf(stderr,
                 "seqmine: skipped %zu malformed record%s (first: %s)\n",
                 load->skipped, load->skipped == 1 ? "" : "s",
                 load->first_error.c_str());
  }
  if (!quiet) {
    std::printf("loaded %zu sequences (%llu items, %u distinct) in %.2fs\n",
                load->sequences,
                static_cast<unsigned long long>(load->total_items),
                load->max_item, total.Seconds());
  }

  disc::PatternSet patterns;
  disc::Status mine_status;
  disc::Timer mine_timer;
  if (flags.Has("top-k")) {
    // Top-k probes thresholds itself and runs single-threaded; say so
    // instead of silently ignoring flags the user passed.
    for (const char* ignored : {"minsup", "delta", "threads", "deadline-ms"}) {
      if (flags.Has(ignored)) {
        std::fprintf(stderr, "seqmine: --top-k ignores --%s\n", ignored);
      }
    }
    disc::TopKOptions topk;
    topk.k = static_cast<std::size_t>(flags.GetInt("top-k", 10));
    topk.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    topk.algorithm = request.algo;
    patterns = disc::MineTopK(*db, topk);
  } else {
    request.options.max_length =
        static_cast<std::uint32_t>(flags.GetInt("max-length", 0));
    request.options.threads = disc::ThreadsFromFlags(flags);
    disc::engine::MineResponse response = engine.Mine(request);
    patterns = std::move(response.patterns);
    mine_status = response.status;
    obs.Record(response.stats);
    if (response.partial()) {
      std::fprintf(stderr, "seqmine: %s — writing partial result\n",
                   mine_status.ToString().c_str());
    } else if (!mine_status.ok()) {
      std::fprintf(stderr, "seqmine: %s\n", mine_status.ToString().c_str());
    }
  }
  const double mine_s = mine_timer.Seconds();

  if (flags.GetBool("maximal", false)) {
    patterns = disc::MaximalPatterns(patterns);
  } else if (flags.GetBool("closed", false)) {
    patterns = disc::ClosedPatterns(patterns);
  }

  if (!quiet) {
    const disc::PatternSummary summary = disc::Summarize(patterns);
    std::printf(
        "%s: %zu patterns (%zu maximal, %zu closed), max length %u, max "
        "support %u, %.3fs\n",
        request.algo.c_str(), summary.total, summary.maximal, summary.closed,
        summary.max_length, summary.max_support, mine_s);
  }

  int exit_code = kExitOk;
  if (flags.Has("out")) {
    const std::string out_path = flags.GetString("out", "");
    if (!disc::SavePatterns(patterns, out_path)) {
      std::fprintf(stderr, "seqmine: cannot write %s\n", out_path.c_str());
      exit_code = kExitDataError;
    } else if (!quiet) {
      std::printf("wrote %s\n", out_path.c_str());
    }
  } else if (quiet) {
    std::fputs(disc::ToSpmfPatternString(patterns).c_str(), stdout);
  }
  if (!obs.Finish() && exit_code == kExitOk) exit_code = kExitDataError;
  if (exit_code == kExitOk && !mine_status.ok()) {
    exit_code = (mine_status.code() == disc::StatusCode::kCancelled ||
                 mine_status.code() == disc::StatusCode::kDeadlineExceeded)
                    ? kExitStopped
                    : kExitDataError;
  }
  return exit_code;
}
