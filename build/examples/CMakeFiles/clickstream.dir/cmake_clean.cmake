file(REMOVE_RECURSE
  "CMakeFiles/clickstream.dir/clickstream.cpp.o"
  "CMakeFiles/clickstream.dir/clickstream.cpp.o.d"
  "clickstream"
  "clickstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
