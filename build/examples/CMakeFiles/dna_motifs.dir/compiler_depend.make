# Empty compiler generated dependencies file for dna_motifs.
# This may be replaced when dependencies are built.
