file(REMOVE_RECURSE
  "CMakeFiles/dna_motifs.dir/dna_motifs.cpp.o"
  "CMakeFiles/dna_motifs.dir/dna_motifs.cpp.o.d"
  "dna_motifs"
  "dna_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
