# Empty dependencies file for seqmine.
# This may be replaced when dependencies are built.
