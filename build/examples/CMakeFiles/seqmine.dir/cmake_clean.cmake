file(REMOVE_RECURSE
  "CMakeFiles/seqmine.dir/seqmine.cpp.o"
  "CMakeFiles/seqmine.dir/seqmine.cpp.o.d"
  "seqmine"
  "seqmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
