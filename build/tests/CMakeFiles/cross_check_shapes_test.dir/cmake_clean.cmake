file(REMOVE_RECURSE
  "CMakeFiles/cross_check_shapes_test.dir/cross_check_shapes_test.cc.o"
  "CMakeFiles/cross_check_shapes_test.dir/cross_check_shapes_test.cc.o.d"
  "cross_check_shapes_test"
  "cross_check_shapes_test.pdb"
  "cross_check_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_check_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
