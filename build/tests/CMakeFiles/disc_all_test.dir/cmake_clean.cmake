file(REMOVE_RECURSE
  "CMakeFiles/disc_all_test.dir/disc_all_test.cc.o"
  "CMakeFiles/disc_all_test.dir/disc_all_test.cc.o.d"
  "disc_all_test"
  "disc_all_test.pdb"
  "disc_all_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_all_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
