# Empty compiler generated dependencies file for disc_all_test.
# This may be replaced when dependencies are built.
