file(REMOVE_RECURSE
  "CMakeFiles/kms_test.dir/kms_test.cc.o"
  "CMakeFiles/kms_test.dir/kms_test.cc.o.d"
  "kms_test"
  "kms_test.pdb"
  "kms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
