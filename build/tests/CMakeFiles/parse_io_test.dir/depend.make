# Empty dependencies file for parse_io_test.
# This may be replaced when dependencies are built.
