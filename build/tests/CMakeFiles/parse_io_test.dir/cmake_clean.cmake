file(REMOVE_RECURSE
  "CMakeFiles/parse_io_test.dir/parse_io_test.cc.o"
  "CMakeFiles/parse_io_test.dir/parse_io_test.cc.o.d"
  "parse_io_test"
  "parse_io_test.pdb"
  "parse_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
