file(REMOVE_RECURSE
  "CMakeFiles/ksorted_test.dir/ksorted_test.cc.o"
  "CMakeFiles/ksorted_test.dir/ksorted_test.cc.o.d"
  "ksorted_test"
  "ksorted_test.pdb"
  "ksorted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksorted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
