# Empty compiler generated dependencies file for ksorted_test.
# This may be replaced when dependencies are built.
