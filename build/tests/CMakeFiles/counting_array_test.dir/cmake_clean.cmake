file(REMOVE_RECURSE
  "CMakeFiles/counting_array_test.dir/counting_array_test.cc.o"
  "CMakeFiles/counting_array_test.dir/counting_array_test.cc.o.d"
  "counting_array_test"
  "counting_array_test.pdb"
  "counting_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
