# Empty dependencies file for counting_array_test.
# This may be replaced when dependencies are built.
