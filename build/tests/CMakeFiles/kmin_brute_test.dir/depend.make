# Empty dependencies file for kmin_brute_test.
# This may be replaced when dependencies are built.
