file(REMOVE_RECURSE
  "CMakeFiles/kmin_brute_test.dir/kmin_brute_test.cc.o"
  "CMakeFiles/kmin_brute_test.dir/kmin_brute_test.cc.o.d"
  "kmin_brute_test"
  "kmin_brute_test.pdb"
  "kmin_brute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmin_brute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
