file(REMOVE_RECURSE
  "CMakeFiles/cross_check_test.dir/cross_check_test.cc.o"
  "CMakeFiles/cross_check_test.dir/cross_check_test.cc.o.d"
  "cross_check_test"
  "cross_check_test.pdb"
  "cross_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
