# Empty dependencies file for cross_check_test.
# This may be replaced when dependencies are built.
