file(REMOVE_RECURSE
  "CMakeFiles/miner_factory_test.dir/miner_factory_test.cc.o"
  "CMakeFiles/miner_factory_test.dir/miner_factory_test.cc.o.d"
  "miner_factory_test"
  "miner_factory_test.pdb"
  "miner_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
