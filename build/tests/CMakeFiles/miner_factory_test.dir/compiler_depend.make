# Empty compiler generated dependencies file for miner_factory_test.
# This may be replaced when dependencies are built.
