# Empty dependencies file for spam_test.
# This may be replaced when dependencies are built.
