file(REMOVE_RECURSE
  "CMakeFiles/spam_test.dir/spam_test.cc.o"
  "CMakeFiles/spam_test.dir/spam_test.cc.o.d"
  "spam_test"
  "spam_test.pdb"
  "spam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
