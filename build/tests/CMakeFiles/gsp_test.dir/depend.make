# Empty dependencies file for gsp_test.
# This may be replaced when dependencies are built.
