file(REMOVE_RECURSE
  "CMakeFiles/gsp_test.dir/gsp_test.cc.o"
  "CMakeFiles/gsp_test.dir/gsp_test.cc.o.d"
  "gsp_test"
  "gsp_test.pdb"
  "gsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
