file(REMOVE_RECURSE
  "CMakeFiles/dynamic_disc_all_test.dir/dynamic_disc_all_test.cc.o"
  "CMakeFiles/dynamic_disc_all_test.dir/dynamic_disc_all_test.cc.o.d"
  "dynamic_disc_all_test"
  "dynamic_disc_all_test.pdb"
  "dynamic_disc_all_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_disc_all_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
