file(REMOVE_RECURSE
  "CMakeFiles/nrr_test.dir/nrr_test.cc.o"
  "CMakeFiles/nrr_test.dir/nrr_test.cc.o.d"
  "nrr_test"
  "nrr_test.pdb"
  "nrr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nrr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
