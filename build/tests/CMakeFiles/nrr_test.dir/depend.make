# Empty dependencies file for nrr_test.
# This may be replaced when dependencies are built.
