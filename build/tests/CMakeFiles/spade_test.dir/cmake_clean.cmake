file(REMOVE_RECURSE
  "CMakeFiles/spade_test.dir/spade_test.cc.o"
  "CMakeFiles/spade_test.dir/spade_test.cc.o.d"
  "spade_test"
  "spade_test.pdb"
  "spade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
