# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for locative_avl_test.
