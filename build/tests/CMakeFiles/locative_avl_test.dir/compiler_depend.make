# Empty compiler generated dependencies file for locative_avl_test.
# This may be replaced when dependencies are built.
