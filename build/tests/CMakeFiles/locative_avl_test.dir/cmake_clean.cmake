file(REMOVE_RECURSE
  "CMakeFiles/locative_avl_test.dir/locative_avl_test.cc.o"
  "CMakeFiles/locative_avl_test.dir/locative_avl_test.cc.o.d"
  "locative_avl_test"
  "locative_avl_test.pdb"
  "locative_avl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locative_avl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
