# Empty compiler generated dependencies file for disc.
# This may be replaced when dependencies are built.
