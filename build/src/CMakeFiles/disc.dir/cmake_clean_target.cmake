file(REMOVE_RECURSE
  "libdisc.a"
)
