
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disc/algo/gsp.cc" "src/CMakeFiles/disc.dir/disc/algo/gsp.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/gsp.cc.o.d"
  "/root/repo/src/disc/algo/hash_tree.cc" "src/CMakeFiles/disc.dir/disc/algo/hash_tree.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/hash_tree.cc.o.d"
  "/root/repo/src/disc/algo/miner.cc" "src/CMakeFiles/disc.dir/disc/algo/miner.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/miner.cc.o.d"
  "/root/repo/src/disc/algo/pattern_io.cc" "src/CMakeFiles/disc.dir/disc/algo/pattern_io.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/pattern_io.cc.o.d"
  "/root/repo/src/disc/algo/pattern_set.cc" "src/CMakeFiles/disc.dir/disc/algo/pattern_set.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/pattern_set.cc.o.d"
  "/root/repo/src/disc/algo/postprocess.cc" "src/CMakeFiles/disc.dir/disc/algo/postprocess.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/postprocess.cc.o.d"
  "/root/repo/src/disc/algo/prefixspan.cc" "src/CMakeFiles/disc.dir/disc/algo/prefixspan.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/prefixspan.cc.o.d"
  "/root/repo/src/disc/algo/spade.cc" "src/CMakeFiles/disc.dir/disc/algo/spade.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/spade.cc.o.d"
  "/root/repo/src/disc/algo/spam.cc" "src/CMakeFiles/disc.dir/disc/algo/spam.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/spam.cc.o.d"
  "/root/repo/src/disc/algo/topk.cc" "src/CMakeFiles/disc.dir/disc/algo/topk.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/algo/topk.cc.o.d"
  "/root/repo/src/disc/benchlib/report.cc" "src/CMakeFiles/disc.dir/disc/benchlib/report.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/benchlib/report.cc.o.d"
  "/root/repo/src/disc/benchlib/workload.cc" "src/CMakeFiles/disc.dir/disc/benchlib/workload.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/benchlib/workload.cc.o.d"
  "/root/repo/src/disc/common/distributions.cc" "src/CMakeFiles/disc.dir/disc/common/distributions.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/common/distributions.cc.o.d"
  "/root/repo/src/disc/common/flags.cc" "src/CMakeFiles/disc.dir/disc/common/flags.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/common/flags.cc.o.d"
  "/root/repo/src/disc/common/rng.cc" "src/CMakeFiles/disc.dir/disc/common/rng.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/common/rng.cc.o.d"
  "/root/repo/src/disc/common/table.cc" "src/CMakeFiles/disc.dir/disc/common/table.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/common/table.cc.o.d"
  "/root/repo/src/disc/core/counting_array.cc" "src/CMakeFiles/disc.dir/disc/core/counting_array.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/counting_array.cc.o.d"
  "/root/repo/src/disc/core/disc_all.cc" "src/CMakeFiles/disc.dir/disc/core/disc_all.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/disc_all.cc.o.d"
  "/root/repo/src/disc/core/discovery.cc" "src/CMakeFiles/disc.dir/disc/core/discovery.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/discovery.cc.o.d"
  "/root/repo/src/disc/core/dynamic_disc_all.cc" "src/CMakeFiles/disc.dir/disc/core/dynamic_disc_all.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/dynamic_disc_all.cc.o.d"
  "/root/repo/src/disc/core/kms.cc" "src/CMakeFiles/disc.dir/disc/core/kms.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/kms.cc.o.d"
  "/root/repo/src/disc/core/ksorted.cc" "src/CMakeFiles/disc.dir/disc/core/ksorted.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/ksorted.cc.o.d"
  "/root/repo/src/disc/core/locative_avl.cc" "src/CMakeFiles/disc.dir/disc/core/locative_avl.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/locative_avl.cc.o.d"
  "/root/repo/src/disc/core/nrr.cc" "src/CMakeFiles/disc.dir/disc/core/nrr.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/nrr.cc.o.d"
  "/root/repo/src/disc/core/partition.cc" "src/CMakeFiles/disc.dir/disc/core/partition.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/partition.cc.o.d"
  "/root/repo/src/disc/core/weighted.cc" "src/CMakeFiles/disc.dir/disc/core/weighted.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/core/weighted.cc.o.d"
  "/root/repo/src/disc/gen/quest.cc" "src/CMakeFiles/disc.dir/disc/gen/quest.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/gen/quest.cc.o.d"
  "/root/repo/src/disc/order/compare.cc" "src/CMakeFiles/disc.dir/disc/order/compare.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/order/compare.cc.o.d"
  "/root/repo/src/disc/order/kmin_brute.cc" "src/CMakeFiles/disc.dir/disc/order/kmin_brute.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/order/kmin_brute.cc.o.d"
  "/root/repo/src/disc/seq/containment.cc" "src/CMakeFiles/disc.dir/disc/seq/containment.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/containment.cc.o.d"
  "/root/repo/src/disc/seq/database.cc" "src/CMakeFiles/disc.dir/disc/seq/database.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/database.cc.o.d"
  "/root/repo/src/disc/seq/extension.cc" "src/CMakeFiles/disc.dir/disc/seq/extension.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/extension.cc.o.d"
  "/root/repo/src/disc/seq/index.cc" "src/CMakeFiles/disc.dir/disc/seq/index.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/index.cc.o.d"
  "/root/repo/src/disc/seq/io.cc" "src/CMakeFiles/disc.dir/disc/seq/io.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/io.cc.o.d"
  "/root/repo/src/disc/seq/itemset.cc" "src/CMakeFiles/disc.dir/disc/seq/itemset.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/itemset.cc.o.d"
  "/root/repo/src/disc/seq/parse.cc" "src/CMakeFiles/disc.dir/disc/seq/parse.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/parse.cc.o.d"
  "/root/repo/src/disc/seq/sequence.cc" "src/CMakeFiles/disc.dir/disc/seq/sequence.cc.o" "gcc" "src/CMakeFiles/disc.dir/disc/seq/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
