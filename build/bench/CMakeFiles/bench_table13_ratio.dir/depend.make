# Empty dependencies file for bench_table13_ratio.
# This may be replaced when dependencies are built.
