file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_theta.dir/bench_fig10_theta.cc.o"
  "CMakeFiles/bench_fig10_theta.dir/bench_fig10_theta.cc.o.d"
  "bench_fig10_theta"
  "bench_fig10_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
