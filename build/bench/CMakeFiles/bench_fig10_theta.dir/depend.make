# Empty dependencies file for bench_fig10_theta.
# This may be replaced when dependencies are built.
