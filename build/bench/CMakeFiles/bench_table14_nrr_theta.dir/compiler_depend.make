# Empty compiler generated dependencies file for bench_table14_nrr_theta.
# This may be replaced when dependencies are built.
