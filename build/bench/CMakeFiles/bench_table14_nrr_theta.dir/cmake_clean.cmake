file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_nrr_theta.dir/bench_table14_nrr_theta.cc.o"
  "CMakeFiles/bench_table14_nrr_theta.dir/bench_table14_nrr_theta.cc.o.d"
  "bench_table14_nrr_theta"
  "bench_table14_nrr_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_nrr_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
