file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_nrr.dir/bench_table12_nrr.cc.o"
  "CMakeFiles/bench_table12_nrr.dir/bench_table12_nrr.cc.o.d"
  "bench_table12_nrr"
  "bench_table12_nrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_nrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
