# Empty dependencies file for bench_table12_nrr.
# This may be replaced when dependencies are built.
