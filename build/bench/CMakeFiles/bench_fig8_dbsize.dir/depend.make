# Empty dependencies file for bench_fig8_dbsize.
# This may be replaced when dependencies are built.
