file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dbsize.dir/bench_fig8_dbsize.cc.o"
  "CMakeFiles/bench_fig8_dbsize.dir/bench_fig8_dbsize.cc.o.d"
  "bench_fig8_dbsize"
  "bench_fig8_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
