// Crash-safe file writing shared by the report/trace emitters.
//
// WriteFileAtomic writes to "<path>.tmp.<pid>" and renames over the target
// only after the whole payload is on disk, so a crash, a full disk, or an
// injected I/O fault ("io.write" fail point) never leaves a truncated
// BENCH_*.json / trace file behind — the previous contents of `path`, if
// any, survive every failure mode.
#ifndef DISC_COMMON_FILE_UTIL_H_
#define DISC_COMMON_FILE_UTIL_H_

#include <string>

#include "disc/common/status.h"

namespace disc {

/// Atomically replaces `path` with `contents` (write temp + rename).
/// On failure the temp file is removed and `path` is untouched.
/// Fail point: "io.write" (error makes the write fail after the temp file
/// is created, exercising the cleanup path).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Reads all of `path` (binary) into `*contents`; IoError when the file
/// cannot be opened or read.
Status ReadFileToString(const std::string& path, std::string* contents);

}  // namespace disc

#endif  // DISC_COMMON_FILE_UTIL_H_
