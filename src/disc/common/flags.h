// Minimal command-line flag parsing for the benchmark and example binaries.
//
// Accepts flags of the form --name=value or --name value; anything else is
// collected as a positional argument. No registration step: binaries query
// the parsed map with typed getters and defaults.
#ifndef DISC_COMMON_FLAGS_H_
#define DISC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace disc {

/// Parsed command line. See file comment for syntax.
class Flags {
 public:
  Flags() = default;

  /// Parses argv. Unknown flags are kept (queried later or ignored).
  static Flags Parse(int argc, char** argv);

  /// Returns true if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Typed getters with defaults. A malformed value — non-numeric text,
  /// trailing junk ("--slen=2.5x"), or an out-of-range magnitude — is a
  /// usage error: a "flag --name=value: ..." line on stderr, then exit(2)
  /// per the CLI exit-code convention (docs/ROBUSTNESS.md).
  std::string GetString(const std::string& name, const std::string& dflt) const;
  std::int64_t GetInt(const std::string& name, std::int64_t dflt) const;
  double GetDouble(const std::string& name, double dflt) const;
  bool GetBool(const std::string& name, bool dflt) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace disc

#endif  // DISC_COMMON_FLAGS_H_
