// Plain-text table formatting for benchmark output.
//
// Benchmarks print the same rows/series as the paper's tables and figures;
// this helper right-aligns numeric columns and renders a GitHub-style
// markdown table so the output drops straight into EXPERIMENTS.md.
#ifndef DISC_COMMON_TABLE_H_
#define DISC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace disc {

/// Accumulates rows of stringified cells and prints an aligned table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; it is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table as markdown (header, separator, rows).
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Formats a double with the given precision, or "-" for NaN (used for the
  /// paper's empty NRR cells).
  static std::string Num(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace disc

#endif  // DISC_COMMON_TABLE_H_
