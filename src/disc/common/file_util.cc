#include "disc/common/file_util.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#ifdef _WIN32
#include <process.h>
#define DISC_GETPID _getpid
#else
#include <unistd.h>
#define DISC_GETPID getpid
#endif

#include "disc/common/failpoint.h"

namespace disc {

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp." + std::to_string(DISC_GETPID());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    out << contents;
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write to " + tmp + " failed");
    }
  }
  if (DISC_FAILPOINT("io.write") == failpoint::Action::kError) {
    std::remove(tmp.c_str());
    return Status::IoError("failpoint io.write injected while writing " +
                           path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path + " for reading");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read from " + path + " failed");
  *contents = std::move(data);
  return Status::Ok();
}

}  // namespace disc
