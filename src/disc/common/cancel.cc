#include "disc/common/cancel.h"

#include <mutex>

namespace disc {

void RunControl::ReportError(Status status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!has_error_.load(std::memory_order_relaxed)) {
    error_ = std::move(status);
    has_error_.store(true, std::memory_order_release);
  }
}

Status RunControl::ToStatus() const {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (has_error_.load(std::memory_order_relaxed)) return error_;
  }
  if (cancelled()) return Status::Cancelled("run cancelled by token");
  if (deadline_exceeded()) {
    return Status::DeadlineExceeded("run deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace disc
