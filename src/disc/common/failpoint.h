// Named fail points: deterministic fault injection for robustness testing.
//
// A fail point is a named hook compiled into a failure-prone code path
// (I/O, pool tasks, the reduction scratch path). Normally it does nothing
// and costs one relaxed atomic load. Armed — via the DISC_FAILPOINTS
// environment variable or failpoint::Configure() — it fires an action at
// the site:
//
//   DISC_FAILPOINTS=io.read=error;pool.task=delay:10
//
//   name=error      the site fails recoverably (returns a Status / throws
//                   where the site is exception-contained)
//   name=throw      alias of error at throwing sites; sites that return
//                   Status treat it identically
//   name=delay:<ms> the site sleeps <ms> milliseconds, then proceeds
//   name=off        explicit no-op (overrides an earlier entry)
//
// Every firing bumps the "failpoint.triggered.<name>" counter in the obs
// registry, so tests and the CLI smoke (tools/check_failpoints.sh) can
// assert a fault was actually exercised. Registered sites are catalogued
// in docs/ROBUSTNESS.md.
#ifndef DISC_COMMON_FAILPOINT_H_
#define DISC_COMMON_FAILPOINT_H_

#include <atomic>
#include <string>
#include <vector>

#include "disc/common/status.h"

namespace disc {
namespace failpoint {

enum class Action : std::uint8_t {
  kOff = 0,
  kError,  ///< fail the site recoverably
  kDelay,  ///< sleep, then proceed (the sleep happens inside Fire())
};

/// One configured fail point; obtained via Site::Get and cached at the
/// call site by DISC_FAILPOINT. Thread-safe.
class Site {
 public:
  /// Registry lookup (creates the site on first use). The returned
  /// reference lives forever.
  static Site& Get(const std::string& name);

  /// Evaluates the configured action: performs the delay for kDelay, bumps
  /// failpoint.triggered.<name>, and returns what the site should do.
  Action Fire();

  const std::string& name() const { return name_; }

  /// True when the site's action is anything but kOff.
  bool armed() const {
    return action_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(Action::kOff);
  }

 private:
  friend struct Registry;
  explicit Site(std::string name) : name_(std::move(name)) {}

  const std::string name_;
  std::atomic<std::uint8_t> action_{0};  // Action
  std::atomic<std::uint32_t> delay_ms_{0};
};

/// True when any fail point is armed. First call parses DISC_FAILPOINTS
/// from the environment; afterwards this is a single relaxed load, so an
/// unarmed binary pays nothing measurable per DISC_FAILPOINT.
bool AnyArmed();

/// Applies a spec ("a=error;b=delay:10"), on top of whatever is already
/// configured. Unknown names are fine (the site arms when first reached).
/// Malformed specs leave the configuration untouched and return
/// kInvalidArgument with the offending entry.
Status Configure(const std::string& spec);

/// Disarms every fail point (tests; idempotent).
void Reset();

/// Names of currently armed fail points, sorted (diagnostics/banners).
std::vector<std::string> Armed();

}  // namespace failpoint
}  // namespace disc

/// Evaluates to the Action for the named fail point at this call site;
/// Action::kOff (after one relaxed load) when nothing is armed. Name must
/// be a string literal; the site lookup happens once per call site.
#define DISC_FAILPOINT(name)                                          \
  (::disc::failpoint::AnyArmed()                                      \
       ? [] {                                                         \
           static ::disc::failpoint::Site& disc_fp_site_ =            \
               ::disc::failpoint::Site::Get(name);                    \
           return disc_fp_site_.Fire();                               \
         }()                                                          \
       : ::disc::failpoint::Action::kOff)

#endif  // DISC_COMMON_FAILPOINT_H_
