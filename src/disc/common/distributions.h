// Deterministic samplers for the distributions the IBM Quest-style data
// generator needs. Implemented from first principles (inverse transform,
// Box-Muller, Knuth's Poisson) so results are identical across platforms.
#ifndef DISC_COMMON_DISTRIBUTIONS_H_
#define DISC_COMMON_DISTRIBUTIONS_H_

#include <cstdint>

#include "disc/common/rng.h"

namespace disc {

/// Samples Poisson(mean). Uses Knuth's product method; the generator's means
/// are small (< 64) so this is both exact and fast enough.
std::uint32_t SamplePoisson(Rng* rng, double mean);

/// Samples Exponential(1/mean), i.e. with the given mean, via inverse
/// transform.
double SampleExponential(Rng* rng, double mean);

/// Samples Normal(mean, stddev) via Box-Muller (one value per call; the
/// second value is discarded to keep the stream position predictable).
double SampleNormal(Rng* rng, double mean, double stddev);

/// Samples an index in [0, n) from a cumulative weight table `cum` of size n
/// where cum[n-1] is the total weight. Binary search on a uniform draw.
std::uint32_t SampleFromCumulative(Rng* rng, const double* cum,
                                   std::uint32_t n);

}  // namespace disc

#endif  // DISC_COMMON_DISTRIBUTIONS_H_
