// Lightweight invariant checking used throughout the library.
//
// DISC_CHECK is always on (mining bugs silently corrupt results, so the cost
// of a predictable branch is worth it); DISC_DCHECK compiles away in NDEBUG
// builds and guards the expensive structural invariants.
#ifndef DISC_COMMON_CHECK_H_
#define DISC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define DISC_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DISC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DISC_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DISC_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define DISC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define DISC_DCHECK(cond) DISC_CHECK(cond)
#endif

#endif  // DISC_COMMON_CHECK_H_
