#include "disc/common/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace disc {
namespace {

// Malformed flag values are usage errors, not bugs: report which flag and
// what it got, then exit with the CLI convention's usage code
// (docs/ROBUSTNESS.md) instead of aborting with a stack trace.
[[noreturn]] void UsageError(const std::string& name, const std::string& value,
                             const char* what) {
  std::fprintf(stderr, "flag --%s=%s: %s\n", name.c_str(), value.c_str(),
               what);
  std::exit(2);
}

}  // namespace

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "";  // bare flag, boolean true
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& dflt) const {
  const auto it = values_.find(name);
  return it == values_.end() ? dflt : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  char* end = nullptr;
  errno = 0;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  // Trailing junk ("--slen=2x") must not silently truncate to a prefix.
  if (end == it->second.c_str() || *end != '\0') {
    UsageError(name, it->second, "expects an integer");
  }
  if (errno == ERANGE) {
    UsageError(name, it->second, "integer out of range");
  }
  return v;
}

double Flags::GetDouble(const std::string& name, double dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  // Trailing junk ("--slen=2.5x") must not silently truncate to a prefix.
  if (end == it->second.c_str() || *end != '\0') {
    UsageError(name, it->second, "expects a number");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    UsageError(name, it->second, "number out of range");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  UsageError(name, v, "expects a boolean (1/0/true/false/yes/no)");
}

}  // namespace disc
