#include "disc/common/flags.h"

#include <cstdlib>

#include "disc/common/check.h"

namespace disc {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "";  // bare flag, boolean true
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& dflt) const {
  const auto it = values_.find(name);
  return it == values_.end() ? dflt : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  DISC_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                 "integer flag has non-integer value");
  return v;
}

double Flags::GetDouble(const std::string& name, double dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DISC_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                 "double flag has non-numeric value");
  return v;
}

bool Flags::GetBool(const std::string& name, bool dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  DISC_CHECK_MSG(false, "boolean flag has non-boolean value");
  return dflt;
}

}  // namespace disc
