#include "disc/common/table.h"

#include <cmath>
#include <cstdio>

namespace disc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += " ";
      out += std::string(widths[c] - cells[c].size(), ' ');
      out += cells[c];
      out += " |";
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(headers_);
  out += "|";
  for (const std::size_t w : widths) {
    out += std::string(w + 1, '-');
    out += ":|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace disc
