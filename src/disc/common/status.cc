#include "disc/common/status.h"

namespace disc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace disc
