#include "disc/common/thread_pool.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "disc/common/failpoint.h"
#include "disc/obs/metrics.h"
#include "disc/obs/trace.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_pool_tasks, "pool.tasks");
DISC_OBS_COUNTER(g_pool_tasks_dropped, "pool.tasks.dropped");
DISC_OBS_HISTOGRAM(g_queue_wait_us, "pool.queue_wait_us");
// Live pool state for the telemetry sampler / Prometheus exposition. Both
// are set under the queue mutex, which is cold by construction (one update
// per whole-partition task, not per sequence).
DISC_OBS_GAUGE(g_queue_depth, "pool.queue_depth");
DISC_OBS_GAUGE(g_active_workers, "pool.active_workers");

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    DISC_OBS_SET(g_queue_depth, static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

bool ThreadPool::has_error() const {
  return has_error_.load(std::memory_order_acquire);
}

std::exception_ptr ThreadPool::TakeFirstError() {
  std::lock_guard<std::mutex> lock(mu_);
  std::exception_ptr err = std::move(first_error_);
  first_error_ = nullptr;
  has_error_.store(false, std::memory_order_release);
  return err;
}

void ThreadPool::WorkerLoop(std::size_t worker) {
#if DISC_OBS_ENABLED
  obs::Tracer::Global().SetCurrentThreadName("pool-worker-" +
                                             std::to_string(worker));
#endif
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (queue_.empty() && !stop_) {
      // Record how long this worker starved while the run was still in
      // progress (another worker holds in-flight work); idle waits between
      // runs are not interesting, so only time waits with work in flight.
      const bool starving = in_flight_ > 0;
      const auto wait_start = std::chrono::steady_clock::now();
      work_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (starving) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wait_start);
        DISC_OBS_RECORD(g_queue_wait_us,
                        static_cast<std::uint64_t>(waited.count()));
      }
      continue;
    }
    if (queue_.empty() && stop_) return;
    Task task = std::move(queue_.front());
    queue_.pop_front();
    DISC_OBS_SET(g_queue_depth, static_cast<double>(queue_.size()));
    // After a task failure the rest of the batch is drained unexecuted:
    // running on would waste work whose merge the caller is about to
    // discard, and could hide the first (root-cause) exception behind
    // cascading ones.
    if (has_error_.load(std::memory_order_acquire)) {
      DISC_OBS_INC(g_pool_tasks_dropped);
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
      continue;
    }
    ++in_flight_;
    DISC_OBS_SET(g_active_workers, static_cast<double>(in_flight_));
    lock.unlock();
    try {
      DISC_OBS_SPAN("pool/task");
      DISC_OBS_INC(g_pool_tasks);
      if (DISC_FAILPOINT("pool.task") == failpoint::Action::kError) {
        throw std::runtime_error("failpoint pool.task");
      }
      task(worker);
    } catch (...) {
      std::lock_guard<std::mutex> relock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
        has_error_.store(true, std::memory_order_release);
      }
    }
    lock.lock();
    --in_flight_;
    DISC_OBS_SET(g_active_workers, static_cast<double>(in_flight_));
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

std::size_t ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t ResolveThreadCount(std::uint32_t requested) {
  return requested == 0 ? ThreadPool::HardwareThreads()
                        : static_cast<std::size_t>(requested);
}

}  // namespace disc
