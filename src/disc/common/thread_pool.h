// Dependency-free fixed-size thread pool backing the partition-scheduled
// parallel miners (DISC-all, Dynamic DISC-all) and the bench drivers.
//
// Design: one shared FIFO queue under a mutex + condvar. Tasks receive the
// executing worker's index (0 .. threads()-1) so callers can hand each
// worker its own scratch state (counting arrays, second-level partition
// tables) without locking. The scheduler pattern is: sort the work
// largest-first, Submit() everything, Wait().
//
// The queue lock is cold by construction — a task is a whole ⟨λ⟩-partition
// mine, so pops are orders of magnitude rarer than the work they dispatch.
//
// Exception containment: a task that throws does NOT terminate the
// process. The first exception is captured (first_error()), the remaining
// queued tasks are drained unexecuted (counted in "pool.tasks.dropped"),
// and Wait() returns normally — the scheduling caller turns the captured
// failure into a Status and preserves its deterministic merge by treating
// unexecuted tasks exactly like cancelled ones. TakeFirstError() re-arms
// the pool for reuse.
//
// Observability: workers register a "pool-worker-<i>" trace lane, every
// executed task bumps the "pool.tasks" counter inside a "pool/task" span,
// and time a worker spends blocked on an empty queue while tasks are still
// outstanding is recorded in the "pool.queue_wait_us" histogram.
//
// Fail point: "pool.task" fires before each task runs (delay:<ms> stalls
// workers, error/throw makes the task throw — exercising containment).
#ifndef DISC_COMMON_THREAD_POOL_H_
#define DISC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace disc {

/// Fixed-size worker pool. See file comment.
class ThreadPool {
 public:
  /// A unit of work; `worker` is the index of the executing thread.
  using Task = std::function<void(std::size_t worker)>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks start in FIFO order (submit largest-first to
  /// bound tail latency).
  void Submit(Task task);

  /// Blocks until every submitted task has finished or been drained after
  /// a task failure. The pool is reusable afterwards (clear the failure
  /// with TakeFirstError() first).
  void Wait();

  /// True once a task has thrown; sticky until TakeFirstError().
  bool has_error() const;

  /// The first exception a task threw (null if none); clears it, re-arming
  /// the pool to execute tasks again. Call after Wait().
  std::exception_ptr TakeFirstError();

  /// Number of hardware threads; at least 1.
  static std::size_t HardwareThreads();

 private:
  void WorkerLoop(std::size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // Wait(): queue empty and nothing running
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
  std::exception_ptr first_error_;  // guarded by mu_
  std::atomic<bool> has_error_{false};
  std::vector<std::thread> workers_;
};

/// Resolves a MineOptions-style thread request: 0 = hardware concurrency,
/// anything else is taken as-is. Always >= 1.
std::size_t ResolveThreadCount(std::uint32_t requested);

}  // namespace disc

#endif  // DISC_COMMON_THREAD_POOL_H_
