#include "disc/common/failpoint.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "disc/obs/metrics.h"

namespace disc {
namespace failpoint {
namespace {

// Number of sites whose action is not kOff. The fast-path gate: AnyArmed()
// is this (plus the one-time env parse), so an unarmed binary never takes
// the registry mutex.
std::atomic<int> g_armed_count{0};
std::once_flag g_env_once;

struct ParsedEntry {
  std::string name;
  Action action = Action::kOff;
  std::uint32_t delay_ms = 0;
};

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Status ParseSpec(const std::string& spec, std::vector<ParsedEntry>* out) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = Trim(spec.substr(start, end - start));
    start = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' is not name=action");
    }
    ParsedEntry parsed;
    parsed.name = Trim(entry.substr(0, eq));
    const std::string action = Trim(entry.substr(eq + 1));
    if (action == "off") {
      parsed.action = Action::kOff;
    } else if (action == "error" || action == "throw") {
      parsed.action = Action::kError;
    } else if (action.rfind("delay:", 0) == 0) {
      const std::string ms = action.substr(6);
      if (ms.empty()) {
        return Status::InvalidArgument("failpoint '" + parsed.name +
                                       "': delay needs a millisecond count");
      }
      std::uint64_t value = 0;
      for (const char c : ms) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::InvalidArgument("failpoint '" + parsed.name +
                                         "': bad delay '" + ms + "'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        if (value > 60'000) {
          return Status::InvalidArgument("failpoint '" + parsed.name +
                                         "': delay capped at 60000 ms");
        }
      }
      parsed.action = Action::kDelay;
      parsed.delay_ms = static_cast<std::uint32_t>(value);
    } else {
      return Status::InvalidArgument(
          "failpoint '" + parsed.name + "': unknown action '" + action +
          "' (want off, error, throw, or delay:<ms>)");
    }
    out->push_back(std::move(parsed));
    if (end == spec.size()) break;
  }
  return Status::Ok();
}

}  // namespace

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Site>> sites;

  static Registry& Global() {
    static Registry* r = new Registry();  // leaked: sites live forever
    return *r;
  }

  Site& GetLocked(const std::string& name) {
    auto& slot = sites[name];
    if (slot == nullptr) slot.reset(new Site(name));
    return *slot;
  }

  // Applies one parsed entry, keeping g_armed_count in sync.
  void Apply(const ParsedEntry& e) {
    Site& site = GetLocked(e.name);
    const bool was_armed =
        site.action_.load(std::memory_order_relaxed) !=
        static_cast<std::uint8_t>(Action::kOff);
    const bool now_armed = e.action != Action::kOff;
    site.delay_ms_.store(e.delay_ms, std::memory_order_relaxed);
    site.action_.store(static_cast<std::uint8_t>(e.action),
                       std::memory_order_release);
    if (was_armed != now_armed) {
      g_armed_count.fetch_add(now_armed ? 1 : -1,
                              std::memory_order_acq_rel);
    }
  }
};

namespace {

void InitFromEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("DISC_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    std::vector<ParsedEntry> entries;
    const Status status = ParseSpec(env, &entries);
    if (!status.ok()) {
      std::fprintf(stderr, "DISC_FAILPOINTS ignored: %s\n",
                   status.message().c_str());
      return;
    }
    Registry& reg = Registry::Global();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const ParsedEntry& e : entries) reg.Apply(e);
  });
}

}  // namespace

Site& Site::Get(const std::string& name) {
  InitFromEnvOnce();
  Registry& reg = Registry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.GetLocked(name);
}

Action Site::Fire() {
  const Action action =
      static_cast<Action>(action_.load(std::memory_order_acquire));
  if (action == Action::kOff) return Action::kOff;
  obs::MetricsRegistry::Global()
      .counter("failpoint.triggered." + name_)
      ->Increment();
  if (action == Action::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(delay_ms_.load(std::memory_order_relaxed)));
  }
  return action;
}

bool AnyArmed() {
  InitFromEnvOnce();
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

Status Configure(const std::string& spec) {
  InitFromEnvOnce();
  std::vector<ParsedEntry> entries;
  DISC_RETURN_IF_ERROR(ParseSpec(spec, &entries));
  Registry& reg = Registry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const ParsedEntry& e : entries) reg.Apply(e);
  return Status::Ok();
}

void Reset() {
  InitFromEnvOnce();
  Registry& reg = Registry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, site] : reg.sites) {
    ParsedEntry off;
    off.name = name;
    reg.Apply(off);
  }
}

std::vector<std::string> Armed() {
  InitFromEnvOnce();
  Registry& reg = Registry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> out;
  for (const auto& [name, site] : reg.sites) {
    if (site->armed()) out.push_back(name);
  }
  return out;
}

}  // namespace failpoint
}  // namespace disc
