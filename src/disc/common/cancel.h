// Cooperative run control: cancellation tokens and deadlines.
//
// A long DISC-all run must be stoppable — one oversized request cannot be
// allowed to hold the process hostage. Cancellation is *cooperative*: the
// partition-scheduled miners poll a RunControl at partition boundaries
// (cold code, a handful of polls per run), never mid-scan, so every
// pattern emitted before the stop is exact and the partial PatternSet is a
// well-defined comparative-order prefix of the full result (see
// docs/ROBUSTNESS.md for the exact guarantee).
#ifndef DISC_COMMON_CANCEL_H_
#define DISC_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "disc/common/status.h"

namespace disc {

/// Thread-safe cancellation flag shared between a run and its controller.
/// The controller calls RequestCancel() (idempotent); the run polls
/// cancelled() at its checkpoints. CancelAfter(n) arms a *check budget*:
/// the token auto-cancels once n checkpoints have polled it — a
/// deterministic stop point used by tests ("cancel at partition k") and by
/// callers that want work-bounded best-effort mining.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Auto-cancel after `checks` checkpoint polls (0 = cancel at the first
  /// poll). Replaces any previous budget.
  void CancelAfter(std::uint64_t checks) {
    budget_.store(static_cast<std::int64_t>(checks),
                  std::memory_order_release);
  }

  /// One checkpoint poll: consumes a unit of the check budget (if armed)
  /// and returns whether the token is now cancelled.
  bool Poll() {
    if (cancelled()) return true;
    std::int64_t b = budget_.load(std::memory_order_relaxed);
    if (b >= 0 &&
        budget_.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      RequestCancel();
      return true;
    }
    return false;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> budget_{-1};  // < 0 = no budget armed
};

/// Per-run stop state built by Miner::TryMine from MineOptions: bundles the
/// caller's CancelToken (optional) with the run deadline (optional) and
/// records *why* the run stopped. Shared by the scheduling thread and the
/// pool workers; all members are thread-safe.
class RunControl {
 public:
  /// `token` may be null; `deadline_ms` 0 means no deadline.
  RunControl(CancelToken* token, std::uint64_t deadline_ms)
      : token_(token),
        deadline_(deadline_ms == 0
                      ? std::chrono::steady_clock::time_point::max()
                      : std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(deadline_ms)) {}

  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Checkpoint: polls the token and the deadline clock. Returns true once
  /// the run should stop; sticky after the first true.
  bool ShouldStop() {
    if (stopped()) return true;
    if (token_ != nullptr && token_->Poll()) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    if (deadline_ != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= deadline_) {
      deadline_exceeded_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// True once any stop condition has been observed (does not poll).
  bool stopped() const {
    return cancelled() || deadline_exceeded() || !error_ok();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool deadline_exceeded() const {
    return deadline_exceeded_.load(std::memory_order_acquire);
  }

  /// Records a contained failure (first one wins); also stops the run.
  void ReportError(Status status);

  /// The run's final status: first contained error, else cancelled /
  /// deadline exceeded, else OK.
  Status ToStatus() const;

 private:
  bool error_ok() const { return !has_error_.load(std::memory_order_acquire); }

  CancelToken* token_;
  const std::chrono::steady_clock::time_point deadline_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_exceeded_{false};
  std::atomic<bool> has_error_{false};
  mutable std::mutex error_mu_;
  Status error_;  // guarded by error_mu_
};

}  // namespace disc

#endif  // DISC_COMMON_CANCEL_H_
