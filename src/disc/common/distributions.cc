#include "disc/common/distributions.h"

#include <algorithm>
#include <cmath>

#include "disc/common/check.h"

namespace disc {

std::uint32_t SamplePoisson(Rng* rng, double mean) {
  DISC_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  // Knuth: multiply uniforms until the product drops below e^-mean.
  const double limit = std::exp(-mean);
  std::uint32_t k = 0;
  double p = 1.0;
  for (;;) {
    p *= rng->NextDouble();
    if (p <= limit) return k;
    ++k;
    // Guard against pathological means; the generator never asks for more.
    if (k > 100000) return k;
  }
}

double SampleExponential(Rng* rng, double mean) {
  DISC_CHECK(mean > 0.0);
  double u = rng->NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double SampleNormal(Rng* rng, double mean, double stddev) {
  DISC_CHECK(stddev >= 0.0);
  double u1 = rng->NextDouble();
  const double u2 = rng->NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * std::cos(theta);
}

std::uint32_t SampleFromCumulative(Rng* rng, const double* cum,
                                   std::uint32_t n) {
  DISC_CHECK(n > 0);
  const double total = cum[n - 1];
  DISC_CHECK(total > 0.0);
  const double x = rng->NextDouble() * total;
  const double* it = std::upper_bound(cum, cum + n, x);
  std::uint32_t idx = static_cast<std::uint32_t>(it - cum);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace disc
