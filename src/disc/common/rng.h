// Deterministic pseudo-random number generation.
//
// The library never uses <random>'s distribution objects because their output
// is implementation-defined; all sampling is built on top of this generator
// so that a (seed, parameters) pair reproduces the identical database on any
// platform. The generator is xoshiro256** seeded through splitmix64.
#ifndef DISC_COMMON_RNG_H_
#define DISC_COMMON_RNG_H_

#include <cstdint>

namespace disc {

/// Deterministic 64-bit PRNG (xoshiro256**, splitmix64-seeded).
class Rng {
 public:
  /// Seeds the generator. The same seed yields the same stream everywhere.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit value.
  std::uint64_t Next();

  /// Returns an unbiased integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns an integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Returns a double uniformly in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Forks an independent generator; deterministic given this generator's
  /// current state. Useful for giving each customer its own stream.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace disc

#endif  // DISC_COMMON_RNG_H_
