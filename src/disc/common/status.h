// Recoverable error handling: a dependency-free Status / StatusOr<T>.
//
// The library distinguishes two failure regimes:
//   * programmer errors (broken invariants, misuse of internal APIs) keep
//     aborting through DISC_CHECK — a corrupted mining state must never
//     limp on;
//   * environmental and input errors (unreadable files, malformed records,
//     cancelled or deadline-bounded runs) are *recoverable* and travel as
//     Status values so a long-lived process can reject one request without
//     dying. See docs/ROBUSTNESS.md for the taxonomy.
//
// Conventions mirror absl::Status without the dependency: Status is cheap
// to copy in the OK case (no allocation), StatusOr<T> carries either a
// value or a non-OK Status, and the DISC_RETURN_IF_ERROR /
// DISC_ASSIGN_OR_RETURN macros keep call sites linear.
#ifndef DISC_COMMON_STATUS_H_
#define DISC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "disc/common/check.h"

namespace disc {

/// Error taxonomy (docs/ROBUSTNESS.md). Codes are stable — tools and exit
/// code mappings rely on them.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,  ///< caller misuse: bad flag, bad option value
  kDataLoss = 2,         ///< malformed input record / corrupt file contents
  kCancelled = 3,        ///< run stopped by a CancelToken
  kDeadlineExceeded = 4, ///< run stopped by MineOptions::deadline_ms
  kIoError = 5,          ///< file unreadable / write failed
  kInternal = 6,         ///< contained worker failure (exception, failpoint)
};

/// Stable lower-case name of a code ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// An error code plus a human-readable message. OK carries no message.
class Status {
 public:
  /// OK by default.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-OK Status. value() on an error aborts (programmer
/// error); check ok() or use the macros.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value (OK) or from a non-OK Status.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DISC_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    DISC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  const T& value() const {
    DISC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ is engaged
  std::optional<T> value_;
};

}  // namespace disc

/// Propagates a non-OK Status from an expression of type Status.
#define DISC_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::disc::Status disc_status_tmp_ = (expr);        \
    if (!disc_status_tmp_.ok()) return disc_status_tmp_; \
  } while (0)

#define DISC_STATUS_CONCAT_INNER_(a, b) a##b
#define DISC_STATUS_CONCAT_(a, b) DISC_STATUS_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr<T> expression; on error returns the Status, else
/// assigns the value to `lhs` (which may declare a new variable).
#define DISC_ASSIGN_OR_RETURN(lhs, expr)                                  \
  DISC_ASSIGN_OR_RETURN_IMPL_(                                            \
      DISC_STATUS_CONCAT_(disc_statusor_tmp_, __LINE__), lhs, expr)

#define DISC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(*tmp)

#endif  // DISC_COMMON_STATUS_H_
