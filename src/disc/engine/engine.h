// The engine layer: a resident mining service over one loaded database.
//
// An Engine owns the current SequenceDatabase plus a QueryCache of its
// threshold-independent first-level artifacts (core/first_level.h), and
// serves MineRequests through sessions dispatched on an internal
// ThreadPool. The point of residency: a minsup sweep over one database —
// the shape of every experiment in the paper — pays for the item-support
// scan, the ⟨λ⟩-partition memberships, and the per-partition alphabets
// exactly once; each subsequent query starts at partition mining
// ("disc.cache.hits"). Pattern output is byte-identical with the cache on
// or off, at any thread count (tests/engine_test.cc).
//
// Every entry point drives this layer: the seqmine CLI is a one-shot
// client (examples/seqmine.cpp), seqmined speaks the line protocol over it
// (server/server.h), and bench_server measures the cold-vs-cached gap.
//
// Concurrency model: LoadSpmf/LoadDatabase swap the database under a
// mutex; a session snapshots the shared_ptr at submit time, so an
// in-flight mine keeps its database alive and consistent even while a new
// one loads. The QueryCache is an LRU keyed by database fingerprint, so a
// session racing a load simply misses — loads never invalidate it, and
// alternating between a few resident databases keeps each one's
// first-level state warm.
#ifndef DISC_ENGINE_ENGINE_H_
#define DISC_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "disc/algo/miner.h"
#include "disc/common/cancel.h"
#include "disc/common/status.h"
#include "disc/common/thread_pool.h"
#include "disc/engine/query_cache.h"
#include "disc/seq/database.h"
#include "disc/seq/io.h"

namespace disc {
namespace engine {

/// No CancelAfter budget requested (MineRequest::cancel_after).
inline constexpr std::uint64_t kNoCancelBudget = ~std::uint64_t{0};

/// One mining query against the engine's resident database.
struct MineRequest {
  /// Miner name (algo/miner.h factory). Unknown names are rejected at
  /// Submit with kInvalidArgument.
  std::string algo = "disc-all";

  /// Mining parameters. `cancel` is ignored — every session owns its own
  /// CancelToken so Session::Cancel() works without caller plumbing.
  MineOptions options;

  /// When > 0, a relative minimum support: the engine resolves it to
  /// options.min_support_count against the database snapshot it mines
  /// (MineOptions::CountForFraction), so fraction and snapshot can never
  /// disagree. 0 uses options.min_support_count as given.
  double min_support = 0.0;

  /// When not kNoCancelBudget, arms the session token's checkpoint budget
  /// (CancelToken::CancelAfter): the run self-cancels after this many
  /// polls — a deterministic partial-result stop, used by the protocol's
  /// --cancel-after option and the byte-prefix regression tests.
  std::uint64_t cancel_after = kNoCancelBudget;
};

/// Where a session's first-level state came from.
enum class CacheOutcome {
  kNone,  ///< cache disabled or the miner has no first-level seam
  kMiss,  ///< built this query (and cached for the next)
  kHit,   ///< reused the cached state
};

/// Stable lower-case name ("none", "miss", "hit") for framing and logs.
const char* CacheOutcomeName(CacheOutcome outcome);

/// A finished session's result.
struct MineResponse {
  PatternSet patterns;
  Status status;
  MineStats stats;
  CacheOutcome cache = CacheOutcome::kNone;
  /// Resolved absolute support threshold the run actually used.
  std::uint32_t delta = 0;
  /// Wall-clock time of the mine itself (excludes queue wait).
  double wall_ms = 0.0;

  /// True when the run stopped early: `patterns` is a well-defined
  /// comparative-order byte-prefix of the full result
  /// (docs/ROBUSTNESS.md).
  bool partial() const {
    return status.code() == StatusCode::kCancelled ||
           status.code() == StatusCode::kDeadlineExceeded;
  }
};

/// Handle to one submitted mine. Created by Engine::Submit; shared between
/// the caller and the engine worker. All methods are thread-safe.
class Session {
 public:
  std::uint64_t id() const { return id_; }
  const std::string& algo() const { return algo_; }

  /// Requests a cooperative stop; the run finishes with kCancelled and a
  /// byte-prefix partial result. Idempotent; safe after completion.
  void Cancel() { token_.RequestCancel(); }

  bool done() const;
  /// Blocks until the session finishes.
  void Wait() const;
  /// Blocks up to `ms` milliseconds; true when the session finished.
  bool WaitFor(std::uint64_t ms) const;

  /// The result; only valid once done() (DISC_CHECK).
  const MineResponse& response() const;

 private:
  friend class Engine;
  Session(std::uint64_t id, std::string algo)
      : id_(id), algo_(std::move(algo)) {}

  void Finish(MineResponse response);

  const std::uint64_t id_;
  const std::string algo_;
  CancelToken token_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;          // guarded by mu_
  MineResponse response_;      // written once, before done_
};

/// What a load ingested (server framing, CLI banners).
struct LoadInfo {
  std::size_t sequences = 0;
  std::uint64_t total_items = 0;
  Item max_item = 0;
  std::size_t skipped = 0;    ///< malformed lines dropped (permissive mode)
  std::string first_error;    ///< diagnostic of the first skipped line
};

/// Resident mining engine. See file comment. Thread-safe; the destructor
/// drains in-flight sessions.
class Engine {
 public:
  struct Config {
    /// Worker threads serving sessions (concurrent *queries*; each query's
    /// own mining parallelism is MineOptions::threads).
    std::uint32_t session_threads = 2;
    /// When false, sessions never consult the QueryCache — the one-shot
    /// CLI path, where building alphabets for a single query is pure
    /// overhead. Output is byte-identical either way.
    bool enable_cache = true;
    /// QueryCache LRU capacity: how many databases keep warm first-level
    /// state at once (>= 1; see query_cache.h).
    std::uint32_t cache_slots = 4;
  };

  Engine() : Engine(Config{}) {}
  explicit Engine(const Config& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Loads an SPMF file as the resident database. kIoError / kDataLoss on
  /// failure (the previous database stays). The QueryCache is untouched:
  /// slots are fingerprint-keyed, so the old database's state can never
  /// serve the new one, and re-loading a cached database hits warm state.
  StatusOr<LoadInfo> LoadSpmf(const std::string& path,
                              const ParseOptions& options = {});

  /// Loads either on-disk format by path: ".dsa" arena files are mapped
  /// through seq/storage.h (validated, O(1) in database size, and the
  /// file's verified content hash pre-warms the QueryCache fingerprint);
  /// anything else parses as SPMF text. `options` applies to the SPMF
  /// path only — a .dsa file is all-or-nothing.
  StatusOr<LoadInfo> LoadPath(const std::string& path,
                              const ParseOptions& options = {});

  /// Installs an already-built database (tests, generators).
  LoadInfo LoadDatabase(SequenceDatabase db);

  /// The resident database (null before the first load). Snapshots are
  /// stable: a later load swaps the engine's pointer, never mutates.
  std::shared_ptr<const SequenceDatabase> database() const;

  /// Enqueues a mine. kInvalidArgument on an unknown algo, an invalid
  /// min_support fraction, or when no database is loaded.
  StatusOr<std::shared_ptr<Session>> Submit(const MineRequest& request);

  /// Blocking convenience: Submit + Wait. Submit failures come back as the
  /// response status (empty patterns).
  MineResponse Mine(const MineRequest& request);

  /// Drops the cached first-level state (bench cold runs).
  void InvalidateCache() { cache_.Invalidate(); }

  const QueryCache& cache() const { return cache_; }
  /// Sessions submitted / databases loaded over the engine's lifetime, and
  /// sessions currently queued or running. Live even with obs compiled
  /// out (mirrors "disc.engine.queries" / "disc.engine.loads").
  std::uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  std::uint64_t loads() const {
    return loads_.load(std::memory_order_relaxed);
  }
  std::uint64_t active() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  MineResponse RunSession(const std::shared_ptr<const SequenceDatabase>& db,
                          const std::shared_ptr<Miner>& miner,
                          MineOptions options);
  LoadInfo Install(SequenceDatabase db, std::size_t skipped);

  const Config config_;
  QueryCache cache_;

  mutable std::mutex db_mu_;
  std::shared_ptr<const SequenceDatabase> db_;  // guarded by db_mu_

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> active_{0};

  // Last member: destroyed first, so the pool drains in-flight sessions
  // before any other engine state goes away.
  ThreadPool pool_;
};

}  // namespace engine
}  // namespace disc

#endif  // DISC_ENGINE_ENGINE_H_
