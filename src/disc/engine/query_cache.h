// QueryCache: the engine's store for threshold-independent mining
// artifacts (core/first_level.h), a small fingerprint-keyed LRU.
//
// PR 8's single slot matched an engine that owned one resident database;
// the socket transport (server/transport.h) turns `load` into something
// many clients do, and two clients alternating between databases would
// thrash a single slot on every query. A handful of LRU slots (default 4,
// Engine::Config::cache_slots) absorbs that churn. Each slot is keyed by
// its database's fingerprint (FirstLevelState::Matches), so a stale slot
// can never leak into a mismatched run — it just misses and rebuilds; a
// load therefore does NOT invalidate the cache, and re-loading a recently
// served database hits warm state.
//
// Thread safety: GetOrBuild is serialized by a mutex (a build runs under
// it, so concurrent sessions asking for the same state block and then hit
// — building twice would waste the exact work the cache exists to save).
// The hit/miss/byte/eviction accessors are lock-free local atomics, live
// even when the metrics registry is compiled out; the same events also
// land on the "disc.cache.hits" / "disc.cache.misses" /
// "disc.cache.evictions" counters and the "disc.cache.bytes" gauge for
// the exposition path (docs/OBSERVABILITY.md).
#ifndef DISC_ENGINE_QUERY_CACHE_H_
#define DISC_ENGINE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "disc/core/first_level.h"
#include "disc/seq/database.h"

namespace disc {
namespace engine {

/// Fingerprint-keyed LRU of FirstLevelState. See file comment.
class QueryCache {
 public:
  /// `capacity` slots (clamped to >= 1). The default suits a few resident
  /// databases; each slot holds one database's first-level state.
  explicit QueryCache(std::uint32_t capacity = 4);
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the cached state whose fingerprint matches `db` (a hit),
  /// otherwise builds, caches (evicting the least-recently-used slot when
  /// full), and returns a fresh one (a miss). `hit` (optional) reports
  /// which happened.
  std::shared_ptr<const FirstLevelState> GetOrBuild(const SequenceDatabase& db,
                                                    bool* hit = nullptr);

  /// Drops every slot. Outstanding shared_ptrs stay valid; the next
  /// GetOrBuild misses. Not counted as evictions (nothing was displaced
  /// by competing state). Retained for tests and explicit resets — a
  /// database load does not need it (stale fingerprints never match).
  void Invalidate();

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Resident bytes across all occupied slots (0 when empty).
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// LRU slots displaced to make room (capacity pressure only).
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Occupied slots (<= capacity()).
  std::uint32_t slots() const {
    return slots_.load(std::memory_order_relaxed);
  }
  std::uint32_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::shared_ptr<const FirstLevelState> state;
    std::uint64_t last_used = 0;  // tick_ stamp; smallest = LRU victim
  };

  void UpdateBytes();  // recompute bytes_ from slots (holding mu_)

  const std::uint32_t capacity_;
  std::mutex mu_;
  std::vector<Slot> lru_;   // guarded by mu_; size <= capacity_
  std::uint64_t tick_ = 0;  // guarded by mu_
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint32_t> slots_{0};
};

}  // namespace engine
}  // namespace disc

#endif  // DISC_ENGINE_QUERY_CACHE_H_
