// QueryCache: the engine's slot for threshold-independent mining
// artifacts (core/first_level.h) of the currently loaded database.
//
// One slot suffices: the engine owns exactly one resident database at a
// time, and a load replaces it. The cache is keyed by the database's
// fingerprint (FirstLevelState::Matches), so a stale slot can never leak
// into a mismatched run — it just misses and rebuilds.
//
// Thread safety: GetOrBuild is serialized by a mutex (a build runs under
// it, so concurrent sessions asking for the same state block and then hit
// — building twice would waste the exact work the cache exists to save).
// The hit/miss/byte accessors are lock-free local atomics, live even when
// the metrics registry is compiled out; the same events also land on the
// "disc.cache.hits" / "disc.cache.misses" counters and the
// "disc.cache.bytes" gauge for the exposition path (docs/OBSERVABILITY.md).
#ifndef DISC_ENGINE_QUERY_CACHE_H_
#define DISC_ENGINE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "disc/core/first_level.h"
#include "disc/seq/database.h"

namespace disc {
namespace engine {

/// Single-slot cache of one database's FirstLevelState. See file comment.
class QueryCache {
 public:
  QueryCache() = default;
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the cached state when it matches `db` (a hit), otherwise
  /// builds, caches, and returns a fresh one (a miss). `hit` (optional)
  /// reports which happened.
  std::shared_ptr<const FirstLevelState> GetOrBuild(const SequenceDatabase& db,
                                                    bool* hit = nullptr);

  /// Drops the slot (a new database was loaded). Outstanding shared_ptrs
  /// stay valid; the next GetOrBuild misses.
  void Invalidate();

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Resident bytes of the cached slot (0 when empty).
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::shared_ptr<const FirstLevelState> state_;  // guarded by mu_
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace engine
}  // namespace disc

#endif  // DISC_ENGINE_QUERY_CACHE_H_
