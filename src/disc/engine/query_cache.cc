#include "disc/engine/query_cache.h"

#include "disc/obs/metrics.h"

namespace disc {
namespace engine {

DISC_OBS_COUNTER(g_cache_hits, "disc.cache.hits");
DISC_OBS_COUNTER(g_cache_misses, "disc.cache.misses");
DISC_OBS_GAUGE(g_cache_bytes, "disc.cache.bytes");

std::shared_ptr<const FirstLevelState> QueryCache::GetOrBuild(
    const SequenceDatabase& db, bool* hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != nullptr && state_->Matches(db)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    DISC_OBS_INC(g_cache_hits);
    if (hit != nullptr) *hit = true;
    return state_;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  DISC_OBS_INC(g_cache_misses);
  if (hit != nullptr) *hit = false;
  state_ = BuildFirstLevelState(db);
  const std::uint64_t bytes = state_->SizeBytes();
  bytes_.store(bytes, std::memory_order_relaxed);
  DISC_OBS_SET(g_cache_bytes, static_cast<double>(bytes));
  return state_;
}

void QueryCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  state_.reset();
  bytes_.store(0, std::memory_order_relaxed);
  DISC_OBS_SET(g_cache_bytes, 0.0);
}

}  // namespace engine
}  // namespace disc
