#include "disc/engine/query_cache.h"

#include <algorithm>

#include "disc/obs/metrics.h"

namespace disc {
namespace engine {

DISC_OBS_COUNTER(g_cache_hits, "disc.cache.hits");
DISC_OBS_COUNTER(g_cache_misses, "disc.cache.misses");
DISC_OBS_COUNTER(g_cache_evictions, "disc.cache.evictions");
DISC_OBS_GAUGE(g_cache_bytes, "disc.cache.bytes");

QueryCache::QueryCache(std::uint32_t capacity)
    : capacity_(std::max<std::uint32_t>(capacity, 1)) {}

void QueryCache::UpdateBytes() {
  std::uint64_t total = 0;
  for (const Slot& slot : lru_) total += slot.state->SizeBytes();
  bytes_.store(total, std::memory_order_relaxed);
  slots_.store(static_cast<std::uint32_t>(lru_.size()),
               std::memory_order_relaxed);
  DISC_OBS_SET(g_cache_bytes, static_cast<double>(total));
}

std::shared_ptr<const FirstLevelState> QueryCache::GetOrBuild(
    const SequenceDatabase& db, bool* hit) {
  std::lock_guard<std::mutex> lock(mu_);
  // Linear scan: capacity is a handful of slots, and each probe is one
  // fingerprint comparison — a map would cost more than it saves. The
  // content hash is one O(n) pass, paid once per query, not per slot.
  const std::uint64_t hash = FirstLevelState::ContentHash(db);
  for (Slot& slot : lru_) {
    if (slot.state->Matches(db, hash)) {
      slot.last_used = ++tick_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      DISC_OBS_INC(g_cache_hits);
      if (hit != nullptr) *hit = true;
      return slot.state;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  DISC_OBS_INC(g_cache_misses);
  if (hit != nullptr) *hit = false;
  std::shared_ptr<const FirstLevelState> built = BuildFirstLevelState(db);
  if (lru_.size() >= capacity_) {
    auto victim = std::min_element(
        lru_.begin(), lru_.end(), [](const Slot& a, const Slot& b) {
          return a.last_used < b.last_used;
        });
    *victim = Slot{built, ++tick_};
    evictions_.fetch_add(1, std::memory_order_relaxed);
    DISC_OBS_INC(g_cache_evictions);
  } else {
    lru_.push_back(Slot{built, ++tick_});
  }
  UpdateBytes();
  return built;
}

void QueryCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  bytes_.store(0, std::memory_order_relaxed);
  slots_.store(0, std::memory_order_relaxed);
  DISC_OBS_SET(g_cache_bytes, 0.0);
}

}  // namespace engine
}  // namespace disc
