#include "disc/engine/engine.h"

#include <chrono>

#include "disc/common/check.h"
#include "disc/core/first_level.h"
#include "disc/obs/metrics.h"
#include "disc/seq/storage.h"

namespace disc {
namespace engine {

DISC_OBS_COUNTER(g_engine_queries, "disc.engine.queries");
DISC_OBS_COUNTER(g_engine_loads, "disc.engine.loads");

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
  }
  return "none";
}

bool Session::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void Session::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
}

bool Session::WaitFor(std::uint64_t ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(ms),
                      [this] { return done_; });
}

const MineResponse& Session::response() const {
  std::lock_guard<std::mutex> lock(mu_);
  DISC_CHECK_MSG(done_, "Session::response() before done()");
  return response_;
}

void Session::Finish(MineResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    response_ = std::move(response);
    done_ = true;
  }
  cv_.notify_all();
}

Engine::Engine(const Config& config)
    : config_(config),
      cache_(config.cache_slots),
      pool_(ResolveThreadCount(config.session_threads)) {}

Engine::~Engine() {
  // pool_ is the first member destroyed; its destructor drains every
  // queued and running session while the rest of the engine is intact.
}

StatusOr<LoadInfo> Engine::LoadSpmf(const std::string& path,
                                    const ParseOptions& options) {
  ParseReport report;
  auto db = TryLoadSpmf(path, options, &report);
  if (!db.ok()) return db.status();
  LoadInfo info = Install(std::move(*db), report.skipped);
  info.first_error = report.first_error;
  return info;
}

StatusOr<LoadInfo> Engine::LoadPath(const std::string& path,
                                    const ParseOptions& options) {
  if (!IsDsaPath(path)) return LoadSpmf(path, options);
  auto db = TryLoadDsa(path);
  if (!db.ok()) return db.status();
  return Install(std::move(*db), 0);
}

LoadInfo Engine::LoadDatabase(SequenceDatabase db) {
  return Install(std::move(db), 0);
}

LoadInfo Engine::Install(SequenceDatabase db, std::size_t skipped) {
  auto shared = std::make_shared<const SequenceDatabase>(std::move(db));
  LoadInfo info;
  info.sequences = shared->size();
  info.total_items = shared->TotalItems();
  info.max_item = shared->max_item();
  info.skipped = skipped;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db_ = std::move(shared);
  }
  // In-flight sessions keep their snapshot; only future queries see the
  // new database. The cache is NOT invalidated: its slots are keyed by
  // database fingerprint, so the replaced database's state can never
  // match a query against the new one — and stays warm in case the old
  // database is loaded again (query_cache.h).
  loads_.fetch_add(1, std::memory_order_relaxed);
  DISC_OBS_INC(g_engine_loads);
  return info;
}

std::shared_ptr<const SequenceDatabase> Engine::database() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_;
}

StatusOr<std::shared_ptr<Session>> Engine::Submit(const MineRequest& request) {
  auto miner = TryCreateMiner(request.algo);
  if (!miner.ok()) return miner.status();

  std::shared_ptr<const SequenceDatabase> db = database();
  if (db == nullptr) {
    return Status::InvalidArgument("no database loaded (use `load` first)");
  }

  MineOptions options = request.options;
  if (request.min_support > 0.0) {
    if (request.min_support > 1.0) {
      return Status::InvalidArgument("min_support must be in (0, 1]");
    }
    options.min_support_count =
        MineOptions::CountForFraction(db->size(), request.min_support);
  }
  if (options.min_support_count == 0) {
    return Status::InvalidArgument("min_support_count must be >= 1");
  }

  auto session = std::shared_ptr<Session>(
      new Session(next_id_.fetch_add(1, std::memory_order_relaxed),
                  (*miner)->name()));
  // The session's own token replaces any caller token so Cancel() and
  // cancel_after always reach the run.
  options.cancel = &session->token_;
  if (request.cancel_after != kNoCancelBudget) {
    session->token_.CancelAfter(request.cancel_after);
  }

  queries_.fetch_add(1, std::memory_order_relaxed);
  DISC_OBS_INC(g_engine_queries);
  active_.fetch_add(1, std::memory_order_relaxed);

  // Capture by value (shared_ptr: ThreadPool::Task is a copyable
  // std::function): the task owns its database snapshot and miner
  // outright, so a later load can't pull state out from under a running
  // mine.
  std::shared_ptr<Miner> miner_shared(std::move(*miner));
  pool_.Submit([this, session, db, miner_shared, options](std::size_t) {
    // TryMine contains its own failures; this catch covers the engine-side
    // work around it (cache build allocation, ...) so a waiter can never
    // hang on a session that died before its response was published.
    MineResponse response;
    try {
      response = RunSession(db, miner_shared, options);
    } catch (const std::exception& e) {
      response.status =
          Status::Internal(std::string("session failed: ") + e.what());
    }
    // Decrement before Finish: a waiter woken by the response must already
    // see this session gone from active().
    active_.fetch_sub(1, std::memory_order_relaxed);
    session->Finish(std::move(response));
  });
  return session;
}

MineResponse Engine::RunSession(
    const std::shared_ptr<const SequenceDatabase>& db,
    const std::shared_ptr<Miner>& miner, MineOptions options) {
  MineResponse response;
  response.delta = options.min_support_count;

  if (config_.enable_cache) {
    if (auto* consumer = dynamic_cast<FirstLevelConsumer*>(miner.get())) {
      bool hit = false;
      consumer->ProvideFirstLevel(cache_.GetOrBuild(*db, &hit));
      response.cache = hit ? CacheOutcome::kHit : CacheOutcome::kMiss;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  MineResult result = miner->TryMine(*db, options);
  response.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  response.patterns = std::move(result.patterns);
  response.status = std::move(result.status);
  response.stats = miner->last_stats();
  return response;
}

MineResponse Engine::Mine(const MineRequest& request) {
  auto session = Submit(request);
  if (!session.ok()) {
    MineResponse response;
    response.status = session.status();
    return response;
  }
  (*session)->Wait();
  return (*session)->response();
}

}  // namespace engine
}  // namespace disc
