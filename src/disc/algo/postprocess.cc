#include "disc/algo/postprocess.h"

#include <map>
#include <vector>

#include "disc/seq/containment.h"

namespace disc {
namespace {

// Buckets patterns by length, ascending, for superset probing.
std::map<std::uint32_t, std::vector<const Sequence*>> ByLength(
    const PatternSet& patterns,
    std::map<const Sequence*, std::uint32_t>* supports) {
  std::map<std::uint32_t, std::vector<const Sequence*>> buckets;
  for (const auto& [p, sup] : patterns) {
    buckets[p.Length()].push_back(&p);
    if (supports != nullptr) supports->emplace(&p, sup);
  }
  return buckets;
}

}  // namespace

PatternSet MaximalPatterns(const PatternSet& patterns) {
  PatternSet out;
  const auto buckets = ByLength(patterns, nullptr);
  for (const auto& [len, group] : buckets) {
    for (const Sequence* p : group) {
      bool dominated = false;
      // Only strictly longer patterns can strictly contain p.
      for (auto it = buckets.upper_bound(len);
           it != buckets.end() && !dominated; ++it) {
        for (const Sequence* super : it->second) {
          if (Contains(*super, *p)) {
            dominated = true;
            break;
          }
        }
      }
      if (!dominated) out.Add(*p, patterns.SupportOf(*p));
    }
  }
  return out;
}

PatternSet ClosedPatterns(const PatternSet& patterns) {
  PatternSet out;
  std::map<const Sequence*, std::uint32_t> supports;
  const auto buckets = ByLength(patterns, &supports);
  for (const auto& [len, group] : buckets) {
    for (const Sequence* p : group) {
      const std::uint32_t sup = supports[p];
      bool absorbed = false;
      for (auto it = buckets.upper_bound(len);
           it != buckets.end() && !absorbed; ++it) {
        for (const Sequence* super : it->second) {
          if (supports[super] == sup && Contains(*super, *p)) {
            absorbed = true;
            break;
          }
        }
      }
      if (!absorbed) out.Add(*p, sup);
    }
  }
  return out;
}

PatternSummary Summarize(const PatternSet& patterns) {
  PatternSummary s;
  s.total = patterns.size();
  s.maximal = MaximalPatterns(patterns).size();
  s.closed = ClosedPatterns(patterns).size();
  s.max_length = patterns.MaxLength();
  for (const auto& [p, sup] : patterns) {
    (void)p;
    if (sup > s.max_support) s.max_support = sup;
  }
  return s;
}

}  // namespace disc
