#include "disc/algo/hash_tree.h"

#include "disc/common/check.h"
#include "disc/seq/containment.h"

namespace disc {

CandidateHashTree::CandidateHashTree(const std::vector<Sequence>* candidates,
                                     std::uint32_t fanout,
                                     std::uint32_t leaf_capacity)
    : candidates_(candidates),
      fanout_(fanout),
      leaf_capacity_(leaf_capacity),
      root_(std::make_unique<Node>()) {
  DISC_CHECK(candidates_ != nullptr);
  DISC_CHECK(fanout_ >= 2 && fanout_ <= 64);  // bucket bitmask width
  DISC_CHECK(leaf_capacity_ >= 1);
  if (!candidates_->empty()) {
    candidate_length_ = (*candidates_)[0].Length();
  }
  for (std::uint32_t id = 0; id < candidates_->size(); ++id) {
    DISC_CHECK_MSG((*candidates_)[id].Length() == candidate_length_,
                   "hash tree requires equal-length candidates");
    Insert(root_.get(), 0, id);
  }
}

void CandidateHashTree::Insert(Node* node, std::uint32_t depth,
                               std::uint32_t id) {
  if (!node->leaf) {
    const Item x = (*candidates_)[id].ItemAt(depth);
    auto& child = node->children[Bucket(x)];
    if (child == nullptr) {
      child = std::make_unique<Node>();
      ++num_nodes_;
    }
    Insert(child.get(), depth + 1, id);
    return;
  }
  node->candidate_ids.push_back(id);
  // Split a full leaf while there are items left to hash on.
  if (node->candidate_ids.size() > leaf_capacity_ &&
      depth < candidate_length_) {
    Split(node, depth);
  }
}

void CandidateHashTree::Split(Node* node, std::uint32_t depth) {
  std::vector<std::uint32_t> ids = std::move(node->candidate_ids);
  node->candidate_ids.clear();
  node->leaf = false;
  node->children.resize(fanout_);
  for (const std::uint32_t id : ids) Insert(node, depth, id);
}

void CandidateHashTree::CountSupports(SequenceView s,
                                      std::vector<std::uint32_t>* counts)
    const {
  DISC_CHECK(counts->size() == candidates_->size());
  if (candidates_->empty() || s.Length() < candidate_length_) return;
  std::vector<std::uint8_t> tested(candidates_->size(), 0);
  Visit(root_.get(), 0, s, 0, counts, &tested);
}

void CandidateHashTree::Visit(const Node* node, std::uint32_t depth,
                              SequenceView s, std::uint32_t from_pos,
                              std::vector<std::uint32_t>* counts,
                              std::vector<std::uint8_t>* tested) const {
  if (node->leaf) {
    // Exact verification; `tested` guards against multi-path revisits.
    for (const std::uint32_t id : node->candidate_ids) {
      if ((*tested)[id]) continue;
      (*tested)[id] = 1;
      if (Contains(s, (*candidates_)[id])) ++(*counts)[id];
    }
    return;
  }
  // Branch on the remaining items of s, but visit each hash bucket only
  // once — at the earliest position producing it. An earlier branch point
  // dominates any later one (its remaining suffix is a superset), so this
  // stays complete while bounding the traversal to one visit per child.
  const std::uint32_t remaining = candidate_length_ - depth;
  if (s.Length() < from_pos + remaining) return;
  const std::uint32_t last_start = s.Length() - remaining;
  std::uint64_t visited = 0;
  const std::uint64_t full =
      fanout_ >= 64 ? ~0ull : (1ull << fanout_) - 1;
  for (std::uint32_t p = from_pos; p <= last_start; ++p) {
    const std::uint32_t b = Bucket(s.ItemAt(p));
    if ((visited >> b) & 1u) continue;
    visited |= 1ull << b;
    const Node* child = node->children[b].get();
    if (child != nullptr) Visit(child, depth + 1, s, p + 1, counts, tested);
    if (visited == full) break;  // all buckets seen
  }
}

}  // namespace disc
