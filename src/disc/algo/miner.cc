#include "disc/algo/miner.h"

#include <cmath>
#include <exception>

#include "disc/algo/gsp.h"
#include "disc/algo/prefixspan.h"
#include "disc/algo/spade.h"
#include "disc/algo/spam.h"
#include "disc/common/check.h"
#include "disc/common/timer.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"
#include "disc/obs/trace.h"

namespace disc {

MineResult Miner::TryMine(const SequenceDatabase& db,
                          const MineOptions& options) {
  MineResult result;
  stats_ = MineStats{};
  stats_.miner = name();
  stats_.db_sequences = db.size();
  status_ = Status::Ok();
  if (options.min_support_count < 1) {
    status_ = Status::InvalidArgument(
        "min_support_count (delta) must be >= 1");
    result.status = status_;
    return result;
  }

  RunControl ctl(options.cancel, options.deadline_ms);
  ctl_ = &ctl;
#if DISC_OBS_ENABLED
  telemetry_ = obs::RunRegistry::Global().Begin(name(), db.size());
#endif
  obs::StatsHarvest harvest;
  obs::ScopedSpan span("mine/" + name());
  Timer timer;
  try {
    result.patterns = DoMine(db, options);
  } catch (const std::exception& e) {
    // A miner bug or an injected fault escaped containment; surface it as
    // a recoverable Status rather than terminating the process. The
    // partial patterns gathered so far are discarded — without the
    // partition-boundary bookkeeping there is no exactness guarantee.
    ctl.ReportError(
        Status::Internal(std::string("mining failed: ") + e.what()));
    result.patterns = PatternSet();
  }
  ctl_ = nullptr;
  stats_.wall_seconds = timer.Seconds();
  stats_.num_patterns = result.patterns.size();
  stats_.max_length = result.patterns.MaxLength();
  stats_.cancelled = ctl.cancelled();
  stats_.deadline_exceeded = ctl.deadline_exceeded();
  harvest.Finish(&stats_);
#if DISC_OBS_ENABLED
  if (telemetry_ != nullptr) {
    // When the TelemetrySampler observed this run, its per-run high-water
    // mark replaces the process-lifetime VmHWM the harvest recorded — that
    // peak is monotone across runs and misattributes earlier, larger runs.
    if (telemetry_->rss_sampled()) {
      stats_.peak_rss_bytes = telemetry_->rss_high_water_bytes();
    }
    obs::RunRegistry::Global().Finish(telemetry_, stats_.num_patterns,
                                      stats_.wall_seconds, stats_.cancelled,
                                      stats_.deadline_exceeded);
    telemetry_ = nullptr;
  }
#endif
  status_ = ctl.ToStatus();
  result.status = status_;
  return result;
}

PatternSet Miner::Mine(const SequenceDatabase& db, const MineOptions& options) {
  MineResult result = TryMine(db, options);
  // Misuse keeps the historical loud-abort contract on this surface;
  // environmental/stop statuses are reported via last_status() alongside
  // the (partial) patterns.
  DISC_CHECK_MSG(result.status.code() != StatusCode::kInvalidArgument,
                 result.status.message().c_str());
  return std::move(result.patterns);
}

std::uint32_t MineOptions::CountForFraction(std::size_t db_size,
                                            double fraction) {
  DISC_CHECK(fraction > 0.0 && fraction <= 1.0);
  const double raw = fraction * static_cast<double>(db_size);
  std::uint32_t count = static_cast<std::uint32_t>(std::ceil(raw - 1e-9));
  if (count < 1) count = 1;
  return count;
}

StatusOr<std::unique_ptr<Miner>> TryCreateMiner(const std::string& name) {
  std::unique_ptr<Miner> miner;
  if (name == "prefixspan") {
    miner = std::make_unique<PrefixSpan>(PrefixSpan::Projection::kPhysical);
  } else if (name == "pseudo") {
    miner = std::make_unique<PrefixSpan>(PrefixSpan::Projection::kPseudo);
  } else if (name == "gsp") {
    miner = std::make_unique<Gsp>();
  } else if (name == "spade") {
    miner = std::make_unique<Spade>();
  } else if (name == "spam") {
    miner = std::make_unique<Spam>();
  } else if (name == "disc-all") {
    miner = std::make_unique<DiscAll>();
  } else if (name == "disc-all-nobilevel") {
    DiscAll::Config config;
    config.bilevel = false;
    miner = std::make_unique<DiscAll>(config);
  } else if (name == "dynamic-disc-all") {
    miner = std::make_unique<DynamicDiscAll>();
  } else {
    return Status::InvalidArgument("unknown miner: " + name);
  }
  return miner;
}

std::unique_ptr<Miner> CreateMiner(const std::string& name) {
  auto result = TryCreateMiner(name);
  DISC_CHECK_MSG(result.ok(), result.status().message().c_str());
  return std::move(*result);
}

std::vector<std::string> AllMinerNames() {
  return {"prefixspan", "pseudo",           "gsp",
          "spade",      "spam",             "disc-all",
          "disc-all-nobilevel", "dynamic-disc-all"};
}

}  // namespace disc
