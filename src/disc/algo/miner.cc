#include "disc/algo/miner.h"

#include <cmath>

#include "disc/algo/gsp.h"
#include "disc/algo/prefixspan.h"
#include "disc/algo/spade.h"
#include "disc/algo/spam.h"
#include "disc/common/check.h"
#include "disc/common/timer.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"
#include "disc/obs/trace.h"

namespace disc {

PatternSet Miner::Mine(const SequenceDatabase& db, const MineOptions& options) {
  stats_ = MineStats{};
  stats_.miner = name();
  stats_.db_sequences = db.size();
  obs::StatsHarvest harvest;
  obs::ScopedSpan span("mine/" + name());
  Timer timer;
  PatternSet result = DoMine(db, options);
  stats_.wall_seconds = timer.Seconds();
  stats_.num_patterns = result.size();
  stats_.max_length = result.MaxLength();
  harvest.Finish(&stats_);
  return result;
}

std::uint32_t MineOptions::CountForFraction(std::size_t db_size,
                                            double fraction) {
  DISC_CHECK(fraction > 0.0 && fraction <= 1.0);
  const double raw = fraction * static_cast<double>(db_size);
  std::uint32_t count = static_cast<std::uint32_t>(std::ceil(raw - 1e-9));
  if (count < 1) count = 1;
  return count;
}

std::unique_ptr<Miner> CreateMiner(const std::string& name) {
  if (name == "prefixspan") {
    return std::make_unique<PrefixSpan>(PrefixSpan::Projection::kPhysical);
  }
  if (name == "pseudo") {
    return std::make_unique<PrefixSpan>(PrefixSpan::Projection::kPseudo);
  }
  if (name == "gsp") return std::make_unique<Gsp>();
  if (name == "spade") return std::make_unique<Spade>();
  if (name == "spam") return std::make_unique<Spam>();
  if (name == "disc-all") return std::make_unique<DiscAll>();
  if (name == "disc-all-nobilevel") {
    DiscAll::Config config;
    config.bilevel = false;
    return std::make_unique<DiscAll>(config);
  }
  if (name == "dynamic-disc-all") return std::make_unique<DynamicDiscAll>();
  DISC_CHECK_MSG(false, ("unknown miner: " + name).c_str());
  return nullptr;
}

std::vector<std::string> AllMinerNames() {
  return {"prefixspan", "pseudo",           "gsp",
          "spade",      "spam",             "disc-all",
          "disc-all-nobilevel", "dynamic-disc-all"};
}

}  // namespace disc
