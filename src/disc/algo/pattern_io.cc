#include "disc/algo/pattern_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "disc/common/check.h"
#include "disc/common/file_util.h"

namespace disc {

std::string ToSpmfPatternString(const PatternSet& patterns) {
  std::string out;
  for (const auto& [p, sup] : patterns) {
    for (std::uint32_t t = 0; t < p.NumTransactions(); ++t) {
      for (const Item* q = p.TxnBegin(t); q != p.TxnEnd(t); ++q) {
        out += std::to_string(*q);
        out += ' ';
      }
      out += "-1 ";
    }
    out += "#SUP: ";
    out += std::to_string(sup);
    out += '\n';
  }
  return out;
}

PatternSet FromSpmfPatternString(const std::string& text) {
  PatternSet out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    const std::size_t marker = line.find("#SUP:");
    DISC_CHECK_MSG(marker != std::string::npos, "pattern line lacks #SUP:");
    std::istringstream body(line.substr(0, marker));
    std::vector<Itemset> itemsets;
    std::vector<Item> current;
    long long tok;
    while (body >> tok) {
      if (tok == -1) {
        DISC_CHECK_MSG(!current.empty(), "empty itemset in pattern");
        itemsets.emplace_back(std::move(current));
        current.clear();
      } else {
        DISC_CHECK_MSG(tok > 0, "items must be positive");
        current.push_back(static_cast<Item>(tok));
      }
    }
    DISC_CHECK_MSG(current.empty(), "pattern itemset not closed with -1");
    DISC_CHECK_MSG(!itemsets.empty(), "empty pattern");
    std::istringstream sup_in(line.substr(marker + 5));
    long long sup = -1;
    DISC_CHECK_MSG(static_cast<bool>(sup_in >> sup) && sup >= 0,
                   "missing support value");
    out.Add(Sequence(itemsets), static_cast<std::uint32_t>(sup));
  }
  return out;
}

bool SavePatterns(const PatternSet& patterns, const std::string& path) {
  // Atomic temp-file-plus-rename write: a crash or injected "io.write"
  // fault never leaves a truncated pattern file behind.
  return WriteFileAtomic(path, ToSpmfPatternString(patterns)).ok();
}

PatternSet LoadPatterns(const std::string& path) {
  std::ifstream in(path);
  DISC_CHECK_MSG(static_cast<bool>(in), "cannot open pattern file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromSpmfPatternString(buf.str());
}

}  // namespace disc
