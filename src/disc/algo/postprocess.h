// Post-processing of mined pattern sets: maximal and closed pattern
// filtering, and pattern-set summaries. The paper reports "the length of
// the maximal frequent sequences is at least 14" for its densest run
// (§4.1); these helpers compute such summaries from any miner's output.
#ifndef DISC_ALGO_POSTPROCESS_H_
#define DISC_ALGO_POSTPROCESS_H_

#include "disc/algo/pattern_set.h"

namespace disc {

/// The maximal patterns: frequent sequences contained in no other frequent
/// sequence. O(pairs x containment) with length bucketing — intended for
/// result-set sizes, not databases.
PatternSet MaximalPatterns(const PatternSet& patterns);

/// The closed patterns: frequent sequences with no frequent supersequence
/// of the *same support*.
PatternSet ClosedPatterns(const PatternSet& patterns);

/// Summary statistics of a result set.
struct PatternSummary {
  std::size_t total = 0;
  std::size_t maximal = 0;
  std::size_t closed = 0;
  std::uint32_t max_length = 0;
  std::uint32_t max_support = 0;
};
PatternSummary Summarize(const PatternSet& patterns);

}  // namespace disc

#endif  // DISC_ALGO_POSTPROCESS_H_
