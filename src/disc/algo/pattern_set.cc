#include "disc/algo/pattern_set.h"

#include "disc/common/check.h"

namespace disc {

void PatternSet::Add(const Sequence& pattern, std::uint32_t support) {
  DISC_CHECK(!pattern.Empty());
  const auto [it, inserted] = patterns_.emplace(pattern, support);
  if (!inserted) {
    DISC_CHECK_MSG(it->second == support,
                   "pattern reported twice with different supports");
  }
}

bool PatternSet::Contains(const Sequence& pattern) const {
  return patterns_.count(pattern) > 0;
}

std::uint32_t PatternSet::SupportOf(const Sequence& pattern) const {
  const auto it = patterns_.find(pattern);
  return it == patterns_.end() ? 0 : it->second;
}

std::uint32_t PatternSet::MaxLength() const {
  std::uint32_t max_len = 0;
  for (const auto& [p, sup] : patterns_) {
    (void)sup;
    if (p.Length() > max_len) max_len = p.Length();
  }
  return max_len;
}

std::map<std::uint32_t, std::size_t> PatternSet::CountByLength() const {
  std::map<std::uint32_t, std::size_t> out;
  for (const auto& [p, sup] : patterns_) {
    (void)sup;
    ++out[p.Length()];
  }
  return out;
}

std::vector<Sequence> PatternSet::PatternsOfLength(std::uint32_t k) const {
  std::vector<Sequence> out;
  for (const auto& [p, sup] : patterns_) {
    (void)sup;
    if (p.Length() == k) out.push_back(p);
  }
  return out;
}

void PatternSet::EraseFromFirstItem(Item cutoff) {
  // ⟨(cutoff)⟩ is the comparative-order minimum among all sequences whose
  // first item is >= cutoff: position 0 decides against any first item
  // < cutoff, and the bare 1-sequence precedes every extension of itself.
  Sequence bound;
  bound.AppendNewItemset(cutoff);
  patterns_.erase(patterns_.lower_bound(bound), patterns_.end());
}

std::string PatternSet::Diff(const PatternSet& other,
                             std::size_t max_lines) const {
  std::string out;
  std::size_t lines = 0;
  auto emit = [&](const std::string& line) {
    if (lines < max_lines) out += line;
    ++lines;
  };
  for (const auto& [p, sup] : patterns_) {
    const auto it = other.patterns_.find(p);
    if (it == other.patterns_.end()) {
      emit("only in left:  " + p.ToString() + " #" + std::to_string(sup) + "\n");
    } else if (it->second != sup) {
      emit("support mismatch " + p.ToString() + ": left " + std::to_string(sup) +
           " right " + std::to_string(it->second) + "\n");
    }
  }
  for (const auto& [p, sup] : other.patterns_) {
    if (patterns_.count(p) == 0) {
      emit("only in right: " + p.ToString() + " #" + std::to_string(sup) + "\n");
    }
  }
  if (lines > max_lines) {
    out += "... and " + std::to_string(lines - max_lines) + " more\n";
  }
  return out;
}

std::string PatternSet::ToString() const {
  std::string out;
  for (const auto& [p, sup] : patterns_) {
    out += p.ToString() + " #" + std::to_string(sup) + "\n";
  }
  return out;
}

}  // namespace disc
