// Candidate hash tree for GSP support counting (Srikant & Agrawal, EDBT
// 1996 §3.2.1, inherited from Apriori). Candidates are stored at leaves;
// interior nodes hash on the d-th flattened item. Counting a customer
// sequence walks the tree once per distinct item chain instead of testing
// every candidate, which is what makes level-wise counting viable on
// non-trivial candidate sets.
//
// This implementation hashes on candidate items (depth d hashes item d) and
// visits, for a customer sequence, exactly the subtrees reachable by some
// item subsequence of it — a superset of the candidates that can be
// contained, each then verified with the exact containment test.
#ifndef DISC_ALGO_HASH_TREE_H_
#define DISC_ALGO_HASH_TREE_H_

#include <memory>
#include <vector>

#include "disc/seq/sequence.h"
#include "disc/seq/view.h"
#include "disc/seq/types.h"

namespace disc {

/// Hash tree over equal-length candidate sequences. See file comment.
class CandidateHashTree {
 public:
  /// Builds the tree over `candidates` (borrowed; must outlive the tree).
  /// `fanout` is the hash width of interior nodes; `leaf_capacity` is the
  /// split threshold.
  explicit CandidateHashTree(const std::vector<Sequence>* candidates,
                             std::uint32_t fanout = 16,
                             std::uint32_t leaf_capacity = 8);

  /// Adds 1 to `counts[i]` for every candidate i contained in `s`.
  /// `counts` must have one slot per candidate.
  void CountSupports(SequenceView s,
                     std::vector<std::uint32_t>* counts) const;

  /// Number of tree nodes (instrumentation/testing).
  std::size_t NumNodes() const { return num_nodes_; }

 private:
  struct Node {
    // Interior: children by hash bucket (may be null). Leaf: candidate ids.
    std::vector<std::unique_ptr<Node>> children;
    std::vector<std::uint32_t> candidate_ids;
    bool leaf = true;
  };

  std::uint32_t Bucket(Item x) const { return x % fanout_; }
  void Insert(Node* node, std::uint32_t depth, std::uint32_t id);
  void Split(Node* node, std::uint32_t depth);
  void Visit(const Node* node, std::uint32_t depth, SequenceView s,
             std::uint32_t from_pos, std::vector<std::uint32_t>* counts,
             std::vector<std::uint8_t>* tested) const;

  const std::vector<Sequence>* candidates_;
  std::uint32_t fanout_;
  std::uint32_t leaf_capacity_;
  std::uint32_t candidate_length_ = 0;
  std::unique_ptr<Node> root_;
  std::size_t num_nodes_ = 1;
};

}  // namespace disc

#endif  // DISC_ALGO_HASH_TREE_H_
