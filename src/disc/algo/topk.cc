#include "disc/algo/topk.h"

#include <algorithm>
#include <vector>

#include "disc/common/check.h"

namespace disc {
namespace {

// Patterns of acceptable length, by descending support.
std::vector<std::pair<const Sequence*, std::uint32_t>> Qualifying(
    const PatternSet& mined, const TopKOptions& options) {
  std::vector<std::pair<const Sequence*, std::uint32_t>> out;
  for (const auto& [p, sup] : mined) {
    if (p.Length() < options.min_length) continue;
    out.emplace_back(&p, sup);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

}  // namespace

PatternSet MineTopK(const SequenceDatabase& db, const TopKOptions& options) {
  DISC_CHECK(options.k >= 1);
  PatternSet out;
  if (db.empty()) return out;
  const auto miner = CreateMiner(options.algorithm);

  MineOptions probe;
  probe.max_length = options.max_length;
  probe.min_support_count = static_cast<std::uint32_t>(db.size());
  PatternSet mined;
  for (;;) {
    mined = miner->Mine(db, probe);
    if (Qualifying(mined, options).size() >= options.k ||
        probe.min_support_count == 1) {
      break;
    }
    probe.min_support_count =
        std::max<std::uint32_t>(1, probe.min_support_count / 2);
  }

  const auto ranked = Qualifying(mined, options);
  if (ranked.empty()) return out;
  // Keep the k best plus every tie at the cutoff support.
  const std::size_t limit = std::min(options.k, ranked.size());
  const std::uint32_t cutoff = ranked[limit - 1].second;
  for (const auto& [p, sup] : ranked) {
    if (sup >= cutoff) out.Add(*p, sup);
  }
  return out;
}

}  // namespace disc
