#include "disc/algo/spade.h"

#include <algorithm>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/compare.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_temporal_joins, "spade.temporal_joins");
DISC_OBS_COUNTER(g_equality_joins, "spade.equality_joins");
DISC_OBS_COUNTER(g_support_inc, "support.increments");
DISC_OBS_COUNTER(g_support_inc_k4, "support.increments.k4plus");
DISC_OBS_HISTOGRAM(g_idlist_size, "spade.idlist_size");

// (sid, eid) occurrence: the pattern's last itemset is contained in
// transaction eid of sequence sid, with the earlier itemsets embeddable
// strictly before. Sorted by (sid, eid).
using IdList = std::vector<std::pair<Cid, std::uint32_t>>;

std::uint32_t SupportOf(const IdList& list) {
  std::uint32_t support = 0;
  Cid prev = 0;
  bool first = true;
  for (const auto& [sid, eid] : list) {
    (void)eid;
    if (first || sid != prev) {
      ++support;
      prev = sid;
      first = false;
    }
  }
  return support;
}

// Temporal join: occurrences of B's last element strictly after an
// occurrence of A — the ID-list of (A s-extended by B's atom item).
IdList TemporalJoin(const IdList& a, const IdList& b) {
  IdList out;
  std::size_t i = 0;
  for (const auto& [sid, eid] : b) {
    while (i < a.size() &&
           (a[i].first < sid)) {
      ++i;
    }
    // First A-occurrence in this sid; valid if it precedes eid.
    if (i < a.size() && a[i].first == sid && a[i].second < eid) {
      out.emplace_back(sid, eid);
    }
  }
  return out;
}

// Equality join: transactions carrying both last itemsets — the ID-list of
// the merged-itemset extension.
IdList EqualityJoin(const IdList& a, const IdList& b) {
  IdList out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

// An atom of an equivalence class: the class prefix extended by one item.
struct Atom {
  Item item;
  ExtType type;
  IdList ids;
  std::uint32_t support;
};

class Run {
 public:
  Run(const SequenceDatabase& db, const MineOptions& options)
      : db_(db), options_(options) {}

  PatternSet Execute() {
    const std::uint32_t delta = options_.min_support_count;
    if (db_.empty() || delta > db_.size()) return std::move(out_);

    // First (and only) horizontal pass: per-item ID-lists.
    std::vector<IdList> item_ids(db_.max_item() + 1);
    for (Cid cid = 0; cid < db_.size(); ++cid) {
      const SequenceView s = db_[cid];
      for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
        for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
          item_ids[*p].emplace_back(cid, t);
        }
      }
    }
    std::vector<Atom> roots;
    for (Item x = 1; x <= db_.max_item(); ++x) {
      if (item_ids[x].empty()) continue;
      const std::uint32_t sup = SupportOf(item_ids[x]);
      DISC_OBS_ADD(g_support_inc, sup);
      if (sup < delta) continue;
      roots.push_back({x, ExtType::kSequence, std::move(item_ids[x]), sup});
    }
    Grow(Sequence(), roots);
    return std::move(out_);
  }

 private:
  // Emits every atom's pattern and grows each atom's class from its
  // siblings (Zaki's temporal/equality joins).
  void Grow(const Sequence& prefix, const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      const Sequence pattern = Extend(prefix, a.item, a.type);
      out_.Add(pattern, a.support);
      if (options_.max_length != 0 &&
          pattern.Length() >= options_.max_length) {
        continue;
      }
      std::vector<Atom> children;
      // Supports computed below belong to (|pattern| + 1)-sequences; an
      // ID-list's SupportOf walk counts each supporting sequence once, so
      // it is SPADE's form of support-count increments.
      const std::uint32_t child_len = pattern.Length() + 1;
      auto count_support = [&](const IdList& ids) {
        DISC_OBS_RECORD(g_idlist_size, ids.size());
        const std::uint32_t sup = SupportOf(ids);
        DISC_OBS_ADD(g_support_inc, sup);
        if (child_len >= 4) DISC_OBS_ADD(g_support_inc_k4, sup);
        return sup;
      };
      for (const Atom& b : atoms) {
        // Sequence extension: only an S-type sibling's ID-list enumerates
        // every transaction carrying its item with the class prefix before
        // it; an I-type sibling's list is restricted to transactions that
        // also contain the prefix's last itemset and would undercount.
        if (b.type == ExtType::kSequence) {
          DISC_OBS_INC(g_temporal_joins);
          IdList ids = TemporalJoin(a.ids, b.ids);
          const std::uint32_t sup = count_support(ids);
          if (sup >= options_.min_support_count) {
            children.push_back(
                {b.item, ExtType::kSequence, std::move(ids), sup});
          }
        }
        // Itemset extension: a same-type sibling with a larger item joins
        // A's last itemset.
        if (b.type == a.type && b.item > a.item) {
          DISC_OBS_INC(g_equality_joins);
          IdList ids = EqualityJoin(a.ids, b.ids);
          const std::uint32_t sup = count_support(ids);
          if (sup >= options_.min_support_count) {
            children.push_back(
                {b.item, ExtType::kItemset, std::move(ids), sup});
          }
        }
      }
      std::sort(children.begin(), children.end(),
                [](const Atom& x, const Atom& y) {
                  return CompareExtensions(x.item, x.type, y.item, y.type) <
                         0;
                });
      if (!children.empty()) Grow(pattern, children);
    }
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  PatternSet out_;
};

}  // namespace

PatternSet Spade::DoMine(const SequenceDatabase& db,
                         const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  Run run(db, options);
  return run.Execute();
}

}  // namespace disc
