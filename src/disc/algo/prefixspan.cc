#include "disc/algo/prefixspan.h"

#include <algorithm>
#include <deque>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/compare.h"
#include "disc/seq/itemset.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_nodes, "prefixspan.nodes");
DISC_OBS_COUNTER(g_points, "prefixspan.projection_points");
DISC_OBS_COUNTER(g_materialized, "prefixspan.materialized_sequences");
DISC_OBS_COUNTER(g_support_inc, "support.increments");
DISC_OBS_COUNTER(g_support_inc_k4, "support.increments.k4plus");
DISC_OBS_HISTOGRAM(g_projected_db, "prefixspan.projected_db_size");

// A pseudo-projection point: the postfix of *seq starting at item index
// next_i inside transaction txn (the partial transaction), followed by the
// full transactions txn+1... next_i may equal the transaction size (empty
// partial part).
struct Point {
  SequenceView seq;
  std::uint32_t txn;
  std::uint32_t next_i;
};

class Context {
 public:
  Context(const SequenceDatabase& db, const MineOptions& options,
          PrefixSpan::Projection mode)
      : db_(db), options_(options), mode_(mode) {
    const std::size_t n = static_cast<std::size_t>(db.max_item()) + 1;
    i_count_.assign(n, 0);
    s_count_.assign(n, 0);
    i_seen_.assign(n, 0);
    s_seen_.assign(n, 0);
  }

  PatternSet Run() {
    if (db_.empty() || options_.min_support_count > db_.size()) {
      return std::move(out_);
    }
    // Frequent 1-sequences: count distinct items per sequence.
    for (const SequenceView s : db_) {
      ++tag_;
      for (const Item x : s.items()) {
        if (s_seen_[x] != tag_) {
          s_seen_[x] = tag_;
          if (s_count_[x]++ == 0) touched_s_.push_back(x);
          DISC_OBS_INC(g_support_inc);
        }
      }
    }
    std::vector<std::pair<Item, std::uint32_t>> freq_items;
    std::sort(touched_s_.begin(), touched_s_.end());
    for (const Item x : touched_s_) {
      if (s_count_[x] >= options_.min_support_count) {
        freq_items.emplace_back(x, s_count_[x]);
      }
      s_count_[x] = 0;
    }
    touched_s_.clear();

    for (const auto& [x, support] : freq_items) {
      Sequence prefix;
      prefix.AppendNewItemset(x);
      out_.Add(prefix, support);
      if (options_.max_length == 1) continue;
      // Project on the leftmost occurrence of x in each sequence.
      std::vector<Point> points;
      points.reserve(support);
      for (const SequenceView s : db_) {
        for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
          if (!s.TxnContains(t, x)) continue;
          const Item* pos = std::lower_bound(s.TxnBegin(t), s.TxnEnd(t), x);
          points.push_back(
              {s, t,
               static_cast<std::uint32_t>(pos - s.TxnBegin(t)) + 1});
          break;
        }
      }
      DISC_CHECK(points.size() == support);
      Recurse(prefix, {x}, points);
    }
    return std::move(out_);
  }

 private:
  // Counts valid extensions over all points, emits the frequent ones, then
  // recurses per frequent extension in ascending (item, type) order.
  void Recurse(const Sequence& prefix, const std::vector<Item>& last_itemset,
               const std::vector<Point>& points) {
    if (points.size() < options_.min_support_count) return;
    if (options_.max_length != 0 && prefix.Length() >= options_.max_length) {
      return;
    }
    DISC_OBS_INC(g_nodes);
    DISC_OBS_ADD(g_points, points.size());
    DISC_OBS_RECORD(g_projected_db, points.size());
#if DISC_OBS_ENABLED
    // Length of the patterns the Mark* calls below are counting support for.
    counting_length_ = prefix.Length() + 1;
#endif
    const Item last_max = last_itemset.back();

    for (const Point& p : points) {
      const SequenceView s = p.seq;
      ++tag_;
      // Items after the projection point inside the partial transaction:
      // itemset extensions (all exceed last_max because transactions are
      // sorted and the point is past last_max's position).
      for (const Item* q = s.TxnBegin(p.txn) + p.next_i; q != s.TxnEnd(p.txn);
           ++q) {
        MarkI(*q);
      }
      for (std::uint32_t t = p.txn + 1; t < s.NumTransactions(); ++t) {
        // Any item in a strictly later transaction: sequence extension.
        for (const Item* q = s.TxnBegin(t); q != s.TxnEnd(t); ++q) MarkS(*q);
        // A later transaction containing the whole last itemset lets its
        // larger items extend that itemset (the non-leftmost-embedding
        // case).
        if (SortedRangeIsSubset(last_itemset.data(),
                                last_itemset.data() + last_itemset.size(),
                                s.TxnBegin(t), s.TxnEnd(t))) {
          for (const Item* q =
                   std::upper_bound(s.TxnBegin(t), s.TxnEnd(t), last_max);
               q != s.TxnEnd(t); ++q) {
            MarkI(*q);
          }
        }
      }
    }

    // Collect frequent extensions, then reset the scratch counters before
    // recursing (siblings must not see our counts).
    std::vector<std::pair<Item, ExtType>> freq_exts;
    std::sort(touched_i_.begin(), touched_i_.end());
    std::sort(touched_s_.begin(), touched_s_.end());
    {
      // Merge the two touched lists so extensions come out ascending by
      // (item, type) with kItemset first.
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < touched_i_.size() || b < touched_s_.size()) {
        const bool take_i =
            b >= touched_s_.size() ||
            (a < touched_i_.size() && touched_i_[a] <= touched_s_[b]);
        if (take_i) {
          if (i_count_[touched_i_[a]] >= options_.min_support_count) {
            freq_exts.emplace_back(touched_i_[a], ExtType::kItemset);
          }
          ++a;
        } else {
          if (s_count_[touched_s_[b]] >= options_.min_support_count) {
            freq_exts.emplace_back(touched_s_[b], ExtType::kSequence);
          }
          ++b;
        }
      }
    }
    for (const Item x : touched_i_) i_count_[x] = 0;
    for (const Item x : touched_s_) s_count_[x] = 0;
    touched_i_.clear();
    touched_s_.clear();

    for (const auto& [item, type] : freq_exts) {
      const Sequence child = Extend(prefix, item, type);
      std::vector<Item> child_last;
      if (type == ExtType::kItemset) {
        child_last = last_itemset;
        child_last.push_back(item);
      } else {
        child_last = {item};
      }
      // Physical mode materializes each projected suffix; the arena lives
      // for the duration of this child's recursion only, mirroring
      // PrefixSpan's projected-database lifetime.
      std::deque<Sequence> arena;
      std::vector<Point> child_points;
      for (const Point& p : points) {
        Point np;
        if (!Advance(p, item, type, child_last, &np)) continue;
        if (mode_ == PrefixSpan::Projection::kPhysical) {
          np = Materialize(np, &arena);
        }
        child_points.push_back(np);
      }
      DISC_CHECK(child_points.size() >= options_.min_support_count);
      out_.Add(child, static_cast<std::uint32_t>(child_points.size()));
      Recurse(child, child_last, child_points);
    }
  }

  // Moves a projection point across one extension; returns false if the
  // extended pattern no longer occurs in this sequence.
  static bool Advance(const Point& p, Item item, ExtType type,
                      const std::vector<Item>& child_last, Point* out) {
    const SequenceView s = p.seq;
    if (type == ExtType::kItemset) {
      // The match may stay in the current transaction (item sorts after the
      // point, being larger than the previous last item) ...
      if (s.TxnContains(p.txn, item)) {
        const Item* pos =
            std::lower_bound(s.TxnBegin(p.txn), s.TxnEnd(p.txn), item);
        *out = {p.seq, p.txn,
                static_cast<std::uint32_t>(pos - s.TxnBegin(p.txn)) + 1};
        return true;
      }
      // ... or move to the first later transaction containing the grown
      // itemset (no transaction between the old point and it can contain
      // the old itemset, so this is still the leftmost embedding).
      for (std::uint32_t t = p.txn + 1; t < s.NumTransactions(); ++t) {
        if (SortedRangeIsSubset(child_last.data(),
                                child_last.data() + child_last.size(),
                                s.TxnBegin(t), s.TxnEnd(t))) {
          const Item* pos =
              std::lower_bound(s.TxnBegin(t), s.TxnEnd(t), item);
          *out = {p.seq, t,
                  static_cast<std::uint32_t>(pos - s.TxnBegin(t)) + 1};
          return true;
        }
      }
      return false;
    }
    // Sequence extension: first later transaction containing the item.
    for (std::uint32_t t = p.txn + 1; t < s.NumTransactions(); ++t) {
      if (s.TxnContains(t, item)) {
        const Item* pos = std::lower_bound(s.TxnBegin(t), s.TxnEnd(t), item);
        *out = {p.seq, t,
                static_cast<std::uint32_t>(pos - s.TxnBegin(t)) + 1};
        return true;
      }
    }
    return false;
  }

  // Copies the suffix of the pointed-to sequence (whole transactions from
  // the point's transaction onward) into the arena and re-targets the point.
  static Point Materialize(const Point& p, std::deque<Sequence>* arena) {
    const SequenceView s = p.seq;
    Sequence copy;
    for (std::uint32_t t = p.txn; t < s.NumTransactions(); ++t) {
      copy.AppendItemset(s.TxnItemset(t));
    }
    arena->push_back(std::move(copy));
    DISC_OBS_INC(g_materialized);
    return {arena->back(), 0, p.next_i};
  }

  void MarkI(Item x) {
    if (i_seen_[x] == tag_) return;
    i_seen_[x] = tag_;
    if (i_count_[x]++ == 0) touched_i_.push_back(x);
    CountSupportIncrement();
  }

  void MarkS(Item x) {
    if (s_seen_[x] == tag_) return;
    s_seen_[x] = tag_;
    if (s_count_[x]++ == 0) touched_s_.push_back(x);
    CountSupportIncrement();
  }

  void CountSupportIncrement() {
    DISC_OBS_INC(g_support_inc);
#if DISC_OBS_ENABLED
    if (counting_length_ >= 4) DISC_OBS_INC(g_support_inc_k4);
#endif
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  const PrefixSpan::Projection mode_;
  PatternSet out_;

  // Per-item scratch (indexed by item id).
  std::vector<std::uint32_t> i_count_, s_count_;
  std::vector<std::uint64_t> i_seen_, s_seen_;
  std::vector<Item> touched_i_, touched_s_;
  std::uint64_t tag_ = 0;
#if DISC_OBS_ENABLED
  std::uint32_t counting_length_ = 1;
#endif
};

}  // namespace

PatternSet PrefixSpan::DoMine(const SequenceDatabase& db,
                              const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  Context ctx(db, options, mode_);
  return ctx.Run();
}

}  // namespace disc
