// GSP (Srikant & Agrawal, EDBT 1996): the classic bottom-up
// generate-and-test miner. Frequent (k-1)-sequences are joined (drop-first
// of one equals drop-last of the other), candidates are pruned by the
// anti-monotone property (every delete-one-item (k-1)-subsequence must be
// frequent), and survivors are support-counted by a database scan.
//
// Implemented for completeness and as an independent correctness oracle; it
// is the slowest miner here (as in the literature) and the paper's
// evaluation accordingly benchmarks against PrefixSpan instead.
#ifndef DISC_ALGO_GSP_H_
#define DISC_ALGO_GSP_H_

#include "disc/algo/miner.h"

namespace disc {

/// GSP frequent-sequence miner. See file comment.
class Gsp : public Miner {
 public:
  std::string name() const override { return "gsp"; }

 protected:
  PatternSet DoMine(const SequenceDatabase& db,
                    const MineOptions& options) override;
};

}  // namespace disc

#endif  // DISC_ALGO_GSP_H_
