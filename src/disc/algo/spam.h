// SPAM (Ayres et al., SIGKDD 2002): depth-first mining over vertical
// bitmaps. Every pattern owns a bitmap with one bit per transaction of the
// database (sequences occupy contiguous bit ranges); a set bit marks a
// transaction containing the pattern's last itemset with the rest
// embeddable before. Sequence extension is the "S-step" (transform the
// bitmap so every bit strictly after a sequence's first set bit is on, then
// AND with the item's bitmap); itemset extension is a plain AND. Candidate
// items are pruned per node, as in the paper.
//
// The original assumes all bitmaps fit in memory; so does this
// implementation (the paper's §1.1 makes the same remark).
#ifndef DISC_ALGO_SPAM_H_
#define DISC_ALGO_SPAM_H_

#include "disc/algo/miner.h"

namespace disc {

/// SPAM frequent-sequence miner. See file comment.
class Spam : public Miner {
 public:
  std::string name() const override { return "spam"; }

 protected:
  PatternSet DoMine(const SequenceDatabase& db,
                    const MineOptions& options) override;
};

}  // namespace disc

#endif  // DISC_ALGO_SPAM_H_
