// Top-k sequential-pattern mining on top of any threshold miner: find the
// k highest-support patterns without the user guessing a minimum support.
//
// Strategy: probe supports downward — start from a high threshold, halve
// until at least k patterns emerge (or the threshold hits 1), then trim to
// the k best. The probing miner's anti-monotone pruning keeps the
// overshoot cheap, and every probe reuses the normal Mine() entry point so
// any of the seven algorithms can serve as the engine.
#ifndef DISC_ALGO_TOPK_H_
#define DISC_ALGO_TOPK_H_

#include <string>

#include "disc/algo/miner.h"

namespace disc {

/// Options for top-k mining.
struct TopKOptions {
  std::size_t k = 10;            ///< patterns to return (at least this many
                                 ///< candidates are mined; ties at the
                                 ///< cutoff support are all kept)
  std::uint32_t min_length = 1;  ///< ignore shorter patterns
  std::uint32_t max_length = 0;  ///< 0 = unlimited
  std::string algorithm = "disc-all";  ///< probing engine (CreateMiner name)
};

/// Returns the patterns with the k highest supports (all ties at the k-th
/// support included), as a PatternSet. Returns fewer when the database has
/// fewer qualifying patterns.
PatternSet MineTopK(const SequenceDatabase& db, const TopKOptions& options);

}  // namespace disc

#endif  // DISC_ALGO_TOPK_H_
