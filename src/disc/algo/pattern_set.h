// PatternSet: the result of a mining run — every frequent sequence with its
// support count. All algorithms in the library produce this type, which
// makes N-way cross-checking trivial.
#ifndef DISC_ALGO_PATTERN_SET_H_
#define DISC_ALGO_PATTERN_SET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "disc/order/compare.h"
#include "disc/seq/sequence.h"

namespace disc {

/// Frequent sequences with supports, ordered by the comparative order.
class PatternSet {
 public:
  PatternSet() = default;

  /// Records a pattern. Adding the same pattern twice with different
  /// supports aborts (it would mean a miner double-reported).
  void Add(const Sequence& pattern, std::uint32_t support);

  /// True if the pattern was recorded.
  bool Contains(const Sequence& pattern) const;

  /// Support of a recorded pattern; 0 if absent.
  std::uint32_t SupportOf(const Sequence& pattern) const;

  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// Iteration in ascending comparative order.
  auto begin() const { return patterns_.begin(); }
  auto end() const { return patterns_.end(); }

  /// Length of the longest pattern (0 if empty).
  std::uint32_t MaxLength() const;

  /// Number of patterns of each length.
  std::map<std::uint32_t, std::size_t> CountByLength() const;

  /// Patterns of exactly length k, ascending.
  std::vector<Sequence> PatternsOfLength(std::uint32_t k) const;

  /// Removes every pattern whose first item is >= cutoff. Because the
  /// comparative order compares position 0 first, this erases exactly the
  /// comparative-order suffix starting at ⟨(cutoff)⟩ — what remains is a
  /// prefix of the full set. Used to trim a cancelled parallel run down to
  /// its exact partial result (docs/ROBUSTNESS.md).
  void EraseFromFirstItem(Item cutoff);

  bool operator==(const PatternSet& other) const {
    return patterns_ == other.patterns_;
  }
  bool operator!=(const PatternSet& other) const { return !(*this == other); }

  /// Human-readable difference report (for test failure messages); empty
  /// string when equal. At most `max_lines` discrepancies are listed.
  std::string Diff(const PatternSet& other, std::size_t max_lines = 20) const;

  /// Full dump, one "pattern #support" line per pattern.
  std::string ToString() const;

 private:
  std::map<Sequence, std::uint32_t, SequenceLess> patterns_;
};

}  // namespace disc

#endif  // DISC_ALGO_PATTERN_SET_H_
