#include "disc/algo/spam.h"

#include <bit>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/compare.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_bitmap_ands, "spam.bitmap_ands");
DISC_OBS_COUNTER(g_s_transforms, "spam.s_transforms");
DISC_OBS_COUNTER(g_support_inc, "support.increments");
DISC_OBS_COUNTER(g_support_inc_k4, "support.increments.k4plus");

// Transaction-granular bitmap over the whole database. Sequence boundaries
// live in the shared layout (bit offsets per sequence).
struct Layout {
  std::vector<std::uint32_t> seq_start;  // bit offset per sid, plus total
  std::uint32_t total_bits() const { return seq_start.back(); }
};

class Bitmap {
 public:
  explicit Bitmap(std::uint32_t bits)
      : blocks_((bits + 63) / 64, 0), bits_(bits) {}

  void Set(std::uint32_t i) { blocks_[i >> 6] |= 1ull << (i & 63); }

  static Bitmap And(const Bitmap& a, const Bitmap& b) {
    Bitmap out(a.bits_);
    for (std::size_t i = 0; i < out.blocks_.size(); ++i) {
      out.blocks_[i] = a.blocks_[i] & b.blocks_[i];
    }
    return out;
  }

  /// SPAM's S-step transform: per sequence range, clear all bits and set
  /// every position strictly after the first set bit.
  Bitmap STransform(const Layout& layout) const {
    Bitmap out(bits_);
    for (std::size_t sid = 0; sid + 1 < layout.seq_start.size(); ++sid) {
      const std::uint32_t lo = layout.seq_start[sid];
      const std::uint32_t hi = layout.seq_start[sid + 1];
      const std::uint32_t first = FirstSetInRange(lo, hi);
      for (std::uint32_t b = first + 1; b < hi && first != hi; ++b) {
        out.Set(b);
      }
    }
    return out;
  }

  /// Number of sequences with at least one set bit (the support).
  std::uint32_t CountSupport(const Layout& layout) const {
    std::uint32_t support = 0;
    for (std::size_t sid = 0; sid + 1 < layout.seq_start.size(); ++sid) {
      if (FirstSetInRange(layout.seq_start[sid],
                          layout.seq_start[sid + 1]) !=
          layout.seq_start[sid + 1]) {
        ++support;
      }
    }
    return support;
  }

 private:
  // First set bit in [lo, hi), or hi if none.
  std::uint32_t FirstSetInRange(std::uint32_t lo, std::uint32_t hi) const {
    std::uint32_t b = lo;
    while (b < hi) {
      const std::uint32_t block = b >> 6;
      std::uint64_t word = blocks_[block] >> (b & 63);
      if (word != 0) {
        const std::uint32_t hit =
            b + static_cast<std::uint32_t>(std::countr_zero(word));
        return hit < hi ? hit : hi;
      }
      b = (block + 1) << 6;
    }
    return hi;
  }

  std::vector<std::uint64_t> blocks_;
  std::uint32_t bits_;
};

class Run {
 public:
  Run(const SequenceDatabase& db, const MineOptions& options)
      : db_(db), options_(options) {}

  PatternSet Execute() {
    const std::uint32_t delta = options_.min_support_count;
    if (db_.empty() || delta > db_.size()) return std::move(out_);

    // Layout and per-item bitmaps.
    layout_.seq_start.resize(db_.size() + 1, 0);
    for (Cid cid = 0; cid < db_.size(); ++cid) {
      layout_.seq_start[cid + 1] =
          layout_.seq_start[cid] + db_[cid].NumTransactions();
    }
    item_bm_.assign(db_.max_item() + 1, Bitmap(layout_.total_bits()));
    for (Cid cid = 0; cid < db_.size(); ++cid) {
      const SequenceView s = db_[cid];
      for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
        for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
          item_bm_[*p].Set(layout_.seq_start[cid] + t);
        }
      }
    }

    std::vector<Item> freq_items;
    for (Item x = 1; x <= db_.max_item(); ++x) {
      if (item_bm_[x].CountSupport(layout_) >= delta) freq_items.push_back(x);
    }
    for (const Item x : freq_items) {
      Sequence p;
      p.AppendNewItemset(x);
      const std::uint32_t sup = item_bm_[x].CountSupport(layout_);
      DISC_OBS_ADD(g_support_inc, sup);
      out_.Add(p, sup);
      std::vector<Item> i_cands;
      for (const Item y : freq_items) {
        if (y > x) i_cands.push_back(y);
      }
      Dfs(p, item_bm_[x], freq_items, i_cands);
    }
    return std::move(out_);
  }

 private:
  void Dfs(const Sequence& pattern, const Bitmap& bm,
           const std::vector<Item>& s_cands, const std::vector<Item>& i_cands) {
    if (options_.max_length != 0 &&
        pattern.Length() >= options_.max_length) {
      return;
    }
    const std::uint32_t delta = options_.min_support_count;
    DISC_OBS_INC(g_s_transforms);
    const Bitmap sbm = bm.STransform(layout_);
    DISC_OBS_ADD(g_bitmap_ands, s_cands.size() + i_cands.size());

    // Every child support evaluation counts each supporting sequence once —
    // bitmap counting is still support counting, just vectorized.
    const std::uint32_t child_len = pattern.Length() + 1;
    auto count_support = [&](const Bitmap& child) {
      const std::uint32_t sup = child.CountSupport(layout_);
      DISC_OBS_ADD(g_support_inc, sup);
      if (child_len >= 4) DISC_OBS_ADD(g_support_inc_k4, sup);
      return sup;
    };

    // S-step and I-step pruning: keep only the locally frequent candidates.
    std::vector<Item> s_freq;
    std::vector<std::pair<Bitmap, std::uint32_t>> s_maps;
    for (const Item x : s_cands) {
      Bitmap child = Bitmap::And(sbm, item_bm_[x]);
      const std::uint32_t sup = count_support(child);
      if (sup >= delta) {
        s_freq.push_back(x);
        s_maps.emplace_back(std::move(child), sup);
      }
    }
    std::vector<Item> i_freq;
    std::vector<std::pair<Bitmap, std::uint32_t>> i_maps;
    for (const Item y : i_cands) {
      Bitmap child = Bitmap::And(bm, item_bm_[y]);
      const std::uint32_t sup = count_support(child);
      if (sup >= delta) {
        i_freq.push_back(y);
        i_maps.emplace_back(std::move(child), sup);
      }
    }

    for (std::size_t i = 0; i < s_freq.size(); ++i) {
      const Sequence child = Extend(pattern, s_freq[i], ExtType::kSequence);
      out_.Add(child, s_maps[i].second);
      std::vector<Item> child_i;
      for (const Item y : s_freq) {
        if (y > s_freq[i]) child_i.push_back(y);
      }
      Dfs(child, s_maps[i].first, s_freq, child_i);
    }
    for (std::size_t i = 0; i < i_freq.size(); ++i) {
      const Sequence child = Extend(pattern, i_freq[i], ExtType::kItemset);
      out_.Add(child, i_maps[i].second);
      std::vector<Item> child_i;
      for (const Item y : i_freq) {
        if (y > i_freq[i]) child_i.push_back(y);
      }
      Dfs(child, i_maps[i].first, s_freq, child_i);
    }
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  Layout layout_;
  std::vector<Bitmap> item_bm_;
  PatternSet out_;
};

}  // namespace

PatternSet Spam::DoMine(const SequenceDatabase& db,
                        const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  Run run(db, options);
  return run.Execute();
}

}  // namespace disc
