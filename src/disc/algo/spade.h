// SPADE (Zaki, Machine Learning 2001): vertical-format mining with ID-lists.
//
// Every pattern carries an ID-list of (sid, eid) pairs — the transactions in
// which its last itemset occurs with the rest of the pattern embeddable
// before — exactly the lists of the paper's §1.1 example. Classes of
// patterns sharing a prefix are grown depth-first; sibling atoms are
// combined with *temporal* joins (sequence extensions) and *equality* joins
// (itemset extensions), so support counting never rescans the database
// after the first pass.
#ifndef DISC_ALGO_SPADE_H_
#define DISC_ALGO_SPADE_H_

#include "disc/algo/miner.h"

namespace disc {

/// SPADE frequent-sequence miner. See file comment.
class Spade : public Miner {
 public:
  std::string name() const override { return "spade"; }

 protected:
  PatternSet DoMine(const SequenceDatabase& db,
                    const MineOptions& options) override;
};

}  // namespace disc

#endif  // DISC_ALGO_SPADE_H_
