// Serialization of mining results in the SPMF output format — one pattern
// per line, itemsets separated by -1, followed by "#SUP: <count>":
//
//   1 5 -1 2 -1 #SUP: 4
//
// Interoperable with the SPMF toolkit's sequential-pattern output, so
// results can be diffed against third-party miners.
#ifndef DISC_ALGO_PATTERN_IO_H_
#define DISC_ALGO_PATTERN_IO_H_

#include <string>

#include "disc/algo/pattern_set.h"

namespace disc {

/// Serializes a pattern set (ascending comparative order).
std::string ToSpmfPatternString(const PatternSet& patterns);

/// Parses a pattern set from SPMF output text. Aborts on malformed input.
PatternSet FromSpmfPatternString(const std::string& text);

/// Writes patterns to a file; returns false on I/O failure.
bool SavePatterns(const PatternSet& patterns, const std::string& path);

/// Reads patterns from a file; aborts if unreadable or malformed.
PatternSet LoadPatterns(const std::string& path);

}  // namespace disc

#endif  // DISC_ALGO_PATTERN_IO_H_
