#include "disc/algo/gsp.h"

#include <algorithm>
#include <map>
#include <set>

#include "disc/algo/hash_tree.h"
#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/compare.h"
#include "disc/seq/containment.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_candidates, "gsp.candidates");
DISC_OBS_COUNTER(g_survivors, "gsp.survivors");
DISC_OBS_COUNTER(g_containment_tests, "gsp.containment_tests");
DISC_OBS_COUNTER(g_support_inc, "support.increments");
DISC_OBS_COUNTER(g_support_inc_k4, "support.increments.k4plus");

// Sequence with its first flattened item removed (dropping an emptied
// leading transaction).
Sequence DropFirstItem(const Sequence& s) {
  DISC_CHECK(!s.Empty());
  Sequence out;
  for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
    const Item* begin = s.TxnBegin(t) + (t == 0 ? 1 : 0);
    if (begin == s.TxnEnd(t)) continue;
    out.AppendItemset(Itemset(std::vector<Item>(begin, s.TxnEnd(t))));
  }
  return out;
}

// Sequence with its last flattened item removed.
Sequence DropLast(const Sequence& s) {
  Sequence out = s;
  out.DropLastItem();
  return out;
}

// Sequence with the flattened item at `pos` removed.
Sequence DropItemAt(const Sequence& s, std::uint32_t pos) {
  Sequence out;
  std::uint32_t i = 0;
  for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
    std::vector<Item> items;
    for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p, ++i) {
      if (i != pos) items.push_back(*p);
    }
    if (!items.empty()) out.AppendItemset(Itemset(items));
  }
  return out;
}

// True if the last flattened item of s sits in a transaction of its own
// (determines whether a join appends it as a new transaction).
bool LastItemAlone(const Sequence& s) {
  return s.TxnSize(s.NumTransactions() - 1) == 1;
}

}  // namespace

PatternSet Gsp::DoMine(const SequenceDatabase& db,
                       const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  PatternSet out;
  const std::uint32_t delta = options.min_support_count;
  if (db.empty() || delta > db.size()) return out;

  // Frequent 1-sequences.
  std::vector<std::uint32_t> item_support(db.max_item() + 1, 0);
  std::vector<std::uint64_t> seen(db.max_item() + 1, 0);
  for (Cid cid = 0; cid < db.size(); ++cid) {
    for (const Item x : db[cid].items()) {
      if (seen[x] != cid + 1u) {
        seen[x] = cid + 1u;
        ++item_support[x];
        DISC_OBS_INC(g_support_inc);
      }
    }
  }
  std::vector<Sequence> frequent;  // F_{k-1}, ascending
  std::vector<Item> freq_items;
  for (Item x = 1; x <= db.max_item(); ++x) {
    if (item_support[x] >= delta) {
      Sequence p;
      p.AppendNewItemset(x);
      out.Add(p, item_support[x]);
      frequent.push_back(p);
      freq_items.push_back(x);
    }
  }

  for (std::uint32_t k = 2; !frequent.empty(); ++k) {
    if (options.max_length != 0 && k > options.max_length) break;
    // ---- Candidate generation.
    std::set<Sequence, SequenceLess> candidates;
    if (k == 2) {
      // F1 x F1 joins: <(x)(y)> for all pairs, <(x,y)> for x < y.
      for (const Item x : freq_items) {
        for (const Item y : freq_items) {
          Sequence c;
          c.AppendNewItemset(x);
          c.AppendNewItemset(y);
          candidates.insert(std::move(c));
          if (x < y) {
            Sequence ci;
            ci.AppendNewItemset(x);
            ci.AppendToLastItemset(y);
            candidates.insert(std::move(ci));
          }
        }
      }
    } else {
      // Join s1 with s2 when drop-first(s1) == drop-last(s2); the candidate
      // appends s2's last item to s1, as a new transaction iff it formed
      // one in s2.
      std::map<Sequence, std::vector<const Sequence*>, SequenceLess>
          by_drop_first;
      for (const Sequence& s1 : frequent) {
        by_drop_first[DropFirstItem(s1)].push_back(&s1);
      }
      for (const Sequence& s2 : frequent) {
        const auto it = by_drop_first.find(DropLast(s2));
        if (it == by_drop_first.end()) continue;
        const Item last = s2.LastItem();
        const bool alone = LastItemAlone(s2);
        for (const Sequence* s1 : it->second) {
          if (alone) {
            candidates.insert(Extend(*s1, last, ExtType::kSequence));
          } else if (last > s1->LastItem()) {
            candidates.insert(Extend(*s1, last, ExtType::kItemset));
          }
        }
      }
    }
    DISC_OBS_ADD(g_candidates, candidates.size());
    // ---- Prune: every delete-one-item subsequence must be frequent.
    std::vector<Sequence> survivors;
    for (const Sequence& c : candidates) {
      bool ok = true;
      for (std::uint32_t pos = 0; pos < c.Length() && ok; ++pos) {
        const Sequence sub = DropItemAt(c, pos);
        ok = std::binary_search(frequent.begin(), frequent.end(), sub,
                                SequenceLess());
      }
      if (ok) survivors.push_back(c);
    }
    DISC_OBS_ADD(g_survivors, survivors.size());
    // ---- Count supports with one database scan per level. The candidate
    // hash tree (EDBT'96 §3.2.1) pays off when customer sequences are short
    // enough that their items miss most hash buckets; long dense sequences
    // reach every subtree anyway, so those use an item-presence prescreen
    // in front of the exact containment test instead.
    std::vector<std::uint32_t> support(survivors.size(), 0);
    const double avg_len =
        db.AvgTransactionsPerCustomer() * db.AvgItemsPerTransaction();
    if (survivors.size() >= 32 && avg_len <= 24.0) {
      const CandidateHashTree tree(&survivors);
      for (const SequenceView s : db) {
        tree.CountSupports(s, &support);
      }
    } else {
      const std::size_t words = static_cast<std::size_t>(db.max_item()) / 64 + 1;
      std::vector<std::uint64_t> present(words);
      for (const SequenceView s : db) {
        std::fill(present.begin(), present.end(), 0);
        for (const Item x : s.items()) {
          present[x >> 6] |= 1ull << (x & 63);
        }
        for (std::size_t i = 0; i < survivors.size(); ++i) {
          bool maybe = true;
          for (const Item x : survivors[i].items()) {
            if (((present[x >> 6] >> (x & 63)) & 1u) == 0) {
              maybe = false;
              break;
            }
          }
          if (maybe) {
            DISC_OBS_INC(g_containment_tests);
            if (Contains(s, survivors[i])) ++support[i];
          }
        }
      }
    }
#if DISC_OBS_ENABLED
    {
      // Every unit of support was one counting increment this level; GSP
      // support-counts at every length, unlike the DISC strategy.
      std::uint64_t total = 0;
      for (const std::uint32_t sup : support) total += sup;
      DISC_OBS_ADD(g_support_inc, total);
      if (k >= 4) DISC_OBS_ADD(g_support_inc_k4, total);
    }
#endif
    frequent.clear();
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (support[i] >= delta) {
        out.Add(survivors[i], support[i]);
        frequent.push_back(survivors[i]);
      }
    }
  }
  return out;
}

}  // namespace disc
