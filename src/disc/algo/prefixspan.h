// PrefixSpan (Pei et al., ICDE 2001) — the paper's baseline — in both of the
// variants the evaluation uses:
//
//  * kPhysical: level-by-level *physical* projection; every projected
//    database materializes copies of the customer-sequence suffixes, which
//    is the cost the paper's Figure 8/9 comparisons charge to "PrefixSpan".
//  * kPseudo: pseudo-projection ("Pseudo" in the paper); projected databases
//    are (sequence, transaction, offset) pointers into the original
//    database, so no copying happens as long as everything fits in memory.
//
// Both variants share one recursion; extension counting follows the
// standard postfix rules (items after the projection point extend the last
// itemset; a later transaction containing the whole last itemset contributes
// its larger items as itemset extensions; any item in a strictly later
// transaction is a sequence extension).
#ifndef DISC_ALGO_PREFIXSPAN_H_
#define DISC_ALGO_PREFIXSPAN_H_

#include "disc/algo/miner.h"

namespace disc {

/// PrefixSpan frequent-sequence miner. See file comment.
class PrefixSpan : public Miner {
 public:
  enum class Projection { kPhysical, kPseudo };

  explicit PrefixSpan(Projection mode) : mode_(mode) {}

  std::string name() const override {
    return mode_ == Projection::kPhysical ? "prefixspan" : "pseudo";
  }

 protected:
  PatternSet DoMine(const SequenceDatabase& db,
                    const MineOptions& options) override;

 private:
  Projection mode_;
};

}  // namespace disc

#endif  // DISC_ALGO_PREFIXSPAN_H_
