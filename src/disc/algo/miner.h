// Common interface implemented by every sequential-pattern miner in the
// library (DISC-all, Dynamic DISC-all, PrefixSpan, Pseudo, GSP, SPADE,
// SPAM), plus a by-name factory for the benchmark drivers.
#ifndef DISC_ALGO_MINER_H_
#define DISC_ALGO_MINER_H_

#include <memory>
#include <string>
#include <vector>

#include "disc/algo/pattern_set.h"
#include "disc/common/cancel.h"
#include "disc/common/status.h"
#include "disc/obs/mine_stats.h"
#include "disc/obs/progress.h"
#include "disc/seq/database.h"

namespace disc {

using obs::MineStats;

/// Mining parameters shared by all algorithms.
struct MineOptions {
  /// A pattern is frequent iff its support count is >= min_support_count.
  /// (The paper's Lemma 2.1 treats delta as an inclusive threshold.)
  /// Must be >= 1.
  std::uint32_t min_support_count = 1;

  /// If non-zero, patterns longer than this are not reported (or explored).
  std::uint32_t max_length = 0;

  /// Worker threads for the partition-scheduled miners ("disc-all",
  /// "disc-all-nobilevel", "dynamic-disc-all"): the independent
  /// first-level ⟨λ⟩-partitions are fanned out largest-first to a thread
  /// pool and the per-partition results merged deterministically, so the
  /// mined PatternSet is identical for every value. 1 (the default) mines
  /// serially on the calling thread; 0 resolves to the hardware
  /// concurrency. The other algorithms ignore the knob.
  std::uint32_t threads = 1;

  /// Optional cooperative cancellation token. Not owned; must outlive the
  /// Mine() call. Polled at partition boundaries — see
  /// docs/ROBUSTNESS.md for the partial-result guarantee.
  CancelToken* cancel = nullptr;

  /// If non-zero, the run stops cooperatively once this many milliseconds
  /// of wall clock have elapsed, returning the partial result with
  /// kDeadlineExceeded.
  std::uint64_t deadline_ms = 0;

  /// Computes the support-count threshold delta for a relative minimum
  /// support (fraction of |db|), as used throughout the paper's evaluation.
  ///
  /// Convention (paper Lemma 2.1): delta is an *inclusive* threshold — a
  /// pattern is frequent iff support >= delta — so this returns
  /// ceil(fraction * db_size), i.e. the smallest count whose relative
  /// support reaches `fraction`. Products that land exactly on an integer
  /// stay there (an epsilon guard absorbs floating-point noise, so e.g.
  /// 0.005 * 200 yields 1, not 2), fraction 1.0 yields db_size, and the
  /// result is clamped to >= 1. `fraction` must be in (0, 1]; 0 aborts.
  static std::uint32_t CountForFraction(std::size_t db_size, double fraction);
};

/// What TryMine returns: the mined patterns plus the run's Status. On a
/// stop (kCancelled / kDeadlineExceeded) or a contained worker failure
/// (kInternal), `patterns` holds the well-defined partial result — every
/// pattern in it has its exact support. For the partition-scheduled
/// miners the partial set is a comparative-order prefix of the full
/// result (docs/ROBUSTNESS.md).
struct MineResult {
  PatternSet patterns;
  Status status;
};

/// Abstract sequential-pattern miner.
///
/// Mine()/TryMine() are template methods: they wrap the algorithm-specific
/// DoMine() with the observability harness (a "mine/<name>" trace span,
/// wall-clock timing, a metrics-registry snapshot diff, and a peak-RSS
/// probe) and the run-control harness (cancellation, deadline, contained
/// failures), so every miner exposes a uniform MineStats and Status
/// without bespoke bookkeeping.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Mines all frequent sequences of `db` under `options`, collecting
  /// last_stats() as a side effect. Recoverable failures come back as a
  /// non-OK Status; invalid options as kInvalidArgument (never an abort).
  MineResult TryMine(const SequenceDatabase& db, const MineOptions& options);

  /// Legacy surface: as TryMine, but returns the patterns alone (partial
  /// on a stop — check last_status()) and aborts on invalid options.
  PatternSet Mine(const SequenceDatabase& db, const MineOptions& options);

  /// Work and resource report of the most recent Mine()/TryMine() call
  /// (empty before the first call). Counter names are catalogued in
  /// docs/OBSERVABILITY.md.
  const MineStats& last_stats() const { return stats_; }

  /// Status of the most recent Mine()/TryMine() call (OK before the
  /// first call).
  const Status& last_status() const { return status_; }

  /// Stable short name ("disc-all", "prefixspan", ...).
  virtual std::string name() const = 0;

 protected:
  /// The algorithm itself, implemented by each miner. Implementations
  /// poll run_control() cooperatively at partition boundaries.
  virtual PatternSet DoMine(const SequenceDatabase& db,
                            const MineOptions& options) = 0;

  /// The active run's stop state; valid only while DoMine() executes
  /// (null outside a run).
  RunControl* run_control() const { return ctl_; }

  /// The active run's live-telemetry handle (obs/progress.h); null outside
  /// a run and when the run registry is disabled. The partition-scheduled
  /// miners tick it at their cancellation checkpoints.
  obs::RunTelemetry* telemetry() const { return telemetry_.get(); }

 private:
  MineStats stats_;
  Status status_;
  RunControl* ctl_ = nullptr;
  std::shared_ptr<obs::RunTelemetry> telemetry_;
};

/// Creates a miner by name; aborts on an unknown name. Known names:
/// "prefixspan", "pseudo", "gsp", "spade", "spam", "disc-all",
/// "disc-all-nobilevel", "dynamic-disc-all".
std::unique_ptr<Miner> CreateMiner(const std::string& name);

/// Creates a miner by name; kInvalidArgument on an unknown name.
StatusOr<std::unique_ptr<Miner>> TryCreateMiner(const std::string& name);

/// All registered miner names (for --algos=all sweeps).
std::vector<std::string> AllMinerNames();

}  // namespace disc

#endif  // DISC_ALGO_MINER_H_
