// Common interface implemented by every sequential-pattern miner in the
// library (DISC-all, Dynamic DISC-all, PrefixSpan, Pseudo, GSP, SPADE,
// SPAM), plus a by-name factory for the benchmark drivers.
#ifndef DISC_ALGO_MINER_H_
#define DISC_ALGO_MINER_H_

#include <memory>
#include <string>
#include <vector>

#include "disc/algo/pattern_set.h"
#include "disc/obs/mine_stats.h"
#include "disc/seq/database.h"

namespace disc {

using obs::MineStats;

/// Mining parameters shared by all algorithms.
struct MineOptions {
  /// A pattern is frequent iff its support count is >= min_support_count.
  /// (The paper's Lemma 2.1 treats delta as an inclusive threshold.)
  /// Must be >= 1.
  std::uint32_t min_support_count = 1;

  /// If non-zero, patterns longer than this are not reported (or explored).
  std::uint32_t max_length = 0;

  /// Worker threads for the partition-scheduled miners ("disc-all",
  /// "disc-all-nobilevel", "dynamic-disc-all"): the independent
  /// first-level ⟨λ⟩-partitions are fanned out largest-first to a thread
  /// pool and the per-partition results merged deterministically, so the
  /// mined PatternSet is identical for every value. 1 (the default) mines
  /// serially on the calling thread; 0 resolves to the hardware
  /// concurrency. The other algorithms ignore the knob.
  std::uint32_t threads = 1;

  /// Computes the support-count threshold delta for a relative minimum
  /// support (fraction of |db|), as used throughout the paper's evaluation.
  ///
  /// Convention (paper Lemma 2.1): delta is an *inclusive* threshold — a
  /// pattern is frequent iff support >= delta — so this returns
  /// ceil(fraction * db_size), i.e. the smallest count whose relative
  /// support reaches `fraction`. Products that land exactly on an integer
  /// stay there (an epsilon guard absorbs floating-point noise, so e.g.
  /// 0.005 * 200 yields 1, not 2), fraction 1.0 yields db_size, and the
  /// result is clamped to >= 1. `fraction` must be in (0, 1]; 0 aborts.
  static std::uint32_t CountForFraction(std::size_t db_size, double fraction);
};

/// Abstract sequential-pattern miner.
///
/// Mine() is a template method: it wraps the algorithm-specific DoMine()
/// with the observability harness (a "mine/<name>" trace span, wall-clock
/// timing, a metrics-registry snapshot diff, and a peak-RSS probe) so every
/// miner exposes a uniform MineStats without bespoke bookkeeping.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Mines all frequent sequences of `db` under `options`, collecting
  /// last_stats() as a side effect.
  PatternSet Mine(const SequenceDatabase& db, const MineOptions& options);

  /// Work and resource report of the most recent Mine() call (empty before
  /// the first call). Counter names are catalogued in docs/OBSERVABILITY.md.
  const MineStats& last_stats() const { return stats_; }

  /// Stable short name ("disc-all", "prefixspan", ...).
  virtual std::string name() const = 0;

 protected:
  /// The algorithm itself, implemented by each miner.
  virtual PatternSet DoMine(const SequenceDatabase& db,
                            const MineOptions& options) = 0;

 private:
  MineStats stats_;
};

/// Creates a miner by name; aborts on an unknown name. Known names:
/// "prefixspan", "pseudo", "gsp", "spade", "spam", "disc-all",
/// "disc-all-nobilevel", "dynamic-disc-all".
std::unique_ptr<Miner> CreateMiner(const std::string& name);

/// All registered miner names (for --algos=all sweeps).
std::vector<std::string> AllMinerNames();

}  // namespace disc

#endif  // DISC_ALGO_MINER_H_
