// Subsequence containment and leftmost (greedy) embeddings.
//
// Sequence A is contained in B if there are transactions i1 < i2 < ... < in
// of B with every itemset of A a subset of the corresponding transaction.
// The greedy embedding — match each itemset of the pattern into the earliest
// feasible transaction — minimizes every matched transaction index
// simultaneously (standard exchange argument), which is what the k-minimum
// machinery relies on.
#ifndef DISC_SEQ_CONTAINMENT_H_
#define DISC_SEQ_CONTAINMENT_H_

#include <vector>

#include "disc/seq/database.h"
#include "disc/seq/sequence.h"
#include "disc/seq/view.h"

namespace disc {

/// Result of a leftmost-embedding search.
struct Embedding {
  /// True if the pattern is contained in the sequence.
  bool found = false;
  /// Transaction (0-based) matching the pattern's last itemset; only valid
  /// when found. For an empty pattern, found is true and end_txn is kNoTxn
  /// (the embedding ends "before the first transaction").
  std::uint32_t end_txn = kNoTxn;
};

/// Earliest transaction >= start_txn of s whose itemset contains
/// [begin, end); kNoTxn if none. [begin, end) must be sorted.
std::uint32_t FindTxnWithItemset(SequenceView s, std::uint32_t start_txn,
                                 const Item* begin, const Item* end);

/// Greedy leftmost embedding of `pattern` into `s`. If `matched_txns` is
/// non-null it receives the matched transaction index for every itemset of
/// the pattern (only meaningful when found).
Embedding LeftmostEmbedding(SequenceView s, const Sequence& pattern,
                            std::vector<std::uint32_t>* matched_txns = nullptr);

/// True if `pattern` is a subsequence of `s`.
bool Contains(SequenceView s, const Sequence& pattern);

/// Number of database sequences containing `pattern` (each counted once).
std::uint32_t CountSupport(const SequenceDatabase& db, const Sequence& pattern);

}  // namespace disc

#endif  // DISC_SEQ_CONTAINMENT_H_
