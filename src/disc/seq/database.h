// SequenceDatabase: the collection of customer sequences to be mined.
#ifndef DISC_SEQ_DATABASE_H_
#define DISC_SEQ_DATABASE_H_

#include <vector>

#include "disc/seq/sequence.h"
#include "disc/seq/types.h"

namespace disc {

/// A database of customer sequences. The customer id (CID) of a sequence is
/// its index. The database tracks the largest item it contains so counting
/// arrays can be sized without a separate scan.
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  /// Appends a sequence and returns its CID.
  Cid Add(Sequence seq);

  std::size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }

  const Sequence& operator[](Cid cid) const { return sequences_[cid]; }
  const std::vector<Sequence>& sequences() const { return sequences_; }

  /// Largest item id present (0 for an empty database). Counting arrays are
  /// sized max_item()+1.
  Item max_item() const { return max_item_; }

  /// Total item occurrences across all sequences. O(1): maintained by Add,
  /// so shape summaries (bench banners, JSON reports) never rescan the
  /// database.
  std::uint64_t TotalItems() const { return total_items_; }

  /// Total transactions across all sequences. O(1).
  std::uint64_t TotalTransactions() const { return total_txns_; }

  /// Average transactions per customer (the paper's theta). O(1).
  double AvgTransactionsPerCustomer() const;

  /// Average items per transaction. O(1).
  double AvgItemsPerTransaction() const;

 private:
  std::vector<Sequence> sequences_;
  Item max_item_ = 0;
  std::uint64_t total_items_ = 0;
  std::uint64_t total_txns_ = 0;
};

}  // namespace disc

#endif  // DISC_SEQ_DATABASE_H_
