// SequenceDatabase: the collection of customer sequences to be mined.
//
// Backed by a single SequenceArena (flat CSR: one item buffer + transaction
// offsets + sequence offsets), so the whole database is three contiguous
// allocations shared read-only across pool workers. Indexing returns a
// non-owning SequenceView; the owning Sequence type is for patterns and
// ingestion only (docs/ARCHITECTURE.md).
#ifndef DISC_SEQ_DATABASE_H_
#define DISC_SEQ_DATABASE_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "disc/seq/arena.h"
#include "disc/seq/types.h"
#include "disc/seq/view.h"

namespace disc {

/// A database of customer sequences. The customer id (CID) of a sequence is
/// its index. The database tracks the largest item it contains so counting
/// arrays can be sized without a separate scan.
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  /// Appends a copy of a sequence and returns its CID. Accepts an owning
  /// Sequence through the implicit view conversion.
  Cid Add(SequenceView seq);

  /// Streaming ingestion straight into the arena (no intermediate owning
  /// Sequence): BeginSequence / AppendItem* / EndTransaction ... then
  /// EndSequence returns the new CID. Same invariants as
  /// SequenceArena's build API; callers feeding untrusted input must
  /// validate first (see seq/io.cc).
  void BeginSequence() {
    has_content_hash_ = false;  // mutation invalidates a loader-cached hash
    arena_.BeginSequence();
  }
  void AppendItem(Item x) {
    if (x > max_item_) max_item_ = x;
    arena_.AppendItem(x);
  }
  void EndTransaction() { arena_.EndTransaction(); }
  Cid EndSequence() {
    arena_.EndSequence();
    return static_cast<Cid>(arena_.size() - 1);
  }

  /// Bulk-reserves the arena ahead of a known-size load (ingestion
  /// pre-pass; avoids regrow churn).
  void Reserve(std::size_t items, std::size_t txns, std::size_t seqs) {
    arena_.Reserve(items, txns, seqs);
  }

  std::size_t size() const { return arena_.size(); }
  bool empty() const { return arena_.empty(); }

  SequenceView operator[](Cid cid) const { return arena_[cid]; }

  /// Range-for iteration yields SequenceView by value.
  SequenceArena::const_iterator begin() const { return arena_.begin(); }
  SequenceArena::const_iterator end() const { return arena_.end(); }

  /// The backing arena (for shape/byte summaries).
  const SequenceArena& arena() const { return arena_; }

  /// Largest item id present (0 for an empty database). Counting arrays are
  /// sized max_item()+1.
  Item max_item() const { return max_item_; }

  /// Total item occurrences across all sequences. O(1) off the arena
  /// offsets, so shape summaries (bench banners, JSON reports) never rescan
  /// the database.
  std::uint64_t TotalItems() const { return arena_.TotalItems(); }

  /// Total transactions across all sequences. O(1).
  std::uint64_t TotalTransactions() const { return arena_.TotalTransactions(); }

  /// Average transactions per customer (the paper's theta). O(1).
  double AvgTransactionsPerCustomer() const;

  /// Average items per transaction. O(1).
  double AvgItemsPerTransaction() const;

  /// --- Mapped backing (seq/storage.h loader seam) ---

  /// Installs read-only external CSR sections as this database's contents
  /// (see SequenceArena::AdoptExternal). `max_item` is the largest item in
  /// the sections — the loader has already validated it. The database must
  /// still be empty; the streaming build API is disabled afterwards.
  void AdoptExternal(std::shared_ptr<const void> keepalive, const Item* items,
                     std::size_t num_items, const std::uint32_t* txn_offsets,
                     std::size_t num_txn_offsets,
                     const std::uint32_t* seq_offsets,
                     std::size_t num_seq_offsets, Item max_item) {
    arena_.AdoptExternal(std::move(keepalive), items, num_items, txn_offsets,
                         num_txn_offsets, seq_offsets, num_seq_offsets);
    max_item_ = max_item;
  }

  /// True when the contents are backed by an external mapping (read-only).
  bool mapped() const { return arena_.mapped(); }

  /// --- Cached content hash ---
  ///
  /// The .dsa loader stores the file's verified content hash here, so
  /// FirstLevelState::ContentHash (and through it the engine QueryCache
  /// fingerprint) never rescans a mapped database. Cleared by any mutation.
  void SetCachedContentHash(std::uint64_t hash) {
    content_hash_ = hash;
    has_content_hash_ = true;
  }
  bool has_cached_content_hash() const { return has_content_hash_; }
  std::uint64_t cached_content_hash() const { return content_hash_; }

 private:
  SequenceArena arena_;
  Item max_item_ = 0;
  bool has_content_hash_ = false;
  std::uint64_t content_hash_ = 0;
};

}  // namespace disc

#endif  // DISC_SEQ_DATABASE_H_
