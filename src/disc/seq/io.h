// File I/O for sequence databases in the SPMF text format:
// one sequence per line; items are positive integers separated by spaces;
// -1 terminates each itemset and -2 terminates the sequence, e.g.
//   1 5 7 -1 2 -1 -2
//
// Two ingestion surfaces:
//   * Try* — recoverable: malformed input comes back as a Status
//     (kDataLoss / kIoError) with per-line context, or — in permissive
//     mode — malformed records are skipped and counted (the
//     "io.records.skipped" counter and ParseReport::skipped), so a serving
//     process can ingest a dirty file without dying. Whitespace-only lines
//     and CRLF line endings are tolerated in both modes, and the last line
//     does not need a trailing newline.
//   * the legacy aborting wrappers (FromSpmfString / LoadSpmf) — strict
//     parses that DISC_CHECK-abort with the same diagnostics; kept for
//     tests and one-shot tools where failing loudly is correct.
#ifndef DISC_SEQ_IO_H_
#define DISC_SEQ_IO_H_

#include <cstddef>
#include <string>

#include "disc/common/status.h"
#include "disc/seq/database.h"

namespace disc {

/// Ingestion behavior on malformed records.
struct ParseOptions {
  enum class OnError {
    kStrict,      ///< first malformed line fails the parse (kDataLoss)
    kPermissive,  ///< malformed lines are skipped and counted
  };
  OnError on_error = OnError::kStrict;

  static ParseOptions Strict() { return ParseOptions{}; }
  static ParseOptions Permissive() {
    return ParseOptions{OnError::kPermissive};
  }
};

/// What a Try* parse saw. `skipped` is non-zero only in permissive mode.
struct ParseReport {
  std::size_t records = 0;   ///< sequences successfully ingested
  std::size_t skipped = 0;   ///< malformed lines dropped (permissive)
  std::string first_error;   ///< diagnostic of the first skipped line
};

/// Serializes the database in SPMF format.
std::string ToSpmfString(const SequenceDatabase& db);

/// Parses a database from SPMF-format text. Strict mode returns kDataLoss
/// with "line N: ..." context on the first malformed record; permissive
/// mode skips malformed lines, bumps "io.records.skipped", and reports
/// them via `report` (optional, may be null).
StatusOr<SequenceDatabase> TryFromSpmfString(const std::string& text,
                                             const ParseOptions& options = {},
                                             ParseReport* report = nullptr);

/// Reads a database from a file. kIoError if the file cannot be opened;
/// otherwise as TryFromSpmfString, with the path prefixed to diagnostics.
/// Fail point: "io.read" (error makes the read fail with kIoError).
StatusOr<SequenceDatabase> TryLoadSpmf(const std::string& path,
                                       const ParseOptions& options = {},
                                       ParseReport* report = nullptr);

/// Parses a database from SPMF-format text. Aborts on malformed input.
SequenceDatabase FromSpmfString(const std::string& text);

/// Writes the database to a file. Returns false on I/O failure.
bool SaveSpmf(const SequenceDatabase& db, const std::string& path);

/// Reads a database from a file. Aborts if the file cannot be opened or is
/// malformed.
SequenceDatabase LoadSpmf(const std::string& path);

}  // namespace disc

#endif  // DISC_SEQ_IO_H_
