// File I/O for sequence databases in the SPMF text format:
// one sequence per line; items are positive integers separated by spaces;
// -1 terminates each itemset and -2 terminates the sequence, e.g.
//   1 5 7 -1 2 -1 -2
#ifndef DISC_SEQ_IO_H_
#define DISC_SEQ_IO_H_

#include <string>

#include "disc/seq/database.h"

namespace disc {

/// Serializes the database in SPMF format.
std::string ToSpmfString(const SequenceDatabase& db);

/// Parses a database from SPMF-format text. Aborts on malformed input.
SequenceDatabase FromSpmfString(const std::string& text);

/// Writes the database to a file. Returns false on I/O failure.
bool SaveSpmf(const SequenceDatabase& db, const std::string& path);

/// Reads a database from a file. Aborts if the file cannot be opened or is
/// malformed.
SequenceDatabase LoadSpmf(const std::string& path);

}  // namespace disc

#endif  // DISC_SEQ_IO_H_
