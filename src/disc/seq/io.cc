#include "disc/seq/io.h"

#include <fstream>
#include <sstream>

#include "disc/common/check.h"
#include "disc/obs/trace.h"

namespace disc {

std::string ToSpmfString(const SequenceDatabase& db) {
  std::string out;
  for (const Sequence& s : db.sequences()) {
    for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
      for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
        out += std::to_string(*p);
        out += ' ';
      }
      out += "-1 ";
    }
    out += "-2\n";
  }
  return out;
}

SequenceDatabase FromSpmfString(const std::string& text) {
  SequenceDatabase db;
  std::istringstream in(text);
  std::vector<Itemset> itemsets;
  std::vector<Item> current;
  long long tok;
  while (in >> tok) {
    if (tok == -1) {
      DISC_CHECK_MSG(!current.empty(), "empty itemset in SPMF input");
      itemsets.emplace_back(std::move(current));
      current.clear();
    } else if (tok == -2) {
      DISC_CHECK_MSG(current.empty(), "itemset not closed before -2");
      DISC_CHECK_MSG(!itemsets.empty(), "empty sequence in SPMF input");
      db.Add(Sequence(itemsets));
      itemsets.clear();
    } else {
      DISC_CHECK_MSG(tok > 0, "items must be positive");
      current.push_back(static_cast<Item>(tok));
    }
  }
  DISC_CHECK_MSG(current.empty() && itemsets.empty(),
                 "trailing unterminated sequence in SPMF input");
  return db;
}

bool SaveSpmf(const SequenceDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << ToSpmfString(db);
  return static_cast<bool>(out);
}

SequenceDatabase LoadSpmf(const std::string& path) {
  DISC_OBS_SPAN("io/load_spmf");
  std::ifstream in(path);
  DISC_CHECK_MSG(static_cast<bool>(in), "cannot open SPMF file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromSpmfString(buf.str());
}

}  // namespace disc
