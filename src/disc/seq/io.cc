#include "disc/seq/io.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "disc/common/check.h"
#include "disc/common/failpoint.h"
#include "disc/obs/metrics.h"
#include "disc/obs/trace.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_records_skipped, "io.records.skipped");

// One logical record is one line. The validate pass runs fully before any
// append, so a malformed line leaves the database untouched (this is what
// lets permissive mode skip it cleanly). Both passes share the same token
// walk — the historical bug class here was the counting pre-pass and the
// fill pass disagreeing about odd whitespace.
struct LineParser {
  std::vector<long long> tokens;  // reused across lines

  // Tokenizes [begin, end) — spaces, tabs, and a trailing '\r' (CRLF
  // input) all count as separators. Returns a diagnostic or empty.
  std::string Tokenize(const char* begin, const char* end) {
    tokens.clear();
    const char* p = begin;
    while (p < end) {
      if (std::isspace(static_cast<unsigned char>(*p))) {
        ++p;
        continue;
      }
      char* after = nullptr;
      const long long value = std::strtoll(p, &after, 10);
      if (after == p ||
          (after < end && !std::isspace(static_cast<unsigned char>(*after)))) {
        const char* tok_end = p;
        while (tok_end < end &&
               !std::isspace(static_cast<unsigned char>(*tok_end))) {
          ++tok_end;
        }
        return "malformed token '" + std::string(p, tok_end) +
               "' in SPMF input";
      }
      tokens.push_back(value);
      p = after;
    }
    return std::string();
  }

  // Structural validation of the tokenized line: one or more complete
  // "-2"-terminated sequences. Returns a diagnostic or empty.
  std::string Validate() const {
    bool seq_open = false;
    bool txn_open = false;
    Item last = kNoItem;
    for (const long long tok : tokens) {
      if (tok == -1) {
        if (!txn_open) return "empty itemset in SPMF input";
        txn_open = false;
        last = kNoItem;
      } else if (tok == -2) {
        if (txn_open) return "itemset not closed before -2";
        if (!seq_open) return "empty sequence in SPMF input";
        seq_open = false;
      } else if (tok <= 0) {
        return "items must be positive in SPMF input";
      } else if (tok > static_cast<long long>(
                           std::numeric_limits<Item>::max())) {
        return "item out of range in SPMF input";
      } else {
        const Item x = static_cast<Item>(tok);
        if (txn_open && x <= last) {
          return "itemset must be strictly ascending (sorted, no "
                 "duplicates) in SPMF input";
        }
        seq_open = true;
        txn_open = true;
        last = x;
      }
    }
    if (txn_open) return "unterminated itemset in SPMF input (missing -1)";
    if (seq_open) return "unterminated sequence in SPMF input (missing -2)";
    return std::string();
  }

  // Appends the validated tokens into the database. Only called after
  // Validate() returned empty.
  std::size_t AppendTo(SequenceDatabase* db) const {
    std::size_t records = 0;
    bool seq_open = false;
    for (const long long tok : tokens) {
      if (tok == -1) {
        db->EndTransaction();
      } else if (tok == -2) {
        db->EndSequence();
        seq_open = false;
        ++records;
      } else {
        if (!seq_open) {
          db->BeginSequence();
          seq_open = true;
        }
        db->AppendItem(static_cast<Item>(tok));
      }
    }
    return records;
  }
};

// Cheap whole-text token census for the one-shot arena reservation. Counts
// only token classes (no validation); slight overcounts from lines that
// later fail validation just mean a little spare capacity.
void ReserveFromCensus(const std::string& text, SequenceDatabase* db) {
  std::size_t items = 0, txns = 0, seqs = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  while (p < end) {
    if (std::isspace(static_cast<unsigned char>(*p))) {
      ++p;
      continue;
    }
    const char* tok = p;
    while (p < end && !std::isspace(static_cast<unsigned char>(*p))) ++p;
    const std::size_t len = static_cast<std::size_t>(p - tok);
    if (len == 2 && tok[0] == '-' && tok[1] == '1') {
      ++txns;
    } else if (len == 2 && tok[0] == '-' && tok[1] == '2') {
      ++seqs;
    } else {
      ++items;
    }
  }
  db->Reserve(items, txns, seqs);
}

}  // namespace

std::string ToSpmfString(const SequenceDatabase& db) {
  std::string out;
  for (const SequenceView s : db) {
    for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
      for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
        out += std::to_string(*p);
        out += ' ';
      }
      out += "-1 ";
    }
    out += "-2\n";
  }
  return out;
}

StatusOr<SequenceDatabase> TryFromSpmfString(const std::string& text,
                                             const ParseOptions& options,
                                             ParseReport* report) {
  SequenceDatabase db;
  ReserveFromCensus(text, &db);

  ParseReport local;
  ParseReport& rep = report != nullptr ? *report : local;
  rep = ParseReport{};

  LineParser parser;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    const bool last = end == std::string::npos;
    if (last) end = text.size();
    ++line_no;
    const char* begin_p = text.data() + start;
    const char* end_p = text.data() + end;
    start = end + 1;

    std::string diag = parser.Tokenize(begin_p, end_p);
    if (diag.empty() && !parser.tokens.empty()) diag = parser.Validate();
    if (!diag.empty()) {
      diag = "line " + std::to_string(line_no) + ": " + diag;
      if (options.on_error == ParseOptions::OnError::kStrict) {
        return Status::DataLoss(diag);
      }
      ++rep.skipped;
      DISC_OBS_INC(g_records_skipped);
      if (rep.first_error.empty()) rep.first_error = diag;
    } else if (!parser.tokens.empty()) {
      rep.records += parser.AppendTo(&db);
    }
    if (last) break;
  }
  return db;
}

StatusOr<SequenceDatabase> TryLoadSpmf(const std::string& path,
                                       const ParseOptions& options,
                                       ParseReport* report) {
  DISC_OBS_SPAN("io/load_spmf");
  if (DISC_FAILPOINT("io.read") == failpoint::Action::kError) {
    return Status::IoError("failpoint io.read injected while reading " +
                           path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open SPMF file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read from SPMF file " + path + " failed");
  }
  auto result = TryFromSpmfString(buf.str(), options, report);
  if (!result.ok()) {
    return Status(result.status().code(),
                  path + ": " + result.status().message());
  }
  return result;
}

SequenceDatabase FromSpmfString(const std::string& text) {
  auto result = TryFromSpmfString(text);
  DISC_CHECK_MSG(result.ok(), result.status().message().c_str());
  return std::move(*result);
}

bool SaveSpmf(const SequenceDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << ToSpmfString(db);
  return static_cast<bool>(out);
}

SequenceDatabase LoadSpmf(const std::string& path) {
  auto result = TryLoadSpmf(path);
  DISC_CHECK_MSG(result.ok(), result.status().message().c_str());
  return std::move(*result);
}

}  // namespace disc
