#include "disc/seq/io.h"

#include <fstream>
#include <sstream>

#include "disc/common/check.h"
#include "disc/obs/trace.h"

namespace disc {

std::string ToSpmfString(const SequenceDatabase& db) {
  std::string out;
  for (const SequenceView s : db) {
    for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
      for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
        out += std::to_string(*p);
        out += ' ';
      }
      out += "-1 ";
    }
    out += "-2\n";
  }
  return out;
}

SequenceDatabase FromSpmfString(const std::string& text) {
  SequenceDatabase db;

  // Pre-pass: count tokens so the arena is bulk-reserved once (-1 closes a
  // transaction, -2 closes a sequence, anything else is an item).
  {
    std::istringstream count_in(text);
    std::size_t items = 0, txns = 0, seqs = 0;
    long long tok;
    while (count_in >> tok) {
      if (tok == -1) {
        ++txns;
      } else if (tok == -2) {
        ++seqs;
      } else {
        ++items;
      }
    }
    db.Reserve(items, txns, seqs);
  }

  // Parse directly into the arena — no per-line vector<Itemset>
  // intermediary. Input is untrusted, so every structural invariant the
  // arena DCHECKs is CHECKed here with a loader-specific message first.
  std::istringstream in(text);
  bool seq_open = false;
  bool txn_open = false;
  Item last = kNoItem;
  long long tok;
  while (in >> tok) {
    if (tok == -1) {
      DISC_CHECK_MSG(txn_open, "empty itemset in SPMF input");
      db.EndTransaction();
      txn_open = false;
      last = kNoItem;
    } else if (tok == -2) {
      DISC_CHECK_MSG(!txn_open, "itemset not closed before -2");
      DISC_CHECK_MSG(seq_open, "empty sequence in SPMF input");
      db.EndSequence();
      seq_open = false;
    } else {
      DISC_CHECK_MSG(tok > 0, "items must be positive");
      const Item x = static_cast<Item>(tok);
      DISC_CHECK_MSG(!txn_open || x > last,
                     "itemset must be strictly ascending (sorted, no "
                     "duplicates) in SPMF input");
      if (!seq_open) {
        db.BeginSequence();
        seq_open = true;
      }
      db.AppendItem(x);
      txn_open = true;
      last = x;
    }
  }
  DISC_CHECK_MSG(!txn_open && !seq_open,
                 "trailing unterminated sequence in SPMF input");
  return db;
}

bool SaveSpmf(const SequenceDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << ToSpmfString(db);
  return static_cast<bool>(out);
}

SequenceDatabase LoadSpmf(const std::string& path) {
  DISC_OBS_SPAN("io/load_spmf");
  std::ifstream in(path);
  DISC_CHECK_MSG(static_cast<bool>(in), "cannot open SPMF file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromSpmfString(buf.str());
}

}  // namespace disc
