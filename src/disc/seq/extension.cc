#include "disc/seq/extension.h"

#include "disc/common/check.h"
#include "disc/seq/containment.h"

namespace disc {
namespace {

void SortUnique(std::vector<Item>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Minimum admissible item per extension type, derived from the floor under
// the (item, itemset-before-sequence) extension order. Shared by the scan
// and the set-based lookup so the two can never diverge.
void FloorMinItems(const std::pair<Item, ExtType>* floor, bool strict,
                   Item* s_min_item, Item* i_min_item) {
  *s_min_item = 1;
  *i_min_item = 1;
  if (floor == nullptr) return;
  const Item y = floor->first;
  if (floor->second == ExtType::kSequence) {
    *s_min_item = strict ? y + 1 : y;
    *i_min_item = y + 1;  // (y, I) < (y, S): equality never qualifies
  } else {
    *s_min_item = y;  // (y, S) > (y, I) even when strict
    *i_min_item = strict ? y + 1 : y;
  }
}

}  // namespace

EmbeddingEnds LeftmostEnds(SequenceView s, const Sequence& pattern,
                           const SequenceIndex* index) {
  EmbeddingEnds ends;
  if (pattern.Empty()) {
    ends.contained = true;
    return ends;
  }
  std::uint32_t next = 0;
  std::uint32_t prev = kNoTxn;
  std::uint32_t last = kNoTxn;
  for (std::uint32_t pt = 0; pt < pattern.NumTransactions(); ++pt) {
    const std::uint32_t t =
        index != nullptr
            ? index->NextTxnWithItemset(next, pattern.TxnBegin(pt),
                                        pattern.TxnEnd(pt))
            : FindTxnWithItemset(s, next, pattern.TxnBegin(pt),
                                 pattern.TxnEnd(pt));
    if (t == kNoTxn) return ends;  // not contained
    prev = last;
    last = t;
    next = t + 1;
  }
  ends.contained = true;
  ends.full_end = last;
  ends.prefix_end = pattern.NumTransactions() == 1 ? kNoTxn : prev;
  return ends;
}

ExtensionSets ScanExtensions(SequenceView s, const Sequence& pattern) {
  ExtensionSets out;
  ScanExtensionsWithEnds(s, pattern, LeftmostEnds(s, pattern), nullptr,
                         &out);
  return out;
}

void ScanExtensionsWithEnds(SequenceView s, const Sequence& pattern,
                            const EmbeddingEnds& ends,
                            const SequenceIndex* index, ExtensionSets* out) {
  out->contained = ends.contained;
  out->i_items.clear();
  out->s_items.clear();
  if (!ends.contained) return;
  ForEachExtensionWithEnds(
      s, pattern, ends,
      [out](Item x, ExtType type) {
        (type == ExtType::kItemset ? out->i_items : out->s_items)
            .push_back(x);
      },
      index);
  SortUnique(&out->i_items);
  SortUnique(&out->s_items);
}

MinExtension ScanMinExtension(SequenceView s, const Sequence& pattern,
                              const std::pair<Item, ExtType>* floor,
                              bool strict, const SequenceIndex* index) {
  return MinExtensionWithEnds(s, pattern, LeftmostEnds(s, pattern, index),
                              floor, strict, index);
}

MinExtension MinExtensionWithEnds(SequenceView s, const Sequence& pattern,
                                  const EmbeddingEnds& ends,
                                  const std::pair<Item, ExtType>* floor,
                                  bool strict, const SequenceIndex* index) {
  MinExtension out;
  Item s_min_item, i_min_item;
  FloorMinItems(floor, strict, &s_min_item, &i_min_item);

  if (!ends.contained) return out;
  out.contained = true;

  // Minimal s-extension: smallest item >= s_min_item in any transaction
  // strictly after the pattern's leftmost end. Unconstrained queries come
  // straight from the index's suffix-minimum table.
  Item best_s = kNoItem;
  const std::uint32_t s_from =
      ends.full_end == kNoTxn ? 0 : ends.full_end + 1;
  if (index != nullptr && s_min_item == 1) {
    best_s = index->SuffixMinItem(s_from);
  } else {
    for (std::uint32_t t = s_from; t < s.NumTransactions(); ++t) {
      const Item* p =
          std::lower_bound(s.TxnBegin(t), s.TxnEnd(t), s_min_item);
      if (p != s.TxnEnd(t) && (best_s == kNoItem || *p < best_s)) {
        best_s = *p;
      }
    }
  }

  // Minimal i-extension: smallest admissible item above the last itemset's
  // maximum in a transaction containing that itemset, positioned after the
  // prefix's leftmost end. With an index, only matching transactions are
  // visited; the cheap item probe always runs before the subset test.
  Item best_i = kNoItem;
  if (!pattern.Empty()) {
    const std::uint32_t last_pt = pattern.NumTransactions() - 1;
    const Item* last_begin = pattern.TxnBegin(last_pt);
    const Item* last_end = pattern.TxnEnd(last_pt);
    Item lo = *(last_end - 1) + 1;
    if (lo < i_min_item) lo = i_min_item;
    const std::uint32_t i_from =
        ends.prefix_end == kNoTxn ? 0 : ends.prefix_end + 1;
    for (std::uint32_t t = i_from; t < s.NumTransactions(); ++t) {
      if (index != nullptr) {
        t = index->NextTxnWithItemset(t, last_begin, last_end);
        if (t == kNoTxn) break;
        const Item* p = std::lower_bound(s.TxnBegin(t), s.TxnEnd(t), lo);
        if (p != s.TxnEnd(t) && (best_i == kNoItem || *p < best_i)) {
          best_i = *p;
        }
        continue;
      }
      const Item* p = std::lower_bound(s.TxnBegin(t), s.TxnEnd(t), lo);
      if (p == s.TxnEnd(t)) continue;
      if (best_i != kNoItem && *p >= best_i) continue;
      if (!SortedRangeIsSubset(last_begin, last_end, s.TxnBegin(t),
                               s.TxnEnd(t))) {
        continue;
      }
      best_i = *p;
    }
  }

  if (best_i != kNoItem &&
      (best_s == kNoItem ||
       CompareExtensions(best_i, ExtType::kItemset, best_s,
                         ExtType::kSequence) < 0)) {
    out.found = true;
    out.item = best_i;
    out.type = ExtType::kItemset;
  } else if (best_s != kNoItem) {
    out.found = true;
    out.item = best_s;
    out.type = ExtType::kSequence;
  }
  return out;
}

MinExtension MinExtensionFromSets(const ExtensionSets& sets,
                                  const std::pair<Item, ExtType>* floor,
                                  bool strict) {
  MinExtension out;
  if (!sets.contained) return out;
  out.contained = true;
  Item s_min_item, i_min_item;
  FloorMinItems(floor, strict, &s_min_item, &i_min_item);
  // The sets are sorted and complete, so each floored minimum is one
  // binary search; the tie-break mirrors MinExtensionWithEnds exactly.
  auto si = std::lower_bound(sets.s_items.begin(), sets.s_items.end(),
                             s_min_item);
  auto ii = std::lower_bound(sets.i_items.begin(), sets.i_items.end(),
                             i_min_item);
  const Item best_s = si == sets.s_items.end() ? kNoItem : *si;
  const Item best_i = ii == sets.i_items.end() ? kNoItem : *ii;
  if (best_i != kNoItem &&
      (best_s == kNoItem ||
       CompareExtensions(best_i, ExtType::kItemset, best_s,
                         ExtType::kSequence) < 0)) {
    out.found = true;
    out.item = best_i;
    out.type = ExtType::kItemset;
  } else if (best_s != kNoItem) {
    out.found = true;
    out.item = best_s;
    out.type = ExtType::kSequence;
  }
  return out;
}

}  // namespace disc
