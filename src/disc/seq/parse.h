// Text parsing of sequences in the paper's notation.
//
// Grammar (whitespace insensitive):
//   sequence := '<'? itemset+ '>'?
//   itemset  := '(' item (',' item)* ')'
//   item     := letter | integer
// Letters map a..z -> 1..26, matching the paper's examples; integers are
// taken verbatim.
//
// TryParseSequence is the recoverable entry point (kDataLoss on malformed
// text); the other parsers abort on malformed input — they exist for
// tests, examples, and literals in code, where failing loudly is correct.
#ifndef DISC_SEQ_PARSE_H_
#define DISC_SEQ_PARSE_H_

#include <string>
#include <vector>

#include "disc/common/status.h"
#include "disc/seq/database.h"
#include "disc/seq/sequence.h"

namespace disc {

/// Parses a single sequence, e.g. "<(a,e,g)(b)(h)>" or "(1,5)(2)".
/// Malformed text returns kDataLoss with a position diagnostic.
StatusOr<Sequence> TryParseSequence(const std::string& text);

/// Parses a single sequence; aborts on malformed input.
Sequence ParseSequence(const std::string& text);

/// Parses one sequence per non-empty line. Aborts on malformed input.
SequenceDatabase ParseDatabase(const std::string& text);

/// Convenience: parses several sequence literals into a database.
SequenceDatabase MakeDatabase(const std::vector<std::string>& lines);

}  // namespace disc

#endif  // DISC_SEQ_PARSE_H_
