// Text parsing of sequences in the paper's notation.
//
// Grammar (whitespace insensitive):
//   sequence := '<'? itemset+ '>'?
//   itemset  := '(' item (',' item)* ')'
//   item     := letter | integer
// Letters map a..z -> 1..26, matching the paper's examples; integers are
// taken verbatim. Parsing aborts on malformed input (these parsers exist for
// tests, examples, and file loading, where failing loudly is correct).
#ifndef DISC_SEQ_PARSE_H_
#define DISC_SEQ_PARSE_H_

#include <string>
#include <vector>

#include "disc/seq/database.h"
#include "disc/seq/sequence.h"

namespace disc {

/// Parses a single sequence, e.g. "<(a,e,g)(b)(h)>" or "(1,5)(2)".
Sequence ParseSequence(const std::string& text);

/// Parses one sequence per non-empty line.
SequenceDatabase ParseDatabase(const std::string& text);

/// Convenience: parses several sequence literals into a database.
SequenceDatabase MakeDatabase(const std::vector<std::string>& lines);

}  // namespace disc

#endif  // DISC_SEQ_PARSE_H_
