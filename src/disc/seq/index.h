// Per-sequence occurrence index: for each distinct item, the sorted list of
// transactions containing it, plus a suffix-minimum item table.
//
// The DISC inner loop re-embeds (k-1)-sequence prefixes into the same
// customer sequences thousands of times; with this index each embedding
// step is a handful of binary searches (jump to the next transaction
// containing an itemset) instead of a linear scan over transactions, and
// the unconstrained "minimum item in the remaining suffix" query is O(1).
//
// An index is immutable and tied to the sequence it was built from; all
// consumers accept a null index and fall back to direct scans.
#ifndef DISC_SEQ_INDEX_H_
#define DISC_SEQ_INDEX_H_

#include <cstdint>
#include <vector>

#include "disc/seq/view.h"
#include "disc/seq/types.h"

namespace disc {

/// Occurrence index of one sequence. See file comment.
class SequenceIndex {
 public:
  /// Builds the index in O(length log length). The index copies everything
  /// it needs — it retains no pointers into `s`, so it stays valid even if
  /// the viewed storage later moves or is cleared.
  explicit SequenceIndex(SequenceView s);

  /// First transaction >= start containing item x; kNoTxn if none.
  std::uint32_t NextTxnWithItem(Item x, std::uint32_t start) const;

  /// First transaction >= start whose itemset contains the sorted range
  /// [begin, end); kNoTxn if none. The range must be non-empty.
  std::uint32_t NextTxnWithItemset(std::uint32_t start, const Item* begin,
                                   const Item* end) const;

  /// Smallest item occurring in transactions >= start; kNoItem if none.
  Item SuffixMinItem(std::uint32_t start) const;

  /// Number of transactions of the indexed sequence.
  std::uint32_t NumTransactions() const { return num_txns_; }

 private:
  // Occurrence lists in CSR form, ordered by item: row r covers item
  // row_items_[r] with transactions txns_[row_offsets_[r] ..
  // row_offsets_[r+1]).
  std::vector<Item> row_items_;           // sorted distinct items
  std::vector<std::uint32_t> row_offsets_;  // size rows+1
  std::vector<std::uint32_t> txns_;         // sorted within each row
  std::vector<Item> suffix_min_;            // size num_txns_+1, [n] = kNoItem
  std::uint32_t num_txns_ = 0;
};

}  // namespace disc

#endif  // DISC_SEQ_INDEX_H_
