// Fundamental scalar types of the sequence-mining domain.
#ifndef DISC_SEQ_TYPES_H_
#define DISC_SEQ_TYPES_H_

#include <cstdint>

namespace disc {

/// Item identifier. Valid items are 1..alphabet_size; 0 is reserved as the
/// "no item" sentinel.
using Item = std::uint32_t;

/// Customer (sequence) identifier: the index of a sequence in its database.
using Cid = std::uint32_t;

/// Sentinel item meaning "none".
inline constexpr Item kNoItem = 0;

/// Sentinel for "no transaction".
inline constexpr std::uint32_t kNoTxn = 0xffffffffu;

}  // namespace disc

#endif  // DISC_SEQ_TYPES_H_
