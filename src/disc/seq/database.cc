#include "disc/seq/database.h"

#include "disc/common/check.h"

namespace disc {

Cid SequenceDatabase::Add(Sequence seq) {
  DISC_DCHECK(seq.IsWellFormed());
  for (const Item x : seq.items()) {
    if (x > max_item_) max_item_ = x;
  }
  sequences_.push_back(std::move(seq));
  return static_cast<Cid>(sequences_.size() - 1);
}

std::uint64_t SequenceDatabase::TotalItems() const {
  std::uint64_t n = 0;
  for (const Sequence& s : sequences_) n += s.Length();
  return n;
}

double SequenceDatabase::AvgTransactionsPerCustomer() const {
  if (sequences_.empty()) return 0.0;
  std::uint64_t n = 0;
  for (const Sequence& s : sequences_) n += s.NumTransactions();
  return static_cast<double>(n) / static_cast<double>(sequences_.size());
}

double SequenceDatabase::AvgItemsPerTransaction() const {
  std::uint64_t txns = 0;
  for (const Sequence& s : sequences_) txns += s.NumTransactions();
  if (txns == 0) return 0.0;
  return static_cast<double>(TotalItems()) / static_cast<double>(txns);
}

}  // namespace disc
