#include "disc/seq/database.h"

#include "disc/common/check.h"

namespace disc {

Cid SequenceDatabase::Add(Sequence seq) {
  DISC_DCHECK(seq.IsWellFormed());
  for (const Item x : seq.items()) {
    if (x > max_item_) max_item_ = x;
  }
  total_items_ += seq.Length();
  total_txns_ += seq.NumTransactions();
  sequences_.push_back(std::move(seq));
  return static_cast<Cid>(sequences_.size() - 1);
}

double SequenceDatabase::AvgTransactionsPerCustomer() const {
  if (sequences_.empty()) return 0.0;
  return static_cast<double>(total_txns_) /
         static_cast<double>(sequences_.size());
}

double SequenceDatabase::AvgItemsPerTransaction() const {
  if (total_txns_ == 0) return 0.0;
  return static_cast<double>(total_items_) /
         static_cast<double>(total_txns_);
}

}  // namespace disc
