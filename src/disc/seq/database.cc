#include "disc/seq/database.h"

#include "disc/common/check.h"

namespace disc {

Cid SequenceDatabase::Add(SequenceView seq) {
  DISC_DCHECK(seq.IsWellFormed());
  has_content_hash_ = false;  // mutation invalidates a loader-cached hash
  for (const Item x : seq.items()) {
    if (x > max_item_) max_item_ = x;
  }
  arena_.AppendCopy(seq);
  return static_cast<Cid>(arena_.size() - 1);
}

double SequenceDatabase::AvgTransactionsPerCustomer() const {
  if (arena_.empty()) return 0.0;
  return static_cast<double>(arena_.TotalTransactions()) /
         static_cast<double>(arena_.size());
}

double SequenceDatabase::AvgItemsPerTransaction() const {
  if (arena_.TotalTransactions() == 0) return 0.0;
  return static_cast<double>(arena_.TotalItems()) /
         static_cast<double>(arena_.TotalTransactions());
}

}  // namespace disc
