#include "disc/seq/parse.h"

#include <cctype>

#include "disc/common/check.h"

namespace disc {
namespace {

// Skips spaces and the decorative '<' '>' characters.
void SkipFluff(const std::string& s, std::size_t* i) {
  while (*i < s.size() &&
         (std::isspace(static_cast<unsigned char>(s[*i])) || s[*i] == '<' ||
          s[*i] == '>')) {
    ++*i;
  }
}

Item ParseItem(const std::string& s, std::size_t* i) {
  SkipFluff(s, i);
  DISC_CHECK_MSG(*i < s.size(), "expected item");
  const char c = s[*i];
  if (std::isalpha(static_cast<unsigned char>(c))) {
    ++*i;
    const char lower = static_cast<char>(std::tolower(c));
    return static_cast<Item>(lower - 'a' + 1);
  }
  DISC_CHECK_MSG(std::isdigit(static_cast<unsigned char>(c)),
                 "expected letter or integer item");
  Item value = 0;
  while (*i < s.size() && std::isdigit(static_cast<unsigned char>(s[*i]))) {
    value = value * 10 + static_cast<Item>(s[*i] - '0');
    ++*i;
  }
  DISC_CHECK_MSG(value != kNoItem, "item 0 is reserved");
  return value;
}

}  // namespace

Sequence ParseSequence(const std::string& text) {
  std::vector<Itemset> itemsets;
  std::size_t i = 0;
  SkipFluff(text, &i);
  while (i < text.size()) {
    DISC_CHECK_MSG(text[i] == '(', "expected '('");
    ++i;
    std::vector<Item> items;
    for (;;) {
      items.push_back(ParseItem(text, &i));
      SkipFluff(text, &i);
      DISC_CHECK_MSG(i < text.size(), "unterminated itemset");
      if (text[i] == ',') {
        ++i;
        continue;
      }
      DISC_CHECK_MSG(text[i] == ')', "expected ',' or ')'");
      ++i;
      break;
    }
    itemsets.emplace_back(std::move(items));
    SkipFluff(text, &i);
  }
  return Sequence(itemsets);
}

SequenceDatabase ParseDatabase(const std::string& text) {
  SequenceDatabase db;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) db.Add(ParseSequence(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return db;
}

SequenceDatabase MakeDatabase(const std::vector<std::string>& lines) {
  SequenceDatabase db;
  for (const std::string& line : lines) db.Add(ParseSequence(line));
  return db;
}

}  // namespace disc
