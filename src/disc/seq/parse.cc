#include "disc/seq/parse.h"

#include <cctype>

#include "disc/common/check.h"

namespace disc {
namespace {

// Recursive-descent parser for the paper notation. Errors collect into
// `error` (first one wins) instead of aborting, so TryParseSequence can
// surface them as a Status while ParseSequence keeps its loud-abort
// contract.
struct SeqParser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  bool Fail(const char* msg) {
    if (error.empty()) {
      error = std::string(msg) + " at position " + std::to_string(i);
    }
    return false;
  }

  // Skips spaces and the decorative '<' '>' characters.
  void SkipFluff() {
    while (i < s.size() &&
           (std::isspace(static_cast<unsigned char>(s[i])) || s[i] == '<' ||
            s[i] == '>')) {
      ++i;
    }
  }

  bool ParseItem(Item* out) {
    SkipFluff();
    if (i >= s.size()) return Fail("expected item");
    const char c = s[i];
    if (std::isalpha(static_cast<unsigned char>(c))) {
      ++i;
      const char lower = static_cast<char>(std::tolower(c));
      *out = static_cast<Item>(lower - 'a' + 1);
      return true;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Fail("expected letter or integer item");
    }
    Item value = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      value = value * 10 + static_cast<Item>(s[i] - '0');
      ++i;
    }
    if (value == kNoItem) return Fail("item 0 is reserved");
    *out = value;
    return true;
  }

  bool Parse(std::vector<Itemset>* itemsets) {
    SkipFluff();
    while (i < s.size()) {
      if (s[i] != '(') return Fail("expected '('");
      ++i;
      std::vector<Item> items;
      for (;;) {
        Item item = kNoItem;
        if (!ParseItem(&item)) return false;
        items.push_back(item);
        SkipFluff();
        if (i >= s.size()) return Fail("unterminated itemset");
        if (s[i] == ',') {
          ++i;
          continue;
        }
        if (s[i] != ')') return Fail("expected ',' or ')'");
        ++i;
        break;
      }
      itemsets->emplace_back(std::move(items));
      SkipFluff();
    }
    return true;
  }
};

}  // namespace

StatusOr<Sequence> TryParseSequence(const std::string& text) {
  SeqParser parser{text, 0, {}};
  std::vector<Itemset> itemsets;
  if (!parser.Parse(&itemsets)) {
    return Status::DataLoss("cannot parse sequence '" + text +
                            "': " + parser.error);
  }
  return Sequence(itemsets);
}

Sequence ParseSequence(const std::string& text) {
  auto result = TryParseSequence(text);
  DISC_CHECK_MSG(result.ok(), result.status().message().c_str());
  return std::move(*result);
}

SequenceDatabase ParseDatabase(const std::string& text) {
  SequenceDatabase db;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) db.Add(ParseSequence(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return db;
}

SequenceDatabase MakeDatabase(const std::vector<std::string>& lines) {
  SequenceDatabase db;
  for (const std::string& line : lines) db.Add(ParseSequence(line));
  return db;
}

}  // namespace disc
