// SequenceView: a non-owning, trivially-copyable view of one customer
// sequence, carrying the same flattened-access API as Sequence.
//
// A view is two pointers and a transaction count: the item buffer it reads
// from (`base`), and `num_txns + 1` transaction offsets. Offsets are
// *absolute positions* into `base` — `offsets[0]` is where the sequence
// starts, which is 0 for a view of an owning Sequence but arbitrary for a
// view into a SequenceArena slab. Flattened positions exposed by the API
// (ItemAt, TxnOf, ...) stay 0-based relative to the sequence, exactly like
// Sequence, so the two types are drop-in interchangeable on read paths.
//
// Ownership rules (docs/ARCHITECTURE.md): customer sequences are read
// through views; owning Sequence is reserved for patterns and ingestion.
// A view never outlives the Sequence or SequenceArena it points into, and
// arena growth invalidates views into it (like vector iterators).
#ifndef DISC_SEQ_VIEW_H_
#define DISC_SEQ_VIEW_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "disc/common/check.h"
#include "disc/seq/itemset.h"
#include "disc/seq/sequence.h"
#include "disc/seq/types.h"

// Debug builds tag every arena-produced view with the arena's generation
// counter (arena.h), turning a stale-view dereference — reading through a
// view after the arena reallocated, cleared, or popped — into a
// DISC_DCHECK failure instead of silent UB. Release builds compile the
// fields and checks away entirely (views stay 16-24 bytes).
#if !defined(NDEBUG)
#define DISC_VIEW_GENERATION 1
#else
#define DISC_VIEW_GENERATION 0
#endif

namespace disc {

/// A borrowed, contiguous range of items (what SequenceView::items()
/// returns; keeps range-for loops over `.items()` source-compatible with
/// the owning Sequence's std::vector).
class ItemSpan {
 public:
  ItemSpan(const Item* begin, const Item* end) : begin_(begin), end_(end) {}

  const Item* begin() const { return begin_; }
  const Item* end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  Item front() const { return *begin_; }
  Item back() const { return *(end_ - 1); }
  Item operator[](std::size_t i) const { return begin_[i]; }

 private:
  const Item* begin_;
  const Item* end_;
};

namespace view_internal {
// Backing storage for default-constructed (empty) views, so every view —
// including SequenceView{} — has a valid offsets pointer.
inline constexpr std::uint32_t kEmptyOffsets[1] = {0};
}  // namespace view_internal

/// Non-owning view of a sequence. Pass by value (16-24 bytes).
class SequenceView {
 public:
  /// Empty sequence (zero transactions).
  SequenceView()
      : base_(nullptr),
        offsets_(view_internal::kEmptyOffsets),
        num_txns_(0) {}

  /// Implicit: any read path taking a SequenceView accepts a Sequence.
  SequenceView(const Sequence& s)  // NOLINT(google-explicit-constructor)
      : base_(s.items().data()),
        offsets_(s.offsets().data()),
        num_txns_(s.NumTransactions()) {}

  /// Raw CSR triple (arena accessor): `offsets` has num_txns + 1 entries of
  /// absolute positions into `base`.
  SequenceView(const Item* base, const std::uint32_t* offsets,
               std::uint32_t num_txns)
      : base_(base), offsets_(offsets), num_txns_(num_txns) {}

#if DISC_VIEW_GENERATION
  /// Arena internal: stamps the view with the producing arena's generation
  /// cell. A later mismatch (the arena reallocated, cleared, or popped)
  /// makes every pointer-dereferencing accessor DISC_DCHECK-fail.
  void AttachGeneration(const std::uint64_t* cell, std::uint64_t value) {
    gen_cell_ = cell;
    gen_ = value;
  }
#endif

  /// --- Size ---

  std::uint32_t Length() const {
    CheckFresh();
    return offsets_[num_txns_] - offsets_[0];
  }
  bool Empty() const { return Length() == 0; }
  std::uint32_t NumTransactions() const { return num_txns_; }

  /// --- Flattened access (positions relative to the sequence start) ---

  Item ItemAt(std::uint32_t pos) const {
    CheckFresh();
    return base_[offsets_[0] + pos];
  }

  /// Transaction index (0-based) of flattened position pos. O(log T).
  std::uint32_t TxnOf(std::uint32_t pos) const {
    CheckFresh();
    const auto it = std::upper_bound(offsets_, offsets_ + num_txns_ + 1,
                                     offsets_[0] + pos);
    return static_cast<std::uint32_t>(it - offsets_) - 1;
  }

  const Item* ItemsBegin() const {
    CheckFresh();
    return base_ + offsets_[0];
  }
  const Item* ItemsEnd() const {
    CheckFresh();
    return base_ + offsets_[num_txns_];
  }
  ItemSpan items() const { return ItemSpan(ItemsBegin(), ItemsEnd()); }

  /// --- Transaction access ---

  const Item* TxnBegin(std::uint32_t t) const {
    CheckFresh();
    return base_ + offsets_[t];
  }
  const Item* TxnEnd(std::uint32_t t) const {
    CheckFresh();
    return base_ + offsets_[t + 1];
  }
  std::uint32_t TxnSize(std::uint32_t t) const {
    CheckFresh();
    return offsets_[t + 1] - offsets_[t];
  }

  /// First/one-past-last flattened position of transaction t, relative to
  /// the sequence start (what positionwise scans key their cursors on).
  std::uint32_t TxnStartPos(std::uint32_t t) const {
    CheckFresh();
    return offsets_[t] - offsets_[0];
  }
  std::uint32_t TxnEndPos(std::uint32_t t) const {
    CheckFresh();
    return offsets_[t + 1] - offsets_[0];
  }

  /// Copies transaction t into an Itemset.
  Itemset TxnItemset(std::uint32_t t) const;

  /// True if transaction t contains item x (binary search).
  bool TxnContains(std::uint32_t t, Item x) const {
    return std::binary_search(TxnBegin(t), TxnEnd(t), x);
  }

  /// Last item of the last transaction; sequence must be non-empty.
  Item LastItem() const;

  /// Owning copy of the k-prefix (paper §3.2). Requires k <= Length().
  Sequence Prefix(std::uint32_t k) const;

  /// --- Formatting / invariants (same semantics as Sequence) ---

  std::string ToString() const;
  bool IsWellFormed() const;

 private:
  void CheckFresh() const {
#if DISC_VIEW_GENERATION
    DISC_DCHECK(gen_cell_ == nullptr || *gen_cell_ == gen_);
#endif
  }

  const Item* base_;
  const std::uint32_t* offsets_;  // num_txns_ + 1 absolute positions
  std::uint32_t num_txns_;
#if DISC_VIEW_GENERATION
  const std::uint64_t* gen_cell_ = nullptr;  // producing arena's counter
  std::uint64_t gen_ = 0;                    // counter value at creation
#endif
};

/// Content equality: same items under the same transaction structure.
/// Mixed Sequence/SequenceView comparisons convert through the implicit
/// view constructor; Sequence == Sequence keeps its exact member overload.
bool operator==(SequenceView a, SequenceView b);
inline bool operator!=(SequenceView a, SequenceView b) { return !(a == b); }

/// Owning deep copy of a view (for the rare path that must retain a
/// customer sequence beyond its arena's lifetime).
Sequence MaterializeSequence(SequenceView v);

}  // namespace disc

#endif  // DISC_SEQ_VIEW_H_
