#include "disc/seq/sequence.h"

#include <algorithm>

#include "disc/common/check.h"

namespace disc {

Sequence::Sequence(const std::vector<Itemset>& itemsets) : offsets_{0} {
  for (const Itemset& is : itemsets) {
    DISC_CHECK_MSG(!is.empty(), "empty transaction in sequence");
    AppendItemset(is);
  }
}

std::uint32_t Sequence::TxnOf(std::uint32_t pos) const {
  DISC_DCHECK(pos < items_.size());
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), pos);
  return static_cast<std::uint32_t>(it - offsets_.begin()) - 1;
}

Itemset Sequence::TxnItemset(std::uint32_t t) const {
  return Itemset(std::vector<Item>(TxnBegin(t), TxnEnd(t)));
}

bool Sequence::TxnContains(std::uint32_t t, Item x) const {
  return std::binary_search(TxnBegin(t), TxnEnd(t), x);
}

Item Sequence::LastItem() const {
  DISC_CHECK(!items_.empty());
  return items_.back();
}

void Sequence::AppendNewItemset(Item x) {
  items_.push_back(x);
  offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
}

void Sequence::AppendToLastItemset(Item x) {
  DISC_CHECK(!items_.empty());
  DISC_CHECK_MSG(x > items_.back(),
                 "i-extension item must exceed the current last item");
  items_.push_back(x);
  offsets_.back() = static_cast<std::uint32_t>(items_.size());
}

void Sequence::AppendItemset(const Itemset& itemset) {
  DISC_CHECK(!itemset.empty());
  items_.insert(items_.end(), itemset.items().begin(), itemset.items().end());
  offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
}

Sequence Sequence::Prefix(std::uint32_t k) const {
  DISC_CHECK(k <= items_.size());
  Sequence out;
  out.items_.assign(items_.begin(), items_.begin() + k);
  for (std::size_t t = 1; t < offsets_.size() && offsets_[t] < k; ++t) {
    out.offsets_.push_back(offsets_[t]);
  }
  if (k > 0) out.offsets_.push_back(k);
  return out;
}

void Sequence::DropLastItem() {
  DISC_CHECK(!items_.empty());
  items_.pop_back();
  if (offsets_[offsets_.size() - 2] == items_.size()) {
    offsets_.pop_back();  // last transaction became empty
  } else {
    offsets_.back() = static_cast<std::uint32_t>(items_.size());
  }
}

std::string Sequence::ToString() const {
  bool letters = !items_.empty();
  for (const Item x : items_) {
    if (x == 0 || x > 26) letters = false;
  }
  std::string out;
  for (std::uint32_t t = 0; t < NumTransactions(); ++t) {
    out += "(";
    for (const Item* p = TxnBegin(t); p != TxnEnd(t); ++p) {
      if (p != TxnBegin(t)) out += ",";
      if (letters) {
        out += static_cast<char>('a' + *p - 1);
      } else {
        out += std::to_string(*p);
      }
    }
    out += ")";
  }
  if (out.empty()) out = "<>";
  return out;
}

bool Sequence::IsWellFormed() const {
  if (offsets_.empty() || offsets_.front() != 0) return false;
  if (offsets_.back() != items_.size()) return false;
  for (std::size_t t = 0; t + 1 < offsets_.size(); ++t) {
    if (offsets_[t] >= offsets_[t + 1]) return false;  // empty transaction
    for (std::uint32_t i = offsets_[t] + 1; i < offsets_[t + 1]; ++i) {
      if (items_[i - 1] >= items_[i]) return false;  // unsorted or duplicate
    }
  }
  for (const Item x : items_) {
    if (x == kNoItem) return false;
  }
  return true;
}

}  // namespace disc
