// SequenceArena: database-wide flat CSR storage for sequences.
//
// One contiguous Item buffer holds every sequence's items back to back; a
// transaction-offsets array delimits transactions across the whole arena
// (adjacent sequences share a boundary entry), and a sequence-offsets array
// indexes into it to delimit sequences. Three allocations total, regardless
// of how many sequences live in the arena — the layout the memory-bound
// DISC scans want, and the one a future mmap/streaming backend can hand out
// directly.
//
//   items_        [ a e g b h f c b f | b d f e | b f g | ... ]
//   txn_offsets_  [ 0 3 4 5 6 7 9 | 12 13 | 16 | ... ]   (global positions)
//   seq_offsets_  [ 0 6 8 9 ... ]                (indices into txn_offsets_)
//
// Sequence i's view is {items_.data(), &txn_offsets_[seq_offsets_[i]],
// seq_offsets_[i+1] - seq_offsets_[i]}.
//
// Three roles: the immutable backing store of SequenceDatabase, the
// per-worker reduction scratch reused across partitions (Clear() keeps
// capacity, so a warm worker appends reduced sequences with zero
// allocation), and — via AdoptExternal — a read-only facade over CSR
// sections that live elsewhere (an mmap'ed .dsa arena file, seq/storage.h):
// the three pointers then aim straight into the mapped pages and the
// keepalive shared_ptr pins the mapping for as long as any database copy
// is alive. Growth invalidates outstanding views, exactly like vector
// iterators — collect views only once a build phase is done; debug builds
// enforce this with a generation counter (stale views DISC_DCHECK-fail on
// dereference, see view.h).
#ifndef DISC_SEQ_ARENA_H_
#define DISC_SEQ_ARENA_H_

#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "disc/common/check.h"
#include "disc/seq/types.h"
#include "disc/seq/view.h"

namespace disc {

/// Flat CSR storage for a collection of sequences. See file comment.
class SequenceArena {
 public:
  SequenceArena() : txn_offsets_{0}, seq_offsets_{0} {}

  /// --- Read access ---

  std::size_t size() const { return NumSeqOffsets() - 1; }
  bool empty() const { return size() == 0; }

  SequenceView operator[](std::size_t i) const {
    DISC_DCHECK(i < size());
    const std::uint32_t* seq = SeqOffsetsData();
    SequenceView v(ItemsData(), TxnOffsetsData() + seq[i],
                   seq[i + 1] - seq[i]);
#if DISC_VIEW_GENERATION
    v.AttachGeneration(&generation_, generation_);
#endif
    return v;
  }

  /// View of the most recently completed sequence.
  SequenceView back() const { return (*this)[size() - 1]; }

  /// Forward iteration yielding SequenceView by value.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = SequenceView;
    using difference_type = std::ptrdiff_t;
    using pointer = const SequenceView*;
    using reference = SequenceView;

    const_iterator(const SequenceArena* arena, std::size_t i)
        : arena_(arena), i_(i) {}
    SequenceView operator*() const { return (*arena_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const SequenceArena* arena_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// --- Totals (all O(1)) ---

  std::uint64_t TotalItems() const { return NumItems(); }
  std::uint64_t TotalTransactions() const { return NumTxnOffsets() - 1; }

  /// Bytes currently holding data / currently reserved. The gap between the
  /// two is what scratch reuse saves (disc.arena.bytes reports capacity).
  std::size_t SizeBytes() const {
    return NumItems() * sizeof(Item) +
           (NumTxnOffsets() + NumSeqOffsets()) * sizeof(std::uint32_t);
  }
  std::size_t CapacityBytes() const {
    if (mapped_) return SizeBytes();
    return items_.capacity() * sizeof(Item) +
           (txn_offsets_.capacity() + seq_offsets_.capacity()) *
               sizeof(std::uint32_t);
  }

  /// --- Raw CSR sections (seq/storage.cc serialization; read-only) ---

  /// TotalItems() entries.
  const Item* RawItems() const { return ItemsData(); }
  /// TotalTransactions()+1 global item positions, starting at 0.
  const std::uint32_t* RawTxnOffsets() const { return TxnOffsetsData(); }
  /// size()+1 indices into the transaction offsets, starting at 0.
  const std::uint32_t* RawSeqOffsets() const { return SeqOffsetsData(); }

  /// --- External (mapped) backing ---

  /// Turns this arena into a read-only facade over CSR sections owned
  /// elsewhere (the mmap'ed .dsa loader, seq/storage.h). `keepalive` pins
  /// the backing storage for the arena's lifetime (and the lifetime of any
  /// copy). The arena must still be empty; every build-API call afterwards
  /// is a DISC_CHECK failure. The caller has already validated the
  /// sections (offsets monotone, items well-formed) — the arena trusts
  /// them exactly like its own vectors.
  void AdoptExternal(std::shared_ptr<const void> keepalive, const Item* items,
                     std::size_t num_items, const std::uint32_t* txn_offsets,
                     std::size_t num_txn_offsets,
                     const std::uint32_t* seq_offsets,
                     std::size_t num_seq_offsets) {
    DISC_CHECK_MSG(!mapped_ && items_.empty() && seq_offsets_.size() == 1,
                   "AdoptExternal requires a fresh arena");
    DISC_CHECK(num_txn_offsets >= 1 && num_seq_offsets >= 1);
    backing_ = std::move(keepalive);
    ext_items_ = items;
    ext_num_items_ = num_items;
    ext_txn_offsets_ = txn_offsets;
    ext_num_txn_offsets_ = num_txn_offsets;
    ext_seq_offsets_ = seq_offsets;
    ext_num_seq_offsets_ = num_seq_offsets;
    mapped_ = true;
  }

  /// True when the arena reads from an external (mmap) backing and the
  /// build API is disabled.
  bool mapped() const { return mapped_; }

  /// --- Build ---

  /// Drops every sequence but keeps the allocations (warm scratch reuse).
  void Clear() {
    DISC_CHECK_MSG(!mapped_, "mapped arena is read-only");
#if DISC_VIEW_GENERATION
    ++generation_;  // outstanding views now point at dropped data
#endif
    items_.clear();
    txn_offsets_.clear();
    txn_offsets_.push_back(0);
    seq_offsets_.clear();
    seq_offsets_.push_back(0);
    seq_open_ = false;
  }

  /// Bulk-reserves the three buffers (ingestion pre-pass; avoids regrow
  /// churn while streaming a whole database in).
  void Reserve(std::size_t items, std::size_t txns, std::size_t seqs) {
    DISC_CHECK_MSG(!mapped_, "mapped arena is read-only");
#if DISC_VIEW_GENERATION
    if (items > items_.capacity() || txns + 1 > txn_offsets_.capacity()) {
      ++generation_;  // reallocation moves the buffers views point into
    }
#endif
    items_.reserve(items);
    txn_offsets_.reserve(txns + 1);
    seq_offsets_.reserve(seqs + 1);
  }

  /// Streaming append of one sequence:
  ///   BeginSequence();
  ///   AppendItem(x); ...; EndTransaction();   // per transaction
  ///   EndSequence();
  /// Items within a transaction must arrive strictly ascending (the
  /// Sequence invariant); transactions must be non-empty. Checked with
  /// DISC_DCHECK — this is the mining hot path; ingestion front ends
  /// (seq/io.cc) validate untrusted input with always-on CHECKs first.
  void BeginSequence() {
    DISC_CHECK_MSG(!mapped_, "mapped arena is read-only");
    DISC_DCHECK(!seq_open_);
    seq_open_ = true;
  }

  void AppendItem(Item x) {
    DISC_DCHECK(seq_open_);
    DISC_DCHECK(x != kNoItem);
    DISC_DCHECK(items_.size() == txn_offsets_.back() || items_.back() < x);
#if DISC_VIEW_GENERATION
    if (items_.size() == items_.capacity()) ++generation_;
#endif
    items_.push_back(x);
  }

  void EndTransaction() {
    DISC_DCHECK(seq_open_);
    DISC_DCHECK(items_.size() > txn_offsets_.back());  // non-empty txn
#if DISC_VIEW_GENERATION
    if (txn_offsets_.size() == txn_offsets_.capacity()) ++generation_;
#endif
    txn_offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
  }

  void EndSequence() {
    DISC_DCHECK(seq_open_);
    DISC_DCHECK(items_.size() == txn_offsets_.back());  // no open txn
    seq_offsets_.push_back(static_cast<std::uint32_t>(txn_offsets_.size() - 1));
    seq_open_ = false;
  }

  /// Copies a whole sequence in (view may point into another arena or an
  /// owning Sequence; appending a view into this same arena is not allowed —
  /// growth would invalidate it mid-copy).
  void AppendCopy(SequenceView v) {
    BeginSequence();
#if DISC_VIEW_GENERATION
    if (items_.size() + v.Length() > items_.capacity() ||
        txn_offsets_.size() + v.NumTransactions() > txn_offsets_.capacity()) {
      ++generation_;
    }
#endif
    for (std::uint32_t t = 0; t < v.NumTransactions(); ++t) {
      items_.insert(items_.end(), v.TxnBegin(t), v.TxnEnd(t));
      txn_offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
    }
    EndSequence();
  }

  /// Removes the last completed sequence (reduction rollback: a reduced
  /// sequence that came out too short to matter is popped right back off).
  void PopBack() {
    DISC_CHECK_MSG(!mapped_, "mapped arena is read-only");
    DISC_DCHECK(!seq_open_);
    DISC_DCHECK(!empty());
#if DISC_VIEW_GENERATION
    ++generation_;  // a view of the popped sequence now reads freed slots
#endif
    seq_offsets_.pop_back();
    txn_offsets_.resize(seq_offsets_.back() + 1);
    items_.resize(txn_offsets_.back());
  }

 private:
  const Item* ItemsData() const {
    return mapped_ ? ext_items_ : items_.data();
  }
  const std::uint32_t* TxnOffsetsData() const {
    return mapped_ ? ext_txn_offsets_ : txn_offsets_.data();
  }
  const std::uint32_t* SeqOffsetsData() const {
    return mapped_ ? ext_seq_offsets_ : seq_offsets_.data();
  }
  std::size_t NumItems() const {
    return mapped_ ? ext_num_items_ : items_.size();
  }
  std::size_t NumTxnOffsets() const {
    return mapped_ ? ext_num_txn_offsets_ : txn_offsets_.size();
  }
  std::size_t NumSeqOffsets() const {
    return mapped_ ? ext_num_seq_offsets_ : seq_offsets_.size();
  }

  std::vector<Item> items_;
  std::vector<std::uint32_t> txn_offsets_;  // global positions; starts {0}
  std::vector<std::uint32_t> seq_offsets_;  // into txn_offsets_; starts {0}
  bool seq_open_ = false;

  // External backing (AdoptExternal): the keepalive owns the bytes the
  // three section pointers read from; copies of the arena share it.
  bool mapped_ = false;
  std::shared_ptr<const void> backing_;
  const Item* ext_items_ = nullptr;
  std::size_t ext_num_items_ = 0;
  const std::uint32_t* ext_txn_offsets_ = nullptr;
  std::size_t ext_num_txn_offsets_ = 0;
  const std::uint32_t* ext_seq_offsets_ = nullptr;
  std::size_t ext_num_seq_offsets_ = 0;

#if DISC_VIEW_GENERATION
  // Bumped whenever outstanding views are invalidated: buffer reallocation
  // (growth past capacity), Clear, PopBack. Views capture the value at
  // creation and DISC_DCHECK it on dereference (view.h). Mapped arenas
  // never bump — mapped views stay valid for the backing's lifetime.
  std::uint64_t generation_ = 0;
#endif
};

}  // namespace disc

#endif  // DISC_SEQ_ARENA_H_
