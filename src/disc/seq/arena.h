// SequenceArena: database-wide flat CSR storage for sequences.
//
// One contiguous Item buffer holds every sequence's items back to back; a
// transaction-offsets array delimits transactions across the whole arena
// (adjacent sequences share a boundary entry), and a sequence-offsets array
// indexes into it to delimit sequences. Three allocations total, regardless
// of how many sequences live in the arena — the layout the memory-bound
// DISC scans want, and the one a future mmap/streaming backend can hand out
// directly.
//
//   items_        [ a e g b h f c b f | b d f e | b f g | ... ]
//   txn_offsets_  [ 0 3 4 5 6 7 9 | 12 13 | 16 | ... ]   (global positions)
//   seq_offsets_  [ 0 6 8 9 ... ]                (indices into txn_offsets_)
//
// Sequence i's view is {items_.data(), &txn_offsets_[seq_offsets_[i]],
// seq_offsets_[i+1] - seq_offsets_[i]}.
//
// Two roles: the immutable backing store of SequenceDatabase, and the
// per-worker reduction scratch reused across partitions (Clear() keeps
// capacity, so a warm worker appends reduced sequences with zero
// allocation). Growth invalidates outstanding views, exactly like vector
// iterators — collect views only once a build phase is done.
#ifndef DISC_SEQ_ARENA_H_
#define DISC_SEQ_ARENA_H_

#include <cstdint>
#include <iterator>
#include <vector>

#include "disc/common/check.h"
#include "disc/seq/types.h"
#include "disc/seq/view.h"

namespace disc {

/// Flat CSR storage for a collection of sequences. See file comment.
class SequenceArena {
 public:
  SequenceArena() : txn_offsets_{0}, seq_offsets_{0} {}

  /// --- Read access ---

  std::size_t size() const { return seq_offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  SequenceView operator[](std::size_t i) const {
    DISC_DCHECK(i < size());
    return SequenceView(items_.data(), txn_offsets_.data() + seq_offsets_[i],
                        seq_offsets_[i + 1] - seq_offsets_[i]);
  }

  /// View of the most recently completed sequence.
  SequenceView back() const { return (*this)[size() - 1]; }

  /// Forward iteration yielding SequenceView by value.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = SequenceView;
    using difference_type = std::ptrdiff_t;
    using pointer = const SequenceView*;
    using reference = SequenceView;

    const_iterator(const SequenceArena* arena, std::size_t i)
        : arena_(arena), i_(i) {}
    SequenceView operator*() const { return (*arena_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const SequenceArena* arena_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// --- Totals (all O(1)) ---

  std::uint64_t TotalItems() const { return items_.size(); }
  std::uint64_t TotalTransactions() const { return txn_offsets_.size() - 1; }

  /// Bytes currently holding data / currently reserved. The gap between the
  /// two is what scratch reuse saves (disc.arena.bytes reports capacity).
  std::size_t SizeBytes() const {
    return items_.size() * sizeof(Item) +
           (txn_offsets_.size() + seq_offsets_.size()) * sizeof(std::uint32_t);
  }
  std::size_t CapacityBytes() const {
    return items_.capacity() * sizeof(Item) +
           (txn_offsets_.capacity() + seq_offsets_.capacity()) *
               sizeof(std::uint32_t);
  }

  /// --- Build ---

  /// Drops every sequence but keeps the allocations (warm scratch reuse).
  void Clear() {
    items_.clear();
    txn_offsets_.clear();
    txn_offsets_.push_back(0);
    seq_offsets_.clear();
    seq_offsets_.push_back(0);
    seq_open_ = false;
  }

  /// Bulk-reserves the three buffers (ingestion pre-pass; avoids regrow
  /// churn while streaming a whole database in).
  void Reserve(std::size_t items, std::size_t txns, std::size_t seqs) {
    items_.reserve(items);
    txn_offsets_.reserve(txns + 1);
    seq_offsets_.reserve(seqs + 1);
  }

  /// Streaming append of one sequence:
  ///   BeginSequence();
  ///   AppendItem(x); ...; EndTransaction();   // per transaction
  ///   EndSequence();
  /// Items within a transaction must arrive strictly ascending (the
  /// Sequence invariant); transactions must be non-empty. Checked with
  /// DISC_DCHECK — this is the mining hot path; ingestion front ends
  /// (seq/io.cc) validate untrusted input with always-on CHECKs first.
  void BeginSequence() {
    DISC_DCHECK(!seq_open_);
    seq_open_ = true;
  }

  void AppendItem(Item x) {
    DISC_DCHECK(seq_open_);
    DISC_DCHECK(x != kNoItem);
    DISC_DCHECK(items_.size() == txn_offsets_.back() || items_.back() < x);
    items_.push_back(x);
  }

  void EndTransaction() {
    DISC_DCHECK(seq_open_);
    DISC_DCHECK(items_.size() > txn_offsets_.back());  // non-empty txn
    txn_offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
  }

  void EndSequence() {
    DISC_DCHECK(seq_open_);
    DISC_DCHECK(items_.size() == txn_offsets_.back());  // no open txn
    seq_offsets_.push_back(static_cast<std::uint32_t>(txn_offsets_.size() - 1));
    seq_open_ = false;
  }

  /// Copies a whole sequence in (view may point into another arena or an
  /// owning Sequence; appending a view into this same arena is not allowed —
  /// growth would invalidate it mid-copy).
  void AppendCopy(SequenceView v) {
    BeginSequence();
    for (std::uint32_t t = 0; t < v.NumTransactions(); ++t) {
      items_.insert(items_.end(), v.TxnBegin(t), v.TxnEnd(t));
      txn_offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
    }
    EndSequence();
  }

  /// Removes the last completed sequence (reduction rollback: a reduced
  /// sequence that came out too short to matter is popped right back off).
  void PopBack() {
    DISC_DCHECK(!seq_open_);
    DISC_DCHECK(!empty());
    seq_offsets_.pop_back();
    txn_offsets_.resize(seq_offsets_.back() + 1);
    items_.resize(txn_offsets_.back());
  }

 private:
  std::vector<Item> items_;
  std::vector<std::uint32_t> txn_offsets_;  // global positions; starts {0}
  std::vector<std::uint32_t> seq_offsets_;  // into txn_offsets_; starts {0}
  bool seq_open_ = false;
};

}  // namespace disc

#endif  // DISC_SEQ_ARENA_H_
