// On-disk arena format (.dsa): the SequenceArena CSR sections, verbatim.
//
// A .dsa file is a 96-byte header followed by the three flat sections a
// SequenceArena already holds in memory — sequence offsets, transaction
// offsets, items — all little-endian uint32. Loading is therefore a
// single mmap plus one validation pass: the mapped pages are handed to
// SequenceDatabase::AdoptExternal unchanged, so load cost is independent
// of database size and nothing is parsed or copied (docs/STORAGE.md).
//
//   [ magic | version | counts | shard metadata | hashes ]   96 bytes
//   [ seq_offsets  : uint32 x (sequences + 1)    ]   indices into txn_offsets
//   [ txn_offsets  : uint32 x (transactions + 1) ]   global item positions
//   [ items        : uint32 x items              ]
//
// Integrity is two FNV-1a hashes: `header_hash` covers the header bytes
// before it (any metadata flip is caught before the counts are trusted),
// and `content_hash` covers the logical contents — bit-for-bit the same
// walk as FirstLevelState::ContentHash, so the loader's verification pass
// doubles as the engine QueryCache fingerprint (the hash is cached on the
// returned database and never recomputed). Every load validates
// exhaustively: exact file size from the counts, monotone offsets, sorted
// non-zero items. A file that passes cannot make the miners read out of
// bounds; a file that fails comes back as a clean Status, never UB
// (tests/storage_format_test.cc is the hostile-input battery).
//
// Shard metadata (lambda_lo / lambda_hi / shard_index / shard_count /
// total_customers) records which λ-range slice of which corpus this file
// holds — see core/shard.h. An unsharded pack is shard 0 of 1 covering
// [1, max_item].
#ifndef DISC_SEQ_STORAGE_H_
#define DISC_SEQ_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "disc/common/status.h"
#include "disc/seq/database.h"

namespace disc {

/// Current .dsa format version. Bumped on any layout change; the loader
/// rejects other versions with kInvalidArgument.
inline constexpr std::uint32_t kDsaVersion = 1;

/// Header size in bytes (fixed for version 1).
inline constexpr std::uint32_t kDsaHeaderBytes = 96;

/// Shard placement metadata carried in the header. Defaults describe an
/// unsharded pack; core/shard.cc fills real ranges.
struct DsaShardMeta {
  std::uint32_t lambda_lo = 1;  ///< first λ this shard answers (>= 1)
  /// Last λ this shard answers (>= lambda_lo on disk). 0 here is a
  /// pack-time sentinel: PackDsaString substitutes the database's full
  /// alphabet, max(1, max_item).
  std::uint32_t lambda_hi = 0;
  std::uint32_t shard_index = 0; ///< position in the shard set
  std::uint32_t shard_count = 1; ///< shards in the set (>= 1)
  std::uint64_t total_customers = 0;  ///< |D| of the *unsharded* corpus
};

/// Decoded header of a .dsa file (ReadDsaInfo; also returned alongside a
/// loaded database for banners and shard planning).
struct DsaInfo {
  std::uint64_t sequences = 0;
  std::uint64_t transactions = 0;
  std::uint64_t items = 0;
  std::uint32_t max_item = 0;
  DsaShardMeta shard;
  std::uint64_t content_hash = 0;
};

/// True when `path` names a .dsa arena file (case-sensitive ".dsa"
/// suffix) — the dispatch rule Engine::LoadPath and the CLIs use.
bool IsDsaPath(const std::string& path);

/// Serializes the database into .dsa bytes. `meta.total_customers` of 0 is
/// replaced by db.size() (the unsharded convention).
std::string PackDsaString(const SequenceDatabase& db,
                          const DsaShardMeta& meta = {});

/// Packs the database and writes it via WriteFileAtomic: a crash or an
/// injected "io.write" fault never leaves a partial .dsa behind.
Status SaveDsa(const SequenceDatabase& db, const std::string& path,
               const DsaShardMeta& meta = {});

/// Validates `len` bytes of .dsa at `data` (4-byte aligned) and returns a
/// read-only database whose arena points straight into those bytes, with
/// `keepalive` pinning them. Every structural error is a kDataLoss (or
/// kInvalidArgument for a version mismatch) prefixed with `context`.
/// On success the verified content hash is cached on the database and
/// `info`, when non-null, receives the decoded header.
StatusOr<SequenceDatabase> TryFromDsaBytes(
    std::shared_ptr<const void> keepalive, const void* data, std::size_t len,
    const std::string& context, DsaInfo* info = nullptr);

/// Maps `path` and validates it as TryFromDsaBytes (context = path). The
/// mapping is released when the last copy of the database is destroyed.
/// kIoError when the file cannot be opened or mapped.
/// Fail point: "io.mmap" (error makes the mapping step fail with kIoError).
StatusOr<SequenceDatabase> TryLoadDsa(const std::string& path,
                                      DsaInfo* info = nullptr);

/// Reads and validates only the 96-byte header of `path` (shard planning,
/// banners — no section I/O). Section-level corruption is *not* detected
/// here; TryLoadDsa is the full check.
StatusOr<DsaInfo> ReadDsaInfo(const std::string& path);

}  // namespace disc

#endif  // DISC_SEQ_STORAGE_H_
