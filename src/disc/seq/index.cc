#include "disc/seq/index.h"

#include <algorithm>

#include "disc/common/check.h"

namespace disc {

SequenceIndex::SequenceIndex(SequenceView s)
    : num_txns_(s.NumTransactions()) {
  // Collect (item, txn) pairs; transactions are visited in order and items
  // within a transaction are sorted, so a stable sort by item yields rows
  // with ascending transaction lists.
  std::vector<std::pair<Item, std::uint32_t>> occ;
  occ.reserve(s.Length());
  for (std::uint32_t t = 0; t < num_txns_; ++t) {
    for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
      occ.emplace_back(*p, t);
    }
  }
  std::stable_sort(occ.begin(), occ.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  row_offsets_.push_back(0);
  for (std::size_t i = 0; i < occ.size(); ++i) {
    if (row_items_.empty() || row_items_.back() != occ[i].first) {
      if (!row_items_.empty()) {
        row_offsets_.push_back(static_cast<std::uint32_t>(i));
      }
      row_items_.push_back(occ[i].first);
    }
    txns_.push_back(occ[i].second);
  }
  row_offsets_.push_back(static_cast<std::uint32_t>(occ.size()));

  suffix_min_.assign(num_txns_ + 1, kNoItem);
  for (std::uint32_t t = num_txns_; t-- > 0;) {
    const Item txn_min = *s.TxnBegin(t);  // transactions are sorted
    const Item later = suffix_min_[t + 1];
    suffix_min_[t] =
        later == kNoItem ? txn_min : std::min(txn_min, later);
  }
}

std::uint32_t SequenceIndex::NextTxnWithItem(Item x,
                                             std::uint32_t start) const {
  const auto row =
      std::lower_bound(row_items_.begin(), row_items_.end(), x);
  if (row == row_items_.end() || *row != x) return kNoTxn;
  const std::size_t r = static_cast<std::size_t>(row - row_items_.begin());
  const auto begin = txns_.begin() + row_offsets_[r];
  const auto end = txns_.begin() + row_offsets_[r + 1];
  const auto it = std::lower_bound(begin, end, start);
  return it == end ? kNoTxn : *it;
}

std::uint32_t SequenceIndex::NextTxnWithItemset(std::uint32_t start,
                                                const Item* begin,
                                                const Item* end) const {
  DISC_DCHECK(begin != end);
  const std::size_t m = static_cast<std::size_t>(end - begin);
  // Fast path: single-item itemsets are the overwhelmingly common case.
  if (m == 1) return NextTxnWithItem(*begin, start);

  // Resolve each item's occurrence range once, then align the cursors.
  constexpr std::size_t kMaxInline = 32;
  const std::uint32_t* lo[kMaxInline];
  const std::uint32_t* hi[kMaxInline];
  if (m > kMaxInline) {
    // Degenerate itemset: fall back to the per-item formulation.
    std::uint32_t t = start;
    for (;;) {
      std::uint32_t max_next = t;
      bool aligned = true;
      for (const Item* p = begin; p != end; ++p) {
        const std::uint32_t nt = NextTxnWithItem(*p, t);
        if (nt == kNoTxn) return kNoTxn;
        if (nt > max_next) max_next = nt;
        if (nt != t) aligned = false;
      }
      if (aligned) return t;
      t = max_next;
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    const auto row =
        std::lower_bound(row_items_.begin(), row_items_.end(), begin[j]);
    if (row == row_items_.end() || *row != begin[j]) return kNoTxn;
    const std::size_t r = static_cast<std::size_t>(row - row_items_.begin());
    lo[j] = txns_.data() + row_offsets_[r];
    hi[j] = txns_.data() + row_offsets_[r + 1];
  }
  std::uint32_t t = start;
  std::size_t aligned = 0;
  std::size_t j = 0;
  for (;;) {
    // Advance cursor j to the first occurrence >= t.
    lo[j] = std::lower_bound(lo[j], hi[j], t);
    if (lo[j] == hi[j]) return kNoTxn;
    if (*lo[j] == t) {
      if (++aligned == m) return t;
    } else {
      t = *lo[j];
      aligned = 1;
    }
    j = (j + 1) % m;
  }
}

Item SequenceIndex::SuffixMinItem(std::uint32_t start) const {
  if (start >= num_txns_) return kNoItem;
  return suffix_min_[start];
}

}  // namespace disc
