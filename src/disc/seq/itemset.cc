#include "disc/seq/itemset.h"

#include <algorithm>

#include "disc/common/check.h"

namespace disc {

Itemset::Itemset(std::vector<Item> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<Item> items)
    : Itemset(std::vector<Item>(items)) {}

Item Itemset::Max() const {
  DISC_CHECK(!items_.empty());
  return items_.back();
}

bool Itemset::Contains(Item x) const {
  return std::binary_search(items_.begin(), items_.end(), x);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return SortedRangeIsSubset(items_.data(), items_.data() + items_.size(),
                             other.items_.data(),
                             other.items_.data() + other.items_.size());
}

void Itemset::Insert(Item x) {
  const auto it = std::lower_bound(items_.begin(), items_.end(), x);
  if (it != items_.end() && *it == x) return;
  items_.insert(it, x);
}

void Itemset::Erase(Item x) {
  const auto it = std::lower_bound(items_.begin(), items_.end(), x);
  if (it != items_.end() && *it == x) items_.erase(it);
}

bool SortedRangeIsSubset(const Item* sub_begin, const Item* sub_end,
                         const Item* super_begin, const Item* super_end) {
  const Item* a = sub_begin;
  const Item* b = super_begin;
  while (a != sub_end) {
    while (b != super_end && *b < *a) ++b;
    if (b == super_end || *b != *a) return false;
    ++a;
    ++b;
  }
  return true;
}

}  // namespace disc
