#include "disc/seq/view.h"

#include <vector>

#include "disc/common/check.h"

namespace disc {

Itemset SequenceView::TxnItemset(std::uint32_t t) const {
  return Itemset(std::vector<Item>(TxnBegin(t), TxnEnd(t)));
}

Item SequenceView::LastItem() const {
  DISC_CHECK(!Empty());
  return *(ItemsEnd() - 1);
}

Sequence SequenceView::Prefix(std::uint32_t k) const {
  DISC_CHECK(k <= Length());
  Sequence out;
  for (std::uint32_t t = 0; t < num_txns_ && TxnStartPos(t) < k; ++t) {
    const std::uint32_t end = std::min(k, TxnEndPos(t));
    for (std::uint32_t pos = TxnStartPos(t); pos < end; ++pos) {
      if (pos == TxnStartPos(t)) {
        out.AppendNewItemset(ItemAt(pos));
      } else {
        out.AppendToLastItemset(ItemAt(pos));
      }
    }
  }
  return out;
}

std::string SequenceView::ToString() const {
  bool letters = !Empty();
  for (const Item x : items()) {
    if (x == 0 || x > 26) letters = false;
  }
  std::string out;
  for (std::uint32_t t = 0; t < num_txns_; ++t) {
    out += "(";
    for (const Item* p = TxnBegin(t); p != TxnEnd(t); ++p) {
      if (p != TxnBegin(t)) out += ",";
      if (letters) {
        out += static_cast<char>('a' + *p - 1);
      } else {
        out += std::to_string(*p);
      }
    }
    out += ")";
  }
  if (out.empty()) out = "<>";
  return out;
}

bool SequenceView::IsWellFormed() const {
  for (std::uint32_t t = 0; t < num_txns_; ++t) {
    if (offsets_[t] >= offsets_[t + 1]) return false;  // empty transaction
    for (const Item* p = TxnBegin(t); p != TxnEnd(t); ++p) {
      if (*p == kNoItem) return false;
      if (p != TxnBegin(t) && *(p - 1) >= *p) return false;  // unsorted/dup
    }
  }
  return true;
}

bool operator==(SequenceView a, SequenceView b) {
  if (a.Length() != b.Length() ||
      a.NumTransactions() != b.NumTransactions()) {
    return false;
  }
  for (std::uint32_t t = 0; t < a.NumTransactions(); ++t) {
    if (a.TxnEndPos(t) != b.TxnEndPos(t)) return false;
  }
  return std::equal(a.ItemsBegin(), a.ItemsEnd(), b.ItemsBegin());
}

Sequence MaterializeSequence(SequenceView v) {
  return v.Prefix(v.Length());
}

}  // namespace disc
