#include "disc/seq/storage.h"

#include <bit>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "disc/common/failpoint.h"
#include "disc/common/file_util.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace disc {
namespace {

// The format is defined little-endian; this build writes and reads native
// integers straight from the mapped pages, so it only targets LE hosts.
static_assert(std::endian::native == std::endian::little,
              ".dsa support requires a little-endian host");

// PNG-style magic: high bit to catch 7-bit transports, CRLF + LF to catch
// newline translation, 0x1a to stop accidental `type` on Windows.
constexpr unsigned char kDsaMagic[8] = {0x89, 'D', 'S', 'A',
                                        '\r', '\n', 0x1a, '\n'};

// Exact wire layout of the 96-byte header. Every field is naturally
// aligned, so the struct is the layout and memcpy is the codec.
struct DsaHeaderRaw {
  unsigned char magic[8];        // offset 0
  std::uint32_t version;         // offset 8
  std::uint32_t header_bytes;    // offset 12
  std::uint64_t sequences;       // offset 16
  std::uint64_t transactions;    // offset 24
  std::uint64_t items;           // offset 32
  std::uint32_t max_item;        // offset 40
  std::uint32_t lambda_lo;       // offset 44
  std::uint32_t lambda_hi;       // offset 48
  std::uint32_t shard_index;     // offset 52
  std::uint32_t shard_count;     // offset 56
  std::uint32_t reserved0;       // offset 60; must be 0
  std::uint64_t total_customers; // offset 64
  std::uint64_t content_hash;    // offset 72
  std::uint64_t header_hash;     // offset 80; FNV-1a over bytes [0, 80)
  std::uint64_t reserved1;       // offset 88; must be 0 (not hash-covered)
};
static_assert(sizeof(DsaHeaderRaw) == kDsaHeaderBytes,
              ".dsa header must be exactly 96 bytes");
static_assert(offsetof(DsaHeaderRaw, header_hash) == 80);

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Byte-wise FNV-1a (header_hash).
std::uint64_t HashBytes(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// Value-wise FNV-1a over the logical contents of the CSR sections.
// Bit-for-bit the walk FirstLevelState::ContentHash performs on an
// in-memory database: per sequence its transaction count, then per
// transaction its size followed by its items. Changing either breaks
// every existing .dsa file's content hash.
std::uint64_t HashSections(const std::uint32_t* seq_offsets,
                           std::uint64_t sequences,
                           const std::uint32_t* txn_offsets,
                           const std::uint32_t* items) {
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  };
  for (std::uint64_t s = 0; s < sequences; ++s) {
    const std::uint32_t t0 = seq_offsets[s];
    const std::uint32_t t1 = seq_offsets[s + 1];
    mix(t1 - t0);
    for (std::uint32_t t = t0; t < t1; ++t) {
      mix(txn_offsets[t + 1] - txn_offsets[t]);
      for (std::uint32_t p = txn_offsets[t]; p < txn_offsets[t + 1]; ++p) {
        mix(items[p]);
      }
    }
  }
  return h;
}

Status DataLossAt(const std::string& context, std::string msg) {
  return Status::DataLoss(context + ": " + std::move(msg));
}

// Decodes and verifies the header alone: magic, version, declared size,
// header hash, reserved fields, shard-metadata sanity. Shared by the full
// loader and ReadDsaInfo.
Status DecodeHeader(const void* data, std::size_t len,
                    const std::string& context, DsaHeaderRaw* hdr) {
  if (len == 0) {
    return DataLossAt(context, "empty file (0 bytes) is not a .dsa arena");
  }
  if (len < kDsaHeaderBytes) {
    return DataLossAt(context, "truncated header: " + std::to_string(len) +
                                   " bytes, need " +
                                   std::to_string(kDsaHeaderBytes));
  }
  std::memcpy(hdr, data, sizeof(DsaHeaderRaw));
  if (std::memcmp(hdr->magic, kDsaMagic, sizeof(kDsaMagic)) != 0) {
    return DataLossAt(context, "bad magic (not a .dsa arena file)");
  }
  if (hdr->version != kDsaVersion) {
    return Status::InvalidArgument(
        context + ": unsupported .dsa version " +
        std::to_string(hdr->version) + " (this build reads version " +
        std::to_string(kDsaVersion) + ")");
  }
  if (hdr->header_bytes != kDsaHeaderBytes) {
    return DataLossAt(context, "header size field is " +
                                   std::to_string(hdr->header_bytes) +
                                   ", expected " +
                                   std::to_string(kDsaHeaderBytes));
  }
  const std::uint64_t want =
      HashBytes(data, offsetof(DsaHeaderRaw, header_hash));
  if (hdr->header_hash != want) {
    return DataLossAt(context, "header hash mismatch (corrupted header)");
  }
  if (hdr->reserved0 != 0 || hdr->reserved1 != 0) {
    return DataLossAt(context, "reserved header fields must be zero");
  }
  if (hdr->lambda_lo < 1 || hdr->lambda_hi < hdr->lambda_lo ||
      hdr->shard_count < 1 || hdr->shard_index >= hdr->shard_count ||
      hdr->total_customers < hdr->sequences) {
    return DataLossAt(context, "invalid shard metadata in header");
  }
  return Status::Ok();
}

DsaInfo InfoFromHeader(const DsaHeaderRaw& hdr) {
  DsaInfo info;
  info.sequences = hdr.sequences;
  info.transactions = hdr.transactions;
  info.items = hdr.items;
  info.max_item = hdr.max_item;
  info.shard.lambda_lo = hdr.lambda_lo;
  info.shard.lambda_hi = hdr.lambda_hi;
  info.shard.shard_index = hdr.shard_index;
  info.shard.shard_count = hdr.shard_count;
  info.shard.total_customers = hdr.total_customers;
  info.content_hash = hdr.content_hash;
  return info;
}

}  // namespace

bool IsDsaPath(const std::string& path) {
  constexpr const char kExt[] = ".dsa";
  constexpr std::size_t kExtLen = sizeof(kExt) - 1;
  return path.size() > kExtLen &&
         path.compare(path.size() - kExtLen, kExtLen, kExt) == 0;
}

std::string PackDsaString(const SequenceDatabase& db,
                          const DsaShardMeta& meta) {
  const SequenceArena& arena = db.arena();
  const std::uint64_t sequences = arena.size();
  const std::uint64_t transactions = arena.TotalTransactions();
  const std::uint64_t items = arena.TotalItems();

  DsaHeaderRaw hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  std::memcpy(hdr.magic, kDsaMagic, sizeof(kDsaMagic));
  hdr.version = kDsaVersion;
  hdr.header_bytes = kDsaHeaderBytes;
  hdr.sequences = sequences;
  hdr.transactions = transactions;
  hdr.items = items;
  hdr.max_item = db.max_item();
  hdr.lambda_lo = meta.lambda_lo;
  // lambda_hi of 0 (the default) means "the whole alphabet": an unsharded
  // pack covers [1, max(1, max_item)].
  hdr.lambda_hi = meta.lambda_hi != 0
                      ? meta.lambda_hi
                      : (db.max_item() > 0 ? db.max_item() : 1);
  hdr.shard_index = meta.shard_index;
  hdr.shard_count = meta.shard_count;
  hdr.total_customers =
      meta.total_customers > 0 ? meta.total_customers : sequences;
  hdr.content_hash =
      db.has_cached_content_hash()
          ? db.cached_content_hash()
          : HashSections(arena.RawSeqOffsets(), sequences,
                         arena.RawTxnOffsets(), arena.RawItems());
  hdr.header_hash = HashBytes(&hdr, offsetof(DsaHeaderRaw, header_hash));

  std::string out;
  out.reserve(kDsaHeaderBytes +
              sizeof(std::uint32_t) *
                  (sequences + 1 + transactions + 1 + items));
  out.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.append(reinterpret_cast<const char*>(arena.RawSeqOffsets()),
             sizeof(std::uint32_t) * (sequences + 1));
  out.append(reinterpret_cast<const char*>(arena.RawTxnOffsets()),
             sizeof(std::uint32_t) * (transactions + 1));
  out.append(reinterpret_cast<const char*>(arena.RawItems()),
             sizeof(Item) * items);
  return out;
}

Status SaveDsa(const SequenceDatabase& db, const std::string& path,
               const DsaShardMeta& meta) {
  return WriteFileAtomic(path, PackDsaString(db, meta));
}

StatusOr<SequenceDatabase> TryFromDsaBytes(
    std::shared_ptr<const void> keepalive, const void* data, std::size_t len,
    const std::string& context, DsaInfo* info) {
  if (reinterpret_cast<std::uintptr_t>(data) % alignof(std::uint32_t) != 0) {
    return Status::Internal(context + ": .dsa buffer is not 4-byte aligned");
  }
  DsaHeaderRaw hdr;
  DISC_RETURN_IF_ERROR(DecodeHeader(data, len, context, &hdr));

  // Exact file size from the trusted (hash-verified) counts. Guarding the
  // +1s against uint32 overflow keeps the size arithmetic exact and every
  // offset representable.
  constexpr std::uint64_t kMaxU32 = 0xffffffffull;
  if (hdr.sequences >= kMaxU32 || hdr.transactions >= kMaxU32 ||
      hdr.items > kMaxU32) {
    return DataLossAt(context, "section counts exceed the uint32 format cap");
  }
  const std::uint64_t expected =
      kDsaHeaderBytes +
      sizeof(std::uint32_t) *
          (hdr.sequences + 1 + hdr.transactions + 1 + hdr.items);
  if (len != expected) {
    return DataLossAt(context, "file size mismatch: " + std::to_string(len) +
                                   " bytes, header implies " +
                                   std::to_string(expected));
  }

  const std::uint32_t* seq_offsets = reinterpret_cast<const std::uint32_t*>(
      static_cast<const unsigned char*>(data) + kDsaHeaderBytes);
  const std::uint32_t* txn_offsets = seq_offsets + (hdr.sequences + 1);
  const Item* items = txn_offsets + (hdr.transactions + 1);

  // Sequence offsets: start at 0, non-decreasing (equal neighbors are an
  // empty sequence, which the arena represents), land exactly on the
  // transaction count.
  if (seq_offsets[0] != 0) {
    return DataLossAt(context, "sequence offsets must start at 0");
  }
  for (std::uint64_t s = 0; s < hdr.sequences; ++s) {
    if (seq_offsets[s + 1] < seq_offsets[s]) {
      return DataLossAt(context, "sequence offsets decreasing at index " +
                                     std::to_string(s + 1));
    }
  }
  if (seq_offsets[hdr.sequences] != hdr.transactions) {
    return DataLossAt(
        context, "sequence offsets end at " +
                     std::to_string(seq_offsets[hdr.sequences]) +
                     ", expected the transaction count " +
                     std::to_string(hdr.transactions));
  }

  // Transaction offsets: start at 0, strictly increase (no empty
  // transactions), land exactly on the item count.
  if (txn_offsets[0] != 0) {
    return DataLossAt(context, "transaction offsets must start at 0");
  }
  for (std::uint64_t t = 0; t < hdr.transactions; ++t) {
    if (txn_offsets[t + 1] <= txn_offsets[t]) {
      return DataLossAt(
          context, "transaction offsets not strictly increasing at index " +
                       std::to_string(t + 1));
    }
  }
  if (txn_offsets[hdr.transactions] != hdr.items) {
    return DataLossAt(context,
                      "transaction offsets end at " +
                          std::to_string(txn_offsets[hdr.transactions]) +
                          ", expected the item count " +
                          std::to_string(hdr.items));
  }

  // Items: non-sentinel and strictly ascending within each transaction
  // (the Sequence invariant every miner scan relies on); the running max
  // must land on the header's, and the content walk doubles as the hash.
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  };
  Item max_seen = 0;
  for (std::uint64_t s = 0; s < hdr.sequences; ++s) {
    mix(seq_offsets[s + 1] - seq_offsets[s]);
    for (std::uint32_t t = seq_offsets[s]; t < seq_offsets[s + 1]; ++t) {
      mix(txn_offsets[t + 1] - txn_offsets[t]);
      Item prev = kNoItem;
      for (std::uint32_t p = txn_offsets[t]; p < txn_offsets[t + 1]; ++p) {
        const Item x = items[p];
        if (x == kNoItem) {
          return DataLossAt(context, "item 0 (the reserved sentinel) at "
                                     "position " +
                                         std::to_string(p));
        }
        if (x <= prev) {
          return DataLossAt(
              context,
              "items not strictly ascending within a transaction at "
              "position " +
                  std::to_string(p));
        }
        prev = x;
        if (x > max_seen) max_seen = x;
        mix(x);
      }
    }
  }
  if (max_seen != hdr.max_item) {
    return DataLossAt(context, "max item " + std::to_string(max_seen) +
                                   " does not match header " +
                                   std::to_string(hdr.max_item));
  }
  if (h != hdr.content_hash) {
    return DataLossAt(context, "content hash mismatch (corrupted sections)");
  }

  SequenceDatabase db;
  db.AdoptExternal(std::move(keepalive), items,
                   static_cast<std::size_t>(hdr.items), txn_offsets,
                   static_cast<std::size_t>(hdr.transactions + 1), seq_offsets,
                   static_cast<std::size_t>(hdr.sequences + 1), hdr.max_item);
  db.SetCachedContentHash(hdr.content_hash);
  if (info != nullptr) *info = InfoFromHeader(hdr);
  return db;
}

#if !defined(_WIN32)

namespace {

// Owns one read-only mapping; the aliased shared_ptr handed to
// AdoptExternal keeps it alive for as long as any database copy reads
// from the pages.
struct MappedFile {
  void* addr = nullptr;
  std::size_t len = 0;
  ~MappedFile() {
    if (addr != nullptr) ::munmap(addr, len);
  }
};

}  // namespace

StatusOr<SequenceDatabase> TryLoadDsa(const std::string& path,
                                      DsaInfo* info) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(path + ": cannot open");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(path + ": cannot stat");
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    // mmap rejects zero-length mappings; the validator owns the message.
    ::close(fd);
    return TryFromDsaBytes(nullptr, nullptr, 0, path, info);
  }
  if (DISC_FAILPOINT("io.mmap") == failpoint::Action::kError) {
    ::close(fd);
    return Status::IoError(path +
                           ": injected mmap failure (io.mmap fail point)");
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (addr == MAP_FAILED) {
    return Status::IoError(path + ": mmap failed");
  }
  auto mapping = std::make_shared<MappedFile>();
  mapping->addr = addr;
  mapping->len = len;
  std::shared_ptr<const void> keepalive(mapping, mapping->addr);
  return TryFromDsaBytes(std::move(keepalive), addr, len, path, info);
}

#else  // _WIN32

StatusOr<SequenceDatabase> TryLoadDsa(const std::string& path,
                                      DsaInfo* info) {
  // Portable fallback: read the whole file into an 8-byte-aligned buffer.
  // Same validation and keepalive contract, without the O(1) load cost.
  if (DISC_FAILPOINT("io.mmap") == failpoint::Action::kError) {
    return Status::IoError(path +
                           ": injected mmap failure (io.mmap fail point)");
  }
  std::string bytes;
  Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) return read;
  auto buf =
      std::make_shared<std::vector<std::uint64_t>>((bytes.size() + 7) / 8);
  if (!bytes.empty()) std::memcpy(buf->data(), bytes.data(), bytes.size());
  std::shared_ptr<const void> keepalive(buf, buf->data());
  const void* data = buf->data();
  return TryFromDsaBytes(std::move(keepalive), data, bytes.size(), path,
                         info);
}

#endif  // _WIN32

StatusOr<DsaInfo> ReadDsaInfo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(path + ": cannot open");
  }
  char buf[kDsaHeaderBytes];
  in.read(buf, sizeof(buf));
  const std::size_t got = static_cast<std::size_t>(in.gcount());
  DsaHeaderRaw hdr;
  DISC_RETURN_IF_ERROR(DecodeHeader(buf, got, path, &hdr));
  return InfoFromHeader(hdr);
}

}  // namespace disc
