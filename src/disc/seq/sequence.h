// Sequence: an ordered list of itemsets (transactions).
//
// Stored in a CSR-style flattened layout: all items concatenated in
// transaction order (each transaction's items sorted ascending), plus an
// offsets array delimiting transactions. The flattened view is what the
// paper's comparative order (Definition 2.2) and k-minimum machinery operate
// on; the "length" of a sequence is its number of flattened items.
//
// The same type represents both customer sequences and mined patterns.
#ifndef DISC_SEQ_SEQUENCE_H_
#define DISC_SEQ_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disc/seq/itemset.h"
#include "disc/seq/types.h"

namespace disc {

/// An ordered list of itemsets. See file comment for representation.
class Sequence {
 public:
  /// Empty sequence (zero transactions).
  Sequence() : offsets_{0} {}

  /// Builds from explicit itemsets; empty itemsets are rejected.
  explicit Sequence(const std::vector<Itemset>& itemsets);

  /// --- Size ---

  /// Total item occurrences (the paper's "length"; a k-sequence has k).
  std::uint32_t Length() const {
    return static_cast<std::uint32_t>(items_.size());
  }
  bool Empty() const { return items_.empty(); }

  /// Number of transactions.
  std::uint32_t NumTransactions() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  /// --- Flattened access ---

  /// Item at flattened position pos (0-based).
  Item ItemAt(std::uint32_t pos) const { return items_[pos]; }

  /// Transaction index (0-based) of flattened position pos. O(log T).
  std::uint32_t TxnOf(std::uint32_t pos) const;

  const std::vector<Item>& items() const { return items_; }
  const std::vector<std::uint32_t>& offsets() const { return offsets_; }

  /// --- Transaction access ---

  /// [begin, end) item pointers of transaction t.
  const Item* TxnBegin(std::uint32_t t) const { return items_.data() + offsets_[t]; }
  const Item* TxnEnd(std::uint32_t t) const { return items_.data() + offsets_[t + 1]; }
  std::uint32_t TxnSize(std::uint32_t t) const { return offsets_[t + 1] - offsets_[t]; }

  /// Copies transaction t into an Itemset.
  Itemset TxnItemset(std::uint32_t t) const;

  /// True if transaction t contains item x (binary search).
  bool TxnContains(std::uint32_t t, Item x) const;

  /// Last item of the last transaction; sequence must be non-empty.
  Item LastItem() const;

  /// --- Pattern construction ---

  /// Appends a new transaction holding the single item x.
  void AppendNewItemset(Item x);

  /// Appends x to the last transaction. Requires x > current last item
  /// (patterns only ever grow by items larger than their last, which keeps
  /// the transaction sorted without searching).
  void AppendToLastItemset(Item x);

  /// Appends a whole transaction (sorted copy of the itemset).
  void AppendItemset(const Itemset& itemset);

  /// The k-prefix: the first k flattened items with their transaction
  /// structure (paper §3.2). Requires k <= Length().
  Sequence Prefix(std::uint32_t k) const;

  /// Removes the last flattened item (dropping its transaction if it becomes
  /// empty). Sequence must be non-empty.
  void DropLastItem();

  /// --- Formatting ---

  /// Renders like the paper, e.g. "(a,c)(b)". Items 1..26 print as letters
  /// when `letters` is true (the default when the whole sequence fits),
  /// otherwise as integers.
  std::string ToString() const;

  bool operator==(const Sequence& other) const {
    return items_ == other.items_ && offsets_ == other.offsets_;
  }
  bool operator!=(const Sequence& other) const { return !(*this == other); }

  /// Structural well-formedness: offsets monotone, transactions non-empty
  /// and strictly sorted. Used by tests and DISC_DCHECKs.
  bool IsWellFormed() const;

 private:
  std::vector<Item> items_;
  std::vector<std::uint32_t> offsets_;  // size NumTransactions()+1, [0]==0
};

}  // namespace disc

#endif  // DISC_SEQ_SEQUENCE_H_
