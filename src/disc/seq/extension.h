// Extension scan: the complete sets of valid one-item extensions of a
// pattern within one customer sequence.
//
// A k-sequence with (k-1)-prefix F is F plus one item appended either to
// F's last itemset (an *i-extension*, item > F's last item) or as a new
// trailing transaction (an *s-extension*). This module computes, in one pass
// over the customer sequence, exactly the items z for which the extended
// pattern is still contained:
//
//   * s-extension z valid  <=>  z occurs in a transaction strictly after the
//     leftmost embedding of F (greedy leftmost minimizes the end
//     transaction, so "after leftmost end" captures every embedding);
//   * i-extension z valid  <=>  z > max(F.last itemset) and some transaction
//     t contains F.last itemset + {z} with F's other itemsets embeddable
//     before t (equivalently t is after the leftmost end of F's prefix).
//
// This is the corrected form of the paper's "minimum item to the right of
// the matching point" (Figure 5), which misses i-extensions reachable only
// through non-leftmost embeddings; see DESIGN.md deviation 2. The scan backs
// Apriori-KMS/CKMS, the counting arrays of §3.1, and the bi-level variant.
#ifndef DISC_SEQ_EXTENSION_H_
#define DISC_SEQ_EXTENSION_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "disc/order/compare.h"
#include "disc/seq/index.h"
#include "disc/seq/sequence.h"
#include "disc/seq/view.h"

namespace disc {

/// Valid one-item extensions of a pattern within one sequence.
struct ExtensionSets {
  /// True if the pattern itself is contained in the sequence. When false the
  /// item vectors are empty.
  bool contained = false;
  /// Sorted, distinct items z such that (pattern i-extended by z) is
  /// contained; all satisfy z > pattern.LastItem().
  std::vector<Item> i_items;
  /// Sorted, distinct items z such that (pattern s-extended by z) is
  /// contained.
  std::vector<Item> s_items;
};

/// Computes the extension sets of `pattern` in `s`. An empty pattern is
/// contained everywhere; its s-extensions are all distinct items of `s`
/// (1-sequences) and it has no i-extensions.
ExtensionSets ScanExtensions(SequenceView s, const Sequence& pattern);

struct EmbeddingEnds;

/// ScanExtensions with the embedding step already done (`ends` must be
/// LeftmostEnds(s, pattern, index)), writing into `*out` so a caller that
/// gathers repeatedly reuses the vectors' capacity. The sets depend only on
/// the immutable (s, pattern) pair: Apriori-CKMS caches them per sorted-list
/// entry and answers successive floor-constrained minimum queries against
/// the same entry by binary search (MinExtensionFromSets) instead of
/// re-scanning the customer sequence.
void ScanExtensionsWithEnds(SequenceView s, const Sequence& pattern,
                            const EmbeddingEnds& ends,
                            const SequenceIndex* index, ExtensionSets* out);

/// Result of a minimum-extension scan.
struct MinExtension {
  bool contained = false;  ///< pattern occurs in the sequence
  bool found = false;      ///< a qualifying extension exists
  Item item = kNoItem;
  ExtType type = ExtType::kSequence;
};

/// The minimal valid extension of `pattern` in `s` under the extension
/// order (item first, itemset form before sequence form), optionally
/// restricted to extensions comparing >= (or > when `strict`) the floor
/// extension. This is the allocation-free hot path of Apriori-KMS/CKMS —
/// semantically identical to taking ScanExtensions and picking the first
/// qualifying element, which the tests cross-check.
MinExtension ScanMinExtension(SequenceView s, const Sequence& pattern,
                              const std::pair<Item, ExtType>* floor = nullptr,
                              bool strict = false,
                              const SequenceIndex* index = nullptr);

/// ScanMinExtension with the leftmost-embedding step already done: `ends`
/// must be LeftmostEnds(s, pattern, index). The embedding depends only on
/// the immutable (sequence, pattern) pair, so Apriori-CKMS caches it per
/// entry and skips the re-derivation when consecutive advances scan the
/// same prefix (the common case — only the tail of the bound changed).
MinExtension MinExtensionWithEnds(SequenceView s, const Sequence& pattern,
                                  const EmbeddingEnds& ends,
                                  const std::pair<Item, ExtType>* floor,
                                  bool strict, const SequenceIndex* index);

/// The same minimum, answered from precomputed extension sets by binary
/// search: agrees with ScanMinExtension(s, pattern, floor, strict) whenever
/// `sets` == ScanExtensions(s, pattern). O(log |sets|) instead of a
/// customer-sequence scan — the payoff of caching the sets per entry.
MinExtension MinExtensionFromSets(const ExtensionSets& sets,
                                  const std::pair<Item, ExtType>* floor,
                                  bool strict);

/// Leftmost-embedding endpoints of a pattern: the shared first step of
/// every extension scan. For an empty pattern both ends are kNoTxn with
/// contained == true. `index` (when non-null, built from `s`) turns each
/// embedding step into binary-search jumps.
struct EmbeddingEnds {
  bool contained = false;
  std::uint32_t full_end = kNoTxn;    ///< end txn of the whole pattern
  std::uint32_t prefix_end = kNoTxn;  ///< end txn of all itemsets but last
};
EmbeddingEnds LeftmostEnds(SequenceView s, const Sequence& pattern,
                           const SequenceIndex* index = nullptr);

/// Streams every valid extension occurrence to `fn(item, type)` WITHOUT
/// deduplication (an item may be reported several times). The distinct set
/// of reported pairs equals ScanExtensions' sets; consumers that are
/// idempotent per item (CountingArray, min-tracking) use this to skip the
/// sort-unique cost.
template <typename Fn>
void ForEachExtensionWithEnds(SequenceView s, const Sequence& pattern,
                              const EmbeddingEnds& ends, Fn&& fn,
                              const SequenceIndex* index = nullptr) {
  if (!ends.contained) return;
  const std::uint32_t s_from =
      ends.full_end == kNoTxn ? 0 : ends.full_end + 1;
  for (std::uint32_t t = s_from; t < s.NumTransactions(); ++t) {
    for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
      fn(*p, ExtType::kSequence);
    }
  }
  if (pattern.Empty()) return;
  const std::uint32_t last_pt = pattern.NumTransactions() - 1;
  const Item* last_begin = pattern.TxnBegin(last_pt);
  const Item* last_end = pattern.TxnEnd(last_pt);
  const Item last_max = *(last_end - 1);
  const std::uint32_t i_from =
      ends.prefix_end == kNoTxn ? 0 : ends.prefix_end + 1;
  for (std::uint32_t t = i_from; t < s.NumTransactions(); ++t) {
    if (index != nullptr) {
      t = index->NextTxnWithItemset(t, last_begin, last_end);
      if (t == kNoTxn) break;
    } else {
      if (s.TxnSize(t) < pattern.TxnSize(last_pt) + 1) continue;
      if (*(s.TxnEnd(t) - 1) <= last_max) continue;  // nothing above max
      if (!SortedRangeIsSubset(last_begin, last_end, s.TxnBegin(t),
                               s.TxnEnd(t))) {
        continue;
      }
    }
    for (const Item* p =
             std::upper_bound(s.TxnBegin(t), s.TxnEnd(t), last_max);
         p != s.TxnEnd(t); ++p) {
      fn(*p, ExtType::kItemset);
    }
  }
}

template <typename Fn>
void ForEachExtension(SequenceView s, const Sequence& pattern, Fn&& fn,
                      const SequenceIndex* index = nullptr) {
  ForEachExtensionWithEnds(s, pattern, LeftmostEnds(s, pattern, index),
                           static_cast<Fn&&>(fn), index);
}

}  // namespace disc

#endif  // DISC_SEQ_EXTENSION_H_
