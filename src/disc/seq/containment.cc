#include "disc/seq/containment.h"

namespace disc {

std::uint32_t FindTxnWithItemset(SequenceView s, std::uint32_t start_txn,
                                 const Item* begin, const Item* end) {
  for (std::uint32_t t = start_txn; t < s.NumTransactions(); ++t) {
    if (SortedRangeIsSubset(begin, end, s.TxnBegin(t), s.TxnEnd(t))) return t;
  }
  return kNoTxn;
}

Embedding LeftmostEmbedding(SequenceView s, const Sequence& pattern,
                            std::vector<std::uint32_t>* matched_txns) {
  if (matched_txns != nullptr) matched_txns->clear();
  Embedding result;
  if (pattern.Empty()) {
    result.found = true;
    result.end_txn = kNoTxn;
    return result;
  }
  std::uint32_t next = 0;
  for (std::uint32_t pt = 0; pt < pattern.NumTransactions(); ++pt) {
    const std::uint32_t t =
        FindTxnWithItemset(s, next, pattern.TxnBegin(pt), pattern.TxnEnd(pt));
    if (t == kNoTxn) return result;  // not contained
    if (matched_txns != nullptr) matched_txns->push_back(t);
    result.end_txn = t;
    next = t + 1;
  }
  result.found = true;
  return result;
}

bool Contains(SequenceView s, const Sequence& pattern) {
  return LeftmostEmbedding(s, pattern).found;
}

std::uint32_t CountSupport(const SequenceDatabase& db,
                           const Sequence& pattern) {
  std::uint32_t count = 0;
  for (const SequenceView s : db) {
    if (Contains(s, pattern)) ++count;
  }
  return count;
}

}  // namespace disc
