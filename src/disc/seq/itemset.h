// Itemset: a sorted set of items (one transaction's contents).
//
// Itemsets are kept sorted ascending and duplicate-free; every algorithm in
// the library relies on that invariant (subset tests are linear merges, the
// last item of an itemset is its maximum, ...).
#ifndef DISC_SEQ_ITEMSET_H_
#define DISC_SEQ_ITEMSET_H_

#include <initializer_list>
#include <vector>

#include "disc/seq/types.h"

namespace disc {

/// A sorted, duplicate-free set of items.
class Itemset {
 public:
  Itemset() = default;

  /// Builds from arbitrary items; sorts and removes duplicates.
  explicit Itemset(std::vector<Item> items);
  Itemset(std::initializer_list<Item> items);

  /// Number of items.
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Access by rank (ascending order).
  Item operator[](std::size_t i) const { return items_[i]; }
  const std::vector<Item>& items() const { return items_; }

  /// Largest item; itemset must be non-empty.
  Item Max() const;

  /// Membership test (binary search).
  bool Contains(Item x) const;

  /// Returns true if every item of this set occurs in `other`.
  bool IsSubsetOf(const Itemset& other) const;

  /// Inserts an item, keeping order; inserting a duplicate is a no-op.
  void Insert(Item x);

  /// Removes an item if present.
  void Erase(Item x);

  bool operator==(const Itemset& other) const { return items_ == other.items_; }
  bool operator!=(const Itemset& other) const { return !(*this == other); }

 private:
  std::vector<Item> items_;
};

/// Subset test over raw sorted ranges (used on sequence transaction views).
bool SortedRangeIsSubset(const Item* sub_begin, const Item* sub_end,
                         const Item* super_begin, const Item* super_end);

}  // namespace disc

#endif  // DISC_SEQ_ITEMSET_H_
