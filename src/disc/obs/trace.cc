#include "disc/obs/trace.h"

#include <fstream>

#include "disc/obs/json.h"

namespace disc {
namespace obs {

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) {
  enabled_ = on;
  if (on && !epoch_set_) {
    epoch_ = std::chrono::steady_clock::now();
    epoch_set_ = true;
  }
}

std::uint64_t Tracer::NowMicros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Begin(std::string name) {
  if (!enabled_) return;
  stack_.push_back({std::move(name), NowMicros()});
}

void Tracer::End() {
  if (stack_.empty()) return;
  Open open = std::move(stack_.back());
  stack_.pop_back();
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  Event e;
  e.name = std::move(open.name);
  e.start_us = open.start_us;
  e.dur_us = NowMicros() - open.start_us;
  e.depth = static_cast<std::uint32_t>(stack_.size());
  events_.push_back(std::move(e));
}

void Tracer::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::ToChromeTraceJson() const {
  // The Chrome trace-event format: one "X" (complete) event per span;
  // nesting is inferred from timestamp containment within a (pid, tid).
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  w.BeginObject();
  w.Key("name").String("process_name");
  w.Key("ph").String("M");
  w.Key("pid").Uint(1);
  w.Key("tid").Uint(1);
  w.Key("args");
  w.BeginObject();
  w.Key("name").String("disc");
  w.EndObject();
  w.EndObject();
  for (const Event& e : events_) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String("disc");
    w.Key("ph").String("X");
    w.Key("ts").Uint(e.start_us);
    w.Key("dur").Uint(e.dur_us);
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(1);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  if (dropped_ > 0) {
    w.Key("droppedSpans").Uint(dropped_);
  }
  w.EndObject();
  return w.TakeString();
}

bool Tracer::WriteChromeTrace(const std::string& path,
                              std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToChromeTraceJson();
  out.close();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace disc
