#include "disc/obs/trace.h"

#include "disc/common/file_util.h"
#include "disc/obs/json.h"

namespace disc {
namespace obs {
namespace {

constexpr std::uint32_t kNoTid = ~std::uint32_t{0};

struct Open {
  std::string name;
  std::uint64_t start_us;
};

// Per-thread tracer state: the open-span stack and the lane id. Lives in
// the thread, so Begin/End never take the tracer mutex for stack work.
struct ThreadState {
  std::uint32_t tid = kNoTid;
  std::vector<Open> stack;
};

ThreadState& LocalState() {
  static thread_local ThreadState state;
  return state;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) {
  if (on) {
    std::int64_t expected = 0;
    epoch_ns_.compare_exchange_strong(
        expected,
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_acq_rel);
    // The enabling thread is the driver: name its lane "main" unless it
    // already registered under another name.
    ThreadState& state = LocalState();
    if (state.tid == kNoTid) SetCurrentThreadName("main");
  }
  enabled_.store(on, std::memory_order_relaxed);
}

std::uint64_t Tracer::NowMicros() const {
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const std::int64_t epoch = epoch_ns_.load(std::memory_order_acquire);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::duration(now - epoch))
          .count());
}

std::uint32_t Tracer::CurrentTid() {
  ThreadState& state = LocalState();
  if (state.tid == kNoTid) {
    std::lock_guard<std::mutex> lock(mu_);
    state.tid = static_cast<std::uint32_t>(thread_names_.size());
    thread_names_.push_back("thread-" + std::to_string(state.tid));
  }
  return state.tid;
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  ThreadState& state = LocalState();
  std::lock_guard<std::mutex> lock(mu_);
  if (state.tid == kNoTid) {
    state.tid = static_cast<std::uint32_t>(thread_names_.size());
    thread_names_.push_back(name);
  } else {
    thread_names_[state.tid] = name;
  }
}

void Tracer::Begin(std::string name) {
  if (!enabled()) return;
  LocalState().stack.push_back({std::move(name), NowMicros()});
}

void Tracer::End() {
  ThreadState& state = LocalState();
  if (state.stack.empty()) return;
  Open open = std::move(state.stack.back());
  state.stack.pop_back();
  const std::uint64_t end_us = NowMicros();
  const std::uint32_t tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  Event e;
  e.name = std::move(open.name);
  e.start_us = open.start_us;
  e.dur_us = end_us - open.start_us;
  e.depth = static_cast<std::uint32_t>(state.stack.size());
  e.tid = tid;
  events_.push_back(std::move(e));
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t Tracer::open_spans() const { return LocalState().stack.size(); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // The Chrome trace-event format: one "X" (complete) event per span;
  // nesting is inferred from timestamp containment within a (pid, tid).
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  w.BeginObject();
  w.Key("name").String("process_name");
  w.Key("ph").String("M");
  w.Key("pid").Uint(1);
  w.Key("tid").Uint(0);
  w.Key("args");
  w.BeginObject();
  w.Key("name").String("disc");
  w.EndObject();
  w.EndObject();
  for (std::size_t tid = 0; tid < thread_names_.size(); ++tid) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(tid);
    w.Key("args");
    w.BeginObject();
    w.Key("name").String(thread_names_[tid]);
    w.EndObject();
    w.EndObject();
  }
  for (const Event& e : events_) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String("disc");
    w.Key("ph").String("X");
    w.Key("ts").Uint(e.start_us);
    w.Key("dur").Uint(e.dur_us);
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(e.tid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  if (dropped_ > 0) {
    w.Key("droppedSpans").Uint(dropped_);
  }
  w.EndObject();
  return w.TakeString();
}

bool Tracer::WriteChromeTrace(const std::string& path,
                              std::string* error) const {
  // Atomic (temp + rename) so an interrupted run cannot clobber a previous
  // good trace with a truncated one.
  const Status status = WriteFileAtomic(path, ToChromeTraceJson());
  if (!status.ok()) {
    if (error != nullptr) *error = status.message();
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace disc
