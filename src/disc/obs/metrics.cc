#include "disc/obs/metrics.h"

#include <bit>

namespace disc {
namespace obs {

void Gauge::Set(double v) {
  value_ = v;
  tick_ = ++MetricsRegistry::Global().gauge_tick_;
}

void Histogram::Record(std::uint64_t v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
  ++buckets_[std::bit_width(v)];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    snap.counters[name + ".count"] = h->count();
    snap.counters[name + ".sum"] = h->sum();
  }
  snap.gauge_tick = gauge_tick_;
  return snap;
}

void MetricsRegistry::HarvestSince(
    const MetricsSnapshot& before,
    std::vector<std::pair<std::string, std::uint64_t>>* counters,
    std::vector<std::pair<std::string, double>>* gauges) const {
  const MetricsSnapshot now = Snapshot();
  for (const auto& [name, value] : now.counters) {
    std::uint64_t old = 0;
    const auto it = before.counters.find(name);
    if (it != before.counters.end()) old = it->second;
    if (value > old) counters->emplace_back(name, value - old);
  }
  for (const auto& [name, g] : gauges_) {
    if (g->tick_ > before.gauge_tick) gauges->emplace_back(name, g->value_);
  }
}

void MetricsRegistry::ResetAll() {
  for (const auto& [name, c] : counters_) c->value_ = 0;
  for (const auto& [name, g] : gauges_) {
    g->value_ = 0.0;
    g->tick_ = 0;
  }
  for (const auto& [name, h] : histograms_) *h = Histogram();
  gauge_tick_ = 0;
}

}  // namespace obs
}  // namespace disc
