#include "disc/obs/metrics.h"

#include <bit>

namespace disc {
namespace obs {

std::size_t AllocateThreadShard() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void Gauge::Set(double v) {
  value_.store(v, std::memory_order_relaxed);
  tick_.store(MetricsRegistry::Global().gauge_tick_.fetch_add(
                  1, std::memory_order_acq_rel) +
                  1,
              std::memory_order_release);
}

void Histogram::Record(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::SnapshotLocked(MetricsSnapshot* snap) const {
  for (const auto& [name, c] : counters_) snap->counters[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    snap->counters[name + ".count"] = h->count();
    snap->counters[name + ".sum"] = h->sum();
  }
  snap->gauge_tick = gauge_tick();
}

MetricsExport MetricsRegistry::ExportAll() const {
  MetricsExport out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    if (g->last_set_tick() > 0) out.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    MetricsExport::HistogramStats& s = out.histograms[name];
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  SnapshotLocked(&snap);
  return snap;
}

void MetricsRegistry::HarvestSince(
    const MetricsSnapshot& before,
    std::vector<std::pair<std::string, std::uint64_t>>* counters,
    std::vector<std::pair<std::string, double>>* gauges) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot now;
  SnapshotLocked(&now);
  for (const auto& [name, value] : now.counters) {
    std::uint64_t old = 0;
    const auto it = before.counters.find(name);
    if (it != before.counters.end()) old = it->second;
    if (value > old) counters->emplace_back(name, value - old);
  }
  for (const auto& [name, g] : gauges_) {
    if (g->last_set_tick() > before.gauge_tick) {
      gauges->emplace_back(name, g->value());
    }
  }
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    for (Counter::Cell& cell : c->cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, g] : gauges_) {
    g->value_.store(0.0, std::memory_order_relaxed);
    g->tick_.store(0, std::memory_order_relaxed);
  }
  for (const auto& [name, h] : histograms_) {
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->min_.store(Histogram::kNoMin, std::memory_order_relaxed);
    h->max_.store(0, std::memory_order_relaxed);
    for (std::atomic<std::uint64_t>& b : h->buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
  }
  gauge_tick_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace disc
