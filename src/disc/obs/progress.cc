#include "disc/obs/progress.h"

#include <algorithm>
#include <cstdio>

#include "disc/obs/event_log.h"

namespace disc {
namespace obs {

double ProgressSnapshot::PercentDone() const {
  if (partitions_total == 0) return finished ? 100.0 : 0.0;
  return 100.0 * static_cast<double>(partitions_completed) /
         static_cast<double>(partitions_total);
}

std::string ProgressSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "run=%llu miner=%s partitions=%llu/%llu pct=%.1f%% "
                "patterns=%llu elapsed=%.1fs",
                static_cast<unsigned long long>(run_id), miner.c_str(),
                static_cast<unsigned long long>(partitions_completed),
                static_cast<unsigned long long>(partitions_total),
                PercentDone(),
                static_cast<unsigned long long>(patterns_found),
                elapsed_seconds);
  std::string out = buf;
  if (!finished && eta_seconds >= 0.0) {
    std::snprintf(buf, sizeof(buf), " eta=%.1fs", eta_seconds);
    out += buf;
  }
  if (cancelled) out += " [cancelled]";
  if (deadline_exceeded) out += " [deadline]";
  if (finished) out += " [done]";
  return out;
}

RunTelemetry::RunTelemetry(std::uint64_t run_id, std::string miner,
                           std::size_t db_sequences)
    : run_id_(run_id),
      miner_(std::move(miner)),
      db_sequences_(db_sequences),
      start_(std::chrono::steady_clock::now()) {}

void RunTelemetry::BeginPartitions(std::uint64_t total,
                                   std::uint64_t total_weight) {
  partitions_total_.store(total, std::memory_order_relaxed);
  total_weight_.store(total_weight, std::memory_order_relaxed);
}

void RunTelemetry::PartitionStarted(std::uint64_t id) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  EventLog::Global().PartitionStart(run_id_, id);
}

void RunTelemetry::PartitionDone(std::uint64_t id, std::uint64_t weight,
                                 std::uint64_t patterns) {
  completed_weight_.fetch_add(weight, std::memory_order_relaxed);
  patterns_.fetch_add(patterns, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  // The completed count and its partition_done event must land in the log
  // in the same order, or two workers finishing together could record
  // "completed" values out of order and break the validator's per-run
  // monotonicity. Serialize the pair; this is a per-partition (cold) path.
  std::lock_guard<std::mutex> lock(emit_mu_);
  const std::uint64_t done =
      completed_.fetch_add(1, std::memory_order_relaxed) + 1;
  EventLog::Global().PartitionDone(
      run_id_, id, weight, patterns, done,
      partitions_total_.load(std::memory_order_relaxed));
}

void RunTelemetry::PartitionAborted(std::uint64_t id) {
  (void)id;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

void RunTelemetry::AddPatterns(std::uint64_t n) {
  patterns_.fetch_add(n, std::memory_order_relaxed);
}

void RunTelemetry::ObserveRss(std::uint64_t bytes) {
  std::uint64_t cur = rss_high_water_.load(std::memory_order_relaxed);
  while (bytes > cur && !rss_high_water_.compare_exchange_weak(
                            cur, bytes, std::memory_order_relaxed)) {
  }
}

ProgressSnapshot RunTelemetry::Snapshot() const {
  ProgressSnapshot s;
  s.run_id = run_id_;
  s.miner = miner_;
  s.db_sequences = db_sequences_;
  s.partitions_total = partitions_total_.load(std::memory_order_relaxed);
  s.partitions_completed = completed_.load(std::memory_order_relaxed);
  s.partitions_in_flight = in_flight_.load(std::memory_order_relaxed);
  s.patterns_found = patterns_.load(std::memory_order_relaxed);
  s.rss_high_water_bytes = rss_high_water_.load(std::memory_order_relaxed);
  s.finished = finished_.load(std::memory_order_acquire);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.elapsed_seconds =
      s.finished
          ? wall_seconds_.load(std::memory_order_relaxed)
          : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();

  const std::uint64_t total_w = total_weight_.load(std::memory_order_relaxed);
  const std::uint64_t done_w =
      completed_weight_.load(std::memory_order_relaxed);
  if (s.finished) {
    s.fraction_done = 1.0;
    s.eta_seconds = 0.0;
  } else if (total_w > 0) {
    s.fraction_done = std::min(
        1.0, static_cast<double>(done_w) / static_cast<double>(total_w));
    if (done_w > 0 && done_w < total_w) {
      s.eta_seconds = s.elapsed_seconds *
                      static_cast<double>(total_w - done_w) /
                      static_cast<double>(done_w);
    }
  }
  return s;
}

RunRegistry& RunRegistry::Global() {
  static RunRegistry* const registry = new RunRegistry();
  return *registry;
}

std::shared_ptr<RunTelemetry> RunRegistry::Begin(std::string miner,
                                                 std::size_t db_sequences) {
  if (!enabled()) return nullptr;
  const std::uint64_t id =
      next_run_id_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<RunTelemetry> tel(
      new RunTelemetry(id, std::move(miner), db_sequences));
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(tel);
  }
  EventLog::Global().RunStart(id, tel->miner(), db_sequences);
  return tel;
}

void RunRegistry::Finish(const std::shared_ptr<RunTelemetry>& tel,
                         std::uint64_t num_patterns, double wall_seconds,
                         bool cancelled, bool deadline_exceeded) {
  if (tel == nullptr) return;
  tel->patterns_.store(num_patterns, std::memory_order_relaxed);
  tel->wall_seconds_.store(wall_seconds, std::memory_order_relaxed);
  tel->cancelled_.store(cancelled, std::memory_order_relaxed);
  tel->deadline_exceeded_.store(deadline_exceeded, std::memory_order_relaxed);
  tel->finished_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(std::remove(active_.begin(), active_.end(), tel),
                  active_.end());
    finished_.push_back(tel->Snapshot());
    if (finished_.size() > kMaxFinished) {
      finished_.erase(finished_.begin(),
                      finished_.begin() +
                          static_cast<std::ptrdiff_t>(finished_.size() -
                                                      kMaxFinished));
    }
  }
  EventLog& log = EventLog::Global();
  if (cancelled) log.Cancel(tel->run_id());
  if (deadline_exceeded) log.Deadline(tel->run_id());
  log.RunDone(tel->run_id(), num_patterns, wall_seconds, cancelled,
              deadline_exceeded);
}

std::vector<std::shared_ptr<RunTelemetry>> RunRegistry::ActiveRuns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::vector<ProgressSnapshot> RunRegistry::SnapshotActive() const {
  std::vector<std::shared_ptr<RunTelemetry>> active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = active_;
  }
  std::vector<ProgressSnapshot> out;
  out.reserve(active.size());
  for (const auto& tel : active) out.push_back(tel->Snapshot());
  std::sort(out.begin(), out.end(),
            [](const ProgressSnapshot& a, const ProgressSnapshot& b) {
              return a.run_id < b.run_id;
            });
  return out;
}

std::vector<ProgressSnapshot> RunRegistry::SnapshotAll() const {
  std::vector<ProgressSnapshot> out;
  std::vector<std::shared_ptr<RunTelemetry>> active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = finished_;
    active = active_;
  }
  for (const auto& tel : active) out.push_back(tel->Snapshot());
  std::sort(out.begin(), out.end(),
            [](const ProgressSnapshot& a, const ProgressSnapshot& b) {
              return a.run_id < b.run_id;
            });
  return out;
}

void RunRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  finished_.clear();
  next_run_id_.store(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace disc
