// Metrics registry: named counters, gauges, and size/latency histograms for
// the whole library. The mining hot paths (comparative-order comparisons,
// KMS advances, counting-array probes, ...) bump process-global counters via
// the DISC_OBS_* macros below; `Miner::Mine` snapshots the registry around
// each run and reports the per-run deltas as a `MineStats` record.
//
// Cost model:
//   * compile-time off (CMake -DDISC_ENABLE_OBS=OFF -> DISC_OBS_ENABLED=0):
//     the macros expand to nothing, the instrumentation has zero cost;
//   * runtime off (MetricsRegistry::Global().set_enabled(false)): one
//     relaxed atomic-bool load per instrumentation point;
//   * on (the default): load + relaxed 64-bit atomic increment on a
//     thread-sharded cell.
//
// Thread safety: the registry is safe to use from the partition-scheduler
// worker threads. Counters shard their value across per-thread cache-line
// cells (a worker increments its own cell uncontended; value() sums the
// cells), histograms and gauges use relaxed atomics, and the name->object
// maps are mutex-guarded. Snapshot()/HarvestSince() are meant to run at
// quiescent points (before/after a Mine() call, when the pool has joined);
// calling them mid-run is safe but yields an in-flight view.
#ifndef DISC_OBS_METRICS_H_
#define DISC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef DISC_OBS_ENABLED
#define DISC_OBS_ENABLED 1
#endif

namespace disc {
namespace obs {

/// Index of the calling thread's counter shard, assigned round-robin on
/// first use. Distinct live threads land on distinct shards until
/// Counter::kShards threads exist; beyond that shards are shared (still
/// correct — cells are atomic — just contended).
std::size_t AllocateThreadShard();
inline std::size_t ThreadShard() {
  thread_local const std::size_t shard = AllocateThreadShard();
  return shard;
}

/// Monotone event count (work performed: comparisons, probes, joins, ...).
/// Increments go to a per-thread cache-line-padded cell so hot loops on
/// different workers never contend; value() folds the cells.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::uint64_t n) {
    cells_[ThreadShard() % kShards].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Last-written value (rates, ratios; e.g. the physical NRR of a run).
/// Each Set stamps a registry-global tick so per-run harvesting can tell
/// fresh values from stale ones.
class Gauge {
 public:
  void Set(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  std::uint64_t last_set_tick() const {
    return tick_.load(std::memory_order_acquire);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> tick_{0};  // 0 = never set
};

/// Power-of-two bucketed histogram for sizes and latencies. Bucket b counts
/// values v with bit_width(v) == b, i.e. bucket 0 holds v == 0, bucket 1
/// holds v == 1, bucket 2 holds 2..3, bucket 3 holds 4..7, ...
/// All fields are relaxed atomics (min/max via CAS loops), so concurrent
/// Record calls from pool workers are safe; cross-field consistency is only
/// guaranteed at quiescent points.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void Record(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when count() == 0.
  std::uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  const std::atomic<std::uint64_t>* buckets() const { return buckets_; }

 private:
  friend class MetricsRegistry;
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kNoMin};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// A point-in-time copy of every counter (and histogram aggregate) plus the
/// gauge tick, used to compute per-run deltas.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;  // incl. hist .count/.sum
  std::uint64_t gauge_tick = 0;
};

/// A richer point-in-time copy carrying every metric family separately —
/// counters, gauge values (only gauges ever Set), and histogram aggregates
/// — as needed by the Prometheus exposition writer (obs/expose.h), which
/// must know each metric's kind to emit the right `# TYPE` line.
struct MetricsExport {
  struct HistogramStats {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Process-global registry. Metric objects are created on first lookup and
/// live forever; handles returned by counter()/gauge()/histogram() stay
/// valid, so hot paths resolve a name once (see DISC_OBS_COUNTER) and then
/// touch only the object.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Runtime toggle, honored by the DISC_OBS_* macros. Direct method calls
  /// on metric objects are not gated.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Snapshot of all counter values (histograms contribute "<name>.count"
  /// and "<name>.sum" entries) and the current gauge tick.
  MetricsSnapshot Snapshot() const;

  /// Kind-separated snapshot of every metric, for exposition. Gauges that
  /// were never Set are omitted (their zero is meaningless).
  MetricsExport ExportAll() const;

  /// Appends to `counters` every counter whose value grew since `before`
  /// (as name -> delta) and to `gauges` every gauge Set() since `before`.
  /// Both outputs are sorted by name.
  void HarvestSince(const MetricsSnapshot& before,
                    std::vector<std::pair<std::string, std::uint64_t>>* counters,
                    std::vector<std::pair<std::string, double>>* gauges) const;

  /// Zeroes every metric (tests). Handles stay valid. Must run at a
  /// quiescent point (no concurrent writers).
  void ResetAll();

  std::uint64_t gauge_tick() const {
    return gauge_tick_.load(std::memory_order_acquire);
  }

 private:
  friend class Gauge;
  MetricsRegistry() = default;

  void SnapshotLocked(MetricsSnapshot* snap) const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> gauge_tick_{0};
  mutable std::mutex mu_;  // guards the three maps
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// True when the runtime toggle is on (macro fast path).
inline bool MetricsEnabled() { return MetricsRegistry::Global().enabled(); }

}  // namespace obs
}  // namespace disc

// Instrumentation macros. Declare a handle once (file or function scope),
// then bump it; everything disappears when DISC_OBS_ENABLED is 0.
//
//   DISC_OBS_COUNTER(g_compares, "order.seq_compares");
//   ...
//   DISC_OBS_INC(g_compares);
#if DISC_OBS_ENABLED

#define DISC_OBS_COUNTER(var, name)        \
  static ::disc::obs::Counter* const var = \
      ::disc::obs::MetricsRegistry::Global().counter(name)
#define DISC_OBS_GAUGE(var, name)        \
  static ::disc::obs::Gauge* const var = \
      ::disc::obs::MetricsRegistry::Global().gauge(name)
#define DISC_OBS_HISTOGRAM(var, name)        \
  static ::disc::obs::Histogram* const var = \
      ::disc::obs::MetricsRegistry::Global().histogram(name)

#define DISC_OBS_ADD(var, n)                                     \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Add(n);            \
  } while (0)
#define DISC_OBS_INC(var)                                        \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Increment();       \
  } while (0)
#define DISC_OBS_SET(var, v)                                     \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Set(v);            \
  } while (0)
#define DISC_OBS_RECORD(var, v)                                  \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Record(v);         \
  } while (0)

#else  // !DISC_OBS_ENABLED

#define DISC_OBS_COUNTER(var, name) static constexpr int var = 0
#define DISC_OBS_GAUGE(var, name) static constexpr int var = 0
#define DISC_OBS_HISTOGRAM(var, name) static constexpr int var = 0
#define DISC_OBS_ADD(var, n) \
  do {                       \
    (void)(var);             \
  } while (0)
#define DISC_OBS_INC(var) \
  do {                    \
    (void)(var);          \
  } while (0)
#define DISC_OBS_SET(var, v) \
  do {                       \
    (void)(var);             \
  } while (0)
#define DISC_OBS_RECORD(var, v) \
  do {                          \
    (void)(var);                \
  } while (0)

#endif  // DISC_OBS_ENABLED

#endif  // DISC_OBS_METRICS_H_
