// Metrics registry: named counters, gauges, and size/latency histograms for
// the whole library. The mining hot paths (comparative-order comparisons,
// KMS advances, counting-array probes, ...) bump process-global counters via
// the DISC_OBS_* macros below; `Miner::Mine` snapshots the registry around
// each run and reports the per-run deltas as a `MineStats` record.
//
// Cost model:
//   * compile-time off (CMake -DDISC_ENABLE_OBS=OFF -> DISC_OBS_ENABLED=0):
//     the macros expand to nothing, the instrumentation has zero cost;
//   * runtime off (MetricsRegistry::Global().set_enabled(false)): one
//     global-bool branch per instrumentation point;
//   * on (the default): branch + plain 64-bit increment. The registry is
//     NOT thread-safe, matching the single-threaded mining kernels.
#ifndef DISC_OBS_METRICS_H_
#define DISC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#ifndef DISC_OBS_ENABLED
#define DISC_OBS_ENABLED 1
#endif

namespace disc {
namespace obs {

/// Monotone event count (work performed: comparisons, probes, joins, ...).
class Counter {
 public:
  void Add(std::uint64_t n) { value_ += n; }
  void Increment() { ++value_; }
  std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

/// Last-written value (rates, ratios; e.g. the physical NRR of a run).
/// Each Set stamps a registry-global tick so per-run harvesting can tell
/// fresh values from stale ones.
class Gauge {
 public:
  void Set(double v);
  double value() const { return value_; }
  std::uint64_t last_set_tick() const { return tick_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  std::uint64_t tick_ = 0;  // 0 = never set
};

/// Power-of-two bucketed histogram for sizes and latencies. Bucket b counts
/// values v with bit_width(v) == b, i.e. bucket 0 holds v == 0, bucket 1
/// holds v == 1, bucket 2 holds 2..3, bucket 3 holds 4..7, ...
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void Record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded value; 0 when count() == 0.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;
  const std::uint64_t* buckets() const { return buckets_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBuckets] = {};
};

/// A point-in-time copy of every counter (and histogram aggregate) plus the
/// gauge tick, used to compute per-run deltas.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;  // incl. hist .count/.sum
  std::uint64_t gauge_tick = 0;
};

/// Process-global registry. Metric objects are created on first lookup and
/// live forever; handles returned by counter()/gauge()/histogram() stay
/// valid, so hot paths resolve a name once (see DISC_OBS_COUNTER) and then
/// touch only the object.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Runtime toggle, honored by the DISC_OBS_* macros. Direct method calls
  /// on metric objects are not gated.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Snapshot of all counter values (histograms contribute "<name>.count"
  /// and "<name>.sum" entries) and the current gauge tick.
  MetricsSnapshot Snapshot() const;

  /// Appends to `counters` every counter whose value grew since `before`
  /// (as name -> delta) and to `gauges` every gauge Set() since `before`.
  /// Both outputs are sorted by name.
  void HarvestSince(const MetricsSnapshot& before,
                    std::vector<std::pair<std::string, std::uint64_t>>* counters,
                    std::vector<std::pair<std::string, double>>* gauges) const;

  /// Zeroes every metric (tests). Handles stay valid.
  void ResetAll();

  std::uint64_t gauge_tick() const { return gauge_tick_; }

 private:
  friend class Gauge;
  MetricsRegistry() = default;

  bool enabled_ = true;
  std::uint64_t gauge_tick_ = 0;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// True when the runtime toggle is on (macro fast path).
inline bool MetricsEnabled() { return MetricsRegistry::Global().enabled(); }

}  // namespace obs
}  // namespace disc

// Instrumentation macros. Declare a handle once (file or function scope),
// then bump it; everything disappears when DISC_OBS_ENABLED is 0.
//
//   DISC_OBS_COUNTER(g_compares, "order.seq_compares");
//   ...
//   DISC_OBS_INC(g_compares);
#if DISC_OBS_ENABLED

#define DISC_OBS_COUNTER(var, name)        \
  static ::disc::obs::Counter* const var = \
      ::disc::obs::MetricsRegistry::Global().counter(name)
#define DISC_OBS_GAUGE(var, name)        \
  static ::disc::obs::Gauge* const var = \
      ::disc::obs::MetricsRegistry::Global().gauge(name)
#define DISC_OBS_HISTOGRAM(var, name)        \
  static ::disc::obs::Histogram* const var = \
      ::disc::obs::MetricsRegistry::Global().histogram(name)

#define DISC_OBS_ADD(var, n)                                     \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Add(n);            \
  } while (0)
#define DISC_OBS_INC(var)                                        \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Increment();       \
  } while (0)
#define DISC_OBS_SET(var, v)                                     \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Set(v);            \
  } while (0)
#define DISC_OBS_RECORD(var, v)                                  \
  do {                                                           \
    if (::disc::obs::MetricsEnabled()) (var)->Record(v);         \
  } while (0)

#else  // !DISC_OBS_ENABLED

#define DISC_OBS_COUNTER(var, name) static constexpr int var = 0
#define DISC_OBS_GAUGE(var, name) static constexpr int var = 0
#define DISC_OBS_HISTOGRAM(var, name) static constexpr int var = 0
#define DISC_OBS_ADD(var, n) \
  do {                       \
    (void)(var);             \
  } while (0)
#define DISC_OBS_INC(var) \
  do {                    \
    (void)(var);          \
  } while (0)
#define DISC_OBS_SET(var, v) \
  do {                       \
    (void)(var);             \
  } while (0)
#define DISC_OBS_RECORD(var, v) \
  do {                          \
    (void)(var);                \
  } while (0)

#endif  // DISC_OBS_ENABLED

#endif  // DISC_OBS_METRICS_H_
