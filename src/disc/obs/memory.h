// Peak-RSS memory probe for MineStats and the bench reports.
#ifndef DISC_OBS_MEMORY_H_
#define DISC_OBS_MEMORY_H_

#include <cstdint>

namespace disc {
namespace obs {

/// The process's peak resident set size in bytes (the high-water mark, not
/// the current RSS — Linux VmHWM, with a getrusage fallback). Returns 0 when
/// the platform offers neither. Monotone over the process lifetime, so
/// per-run values reflect the largest run so far.
std::uint64_t PeakRssBytes();

/// Current resident set size in bytes (Linux VmRSS); 0 when unavailable.
std::uint64_t CurrentRssBytes();

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_MEMORY_H_
