// MineStats: the uniform per-run work report every miner exposes through
// the common Miner interface. Populated automatically by Miner::Mine from
// a metrics-registry snapshot diff, so an algorithm only has to bump the
// relevant global counters (see docs/OBSERVABILITY.md for the name
// catalogue) and the report assembles itself.
#ifndef DISC_OBS_MINE_STATS_H_
#define DISC_OBS_MINE_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "disc/obs/metrics.h"

namespace disc {
namespace obs {

/// Work and resource accounting for one Mine() call. Counters are the
/// registry deltas accumulated during the run (histograms appear as
/// "<name>.count" / "<name>.sum" entries); gauges are the values Set()
/// during the run. Both lists are sorted by name.
struct MineStats {
  std::string miner;             ///< Miner::name() of the producing run
  double wall_seconds = 0.0;     ///< Mine() wall-clock time
  std::size_t num_patterns = 0;  ///< frequent sequences found
  std::uint32_t max_length = 0;  ///< longest frequent sequence
  std::size_t db_sequences = 0;  ///< |DB| mined
  /// Peak RSS (bytes) of the run. When the TelemetrySampler ran during the
  /// mine (e.g. under --progress), this is the run's own high-water mark —
  /// the largest VmRSS sampled between Begin and Finish, so back-to-back
  /// runs in one process don't contaminate each other. Without sampling it
  /// falls back to the process-lifetime VmHWM, which is monotone per
  /// process: in a multi-run binary the fallback reflects the largest run
  /// so far, not this run alone.
  std::uint64_t peak_rss_bytes = 0;
  /// The run stopped early via its CancelToken; the patterns are the
  /// documented partial result (docs/ROBUSTNESS.md).
  bool cancelled = false;
  /// The run stopped early because MineOptions::deadline_ms elapsed.
  bool deadline_exceeded = false;

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;

  /// Value of a work counter; 0 when the run never touched it.
  std::uint64_t Counter(std::string_view name) const;
  /// Value of a gauge; NaN when the run never set it.
  double Gauge(std::string_view name) const;
  bool HasGauge(std::string_view name) const;

  /// Multi-line human-readable summary (used by --stats and quickstart).
  std::string ToString() const;
};

/// Captures a registry snapshot on construction; Finish() fills a MineStats
/// with everything that changed since. Used by Miner::Mine; benches or
/// tests can use it directly around arbitrary code regions.
class StatsHarvest {
 public:
  StatsHarvest();
  /// Writes counter deltas, fresh gauges, and the peak RSS into `stats`.
  void Finish(MineStats* stats) const;

 private:
  MetricsSnapshot before_;
};

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_MINE_STATS_H_
