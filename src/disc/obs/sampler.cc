#include "disc/obs/sampler.h"

#include <algorithm>
#include <chrono>

#include "disc/obs/memory.h"
#include "disc/obs/metrics.h"

namespace disc {
namespace obs {

void TelemetrySampler::Start(const Options& options, TickFn on_tick) {
  if (thread_.joinable()) return;
  options_ = options;
  options_.period_ms = std::max<std::uint64_t>(options_.period_ms, 10);
  on_tick_ = std::move(on_tick);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
    ticks_ = 0;
  }
  thread_ = std::thread([this] { Loop(); });
}

void TelemetrySampler::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  SampleOnce(/*final=*/true);
}

std::uint64_t TelemetrySampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

void TelemetrySampler::Loop() {
  const auto period = std::chrono::milliseconds(options_.period_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    SampleOnce(/*final=*/false);
    lock.lock();
  }
}

void TelemetrySampler::SampleOnce(bool final) {
  RunRegistry& registry = RunRegistry::Global();
  if (options_.sample_rss) {
    const std::uint64_t rss = CurrentRssBytes();
    if (rss > 0) {
      DISC_OBS_GAUGE(g_rss, "proc.rss_bytes");
      DISC_OBS_SET(g_rss, static_cast<double>(rss));
      for (const auto& tel : registry.ActiveRuns()) tel->ObserveRss(rss);
    }
  }
  if (on_tick_) on_tick_(registry.SnapshotActive(), final);
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
}

}  // namespace obs
}  // namespace disc
