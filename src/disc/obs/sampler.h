// Background telemetry sampler: a single low-duty thread that, every
// `period_ms`, samples the process VmRSS (folding it into each in-flight
// run's high-water mark — the source of MineStats::peak_rss_bytes when
// sampling is on), refreshes the `proc.rss_bytes` gauge, and hands the
// active-run progress snapshots to an optional tick callback (the CLI
// `--progress` stderr ticker, a daemon's push exporter, ...).
//
// The sampler is what turns the passive RunTelemetry counters into a live
// feed without adding any cost to the mining threads: workers only bump
// relaxed atomics at partition boundaries; this thread does all the
// reading, formatting, and I/O.
//
// Lifecycle: Start spawns the thread, Stop joins it. Stop always delivers
// one final tick (final=true) before returning, so a run shorter than one
// period still surfaces its 100% state. Start/Stop are not thread-safe
// against each other; call them from the owning (driver) thread.
#ifndef DISC_OBS_SAMPLER_H_
#define DISC_OBS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "disc/obs/progress.h"

namespace disc {
namespace obs {

class TelemetrySampler {
 public:
  struct Options {
    /// Sampling period. Clamped to >= 10 to keep a mistyped flag from
    /// turning the sampler into a busy loop.
    std::uint64_t period_ms = 200;
    /// Sample VmRSS each tick (per-run high-water + proc.rss_bytes gauge).
    bool sample_rss = true;
  };

  /// Called once per tick with the in-flight run snapshots (ascending run
  /// id; possibly empty). `final` is true exactly once, for the tick Stop
  /// delivers after the loop exits — by then finished runs have left the
  /// active set, so a final ticker line should come from SnapshotAll or the
  /// caller's own accounting.
  using TickFn =
      std::function<void(const std::vector<ProgressSnapshot>&, bool final)>;

  TelemetrySampler() = default;
  ~TelemetrySampler() { Stop(); }
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Spawns the sampling thread. No-op if already running. `on_tick` may be
  /// null (RSS sampling alone still runs).
  void Start(const Options& options, TickFn on_tick = nullptr);
  /// Signals the thread, joins it, and delivers the final tick. No-op if
  /// not running. Safe to call repeatedly.
  void Stop();

  bool running() const { return thread_.joinable(); }
  /// Ticks delivered so far (tests; includes the final one after Stop).
  std::uint64_t ticks() const;

 private:
  void Loop();
  void SampleOnce(bool final);

  Options options_;
  TickFn on_tick_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_SAMPLER_H_
