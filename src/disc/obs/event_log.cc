#include "disc/obs/event_log.h"

#include <algorithm>
#include <map>
#include <set>

#include "disc/obs/json.h"

namespace disc {
namespace obs {

EventLog& EventLog::Global() {
  static EventLog* const log = new EventLog();
  return *log;
}

Status EventLog::Open(const std::string& path) {
  Close();
  std::lock_guard<std::mutex> lock(mu_);
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    return Status::IoError("cannot open event log: " + path);
  }
  seq_ = 0;
  last_ts_us_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  records_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_relaxed);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void EventLog::Append(const std::string& event, std::uint64_t run_id,
                      const std::string& extra_fields) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  std::uint64_t ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - epoch_)
          .count());
  // The steady clock is monotone, but guard anyway so the validator's
  // non-decreasing invariant holds unconditionally.
  ts_us = std::max(ts_us, last_ts_us_);
  last_ts_us_ = ts_us;
  ++seq_;

  std::string line;
  line.reserve(96 + extra_fields.size());
  line += "{\"seq\":";
  line += std::to_string(seq_);
  line += ",\"ts_us\":";
  line += std::to_string(ts_us);
  line += ",\"event\":\"";
  line += event;  // event names are fixed literals, no escaping needed
  line += "\",\"run_id\":";
  line += std::to_string(run_id);
  line += extra_fields;
  line += "}\n";
  // One fwrite of the whole line + flush: tailing readers never observe a
  // buffered partial record (see file comment in the header).
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  records_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::RunStart(std::uint64_t run_id, const std::string& miner,
                        std::size_t db_sequences) {
  if (!active()) return;
  std::string extra = ",\"miner\":\"";
  JsonEscape(miner, &extra);
  extra += "\",\"db_sequences\":";
  extra += std::to_string(db_sequences);
  Append("run_start", run_id, extra);
}

void EventLog::PartitionStart(std::uint64_t run_id, std::uint64_t partition) {
  if (!active()) return;
  Append("partition_start", run_id,
         ",\"partition\":" + std::to_string(partition));
}

void EventLog::PartitionDone(std::uint64_t run_id, std::uint64_t partition,
                             std::uint64_t weight, std::uint64_t patterns,
                             std::uint64_t completed, std::uint64_t total) {
  if (!active()) return;
  std::string extra = ",\"partition\":" + std::to_string(partition);
  extra += ",\"weight\":" + std::to_string(weight);
  extra += ",\"patterns\":" + std::to_string(patterns);
  extra += ",\"completed\":" + std::to_string(completed);
  extra += ",\"total\":" + std::to_string(total);
  Append("partition_done", run_id, extra);
}

void EventLog::Cancel(std::uint64_t run_id) { Append("cancel", run_id, ""); }

void EventLog::Deadline(std::uint64_t run_id) {
  Append("deadline", run_id, "");
}

void EventLog::RunDone(std::uint64_t run_id, std::uint64_t patterns,
                       double wall_seconds, bool cancelled,
                       bool deadline_exceeded) {
  if (!active()) return;
  JsonWriter w;  // reuse the writer for the double formatting only
  w.Double(wall_seconds);
  std::string extra = ",\"patterns\":" + std::to_string(patterns);
  extra += ",\"wall_seconds\":" + w.TakeString();
  extra += cancelled ? ",\"cancelled\":true" : ",\"cancelled\":false";
  extra += deadline_exceeded ? ",\"deadline_exceeded\":true"
                             : ",\"deadline_exceeded\":false";
  Append("run_done", run_id, extra);
}

bool ValidateEventLogJsonl(const std::string& text, std::string* error) {
  auto fail = [error](std::size_t line_no, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  };
  static const std::set<std::string> kKnownEvents = {
      "run_start", "partition_start", "partition_done",
      "cancel",    "deadline",        "run_done"};

  struct RunState {
    bool started = false;
    bool done = false;
    std::uint64_t last_completed = 0;
  };
  std::map<std::uint64_t, RunState> runs;
  std::uint64_t last_seq = 0;
  std::uint64_t last_ts = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue rec;
    std::string parse_error;
    if (!JsonParse(line, &rec, &parse_error)) {
      return fail(line_no, "not valid JSON: " + parse_error);
    }
    if (!rec.is_object()) return fail(line_no, "record is not an object");
    for (const char* key : {"seq", "ts_us", "run_id"}) {
      const JsonValue* v = rec.Find(key);
      if (v == nullptr || !v->is_number()) {
        return fail(line_no, std::string("missing numeric field '") + key +
                                 "'");
      }
    }
    const JsonValue* event = rec.Find("event");
    if (event == nullptr || !event->is_string()) {
      return fail(line_no, "missing string field 'event'");
    }
    const std::string& name = event->string_value();
    if (kKnownEvents.count(name) == 0) {
      return fail(line_no, "unknown event '" + name + "'");
    }

    const std::uint64_t seq =
        static_cast<std::uint64_t>(rec.Find("seq")->number_value());
    const std::uint64_t ts =
        static_cast<std::uint64_t>(rec.Find("ts_us")->number_value());
    if (seq <= last_seq) {
      return fail(line_no, "seq not strictly increasing");
    }
    if (ts < last_ts) return fail(line_no, "ts_us decreased");
    last_seq = seq;
    last_ts = ts;

    const std::uint64_t run_id =
        static_cast<std::uint64_t>(rec.Find("run_id")->number_value());
    RunState& run = runs[run_id];
    if (run.done) {
      return fail(line_no, "event after run_done for run " +
                               std::to_string(run_id));
    }
    if (name == "run_start") {
      if (run.started) {
        return fail(line_no,
                    "duplicate run_start for run " + std::to_string(run_id));
      }
      run.started = true;
      if (rec.Find("miner") == nullptr || !rec.Find("miner")->is_string()) {
        return fail(line_no, "run_start lacks string field 'miner'");
      }
      continue;
    }
    if (!run.started) {
      return fail(line_no, "event before run_start for run " +
                               std::to_string(run_id));
    }
    if (name == "partition_done") {
      for (const char* key :
           {"partition", "weight", "patterns", "completed", "total"}) {
        const JsonValue* v = rec.Find(key);
        if (v == nullptr || !v->is_number()) {
          return fail(line_no, std::string("partition_done lacks numeric "
                                           "field '") +
                                   key + "'");
        }
      }
      const std::uint64_t completed = static_cast<std::uint64_t>(
          rec.Find("completed")->number_value());
      if (completed < run.last_completed) {
        return fail(line_no, "partition_done 'completed' decreased");
      }
      run.last_completed = completed;
    } else if (name == "run_done") {
      for (const char* key : {"patterns", "wall_seconds"}) {
        const JsonValue* v = rec.Find(key);
        if (v == nullptr || !v->is_number()) {
          return fail(line_no, std::string("run_done lacks numeric field '") +
                                   key + "'");
        }
      }
      run.done = true;
    }
  }
  for (const auto& [run_id, run] : runs) {
    (void)run_id;
    if (!run.started) {
      return fail(line_no, "run without run_start");
    }
  }
  return true;
}

}  // namespace obs
}  // namespace disc
