#include "disc/obs/mine_stats.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "disc/obs/memory.h"

namespace disc {
namespace obs {

std::uint64_t MineStats::Counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MineStats::Gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

bool MineStats::HasGauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    (void)v;
    if (n == name) return true;
  }
  return false;
}

std::string MineStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "[%s] %.3fs, %zu patterns (max length %u), |DB|=%zu, peak RSS "
                "%.1f MiB",
                miner.c_str(), wall_seconds, num_patterns, max_length,
                db_sequences,
                static_cast<double>(peak_rss_bytes) / (1024.0 * 1024.0));
  std::string out = buf;
  if (cancelled) out += " [cancelled: partial result]";
  if (deadline_exceeded) out += " [deadline exceeded: partial result]";
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "\n  %-36s %llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "\n  %-36s %.4f", name.c_str(), value);
    out += buf;
  }
  return out;
}

StatsHarvest::StatsHarvest()
    : before_(MetricsRegistry::Global().Snapshot()) {}

void StatsHarvest::Finish(MineStats* stats) const {
  stats->counters.clear();
  stats->gauges.clear();
  MetricsRegistry::Global().HarvestSince(before_, &stats->counters,
                                         &stats->gauges);
  stats->peak_rss_bytes = PeakRssBytes();
}

}  // namespace obs
}  // namespace disc
