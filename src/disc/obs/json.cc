#include "disc/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace disc {
namespace obs {

void JsonEscape(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  Comma();
  out_ += '"';
  JsonEscape(name, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  Comma();
  out_ += '"';
  JsonEscape(v, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(std::uint64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

// ---- Parser ----------------------------------------------------------------

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object_.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // [
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array_.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            const std::string hex = text_.substr(pos_ + 1, 4);
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return Fail("bad \\u escape");
            // BMP-only decoding to UTF-8 (sufficient for our own output).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("bad number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.Parse(out);
}

}  // namespace obs
}  // namespace disc
