// Prometheus text-format exposition: renders the metrics registry and the
// live run registry to the standard `# HELP` / `# TYPE` text format
// (https://prometheus.io/docs/instrumenting/exposition_formats/), dumped
// on demand to a string or file. This is the pull-scrape face of the obs
// layer: the seqmined daemon's `stat` verb and the CLI `--metrics-out`
// flag both read it.
//
// Name mapping: the registry's dotted names ("disc.partitions.first_level")
// become underscore names ("disc_partitions_first_level"); any character
// outside [a-zA-Z0-9_:] maps to '_'. Counters render as `counter`, gauges
// as `gauge`, histograms as `summary` (their `_count` / `_sum` aggregate,
// plus `_min` / `_max` gauges). Per-run progress renders as labelled
// gauges:
//
//   disc_run_partitions_completed{run_id="1",miner="disc-all"} 42
//
// plus process-level `disc_process_rss_bytes` / `disc_process_peak_rss_bytes`
// sampled at render time.
#ifndef DISC_OBS_EXPOSE_H_
#define DISC_OBS_EXPOSE_H_

#include <string>
#include <vector>

#include "disc/common/status.h"
#include "disc/obs/metrics.h"
#include "disc/obs/progress.h"

namespace disc {
namespace obs {

/// Sanitizes a registry metric name to the Prometheus charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): '.' and every other invalid character
/// become '_'; a leading digit gains a '_' prefix.
std::string PrometheusName(const std::string& raw);

/// Renders a kind-separated metrics snapshot plus run-progress snapshots.
std::string RenderPrometheusText(const MetricsExport& metrics,
                                 const std::vector<ProgressSnapshot>& runs);

/// Counters-only overload for the per-run delta snapshot type (everything
/// renders as `counter`; histogram .count/.sum entries keep their names).
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// Renders the global registries (MetricsRegistry + RunRegistry) plus the
/// process RSS gauges.
std::string RenderPrometheusText();

/// Writes RenderPrometheusText() to `path` via WriteFileAtomic.
Status WritePrometheusFile(const std::string& path);

/// Validates a Prometheus text exposition: every line is a comment, a
/// well-formed `# HELP <name> <text>` / `# TYPE <name> <type>` record, or a
/// `name{labels} value [timestamp]` sample whose metric and label names
/// obey the charset rules, whose label values are properly quoted, and
/// whose value parses as a double (NaN/±Inf spellings included); each
/// metric has at most one TYPE line, appearing before its first sample.
/// Returns false with a line-numbered diagnostic in `*error`.
bool ValidatePrometheusText(const std::string& text, std::string* error);

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_EXPOSE_H_
