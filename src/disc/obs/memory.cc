#include "disc/obs/memory.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace disc {
namespace obs {
namespace {

// Reads a "VmHWM:   12345 kB" style field from /proc/self/status; 0 when
// the file or field is missing (non-Linux).
std::uint64_t ProcStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t PeakRssBytes() {
  const std::uint64_t hwm_kb = ProcStatusKb("VmHWM");
  if (hwm_kb > 0) return hwm_kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
  }
#endif
  return 0;
}

std::uint64_t CurrentRssBytes() { return ProcStatusKb("VmRSS") * 1024; }

}  // namespace obs
}  // namespace disc
