// Minimal JSON support for the observability layer: a streaming writer
// (trace files, BENCH_*.json reports) and a small recursive-descent parser
// used to validate emitted documents in tests and the bench smoke test.
// No external dependencies; covers the JSON subset the library emits
// (finite numbers, UTF-8 passthrough strings with standard escapes).
#ifndef DISC_OBS_JSON_H_
#define DISC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace disc {
namespace obs {

/// Appends a JSON-escaped representation of `s` (without quotes) to `out`.
void JsonEscape(const std::string& s, std::string* out);

/// Streaming JSON writer. Commas between container elements are inserted
/// automatically; the caller is responsible for well-formed nesting (every
/// BeginX matched by EndX, Key only inside objects).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Writes an object key; the next value call is its value.
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& v);
  JsonWriter& Uint(std::uint64_t v);
  JsonWriter& Int(std::int64_t v);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  // Per nesting level: has an element already been written?
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// Parsed JSON value (tree form).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// True when the object has `key` (any type).
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses `text`; returns false (and sets `error` if non-null) on malformed
/// input. Trailing non-whitespace after the document is an error.
bool JsonParse(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_JSON_H_
