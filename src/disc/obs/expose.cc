#include "disc/obs/expose.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "disc/common/file_util.h"
#include "disc/obs/memory.h"

namespace disc {
namespace obs {
namespace {

bool IsNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// Prometheus label-value escaping: backslash, double-quote, newline.
void AppendLabelValue(const std::string& v, std::string* out) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void AppendFamilyHeader(const std::string& name, const std::string& type,
                        const std::string& help, std::string* out) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

void AppendRunSample(const std::string& family, const ProgressSnapshot& run,
                     double value, std::string* out) {
  *out += family;
  *out += "{run_id=\"" + std::to_string(run.run_id) + "\",miner=\"";
  AppendLabelValue(run.miner, out);
  *out += "\"} ";
  AppendDouble(value, out);
  *out += "\n";
}

struct RunFamily {
  const char* name;
  const char* help;
  double (*value)(const ProgressSnapshot&);
};

constexpr RunFamily kRunFamilies[] = {
    {"disc_run_active", "1 while the run is mining, 0 once finished",
     [](const ProgressSnapshot& r) { return r.finished ? 0.0 : 1.0; }},
    {"disc_run_partitions_total",
     "planned first-level partitions of the run (0 until planned)",
     [](const ProgressSnapshot& r) {
       return static_cast<double>(r.partitions_total);
     }},
    {"disc_run_partitions_completed", "partitions mined to completion",
     [](const ProgressSnapshot& r) {
       return static_cast<double>(r.partitions_completed);
     }},
    {"disc_run_partitions_in_flight", "partitions currently being mined",
     [](const ProgressSnapshot& r) {
       return static_cast<double>(r.partitions_in_flight);
     }},
    {"disc_run_patterns", "frequent sequences found so far",
     [](const ProgressSnapshot& r) {
       return static_cast<double>(r.patterns_found);
     }},
    {"disc_run_elapsed_seconds", "wall-clock seconds since run start",
     [](const ProgressSnapshot& r) { return r.elapsed_seconds; }},
    {"disc_run_fraction_done",
     "completed fraction of the planned partition weight",
     [](const ProgressSnapshot& r) { return r.fraction_done; }},
    {"disc_run_eta_seconds",
     "bound-weighted remaining-time estimate (-1 while unknown)",
     [](const ProgressSnapshot& r) { return r.eta_seconds; }},
    {"disc_run_rss_high_water_bytes",
     "largest sampled VmRSS during the run (0 when sampling is off)",
     [](const ProgressSnapshot& r) {
       return static_cast<double>(r.rss_high_water_bytes);
     }},
};

}  // namespace

std::string PrometheusName(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (i == 0 && c >= '0' && c <= '9') out += '_';
    out += IsNameChar(c, /*first=*/false) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string RenderPrometheusText(const MetricsExport& metrics,
                                 const std::vector<ProgressSnapshot>& runs) {
  std::string out;
  out.reserve(4096);
  for (const auto& [raw, value] : metrics.counters) {
    const std::string name = PrometheusName(raw);
    AppendFamilyHeader(name, "counter", "disc counter '" + raw + "'", &out);
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [raw, value] : metrics.gauges) {
    const std::string name = PrometheusName(raw);
    AppendFamilyHeader(name, "gauge", "disc gauge '" + raw + "'", &out);
    out += name + " ";
    AppendDouble(value, &out);
    out += "\n";
  }
  for (const auto& [raw, h] : metrics.histograms) {
    const std::string name = PrometheusName(raw);
    AppendFamilyHeader(name, "summary", "disc histogram '" + raw + "'",
                       &out);
    out += name + "_count " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    AppendFamilyHeader(name + "_min", "gauge",
                       "smallest recorded value of '" + raw + "'", &out);
    out += name + "_min " + std::to_string(h.min) + "\n";
    AppendFamilyHeader(name + "_max", "gauge",
                       "largest recorded value of '" + raw + "'", &out);
    out += name + "_max " + std::to_string(h.max) + "\n";
  }
  if (!runs.empty()) {
    for (const RunFamily& family : kRunFamilies) {
      AppendFamilyHeader(family.name, "gauge", family.help, &out);
      for (const ProgressSnapshot& run : runs) {
        AppendRunSample(family.name, run, family.value(run), &out);
      }
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  for (const auto& [raw, value] : snapshot.counters) {
    const std::string name = PrometheusName(raw);
    AppendFamilyHeader(name, "counter", "disc counter '" + raw + "'", &out);
    out += name + " " + std::to_string(value) + "\n";
  }
  return out;
}

std::string RenderPrometheusText() {
  std::string out = RenderPrometheusText(
      MetricsRegistry::Global().ExportAll(),
      RunRegistry::Global().SnapshotAll());
  AppendFamilyHeader("disc_process_rss_bytes", "gauge",
                     "current resident set size of the process", &out);
  out += "disc_process_rss_bytes " + std::to_string(CurrentRssBytes()) + "\n";
  AppendFamilyHeader("disc_process_peak_rss_bytes", "gauge",
                     "process-lifetime peak resident set size", &out);
  out += "disc_process_peak_rss_bytes " + std::to_string(PeakRssBytes()) +
         "\n";
  return out;
}

Status WritePrometheusFile(const std::string& path) {
  return WriteFileAtomic(path, RenderPrometheusText());
}

namespace {

// One sample line: name[{labels}] value [timestamp]. Returns the metric
// name through `*name`; false + message on malformed syntax.
bool ParseSampleLine(const std::string& line, std::string* name,
                     std::string* msg) {
  std::size_t i = 0;
  const std::size_t n = line.size();
  if (i >= n || !IsNameChar(line[i], /*first=*/true)) {
    *msg = "metric name must start with [a-zA-Z_:]";
    return false;
  }
  while (i < n && IsNameChar(line[i], /*first=*/false)) ++i;
  *name = line.substr(0, i);
  if (i < n && line[i] == '{') {
    ++i;
    while (i < n && line[i] != '}') {
      // label name
      if (!((line[i] >= 'a' && line[i] <= 'z') ||
            (line[i] >= 'A' && line[i] <= 'Z') || line[i] == '_')) {
        *msg = "label name must start with [a-zA-Z_]";
        return false;
      }
      while (i < n && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                       line[i] == '_')) {
        ++i;
      }
      if (i >= n || line[i] != '=') {
        *msg = "label lacks '='";
        return false;
      }
      ++i;
      if (i >= n || line[i] != '"') {
        *msg = "label value lacks opening quote";
        return false;
      }
      ++i;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= n || (line[i] != '\\' && line[i] != '"' &&
                         line[i] != 'n')) {
            *msg = "invalid escape in label value";
            return false;
          }
        }
        ++i;
      }
      if (i >= n) {
        *msg = "label value lacks closing quote";
        return false;
      }
      ++i;  // closing quote
      if (i < n && line[i] == ',') ++i;
    }
    if (i >= n) {
      *msg = "labels lack closing '}'";
      return false;
    }
    ++i;  // '}'
  }
  if (i >= n || (line[i] != ' ' && line[i] != '\t')) {
    *msg = "sample lacks a value";
    return false;
  }
  while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
  // value
  std::size_t value_end = i;
  while (value_end < n && line[value_end] != ' ' && line[value_end] != '\t') {
    ++value_end;
  }
  const std::string value = line.substr(i, value_end - i);
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') {
    *msg = "sample value '" + value + "' is not a number";
    return false;
  }
  i = value_end;
  while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < n) {
    // optional timestamp: integer milliseconds
    std::size_t ts_end = i;
    if (line[ts_end] == '-' || line[ts_end] == '+') ++ts_end;
    const std::size_t digits_start = ts_end;
    while (ts_end < n &&
           std::isdigit(static_cast<unsigned char>(line[ts_end]))) {
      ++ts_end;
    }
    if (ts_end == digits_start || ts_end != n) {
      *msg = "trailing junk after value";
      return false;
    }
  }
  return true;
}

}  // namespace

bool ValidatePrometheusText(const std::string& text, std::string* error) {
  auto fail = [error](std::size_t line_no, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  };
  static const std::set<std::string> kTypes = {"counter", "gauge", "summary",
                                               "histogram", "untyped"};
  std::set<std::string> typed;    // metrics with a TYPE line seen
  std::set<std::string> sampled;  // metric names with a sample seen
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      if (!is_help && !is_type) continue;  // free-form comment
      std::size_t i = 7;
      std::size_t name_end = i;
      while (name_end < line.size() && line[name_end] != ' ') ++name_end;
      const std::string name = line.substr(i, name_end - i);
      if (name.empty() || !IsNameChar(name[0], /*first=*/true)) {
        return fail(line_no, "invalid metric name in comment record");
      }
      for (std::size_t j = 1; j < name.size(); ++j) {
        if (!IsNameChar(name[j], /*first=*/false)) {
          return fail(line_no,
                      "invalid character in metric name '" + name + "'");
        }
      }
      if (is_type) {
        if (name_end >= line.size()) {
          return fail(line_no, "TYPE record lacks a type");
        }
        const std::string type = line.substr(name_end + 1);
        if (kTypes.count(type) == 0) {
          return fail(line_no, "unknown metric type '" + type + "'");
        }
        if (!typed.insert(name).second) {
          return fail(line_no, "duplicate TYPE for metric '" + name + "'");
        }
        // TYPE must precede the family's samples (a summary's samples are
        // <name>_count / <name>_sum).
        if (sampled.count(name) != 0 || sampled.count(name + "_count") != 0 ||
            sampled.count(name + "_sum") != 0) {
          return fail(line_no, "TYPE for '" + name + "' after its samples");
        }
      }
      continue;
    }
    std::string name;
    std::string msg;
    if (!ParseSampleLine(line, &name, &msg)) return fail(line_no, msg);
    sampled.insert(name);
  }
  return true;
}

}  // namespace obs
}  // namespace disc
