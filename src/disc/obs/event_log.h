// Structured JSONL event log: the machine-readable sibling of the chrome
// trace. One JSON object per line, one line per lifecycle event:
//
//   {"seq":1,"ts_us":0,"event":"run_start","run_id":1,"miner":"disc-all",
//    "db_sequences":100}
//   {"seq":2,"ts_us":312,"event":"partition_start","run_id":1,"partition":7}
//   {"seq":3,"ts_us":918,"event":"partition_done","run_id":1,"partition":7,
//    "weight":42,"patterns":13,"completed":1,"total":58}
//   {"seq":4,"ts_us":...,"event":"cancel","run_id":1}          (if stopped)
//   {"seq":5,"ts_us":...,"event":"deadline","run_id":1}        (if expired)
//   {"seq":6,"ts_us":...,"event":"run_done","run_id":1,"patterns":104,
//    "wall_seconds":0.31,"cancelled":false,"deadline_exceeded":false}
//
// Timestamps are microseconds on the steady clock since Open(), taken under
// the append mutex, so file order == seq order and ts_us is non-decreasing
// even with pool workers appending concurrently.
//
// Append discipline: each record is rendered fully, then written with one
// fwrite of the complete line followed by fflush — a reader tailing the
// file (or a validator after a crash) sees only whole records, never an
// interleaved or buffered-partial line; at worst the final line of a
// crashed process is torn, which ValidateEventLogJsonl reports precisely.
// This is the append-shaped analogue of WriteFileAtomic's whole-file
// discipline (a live log cannot be temp+renamed per record).
//
// Cost: with no sink open every Append is one relaxed atomic load.
#ifndef DISC_OBS_EVENT_LOG_H_
#define DISC_OBS_EVENT_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "disc/common/status.h"

namespace disc {
namespace obs {

/// Process-global JSONL event sink. See file comment.
class EventLog {
 public:
  static EventLog& Global();

  /// Opens (truncating) `path` as the sink and starts the clock. Closes any
  /// previous sink first.
  Status Open(const std::string& path);
  /// Flushes and closes the sink; later Appends are no-ops again.
  void Close();
  /// True while a sink is open (one relaxed load; the Append fast path).
  bool active() const { return active_.load(std::memory_order_relaxed); }
  /// Records appended to the current sink.
  std::uint64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }

  // Lifecycle emitters (no-ops while inactive).
  void RunStart(std::uint64_t run_id, const std::string& miner,
                std::size_t db_sequences);
  void PartitionStart(std::uint64_t run_id, std::uint64_t partition);
  void PartitionDone(std::uint64_t run_id, std::uint64_t partition,
                     std::uint64_t weight, std::uint64_t patterns,
                     std::uint64_t completed, std::uint64_t total);
  void Cancel(std::uint64_t run_id);
  void Deadline(std::uint64_t run_id);
  void RunDone(std::uint64_t run_id, std::uint64_t patterns,
               double wall_seconds, bool cancelled, bool deadline_exceeded);

 private:
  EventLog() = default;

  /// Stamps seq/ts_us onto `body` (a JSON object fragment without the
  /// opening brace's bookkeeping fields) and writes the line.
  void Append(const std::string& event, std::uint64_t run_id,
              const std::string& extra_fields);

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> records_{0};
  std::mutex mu_;  // guards file_, seq_, epoch_, last_ts_
  std::FILE* file_ = nullptr;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
  std::uint64_t last_ts_us_ = 0;
};

/// Validates a JSONL event stream: every line is a well-formed JSON object
/// carrying seq / ts_us / event / run_id, seq is strictly increasing,
/// ts_us is non-decreasing, event names are from the known set, each run's
/// first event is run_start and its run_done (when present) is its last,
/// and per-run partition_done "completed" counts are monotone. Returns
/// false with a line-numbered diagnostic in `*error`.
bool ValidateEventLogJsonl(const std::string& text, std::string* error);

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_EVENT_LOG_H_
