// Scoped span tracer: records nested phase timings (load -> freq1 ->
// freq2/counting-array -> disc/level-k -> nrr, ...) and exports them in the
// Chrome trace-event JSON format, loadable by chrome://tracing or Perfetto.
//
// The tracer is off by default; enabling it (typically via a bench driver's
// --trace-out flag) starts recording. Disabled Begin/End calls cost one
// relaxed atomic load.
//
// Thread safety: each thread keeps its own open-span stack (spans nest per
// thread), and every completed span carries a small per-thread lane id, so
// the Chrome export shows one lane per pool worker. The thread that calls
// set_enabled(true) is named "main"; ThreadPool workers register themselves
// as "pool-worker-<i>"; other threads get "thread-<tid>" on first use.
// Completed events funnel into one mutex-guarded buffer — spans wrap coarse
// phases (a mine run, a partition, a pool task), never per-sequence work,
// so the lock is cold.
#ifndef DISC_OBS_TRACE_H_
#define DISC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef DISC_OBS_ENABLED
#define DISC_OBS_ENABLED 1
#endif

namespace disc {
namespace obs {

/// Span tracer. See file comment.
class Tracer {
 public:
  /// One completed span. Timestamps are microseconds relative to the
  /// tracer's epoch (first enable). `depth` is the calling thread's nesting
  /// level (0 = outermost) at the time the span was open; `tid` is the
  /// thread's lane id.
  struct Event {
    std::string name;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    std::uint32_t depth = 0;
    std::uint32_t tid = 0;
  };

  static Tracer& Global();

  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span on the calling thread. Every Begin must be balanced by an
  /// End on the same thread (use ScopedSpan).
  void Begin(std::string name);
  /// Closes the calling thread's innermost open span and records its Event.
  void End();

  /// Names the calling thread's lane in trace exports. Assigns the lane id
  /// on first call from a thread; later calls rename.
  void SetCurrentThreadName(const std::string& name);

  /// Completed events. Only meaningful at quiescent points (no concurrent
  /// End calls) — callers are the export/test paths after mining finished.
  const std::vector<Event>& events() const { return events_; }
  /// Spans discarded after the in-memory cap was hit.
  std::uint64_t dropped() const;
  /// Depth of the calling thread's currently open spans.
  std::size_t open_spans() const;

  /// Discards all recorded events (open spans stay open).
  void Clear();

  /// The recorded events as a Chrome trace-event JSON document, one lane
  /// ("thread") per registered tid.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`. On failure returns false and, if
  /// `error` is non-null, stores a description.
  bool WriteChromeTrace(const std::string& path,
                        std::string* error = nullptr) const;

 private:
  Tracer() = default;
  std::uint64_t NowMicros() const;
  /// Lane id of the calling thread, registering it if needed.
  std::uint32_t CurrentTid();

  // In-memory cap: a runaway per-partition span pattern must not eat the
  // heap; past the cap spans are counted in dropped_ instead.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  std::atomic<bool> enabled_{false};
  /// steady_clock time_since_epoch of the first enable, in clock ticks;
  /// 0 = epoch not set yet. Set once, then read-only.
  std::atomic<std::int64_t> epoch_ns_{0};
  mutable std::mutex mu_;  // guards events_, dropped_, thread_names_
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> thread_names_;  // index = tid
};

/// RAII span: opens on construction (when the tracer is enabled), closes on
/// destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name) {
    if (Tracer::Global().enabled()) {
      active_ = true;
      Tracer::Global().Begin(std::move(name));
    }
  }
  ~ScopedSpan() {
    if (active_) Tracer::Global().End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
};

}  // namespace obs
}  // namespace disc

#define DISC_OBS_SPAN_CONCAT2(a, b) a##b
#define DISC_OBS_SPAN_CONCAT(a, b) DISC_OBS_SPAN_CONCAT2(a, b)

#if DISC_OBS_ENABLED
/// Opens a span for the rest of the enclosing scope. `name` may be any
/// std::string expression; it is evaluated even when tracing is disabled at
/// runtime, so keep it cheap on hot paths.
#define DISC_OBS_SPAN(name) \
  ::disc::obs::ScopedSpan DISC_OBS_SPAN_CONCAT(disc_obs_span_, __LINE__)(name)
#else
#define DISC_OBS_SPAN(name) \
  do {                      \
  } while (0)
#endif

#endif  // DISC_OBS_TRACE_H_
