// Live run telemetry: a process-global registry of in-flight (and recently
// finished) mining runs, each exposing an atomically-updated progress view.
//
// The post-hoc obs layer (MineStats, traces, bench reports) only
// materializes after Mine() returns; a resident engine serving long,
// cancellable requests must answer "what is running and how far along is
// it?" *while* it runs. Miner::TryMine registers every run here; the
// partition-scheduled miners (DISC-all, Dynamic DISC-all) tick the run's
// RunTelemetry at the same partition boundaries where their cancellation
// checkpoints already live, so progress costs nothing on the per-sequence
// hot paths — a handful of relaxed atomic bumps per partition, cold by
// construction.
//
// Progress unit: DISC's first-level ⟨λ⟩-partitions are statically
// determined before the fan-out, so "partitions completed / total" is an
// exact, monotone, thread-count-invariant progress measure. The ETA weights
// each partition by its member count — the level-0 surrogate of the
// candidate-count upper bound of Geerts/Goethals/Van den Bussche (a
// partition's candidate space, and with it its mining cost, grows with the
// sequences it must scan) — and extrapolates elapsed time over the
// remaining weight.
//
// Thread safety: RunTelemetry counters are relaxed atomics written by pool
// workers and read by the TelemetrySampler / exposition writer without
// locks; cross-field consistency is only needed for display, where a
// slightly torn view (completed bumped, weight not yet) is harmless. The
// registry's run table is mutex-guarded (touched once per run, not per
// partition).
#ifndef DISC_OBS_PROGRESS_H_
#define DISC_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace disc {
namespace obs {

/// Point-in-time progress view of one mining run, consistent enough for
/// display and exposition (see file comment).
struct ProgressSnapshot {
  std::uint64_t run_id = 0;  ///< registry-assigned, 1-based, monotone
  std::string miner;         ///< Miner::name() of the run
  std::size_t db_sequences = 0;

  std::uint64_t partitions_total = 0;  ///< 0 until the fan-out is planned
  std::uint64_t partitions_completed = 0;
  std::uint64_t partitions_in_flight = 0;
  std::uint64_t patterns_found = 0;  ///< live indicator (exact at run_done)

  double elapsed_seconds = 0.0;
  /// Weight-based remaining-time estimate; negative while unknown (no
  /// partition finished yet, or the fan-out is not planned).
  double eta_seconds = -1.0;
  /// Fraction of the planned partition weight completed, in [0, 1]; a
  /// finished run reports 1 even when it planned no partitions.
  double fraction_done = 0.0;

  /// Largest VmRSS observed by the TelemetrySampler during this run;
  /// 0 when sampling is off.
  std::uint64_t rss_high_water_bytes = 0;

  bool finished = false;
  bool cancelled = false;
  bool deadline_exceeded = false;

  /// Completed-partition percentage in [0, 100] (100 for a finished run
  /// with no planned partitions).
  double PercentDone() const;
  /// One-line human-readable form, used by the --progress stderr ticker.
  std::string ToString() const;
};

/// Live telemetry of one run. Created by RunRegistry::Begin; the miner
/// updates it at partition boundaries, the sampler and exposition read it
/// concurrently. All update methods are safe from any thread.
class RunTelemetry {
 public:
  std::uint64_t run_id() const { return run_id_; }
  const std::string& miner() const { return miner_; }

  /// Announces the planned fan-out: `total` partitions whose work weights
  /// sum to `total_weight` (member counts; see file comment). Call once,
  /// before the first PartitionStarted.
  void BeginPartitions(std::uint64_t total, std::uint64_t total_weight);

  /// One partition entered mining. `id` labels the partition in the event
  /// log (the λ item for DISC-all, the root item for Dynamic DISC-all).
  void PartitionStarted(std::uint64_t id);
  /// The partition mined to completion, contributing `weight` of the
  /// planned total and `patterns` frequent sequences.
  void PartitionDone(std::uint64_t id, std::uint64_t weight,
                     std::uint64_t patterns);
  /// The partition stopped without completing (cancellation observed
  /// mid-task, or a contained worker failure).
  void PartitionAborted(std::uint64_t id);

  /// Patterns emitted outside any partition (the frequent 1-sequences).
  void AddPatterns(std::uint64_t n);

  /// Folds one VmRSS sample into the run's high-water mark (sampler).
  void ObserveRss(std::uint64_t bytes);
  /// Largest ObserveRss value so far; 0 when never sampled.
  std::uint64_t rss_high_water_bytes() const {
    return rss_high_water_.load(std::memory_order_relaxed);
  }
  /// True once at least one RSS sample landed during the run.
  bool rss_sampled() const {
    return rss_high_water_.load(std::memory_order_relaxed) > 0;
  }

  ProgressSnapshot Snapshot() const;

 private:
  friend class RunRegistry;
  RunTelemetry(std::uint64_t run_id, std::string miner,
               std::size_t db_sequences);

  const std::uint64_t run_id_;
  const std::string miner_;
  const std::size_t db_sequences_;
  const std::chrono::steady_clock::time_point start_;

  std::atomic<std::uint64_t> partitions_total_{0};
  std::atomic<std::uint64_t> total_weight_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> completed_weight_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> patterns_{0};
  std::atomic<std::uint64_t> rss_high_water_{0};
  // Serializes the completed_ bump with its partition_done event so the
  // log's per-run "completed" counts stay monotone under concurrent
  // workers (see PartitionDone).
  std::mutex emit_mu_;

  // Written once by RunRegistry::Finish, then read-only.
  std::atomic<bool> finished_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_exceeded_{false};
  std::atomic<double> wall_seconds_{0.0};
};

/// Process-global table of runs. Begin/Finish bracket every Miner::TryMine
/// call (when the registry is enabled); finished runs are kept as
/// snapshots, newest first, up to kMaxFinished — enough for a CLI's
/// post-run reporting and a daemon's `stat` verb without unbounded growth.
class RunRegistry {
 public:
  static constexpr std::size_t kMaxFinished = 64;

  static RunRegistry& Global();

  /// Runtime toggle (default on). Disabled, Begin returns nullptr and the
  /// whole layer costs one relaxed load per run.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers a new run and emits its run_start event. Returns nullptr
  /// when the registry is disabled. The returned telemetry stays valid for
  /// the lifetime of the shared_ptr (Finish does not invalidate it).
  std::shared_ptr<RunTelemetry> Begin(std::string miner,
                                      std::size_t db_sequences);

  /// Marks the run finished with its final accounting, moves it to the
  /// finished ring, and emits cancel/deadline/run_done events. `tel` may be
  /// null (no-op, so callers can pass an unchecked Begin result).
  void Finish(const std::shared_ptr<RunTelemetry>& tel,
              std::uint64_t num_patterns, double wall_seconds, bool cancelled,
              bool deadline_exceeded);

  /// Snapshots of the in-flight runs, ascending run id.
  std::vector<ProgressSnapshot> SnapshotActive() const;
  /// The in-flight runs themselves (sampler: ObserveRss needs the live
  /// objects, not snapshots).
  std::vector<std::shared_ptr<RunTelemetry>> ActiveRuns() const;
  /// Snapshots of in-flight runs plus the finished ring, ascending run id.
  std::vector<ProgressSnapshot> SnapshotAll() const;

  /// Drops all state (tests). In-flight runs are forgotten, not stopped.
  void ResetForTest();

 private:
  RunRegistry() = default;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_run_id_{1};
  mutable std::mutex mu_;  // guards active_, finished_
  std::vector<std::shared_ptr<RunTelemetry>> active_;
  std::vector<ProgressSnapshot> finished_;  // newest last, capped
};

}  // namespace obs
}  // namespace disc

#endif  // DISC_OBS_PROGRESS_H_
