// The comparative order on sequences (paper Definitions 2.1/2.2).
//
// Renumber transactions left to right and view a sequence as its flattened
// list of (item, transaction-number) tokens; compare two sequences
// positionwise-lexicographically on those tokens: at the first position
// whose token differs (the paper's *differential point*), the smaller item
// wins, and on equal items the earlier transaction wins — exactly
// Definition 2.2's conditions (a)/(b). (Definition 2.1(b) literally demands
// that item AND number both differ at the point, which we read as "the
// token differs"; a couple of the paper's worked examples also contradict
// each other — see DESIGN.md deviation 1.) A proper prefix precedes its
// extensions.
//
// The property the DISC lemmas and Apriori-KMS/CKMS actually rely on is
// *prefix-compatibility*: if F < F' for two (k-1)-sequences, every one-item
// extension of F precedes every one-item extension of F'. Positionwise
// lexicographic orders have it by construction (the deciding position of
// F vs F' is never the appended one); tests/order_property_test.cc checks
// it, and the intro examples <(a)(b)(h)> < <(a)(c)(f)> and <(a,b)(c)> <
// <(a)(b,c)> as well as the sorted databases of Tables 3 and 8-10 all come
// out as printed. (A plausible alternative — compare the whole item list
// first and use transaction numbers only as a global tiebreak — is NOT
// prefix-compatible and sends the CKMS list walk into a livelock; the
// regression test Order.GlobalItemTiebreakWouldBreakPrefixCompat pins the
// counterexample.)
#ifndef DISC_ORDER_COMPARE_H_
#define DISC_ORDER_COMPARE_H_

#include "disc/seq/sequence.h"
#include "disc/seq/view.h"

namespace disc {

/// Three-way comparison: negative if a < b, 0 if equal, positive if a > b.
int CompareSequences(SequenceView a, SequenceView b);

/// Strict-less predicate usable as a map/sort comparator.
struct SequenceLess {
  bool operator()(SequenceView a, SequenceView b) const {
    return CompareSequences(a, b) < 0;
  }
};

/// How a pattern grows by one item.
enum class ExtType : std::uint8_t {
  kItemset = 0,   // i-extension: item joins the last itemset
  kSequence = 1,  // s-extension: item opens a new transaction
};

/// Three-way comparison of two one-item extensions of the *same* pattern:
/// order by item first, then i-extension before s-extension (the
/// i-extension's final transaction number is smaller). Consistent with
/// CompareSequences applied to the extended patterns.
int CompareExtensions(Item item_a, ExtType type_a, Item item_b,
                      ExtType type_b);

/// Applies an extension, returning the grown pattern.
Sequence Extend(const Sequence& pattern, Item item, ExtType type);

}  // namespace disc

#endif  // DISC_ORDER_COMPARE_H_
