// Brute-force k-minimum subsequence computation: the test oracle for the
// Apriori-KMS / Apriori-CKMS algorithms (paper Definitions 2.3 and 2.5).
//
// Enumerates every distinct k-item subsequence of a customer sequence (any
// subset of flattened positions induces a valid subsequence, and every
// subsequence arises that way), so it is exponential and strictly for tests
// and tiny examples.
#ifndef DISC_ORDER_KMIN_BRUTE_H_
#define DISC_ORDER_KMIN_BRUTE_H_

#include <optional>
#include <vector>

#include "disc/order/compare.h"
#include "disc/seq/sequence.h"
#include "disc/seq/view.h"

namespace disc {

/// All distinct k-item subsequences of s, sorted by the comparative order.
std::vector<Sequence> AllDistinctKSubsequences(SequenceView s,
                                               std::uint32_t k);

/// The k-minimum subsequence of s (Definition 2.3), or nullopt if s has
/// fewer than k items.
std::optional<Sequence> BruteKMin(SequenceView s, std::uint32_t k);

/// The minimum k-subsequence of s whose (k-1)-prefix appears in
/// `frequent_prefixes` (sorted ascending by the comparative order), or
/// nullopt. This is what Apriori-KMS computes. For k == 1 pass an empty
/// prefix list; every 1-sequence qualifies.
std::optional<Sequence> BruteKMinWithFrequentPrefix(
    SequenceView s, std::uint32_t k,
    const std::vector<Sequence>& frequent_prefixes);

/// The minimum qualifying k-subsequence that additionally compares `>` bound
/// (strict == true) or `>=` bound (Definition 2.5), or nullopt. This is what
/// Apriori-CKMS computes.
std::optional<Sequence> BruteConditionalKMin(
    SequenceView s, std::uint32_t k,
    const std::vector<Sequence>& frequent_prefixes, const Sequence& bound,
    bool strict);

}  // namespace disc

#endif  // DISC_ORDER_KMIN_BRUTE_H_
