#include "disc/order/compare.h"

#include <algorithm>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"

namespace disc {

int CompareSequences(SequenceView a, SequenceView b) {
  DISC_OBS_COUNTER(g_seq_compares, "order.seq_compares");
  DISC_OBS_INC(g_seq_compares);
  const Item* ia = a.ItemsBegin();
  const Item* ib = b.ItemsBegin();
  const std::uint32_t n = std::min(a.Length(), b.Length());
  // Positionwise lexicographic comparison of (item, transaction-number)
  // tokens — Definition 2.2 at the differential point (the first position
  // where the token differs). The transaction cursors advance in O(1)
  // amortized per position.
  std::uint32_t ta = 0;
  std::uint32_t tb = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (ia[i] != ib[i]) return ia[i] < ib[i] ? -1 : 1;
    while (a.TxnEndPos(ta) <= i) ++ta;
    while (b.TxnEndPos(tb) <= i) ++tb;
    if (ta != tb) return ta < tb ? -1 : 1;
  }
  if (a.Length() != b.Length()) return a.Length() < b.Length() ? -1 : 1;
  return 0;
}

int CompareExtensions(Item item_a, ExtType type_a, Item item_b,
                      ExtType type_b) {
  if (item_a != item_b) return item_a < item_b ? -1 : 1;
  if (type_a != type_b) return type_a == ExtType::kItemset ? -1 : 1;
  return 0;
}

Sequence Extend(const Sequence& pattern, Item item, ExtType type) {
  Sequence out = pattern;
  if (type == ExtType::kItemset) {
    DISC_CHECK_MSG(!pattern.Empty(), "cannot i-extend an empty pattern");
    out.AppendToLastItemset(item);
  } else {
    out.AppendNewItemset(item);
  }
  return out;
}

}  // namespace disc
