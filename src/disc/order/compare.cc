#include "disc/order/compare.h"

#include <algorithm>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"

namespace disc {

int CompareSequences(const Sequence& a, const Sequence& b) {
  DISC_OBS_COUNTER(g_seq_compares, "order.seq_compares");
  DISC_OBS_INC(g_seq_compares);
  const std::vector<Item>& ia = a.items();
  const std::vector<Item>& ib = b.items();
  const std::size_t n = std::min(ia.size(), ib.size());
  // Positionwise lexicographic comparison of (item, transaction-number)
  // tokens — Definition 2.2 at the differential point (the first position
  // where the token differs). The transaction cursors advance in O(1)
  // amortized per position.
  std::uint32_t ta = 0;
  std::uint32_t tb = 0;
  const auto& oa = a.offsets();
  const auto& ob = b.offsets();
  for (std::size_t i = 0; i < n; ++i) {
    if (ia[i] != ib[i]) return ia[i] < ib[i] ? -1 : 1;
    while (oa[ta + 1] <= i) ++ta;
    while (ob[tb + 1] <= i) ++tb;
    if (ta != tb) return ta < tb ? -1 : 1;
  }
  if (ia.size() != ib.size()) return ia.size() < ib.size() ? -1 : 1;
  return 0;
}

int CompareExtensions(Item item_a, ExtType type_a, Item item_b,
                      ExtType type_b) {
  if (item_a != item_b) return item_a < item_b ? -1 : 1;
  if (type_a != type_b) return type_a == ExtType::kItemset ? -1 : 1;
  return 0;
}

Sequence Extend(const Sequence& pattern, Item item, ExtType type) {
  Sequence out = pattern;
  if (type == ExtType::kItemset) {
    DISC_CHECK_MSG(!pattern.Empty(), "cannot i-extend an empty pattern");
    out.AppendToLastItemset(item);
  } else {
    out.AppendNewItemset(item);
  }
  return out;
}

}  // namespace disc
