// Vectorized mismatch-scan kernels for the encoded comparative order.
//
// The innermost loop of every encoded-order consumer (locative-AVL descent,
// Apriori-CKMS walk, EncodedList construction) is "find the first word where
// two EncodedWord streams differ". A word is 4 bytes, so SSE2 compares 4
// words per 128-bit load and AVX2 compares 8 per 256-bit load:
//
//   load 4/8 words from each stream -> _mm*_cmpeq_epi32 -> movemask ->
//   first zero bit (ctz of the complement) names the mismatching word.
//
// Dispatch is resolved ONCE, on the first call: a resolver trampoline probes
// the CPU (__builtin_cpu_supports) and the DISC_SIMD environment variable
// (off|scalar|sse2|avx2|auto), installs the chosen kernel into an atomic
// function pointer, and forwards. Benchmarks and the CLI can override the
// tier afterwards with SetSimdTier (the --simd flag) for ablation; every
// tier must produce bit-identical results — tests/simd_test.cc fuzzes the
// agreement and tools/check_simd.sh gates the end-to-end pattern output.
//
// Tail safety: the kernels only issue full-vector loads for complete 4/8
// word blocks inside min(na, nb) and finish the remainder with the scalar
// loop, so they NEVER read past either buffer — a hard requirement under
// ASan with libstdc++ container annotations, where touching a vector's
// size..capacity slack is an error. EncodedList additionally zero-pads its
// flat word buffer by kEncodedPadWords (see encoded.h) so a full-vector
// load at any in-range offset stays inside the allocation even if a future
// kernel drops the tail loop.
#ifndef DISC_ORDER_SIMD_H_
#define DISC_ORDER_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "disc/order/encoded.h"

namespace disc {

/// Dispatch tiers, widest last. kScalar is the portable fallback (identical
/// to the inline EncodedCompareFrom loop) and the reference the SIMD tiers
/// are fuzzed against.
enum class SimdTier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable tier name ("scalar", "sse2", "avx2").
const char* SimdTierName(SimdTier tier);

/// Widest tier this CPU supports (probed once, cached).
SimdTier BestSimdTier();

/// Tier the next EncodedMismatch call will use. Forces resolution if the
/// dispatcher has not run yet.
SimdTier ActiveSimdTier();

/// Forces the dispatch tier (ablation/benchmark hook; also how the --simd
/// flag is applied). Returns false — and leaves the dispatch unchanged —
/// when the CPU does not support `tier`.
bool SetSimdTier(SimdTier tier);

/// Parses a tier spec: "off"/"scalar" -> kScalar, "sse2", "avx2", and
/// "auto"/"" -> BestSimdTier(). Returns false on anything else.
bool ParseSimdTier(const std::string& spec, SimdTier* out);

/// Applies the DISC_SIMD environment variable / --simd flag value. Invalid
/// specs and unsupported tiers return false without changing the dispatch.
bool ConfigureSimd(const std::string& spec);

namespace simd_internal {

/// Index of the first i in [from, n) with a[i] != b[i], or n when the
/// ranges agree. Pointer arguments may be null when n == from.
using MismatchFn = std::uint32_t (*)(const EncodedWord* a,
                                     const EncodedWord* b, std::uint32_t n,
                                     std::uint32_t from);

extern std::atomic<MismatchFn> g_mismatch;

std::uint32_t MismatchScalar(const EncodedWord* a, const EncodedWord* b,
                             std::uint32_t n, std::uint32_t from);

}  // namespace simd_internal

/// First mismatching word index in [from, min(na... )) — the dispatched
/// kernel behind SimdCompareFrom. Exposed for the lcp microbenchmark.
inline std::uint32_t EncodedMismatch(const EncodedWord* a,
                                     const EncodedWord* b, std::uint32_t n,
                                     std::uint32_t from) {
  return simd_internal::g_mismatch.load(std::memory_order_relaxed)(a, b, n,
                                                                   from);
}

/// Drop-in vectorized replacement for EncodedCompareFrom: same contract
/// (three-way result, shorter-prefix-first tiebreak, *lcp_out gets the
/// common-prefix length), same results on every tier.
inline int SimdCompareFrom(const EncodedWord* a, std::size_t na,
                           const EncodedWord* b, std::size_t nb,
                           std::uint32_t from, std::uint32_t* lcp_out) {
  const std::uint32_t n = static_cast<std::uint32_t>(na < nb ? na : nb);
  const std::uint32_t i = EncodedMismatch(a, b, n, from);
  if (lcp_out != nullptr) *lcp_out = i;
  if (i < n) return a[i] < b[i] ? -1 : 1;
  if (na == nb) return 0;
  return na < nb ? -1 : 1;
}

/// Full comparison from word 0 (vector overload mirrors EncodedCompare).
inline int SimdCompare(const EncodedWord* a, std::size_t na,
                       const EncodedWord* b, std::size_t nb) {
  return SimdCompareFrom(a, na, b, nb, 0, nullptr);
}
inline int SimdCompare(const std::vector<EncodedWord>& a,
                       const std::vector<EncodedWord>& b) {
  return SimdCompare(a.data(), a.size(), b.data(), b.size());
}

}  // namespace disc

#endif  // DISC_ORDER_SIMD_H_
