#include "disc/order/encoded.h"

#include <algorithm>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/simd.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_encoder_builds, "disc.encode.builds");
DISC_OBS_COUNTER(g_encoded_words, "disc.encode.words");

}  // namespace

void ItemEncoder::NoteItems(SequenceView s) {
  for (const Item x : s.items()) NoteItem(x);
}

void ItemEncoder::NoteItem(Item x) {
  DISC_DCHECK(!finalized_);
  if (x >= codes_.size()) codes_.resize(x + 1, 0);
  codes_[x] = 1;  // presence mark; Finalize turns marks into dense codes
  if (x > max_noted_) max_noted_ = x;
}

void ItemEncoder::Finalize() {
  DISC_CHECK(!finalized_);
  std::uint32_t next = 0;
  for (std::uint32_t& c : codes_) {
    if (c != 0) c = ++next;
  }
  num_codes_ = next;
  // The code must leave the boundary bit room in 32 bits.
  DISC_CHECK(num_codes_ < (1u << 31));
  finalized_ = true;
  DISC_OBS_INC(g_encoder_builds);
}

void EncodeSequence(SequenceView s, const ItemEncoder& encoder,
                    std::vector<EncodedWord>* out) {
  DISC_DCHECK(encoder.finalized());
  out->clear();
  out->reserve(s.Length());
  for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
    EncodedWord boundary = 1;
    for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
      const std::uint32_t code = encoder.Code(*p);
      DISC_DCHECK(code != 0);
      out->push_back((code << 1) | boundary);
      boundary = 0;
    }
  }
}

void EncodedList::Build(const std::vector<Sequence>& list,
                        const ItemEncoder& encoder) {
  words_.clear();
  offsets_.assign(1, 0);
  lcp_with_prev_.clear();
  offsets_.reserve(list.size() + 1);
  lcp_with_prev_.reserve(list.size());
  std::vector<EncodedWord> scratch;
  for (std::size_t i = 0; i < list.size(); ++i) {
    EncodeSequence(list[i], encoder, &scratch);
    words_.insert(words_.end(), scratch.begin(), scratch.end());
    offsets_.push_back(static_cast<std::uint32_t>(words_.size()));
    if (i == 0) {
      lcp_with_prev_.push_back(0);
      continue;
    }
    std::uint32_t lcp = 0;
    const int cmp =
        SimdCompareFrom(WordsBegin(i - 1), NumWords(i - 1), WordsBegin(i),
                        NumWords(i), 0, &lcp);
    DISC_DCHECK(cmp < 0);  // the list must be strictly ascending
    (void)cmp;
    lcp_with_prev_.push_back(lcp);
  }
  DISC_OBS_ADD(g_encoded_words, words_.size());
  // Real zero words (not capacity slack): a full-vector load at any
  // in-range offset stays inside the allocation. See kEncodedPadWords.
  words_.insert(words_.end(), kEncodedPadWords, 0);
}

}  // namespace disc
