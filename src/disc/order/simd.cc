#include "disc/order/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DISC_SIMD_X86 1
#else
#define DISC_SIMD_X86 0
#endif

namespace disc {
namespace simd_internal {
namespace {

std::uint32_t MismatchResolve(const EncodedWord* a, const EncodedWord* b,
                              std::uint32_t n, std::uint32_t from);

}  // namespace

std::uint32_t MismatchScalar(const EncodedWord* a, const EncodedWord* b,
                             std::uint32_t n, std::uint32_t from) {
  std::uint32_t i = from;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// The trampoline makes "selected once at startup" robust against static
// initialization order: the first caller — whoever it is — resolves the
// tier and installs the real kernel; later calls are one relaxed load.
std::atomic<MismatchFn> g_mismatch{&MismatchResolve};

namespace {

#if DISC_SIMD_X86

// 4 words per 128-bit block. _mm_cmpeq_epi32 yields all-ones lanes for
// equal words; movemask packs one bit per BYTE, so a fully-equal block is
// 0xFFFF and the first differing word is ctz(~mask) / 4.
__attribute__((target("sse2"))) std::uint32_t MismatchSse2(
    const EncodedWord* a, const EncodedWord* b, std::uint32_t n,
    std::uint32_t from) {
  std::uint32_t i = from;
  while (i + 4 <= n) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb));
    if (mask != 0xFFFF) {
      return i + (static_cast<std::uint32_t>(
                      __builtin_ctz(static_cast<unsigned>(~mask))) >>
                  2);
    }
    i += 4;
  }
  while (i < n && a[i] == b[i]) ++i;  // tail: never read past n
  return i;
}

// 8 words per 256-bit block. Compiled with a per-function target attribute
// so the translation unit itself stays buildable without -mavx2; the
// dispatcher only installs this kernel when the CPU reports AVX2.
__attribute__((target("avx2"))) std::uint32_t MismatchAvx2(
    const EncodedWord* a, const EncodedWord* b, std::uint32_t n,
    std::uint32_t from) {
  std::uint32_t i = from;
  while (i + 8 <= n) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi32(va, vb));
    if (mask != -1) {
      return i + (static_cast<std::uint32_t>(
                      __builtin_ctz(static_cast<unsigned>(~mask))) >>
                  2);
    }
    i += 8;
  }
  while (i + 4 <= n) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb));
    if (mask != 0xFFFF) {
      return i + (static_cast<std::uint32_t>(
                      __builtin_ctz(static_cast<unsigned>(~mask))) >>
                  2);
    }
    i += 4;
  }
  while (i < n && a[i] == b[i]) ++i;  // tail: never read past n
  return i;
}

#endif  // DISC_SIMD_X86

MismatchFn KernelFor(SimdTier tier) {
  switch (tier) {
#if DISC_SIMD_X86
    case SimdTier::kSse2:
      return &MismatchSse2;
    case SimdTier::kAvx2:
      return &MismatchAvx2;
#endif
    default:
      return &MismatchScalar;
  }
}

SimdTier g_active_tier = SimdTier::kScalar;

// Probes DISC_SIMD and the CPU, installs the kernel, forwards the call.
// Concurrent first calls race benignly: every thread resolves to the same
// answer (the env and CPUID are stable) and installs the same pointer.
std::uint32_t MismatchResolve(const EncodedWord* a, const EncodedWord* b,
                              std::uint32_t n, std::uint32_t from) {
  const char* env = std::getenv("DISC_SIMD");
  const std::string spec = env != nullptr ? env : "auto";
  if (!ConfigureSimd(spec)) {
    std::fprintf(stderr,
                 "disc: DISC_SIMD=%s is invalid or unsupported; using %s\n",
                 spec.c_str(), SimdTierName(BestSimdTier()));
    SetSimdTier(BestSimdTier());
  }
  return g_mismatch.load(std::memory_order_relaxed)(a, b, n, from);
}

}  // namespace
}  // namespace simd_internal

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

SimdTier BestSimdTier() {
#if DISC_SIMD_X86
  static const SimdTier best = [] {
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
    return SimdTier::kScalar;
  }();
  return best;
#else
  return SimdTier::kScalar;
#endif
}

SimdTier ActiveSimdTier() {
  // Touch the dispatcher so a pre-resolution query reports the tier that
  // will actually run (n == from == 0 is a no-op for every kernel).
  EncodedMismatch(nullptr, nullptr, 0, 0);
  return simd_internal::g_active_tier;
}

bool SetSimdTier(SimdTier tier) {
  if (static_cast<int>(tier) > static_cast<int>(BestSimdTier())) return false;
  simd_internal::g_active_tier = tier;
  simd_internal::g_mismatch.store(simd_internal::KernelFor(tier),
                                  std::memory_order_relaxed);
  return true;
}

bool ParseSimdTier(const std::string& spec, SimdTier* out) {
  if (spec == "off" || spec == "scalar") {
    *out = SimdTier::kScalar;
  } else if (spec == "sse2") {
    *out = SimdTier::kSse2;
  } else if (spec == "avx2") {
    *out = SimdTier::kAvx2;
  } else if (spec == "auto" || spec.empty()) {
    *out = BestSimdTier();
  } else {
    return false;
  }
  return true;
}

bool ConfigureSimd(const std::string& spec) {
  SimdTier tier = SimdTier::kScalar;
  if (!ParseSimdTier(spec, &tier)) return false;
  return SetSimdTier(tier);
}

}  // namespace disc
