#include "disc/order/kmin_brute.h"

#include <algorithm>
#include <set>

#include "disc/common/check.h"

namespace disc {
namespace {

// Builds the subsequence induced by the chosen flattened positions (sorted),
// grouping consecutive positions that share a source transaction.
Sequence FromPositions(SequenceView s,
                       const std::vector<std::uint32_t>& positions) {
  Sequence out;
  std::uint32_t prev_txn = kNoTxn;
  for (const std::uint32_t pos : positions) {
    const std::uint32_t t = s.TxnOf(pos);
    if (t == prev_txn) {
      out.AppendToLastItemset(s.ItemAt(pos));
    } else {
      out.AppendNewItemset(s.ItemAt(pos));
      prev_txn = t;
    }
  }
  return out;
}

void EnumeratePositions(SequenceView s, std::uint32_t k,
                        std::uint32_t start,
                        std::vector<std::uint32_t>* current,
                        std::set<Sequence, SequenceLess>* out) {
  if (current->size() == k) {
    out->insert(FromPositions(s, *current));
    return;
  }
  const std::uint32_t remaining = k - static_cast<std::uint32_t>(current->size());
  for (std::uint32_t pos = start; pos + remaining <= s.Length(); ++pos) {
    current->push_back(pos);
    EnumeratePositions(s, k, pos + 1, current, out);
    current->pop_back();
  }
}

bool PrefixIsFrequent(const Sequence& candidate,
                      const std::vector<Sequence>& frequent_prefixes) {
  const Sequence prefix = candidate.Prefix(candidate.Length() - 1);
  return std::binary_search(frequent_prefixes.begin(),
                            frequent_prefixes.end(), prefix, SequenceLess());
}

}  // namespace

std::vector<Sequence> AllDistinctKSubsequences(SequenceView s,
                                               std::uint32_t k) {
  DISC_CHECK(k > 0);
  std::set<Sequence, SequenceLess> out;
  std::vector<std::uint32_t> current;
  if (s.Length() >= k) EnumeratePositions(s, k, 0, &current, &out);
  return std::vector<Sequence>(out.begin(), out.end());
}

std::optional<Sequence> BruteKMin(SequenceView s, std::uint32_t k) {
  const std::vector<Sequence> all = AllDistinctKSubsequences(s, k);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::optional<Sequence> BruteKMinWithFrequentPrefix(
    SequenceView s, std::uint32_t k,
    const std::vector<Sequence>& frequent_prefixes) {
  DISC_DCHECK(std::is_sorted(frequent_prefixes.begin(),
                             frequent_prefixes.end(), SequenceLess()));
  for (const Sequence& cand : AllDistinctKSubsequences(s, k)) {
    if (k == 1 || PrefixIsFrequent(cand, frequent_prefixes)) return cand;
  }
  return std::nullopt;
}

std::optional<Sequence> BruteConditionalKMin(
    SequenceView s, std::uint32_t k,
    const std::vector<Sequence>& frequent_prefixes, const Sequence& bound,
    bool strict) {
  DISC_DCHECK(std::is_sorted(frequent_prefixes.begin(),
                             frequent_prefixes.end(), SequenceLess()));
  for (const Sequence& cand : AllDistinctKSubsequences(s, k)) {
    const int cmp = CompareSequences(cand, bound);
    if (cmp < 0 || (strict && cmp == 0)) continue;
    if (k == 1 || PrefixIsFrequent(cand, frequent_prefixes)) return cand;
  }
  return std::nullopt;
}

}  // namespace disc
