// Encoded comparative order: a per-partition dense re-encoding of sequences
// that turns CompareSequences into a memcmp-style word scan.
//
// Within one discovery pass the item universe is tiny (the partition's
// frequent items plus whatever the member sequences still contain), so items
// are remapped to contiguous codes 1..m in ascending item order — a
// *monotone* remap, which preserves the comparative order. Each sequence is
// then flattened to one uint32 word per item:
//
//   word(pos) = (code(item) << 1) | starts_new_transaction(pos)
//
// with the boundary bit set on the first position of every transaction
// (position 0 included). Plain lexicographic comparison of the word streams,
// with "proper prefix precedes its extensions" as the final tiebreak, is
// EXACTLY the comparative order of Definition 2.2: when all earlier words
// agree, the two sequences have identical transaction structure up to the
// differential point, so their transaction numbers there differ iff the
// boundary bits differ — and no-boundary (bit 0) means the earlier
// transaction, i.e. the smaller token. The item code sits above the bit, so
// the smaller item still dominates.
//
// A *sentinel-delimited* stream (a separator word between transactions, no
// per-word bit) would NOT be order-equivalent, which is why this module
// folds the boundary into each word instead: with a separator S compared
// against real items, <(x)(y ...)> vs <(x z ...)> hits S-versus-z at the
// third word and the separator's fixed value decides — but Definition 2.2
// wants the item comparison y-versus-z to decide, and y < z can go either
// way. tests/encoded_order_test.cc pins a concrete counterexample.
//
// The encoded forms back three hot paths (all behind Config::encoded_order,
// default on, with the legacy scan kept as an ablation):
//   * locative-AVL descent (core/locative_avl.cc) — fence-LCP prefix
//     skipping: each comparison starts at min(lcp(key, lower fence),
//     lcp(key, upper fence)) instead of word 0;
//   * the Apriori-CKMS list walk (core/kms.cc) — EncodedList precomputes
//     each entry's LCP with its predecessor, so advancing the walk decides
//     most entries without touching their words;
//   * k-sorted keys (core/ksorted.cc) — keys are encoded once on insert.
#ifndef DISC_ORDER_ENCODED_H_
#define DISC_ORDER_ENCODED_H_

#include <cstdint>
#include <vector>

#include "disc/seq/sequence.h"
#include "disc/seq/types.h"
#include "disc/seq/view.h"

namespace disc {

/// One encoded flattened position: (dense item code << 1) | boundary bit.
using EncodedWord = std::uint32_t;

/// Zero words appended after the last entry of every EncodedList flat
/// buffer: one full AVX2 block, so a whole-vector load issued at any
/// in-range word offset ends inside the allocation. The SIMD kernels
/// (order/simd.h) are tail-safe and never rely on it, but the pad keeps
/// full-block loads legal if a kernel ever drops its scalar tail.
inline constexpr std::size_t kEncodedPadWords = 8;

/// Monotone dense item remap for one partition / discovery pass. Mark the
/// item universe with NoteItem/NoteItems, then Finalize() to assign codes
/// 1..m in ascending item order. Encoding a sequence containing an unnoted
/// item is a programming error (DCHECKed).
class ItemEncoder {
 public:
  ItemEncoder() = default;
  /// Pre-sizes the item->code table for items up to `max_item` (the
  /// database aggregate), so NoteItem never regrows it. Items beyond the
  /// hint still work — NoteItem falls back to resizing.
  explicit ItemEncoder(Item max_item) { codes_.resize(max_item + 1, 0); }

  /// Marks every item of `s` as present.
  void NoteItems(SequenceView s);
  void NoteItem(Item x);

  /// Assigns contiguous codes in ascending item order. Call exactly once,
  /// after all NoteItem(s) calls.
  void Finalize();

  /// Dense code of x (1-based); 0 means "never noted".
  std::uint32_t Code(Item x) const {
    return x < codes_.size() ? codes_[x] : 0;
  }
  bool CanEncode(Item x) const { return Code(x) != 0; }

  /// Number of distinct items encoded.
  std::uint32_t num_codes() const { return num_codes_; }
  /// Largest item ever noted (0 when nothing was noted) — the partition's
  /// local alphabet bound, used to pre-size per-pass counting structures
  /// below the database-wide worst case.
  Item max_noted() const { return max_noted_; }
  bool finalized() const { return finalized_; }

 private:
  std::vector<std::uint32_t> codes_;  // item -> 1-based dense code; 0 absent
  std::uint32_t num_codes_ = 0;
  Item max_noted_ = 0;
  bool finalized_ = false;
};

/// Appends the encoded word stream of `s` to `out` (cleared first).
void EncodeSequence(SequenceView s, const ItemEncoder& encoder,
                    std::vector<EncodedWord>* out);

/// Three-way comparison of two word streams starting at word `from` (the
/// caller guarantees the first `from` words are equal), shorter-prefix
/// first. `*lcp_out` (when non-null) receives the length of the longest
/// common prefix — the fuel for the prefix-skip tricks above. Inline and
/// counter-free on purpose: this is the innermost loop of the AVL descent
/// and the CKMS walk (consumers batch their own "disc.encode.compares"
/// accounting outside it).
inline int EncodedCompareFrom(const EncodedWord* a, std::size_t na,
                              const EncodedWord* b, std::size_t nb,
                              std::uint32_t from, std::uint32_t* lcp_out) {
  const std::size_t n = na < nb ? na : nb;
  std::size_t i = from;
  while (i < n && a[i] == b[i]) ++i;
  if (lcp_out != nullptr) *lcp_out = static_cast<std::uint32_t>(i);
  if (i < n) return a[i] < b[i] ? -1 : 1;
  // All common words equal: the proper prefix is smaller.
  if (na == nb) return 0;
  return na < nb ? -1 : 1;
}

/// Full comparison from word 0 — equals CompareSequences on the original
/// sequences when both were encoded by the same ItemEncoder
/// (tests/order_property_test.cc fuzzes the agreement).
inline int EncodedCompare(const EncodedWord* a, std::size_t na,
                          const EncodedWord* b, std::size_t nb) {
  return EncodedCompareFrom(a, na, b, nb, 0, nullptr);
}
inline int EncodedCompare(const std::vector<EncodedWord>& a,
                          const std::vector<EncodedWord>& b) {
  return EncodedCompare(a.data(), a.size(), b.data(), b.size());
}

/// The encoded form of a sorted list of sequences (the (k-1)-sorted list of
/// a discovery pass): a flat word buffer with per-entry offsets, plus each
/// entry's LCP with its predecessor. Entries must be ascending under the
/// comparative order (DCHECKed via the encoded order itself).
class EncodedList {
 public:
  /// Encodes `list` (ascending). The encoder must cover every item.
  void Build(const std::vector<Sequence>& list, const ItemEncoder& encoder);

  std::size_t size() const { return offsets_.size() - 1; }
  const EncodedWord* WordsBegin(std::size_t i) const {
    return words_.data() + offsets_[i];
  }
  std::uint32_t NumWords(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  /// LCP of entry i with entry i-1 (0 for entry 0).
  std::uint32_t LcpWithPrev(std::size_t i) const { return lcp_with_prev_[i]; }

 private:
  std::vector<EncodedWord> words_;
  std::vector<std::uint32_t> offsets_ = {0};
  std::vector<std::uint32_t> lcp_with_prev_;
};

/// Bundles the two encoded artifacts a discovery pass threads through the
/// k-sorted machinery. Null pointers never appear: the bundle itself is
/// passed as a nullable pointer (nullptr = legacy comparative-order path).
struct EncodedOrder {
  const ItemEncoder* encoder = nullptr;
  const EncodedList* list = nullptr;
};

}  // namespace disc

#endif  // DISC_ORDER_ENCODED_H_
