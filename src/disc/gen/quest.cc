#include "disc/gen/quest.h"

#include <algorithm>
#include <vector>

#include "disc/common/check.h"
#include "disc/common/distributions.h"
#include "disc/common/rng.h"
#include "disc/obs/trace.h"

namespace disc {
namespace {

// Poisson around `mean` shifted to be >= 1 (the Quest tool samples
// Poisson(mean - 1) + 1 so that no empty element is produced).
std::uint32_t SizeSample(Rng* rng, double mean) {
  const double shifted = mean > 1.0 ? mean - 1.0 : 0.0;
  return SamplePoisson(rng, shifted) + 1;
}

struct PatternTable {
  // Flattened pattern storage: pattern p occupies itemset rows
  // [pat_offsets[p], pat_offsets[p+1]) of `itemsets`, each row an index into
  // itemset_items/itemset_offsets.
  std::vector<Item> itemset_items;
  std::vector<std::uint32_t> itemset_offsets;  // per itemset, CSR
  std::vector<std::uint32_t> pattern_rows;     // itemset ids, CSR by pattern
  std::vector<std::uint32_t> pat_offsets;
  std::vector<double> pat_weight_cum;          // cumulative weights
  std::vector<double> corruption;              // per pattern
};

PatternTable BuildTables(const QuestParams& p, Rng* rng) {
  PatternTable t;
  // ---- Potentially frequent itemsets.
  t.itemset_offsets.push_back(0);
  std::vector<Item> prev;
  std::vector<double> itemset_weight_cum;
  double wsum = 0.0;
  for (std::uint32_t i = 0; i < p.nlits; ++i) {
    const std::uint32_t size =
        std::min<std::uint32_t>(SizeSample(rng, p.lit_patlen), p.nitems);
    std::vector<Item> items;
    // A correlated fraction of items comes from the previous itemset.
    if (!prev.empty()) {
      std::uint32_t reuse = static_cast<std::uint32_t>(
          p.correlation * size + rng->NextDouble());
      reuse = std::min<std::uint32_t>(
          reuse, static_cast<std::uint32_t>(prev.size()));
      for (std::uint32_t r = 0; r < reuse; ++r) {
        items.push_back(prev[rng->NextBounded(prev.size())]);
      }
    }
    while (items.size() < size) {
      items.push_back(static_cast<Item>(rng->NextBounded(p.nitems)) + 1);
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    prev = items;
    t.itemset_items.insert(t.itemset_items.end(), items.begin(), items.end());
    t.itemset_offsets.push_back(
        static_cast<std::uint32_t>(t.itemset_items.size()));
    wsum += SampleExponential(rng, 1.0);
    itemset_weight_cum.push_back(wsum);
  }

  // ---- Potentially frequent sequences.
  t.pat_offsets.push_back(0);
  double pwsum = 0.0;
  std::vector<std::uint32_t> prev_rows;
  for (std::uint32_t s = 0; s < p.npats; ++s) {
    const std::uint32_t len = SizeSample(rng, p.seq_patlen);
    std::vector<std::uint32_t> rows;
    // A correlated prefix comes from the previous pattern.
    if (!prev_rows.empty()) {
      std::uint32_t reuse = static_cast<std::uint32_t>(
          p.correlation * len + rng->NextDouble());
      reuse = std::min<std::uint32_t>(
          reuse, static_cast<std::uint32_t>(prev_rows.size()));
      reuse = std::min(reuse, len);
      rows.assign(prev_rows.begin(), prev_rows.begin() + reuse);
    }
    while (rows.size() < len) {
      rows.push_back(SampleFromCumulative(rng, itemset_weight_cum.data(),
                                          p.nlits));
    }
    prev_rows = rows;
    t.pattern_rows.insert(t.pattern_rows.end(), rows.begin(), rows.end());
    t.pat_offsets.push_back(static_cast<std::uint32_t>(t.pattern_rows.size()));
    pwsum += SampleExponential(rng, 1.0);
    t.pat_weight_cum.push_back(pwsum);
    double c = SampleNormal(rng, p.corruption_mean, p.corruption_sd);
    c = std::clamp(c, 0.0, 0.98);
    t.corruption.push_back(c);
  }
  return t;
}

}  // namespace

SequenceDatabase GenerateQuestDatabase(const QuestParams& params) {
  DISC_OBS_SPAN("gen/quest");
  DISC_CHECK(params.ncust > 0);
  DISC_CHECK(params.nitems > 0);
  DISC_CHECK(params.npats > 0 && params.nlits > 0);
  Rng master(params.seed);
  const PatternTable table = BuildTables(params, &master);

  SequenceDatabase db;
  std::vector<std::vector<Item>> txns;
  std::vector<Item> scratch;
  for (std::uint32_t c = 0; c < params.ncust; ++c) {
    Rng rng = master.Fork();
    const std::uint32_t ntx = SizeSample(&rng, params.slen);
    std::uint64_t capacity = 0;
    txns.assign(ntx, {});
    std::vector<std::uint32_t> cap(ntx);
    for (std::uint32_t t = 0; t < ntx; ++t) {
      cap[t] = SizeSample(&rng, params.tlen);
      capacity += cap[t];
    }

    std::uint64_t placed = 0;
    std::uint32_t stall = 0;
    while (placed < capacity && stall < 8) {
      // Pick a pattern by weight and corrupt it: repeatedly drop a random
      // item while a uniform draw stays below the corruption level (the
      // Quest rule).
      const std::uint32_t pat = SampleFromCumulative(
          &rng, table.pat_weight_cum.data(), params.npats);
      // Materialize (itemset id, item) pairs of the pattern.
      std::vector<std::pair<std::uint32_t, Item>> pat_items;
      std::uint32_t n_itemsets = 0;
      for (std::uint32_t r = table.pat_offsets[pat];
           r < table.pat_offsets[pat + 1]; ++r) {
        const std::uint32_t row = table.pattern_rows[r];
        for (std::uint32_t q = table.itemset_offsets[row];
             q < table.itemset_offsets[row + 1]; ++q) {
          pat_items.emplace_back(n_itemsets, table.itemset_items[q]);
        }
        ++n_itemsets;
      }
      const double corr = table.corruption[pat];
      while (!pat_items.empty() && rng.NextBernoulli(corr)) {
        pat_items.erase(pat_items.begin() +
                        static_cast<std::ptrdiff_t>(
                            rng.NextBounded(pat_items.size())));
      }
      if (pat_items.empty()) {
        ++stall;
        continue;
      }
      // Surviving itemsets, renumbered consecutively.
      std::uint32_t m = 0;
      std::uint32_t last_group = 0xffffffffu;
      for (auto& [group, item] : pat_items) {
        (void)item;
        if (group != last_group) {
          last_group = group;
          ++m;
        }
      }
      if (m > ntx) {
        // Pattern longer than the customer: keep a prefix half the time,
        // as the Quest tool does, otherwise skip it.
        if (rng.NextBounded(2) == 0) {
          ++stall;
          continue;
        }
        m = ntx;
      }
      // Choose m distinct increasing transaction slots.
      scratch.clear();
      while (scratch.size() < m) {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(rng.NextBounded(ntx));
        if (std::find(scratch.begin(), scratch.end(), slot) ==
            scratch.end()) {
          scratch.push_back(slot);
        }
      }
      std::sort(scratch.begin(), scratch.end());
      // Merge pattern itemsets into the chosen transactions.
      std::uint32_t group_idx = 0;
      last_group = pat_items.front().first;
      bool progress = false;
      for (const auto& [group, item] : pat_items) {
        if (group != last_group) {
          last_group = group;
          ++group_idx;
          if (group_idx >= m) break;  // truncated pattern
        }
        std::vector<Item>& txn = txns[scratch[group_idx]];
        if (std::find(txn.begin(), txn.end(), item) == txn.end()) {
          txn.push_back(item);
          ++placed;
          progress = true;
        }
      }
      stall = progress ? 0 : stall + 1;
    }

    std::vector<Itemset> itemsets;
    for (auto& txn : txns) {
      if (!txn.empty()) itemsets.emplace_back(std::move(txn));
    }
    if (itemsets.empty()) {
      // Degenerate customer: give it one random item so every CID exists.
      itemsets.emplace_back(std::vector<Item>{
          static_cast<Item>(rng.NextBounded(params.nitems)) + 1});
    }
    db.Add(Sequence(itemsets));
  }
  return db;
}

}  // namespace disc
