// Synthetic customer-sequence generator in the style of the IBM Quest
// `seqgen` tool (Agrawal & Srikant, "Mining Sequential Patterns", ICDE 1995,
// §4; itemset machinery from the VLDB 1994 association generator). The
// original 1997 binary the paper used is not redistributable, so this is a
// reimplementation from the published description (DESIGN.md deviation 3):
//
//   1. A table of potentially frequent *itemsets*: sizes Poisson-distributed
//      around lit_patlen, successive itemsets share a correlated fraction of
//      items, exponentially distributed weights.
//   2. A table of potentially frequent *sequences*: lengths (in itemsets)
//      Poisson-distributed around seq_patlen, itemsets drawn from table 1 by
//      weight, per-pattern corruption level ~ N(0.75, 0.1), exponential
//      weights.
//   3. Each customer draws transaction count ~ Poisson(slen) and
//      per-transaction capacities ~ Poisson(tlen), then embeds
//      weight-sampled, corrupted patterns at random increasing transaction
//      positions until the capacity is filled.
//
// Every knob of the paper's Table 11 is exposed under the tool's option
// names. Generation is fully deterministic given `seed`.
#ifndef DISC_GEN_QUEST_H_
#define DISC_GEN_QUEST_H_

#include <cstdint>

#include "disc/seq/database.h"

namespace disc {

/// Generator parameters; names follow the Quest command options (paper
/// Table 11).
struct QuestParams {
  std::uint32_t ncust = 10000;      ///< number of customers (Ncust)
  double slen = 10.0;               ///< average transactions per customer
  double tlen = 2.5;                ///< average items per transaction
  std::uint32_t nitems = 1000;      ///< number of distinct items
  double seq_patlen = 4.0;          ///< avg itemsets per maximal pattern
  double lit_patlen = 1.25;         ///< avg items per pattern itemset
  std::uint32_t npats = 5000;       ///< size of the sequence-pattern table
  std::uint32_t nlits = 25000;      ///< size of the itemset table
  double corruption_mean = 0.75;    ///< mean pattern corruption level
  double corruption_sd = 0.1;       ///< its standard deviation
  double correlation = 0.25;        ///< fraction shared between neighbours
  std::uint64_t seed = 42;          ///< PRNG seed
};

/// Generates a customer-sequence database. Deterministic in the parameters.
SequenceDatabase GenerateQuestDatabase(const QuestParams& params);

}  // namespace disc

#endif  // DISC_GEN_QUEST_H_
