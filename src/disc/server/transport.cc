#include "disc/server/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>

#include "disc/common/check.h"
#include "disc/common/failpoint.h"
#include "disc/obs/metrics.h"
#include "disc/server/server.h"

namespace disc {
namespace server {

DISC_OBS_COUNTER(g_conns_accepted, "server.connections.accepted");
DISC_OBS_COUNTER(g_conns_refused, "server.connections.refused");
DISC_OBS_GAUGE(g_conns_active, "server.connections.active");
DISC_OBS_COUNTER(g_read_timeouts, "server.read.timeouts");
DISC_OBS_COUNTER(g_write_failures, "server.write.failures");

namespace {

constexpr std::size_t kStreamBufSize = 4096;

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// Writes never raise SIGPIPE: MSG_NOSIGNAL where the fd is a socket, and
// the process-wide disposition is set to ignore (Listen/DialAddress) for
// the pipe/regular-fd fallback path.
void IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

// poll() one fd for `events`; 0 timeout = wait forever. Returns 1 ready,
// 0 timeout, -1 error. EINTR retries with the remaining budget.
int PollFd(int fd, short events, std::uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait = -1;
    if (timeout_ms != 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      wait = left > 0 ? static_cast<int>(left) : 0;
    }
    struct pollfd pfd{fd, events, 0};
    const int r = ::poll(&pfd, 1, wait);
    if (r >= 0) return r > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
  }
}

}  // namespace

// --- FdStreamBuf ------------------------------------------------------------

FdStreamBuf::FdStreamBuf(int fd, std::uint64_t read_timeout_ms,
                         std::uint64_t write_timeout_ms)
    : fd_(fd),
      read_timeout_ms_(read_timeout_ms),
      write_timeout_ms_(write_timeout_ms),
      in_buf_(kStreamBufSize),
      out_buf_(kStreamBufSize) {
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data());
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
}

FdStreamBuf::~FdStreamBuf() { FlushOut(); }

void FdStreamBuf::ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

void FdStreamBuf::ShutdownBoth() { ::shutdown(fd_, SHUT_RDWR); }

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (DISC_FAILPOINT("net.read") == failpoint::Action::kError) {
    return traits_type::eof();
  }
  const int ready = PollFd(fd_, POLLIN, read_timeout_ms_);
  if (ready < 0) return traits_type::eof();
  if (ready == 0) {
    // Idle/read timeout: the connection is treated as gone. The server
    // closes it instead of parking a thread on a silent peer.
    DISC_OBS_INC(g_read_timeouts);
    return traits_type::eof();
  }
  ssize_t n;
  do {
    n = ::read(fd_, in_buf_.data(), in_buf_.size());
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data() + n);
  return traits_type::to_int_type(*gptr());
}

std::ptrdiff_t FdStreamBuf::WriteSome(const char* data, std::size_t n) {
  const int ready = PollFd(fd_, POLLOUT, write_timeout_ms_);
  if (ready <= 0) return -1;  // timeout or poll failure: connection is dead
  ssize_t written;
  do {
    written = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (written < 0 && errno == ENOTSOCK) {
      written = ::write(fd_, data, n);  // pipes/files in tests
    }
  } while (written < 0 && errno == EINTR);
  return written;
}

bool FdStreamBuf::FlushOut() {
  const char* p = pbase();
  const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
  if (pending == 0) return true;
  if (DISC_FAILPOINT("net.write") == failpoint::Action::kError) {
    DISC_OBS_INC(g_write_failures);
    setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
    return false;
  }
  std::size_t done = 0;
  while (done < pending) {
    const std::ptrdiff_t n = WriteSome(p + done, pending - done);
    if (n <= 0) {
      DISC_OBS_INC(g_write_failures);
      setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!FlushOut()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return FlushOut() ? 0 : -1; }

FdStream::FdStream(int fd, std::uint64_t read_timeout_ms,
                   std::uint64_t write_timeout_ms)
    : std::iostream(nullptr), buf_(fd, read_timeout_ms, write_timeout_ms) {
  rdbuf(&buf_);
}

FdStream::~FdStream() {
  buf_.pubsync();
  ::close(buf_.fd());
}

// --- DialAddress ------------------------------------------------------------

StatusOr<int> DialAddress(const std::string& address) {
  IgnoreSigpipe();
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    struct sockaddr_un sun{};
    if (path.empty() || path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument("bad unix socket path '" + path + "'");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return ErrnoStatus("socket");
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&sun),
                  sizeof(sun)) != 0) {
      const Status status = ErrnoStatus("connect " + path);
      ::close(fd);
      return status;
    }
    return fd;
  }

  std::string rest = address;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    return Status::InvalidArgument(
        "bad address '" + address + "' (want unix:<path> or <host>:<port>)");
  }
  const std::string host = rest.substr(0, colon);
  const std::string port = rest.substr(colon + 1);

  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    return Status::IoError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  Status last = Status::IoError("connect " + address + ": no addresses");
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd =
        ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      return fd;
    }
    last = ErrnoStatus("connect " + address);
    ::close(fd);
  }
  ::freeaddrinfo(results);
  return last;
}

// --- SocketTransport --------------------------------------------------------

// One accepted connection: its streams, serving thread, and completion
// flag. Heap-allocated so its address stays stable in conns_. The input
// and output streams are DISTINCT objects over one shared FdStreamBuf:
// the reader thread's getline hitting EOF (disconnect, drain shutdown)
// sets failbit on `in` only, so the serving thread can still write the
// in-flight mine's byte-prefix partial response through `out`.
struct SocketTransport::Connection {
  Connection(int conn_fd, const TransportOptions& options)
      : fd(conn_fd),
        buf(conn_fd, options.idle_timeout_ms, options.write_timeout_ms),
        in(&buf),
        out(&buf) {}
  ~Connection() {
    buf.pubsync();
    ::close(fd);
  }

  const int fd;
  std::string client;
  FdStreamBuf buf;
  std::istream in;
  std::ostream out;
  std::atomic<bool> done{false};
  std::thread thread;
};

SocketTransport::SocketTransport(engine::Engine* engine,
                                 const TransportOptions& options)
    : engine_(engine), options_(options), admission_(options.admission) {}

SocketTransport::~SocketTransport() {
  RequestDrain();
  ReapFinished(/*join_all=*/true);
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status SocketTransport::Listen() {
  IgnoreSigpipe();
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument(
        "no listener configured (set unix_path and/or tcp_port)");
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    return ErrnoStatus("pipe2");
  }

  if (!options_.unix_path.empty()) {
    struct sockaddr_un sun{};
    if (options_.unix_path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    ::unlink(options_.unix_path.c_str());  // replace a stale socket file
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (unix_fd_ < 0) return ErrnoStatus("socket(unix)");
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    if (::bind(unix_fd_, reinterpret_cast<struct sockaddr*>(&sun),
               sizeof(sun)) != 0) {
      return ErrnoStatus("bind " + options_.unix_path);
    }
    if (::listen(unix_fd_, 64) != 0) {
      return ErrnoStatus("listen " + options_.unix_path);
    }
  }

  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) return ErrnoStatus("socket(tcp)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &sin.sin_addr) != 1) {
      return Status::InvalidArgument("bad tcp_host '" + options_.tcp_host +
                                     "' (want an IPv4 address)");
    }
    if (::bind(tcp_fd_, reinterpret_cast<struct sockaddr*>(&sin),
               sizeof(sin)) != 0) {
      return ErrnoStatus("bind " + options_.tcp_host + ":" +
                         std::to_string(options_.tcp_port));
    }
    if (::listen(tcp_fd_, 64) != 0) return ErrnoStatus("listen(tcp)");
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) == 0) {
      resolved_tcp_port_ = ntohs(bound.sin_port);
    }
  }
  return Status::Ok();
}

void SocketTransport::RequestDrain() {
  drain_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    // Async-signal-safe wake-up; a full pipe is fine (the byte only has
    // to exist, not arrive N times).
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void SocketTransport::AcceptOn(int listen_fd, bool is_unix) {
  struct sockaddr_storage addr{};
  socklen_t addr_len = sizeof(addr);
  const int fd = ::accept4(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                           &addr_len, SOCK_CLOEXEC);
  if (fd < 0) return;  // transient (EAGAIN/ECONNABORTED): keep serving
  accepted_.fetch_add(1, std::memory_order_relaxed);
  DISC_OBS_INC(g_conns_accepted);
  if (DISC_FAILPOINT("net.accept") == failpoint::Action::kError) {
    // Injected accept failure: the client sees a closed connection; the
    // serving process carries on.
    ::close(fd);
    DISC_OBS_INC(g_conns_refused);
    return;
  }

  // Client identity for per-client admission limits: the peer uid on unix
  // sockets, the peer IP on TCP — stable across many connections from the
  // same client, unlike the connection id.
  std::string client;
  if (is_unix) {
    struct ucred cred{};
    socklen_t cred_len = sizeof(cred);
    if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &cred_len) == 0) {
      client = "uid:" + std::to_string(cred.uid);
    } else {
      client = "unix:anon";
    }
  } else {
    char buf[INET6_ADDRSTRLEN] = "?";
    if (addr.ss_family == AF_INET) {
      const auto* sin = reinterpret_cast<struct sockaddr_in*>(&addr);
      ::inet_ntop(AF_INET, &sin->sin_addr, buf, sizeof(buf));
    } else if (addr.ss_family == AF_INET6) {
      const auto* sin6 = reinterpret_cast<struct sockaddr_in6*>(&addr);
      ::inet_ntop(AF_INET6, &sin6->sin6_addr, buf, sizeof(buf));
    }
    client = std::string("ip:") + buf;
  }

  auto conn = std::make_unique<Connection>(fd, options_);
  conn->client = client;
  Connection* c = conn.get();
  active_.fetch_add(1, std::memory_order_relaxed);
  DISC_OBS_SET(g_conns_active,
               static_cast<double>(active_.load(std::memory_order_relaxed)));
  conn->thread = std::thread([this, c] {
    {
      ServerOptions opts;
      opts.client_id = c->client;
      opts.admission = &admission_;
      opts.drain = &drain_;
      opts.cancel_inflight_on_eof = true;
      opts.unblock_reader = [c] { c->buf.ShutdownRead(); };
      Server server(engine_, c->in, c->out, std::move(opts));
      server.Run();
    }  // ~Server joins the connection reader (unblocked via ShutdownRead)
    admission_.ForgetClient(c->client);
    active_.fetch_sub(1, std::memory_order_relaxed);
    DISC_OBS_SET(g_conns_active,
                 static_cast<double>(active_.load(std::memory_order_relaxed)));
    c->done.store(true, std::memory_order_release);
  });
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.push_back(std::move(conn));
}

void SocketTransport::ReapFinished(bool join_all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (join_all || conn->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  // Joins happen outside the lock: a connection thread finishing right now
  // must not deadlock against us holding conns_mu_.
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

int SocketTransport::Serve() {
  DISC_CHECK_MSG(unix_fd_ >= 0 || tcp_fd_ >= 0, "Serve() before Listen()");
  while (!drain_.load(std::memory_order_acquire)) {
    struct pollfd fds[3];
    int n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    int unix_idx = -1, tcp_idx = -1;
    if (unix_fd_ >= 0) {
      unix_idx = n;
      fds[n++] = {unix_fd_, POLLIN, 0};
    }
    if (tcp_fd_ >= 0) {
      tcp_idx = n;
      fds[n++] = {tcp_fd_, POLLIN, 0};
    }
    // Wake at least every 500 ms to reap finished connection threads.
    const int r = ::poll(fds, static_cast<nfds_t>(n), 500);
    if (r < 0 && errno != EINTR) break;
    if (r > 0) {
      if (fds[0].revents & POLLIN) {
        char buf[16];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      }
      if (unix_idx >= 0 && (fds[unix_idx].revents & POLLIN)) {
        AcceptOn(unix_fd_, /*is_unix=*/true);
      }
      if (tcp_idx >= 0 && (fds[tcp_idx].revents & POLLIN)) {
        AcceptOn(tcp_fd_, /*is_unix=*/false);
      }
    }
    ReapFinished(/*join_all=*/false);
  }
  DrainAndJoin();
  return 0;
}

void SocketTransport::DrainAndJoin() {
  drain_.store(true, std::memory_order_release);
  // Stop accepting first: close the listeners and remove the socket file,
  // so new clients fail fast instead of queueing behind a dying server.
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  // Unblock every parked connection reader; each serving loop then sees
  // the drain flag, cancels its in-flight mine, and still *writes* the
  // byte-prefix partial result (only the read side is down).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->buf.ShutdownRead();
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_deadline_ms);
  for (;;) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& conn : conns_) {
        if (!conn->done.load(std::memory_order_acquire)) all_done = false;
      }
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Deadline stragglers lose their connection outright; their sessions are
  // already cancelled, so the serving threads unwind promptly.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        conn->buf.ShutdownBoth();
      }
    }
  }
  ReapFinished(/*join_all=*/true);
}

namespace {
std::atomic<SocketTransport*> g_signal_transport{nullptr};

void DrainSignalHandler(int /*signum*/) {
  SocketTransport* transport =
      g_signal_transport.load(std::memory_order_acquire);
  if (transport != nullptr) transport->RequestDrain();
}
}  // namespace

void InstallDrainSignalHandlers(SocketTransport* transport) {
  g_signal_transport.store(transport, std::memory_order_release);
  struct sigaction sa{};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sa.sa_handler = transport != nullptr ? DrainSignalHandler : SIG_DFL;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

}  // namespace server
}  // namespace disc
