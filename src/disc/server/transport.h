// Socket transport for seqmined: many clients, one resident engine.
//
// PR 8 left the `Server(istream, ostream)` seam transport-agnostic by
// construction; this layer supplies the transport. A SocketTransport
// listens on a unix socket and/or a loopback TCP port, accepts
// connections, and serves each over an FdStream — a std::iostream whose
// streambuf reads and writes the socket with poll-based timeouts, so a
// dead or stalled client can never park a connection thread forever. Each
// connection runs its own protocol Server sharing the engine and one
// AdmissionController (server/admission.h); client identity is the peer
// uid for unix sockets and the peer IP for TCP, so per-client limits see
// through multiple connections from the same client.
//
// Robustness contract:
//   * every connection reader is joinable — shutdown(2) on the socket
//     unblocks a parked read, so no thread is ever leaked (the detached
//     interactive-stdin reader of server/server.h remains the documented
//     sole exception, and it only exists outside this transport);
//   * a client that disconnects mid-mine has its session cancelled
//     (cooperatively, via the session CancelToken) instead of mining for
//     nobody; the engine and admission slots are always released;
//   * SIGTERM/SIGINT trigger *drain*: stop accepting, cancel in-flight
//     mines so every connected client still receives its byte-prefix
//     partial result, then exit 0 within `drain_deadline_ms` (stragglers
//     are force-disconnected at the deadline);
//   * the `net.accept` / `net.read` / `net.write` fail points
//     (docs/ROBUSTNESS.md) inject faults at each syscall boundary, and
//     the chaos smoke (tools/check_server.sh --socket) proves none of
//     them can wedge the engine or leak a session.
#ifndef DISC_SERVER_TRANSPORT_H_
#define DISC_SERVER_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <streambuf>
#include <string>
#include <vector>

#include "disc/common/status.h"
#include "disc/engine/engine.h"
#include "disc/server/admission.h"

namespace disc {
namespace server {

/// std::streambuf over a socket/pipe fd. Reads poll with a timeout (0 =
/// block forever) and hit the `net.read` fail point; writes poll for
/// writability with their own timeout and hit `net.write`. A timeout,
/// injected fault, or peer reset surfaces as EOF / a failed flush — the
/// stream goes bad, never blocks indefinitely, and never raises SIGPIPE
/// (writes use MSG_NOSIGNAL where the fd is a socket).
class FdStreamBuf : public std::streambuf {
 public:
  FdStreamBuf(int fd, std::uint64_t read_timeout_ms,
              std::uint64_t write_timeout_ms);
  ~FdStreamBuf() override;

  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

  int fd() const { return fd_; }
  /// Unblocks a parked read (shutdown SHUT_RD): the reader sees EOF.
  void ShutdownRead();
  /// Forces both directions down: parked reads and writes both fail.
  void ShutdownBoth();

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool FlushOut();
  std::ptrdiff_t WriteSome(const char* data, std::size_t n);

  const int fd_;
  const std::uint64_t read_timeout_ms_;
  const std::uint64_t write_timeout_ms_;
  std::vector<char> in_buf_;
  std::vector<char> out_buf_;
};

/// An owning iostream over a connected fd; closes the fd on destruction.
class FdStream : public std::iostream {
 public:
  explicit FdStream(int fd, std::uint64_t read_timeout_ms = 0,
                    std::uint64_t write_timeout_ms = 0);
  ~FdStream() override;

  int fd() const { return buf_.fd(); }
  void ShutdownRead() { buf_.ShutdownRead(); }
  void ShutdownBoth() { buf_.ShutdownBoth(); }

 private:
  FdStreamBuf buf_;
};

/// Connects to "unix:<path>" or "<host>:<port>" (also "tcp:<host>:<port>").
/// Returns the connected fd, or kIoError / kInvalidArgument. The caller
/// owns the fd (wrap it in an FdStream).
StatusOr<int> DialAddress(const std::string& address);

/// Listener + per-connection knobs for one serving process.
struct TransportOptions {
  /// Unix-socket path to listen on; empty = no unix listener. An existing
  /// stale socket file is replaced.
  std::string unix_path;
  /// TCP port to listen on; -1 = no TCP listener, 0 = ephemeral (resolved
  /// port available via SocketTransport::tcp_port() after Listen()).
  int tcp_port = -1;
  /// TCP bind address. Loopback by default: this server authenticates
  /// nobody, so exposing it wider is an explicit decision.
  std::string tcp_host = "127.0.0.1";
  /// Per-connection read/idle timeout: a connection with no complete
  /// command for this long is dropped (0 = never).
  std::uint64_t idle_timeout_ms = 300000;
  /// Per-connection write timeout: a client that stops reading its
  /// responses for this long loses the connection instead of blocking a
  /// serving thread (0 = block forever).
  std::uint64_t write_timeout_ms = 10000;
  /// Drain budget: after SIGTERM/SIGINT, in-flight mines get this long to
  /// cancel and deliver their partial results before connections are
  /// force-closed.
  std::uint64_t drain_deadline_ms = 5000;
  /// Admission budgets shared by every connection.
  AdmissionConfig admission;
};

/// The accept loop and connection lifecycle. See file comment. Typical
/// use (examples/seqmined.cpp):
///
///   SocketTransport transport(&engine, options);
///   DISC_RETURN_IF_ERROR(transport.Listen());
///   InstallDrainSignalHandlers(&transport);   // SIGTERM/SIGINT -> drain
///   return transport.Serve();                 // 0 on clean drain
class SocketTransport {
 public:
  SocketTransport(engine::Engine* engine, const TransportOptions& options);
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Binds and listens on the configured sockets. kInvalidArgument when
  /// neither listener is configured; kIoError on any socket failure.
  Status Listen();

  /// Accepts and serves until RequestDrain(); then drains (cancel
  /// in-flight mines, deliver partial results, close connections within
  /// the drain deadline) and returns the process exit code (0 = clean).
  int Serve();

  /// Begins drain mode. Thread-safe and async-signal-safe (an atomic
  /// store plus a self-pipe write), so signal handlers may call it
  /// directly. Idempotent.
  void RequestDrain();

  /// Resolved TCP port (after Listen(); 0 when no TCP listener).
  int tcp_port() const { return resolved_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  AdmissionController& admission() { return admission_; }

  /// Lifetime connection counts (mirrors "server.connections.*").
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void AcceptOn(int listen_fd, bool is_unix);
  void ReapFinished(bool join_all);
  void DrainAndJoin();

  engine::Engine* const engine_;
  const TransportOptions options_;
  AdmissionController admission_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int resolved_tcp_port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: RequestDrain -> Serve poll

  std::atomic<bool> drain_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::uint64_t next_conn_id_ = 1;  // Serve loop only

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;  // guarded by conns_mu_
};

/// Installs SIGTERM/SIGINT handlers that RequestDrain() `transport`
/// (process-wide; the latest installed transport wins). Passing nullptr
/// restores the default disposition.
void InstallDrainSignalHandlers(SocketTransport* transport);

}  // namespace server
}  // namespace disc

#endif  // DISC_SERVER_TRANSPORT_H_
