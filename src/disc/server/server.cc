#include "disc/server/server.h"

#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "disc/algo/pattern_io.h"
#include "disc/obs/progress.h"

namespace disc {
namespace server {

namespace {

// How often the serving thread re-checks the in-flight session between
// queue pops. Cold-path latency only; the mine itself never waits on it.
constexpr std::uint64_t kPollMs = 20;

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

}  // namespace

// Heap state co-owned by the reader thread, so a reader left detached on
// an interactive stdin can never touch a destroyed Server.
struct Server::LineQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> lines;  // guarded by mu
  bool eof = false;               // guarded by mu
  std::thread reader;

  void Push(std::string line) {
    {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(std::move(line));
    }
    cv.notify_one();
  }
  void MarkEof() {
    {
      std::lock_guard<std::mutex> lock(mu);
      eof = true;
    }
    cv.notify_one();
  }
  /// Non-blocking pop; false when no line is queued.
  bool TryPop(std::string* line) {
    std::lock_guard<std::mutex> lock(mu);
    if (lines.empty()) return false;
    *line = std::move(lines.front());
    lines.pop_front();
    return true;
  }
  /// Blocking pop; false on EOF with the queue drained.
  bool Pop(std::string* line) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !lines.empty() || eof; });
    if (lines.empty()) return false;
    *line = std::move(lines.front());
    lines.pop_front();
    return true;
  }
  bool AtEof() {
    std::lock_guard<std::mutex> lock(mu);
    return eof && lines.empty();
  }
};

Server::Server(engine::Engine* engine, std::istream& in, std::ostream& out,
               ServerOptions options)
    : engine_(engine),
      in_(in),
      out_(out),
      options_(std::move(options)),
      queue_(std::make_shared<LineQueue>()) {}

Server::~Server() {
  if (!queue_->reader.joinable()) return;
  bool eof;
  {
    std::lock_guard<std::mutex> lock(queue_->mu);
    eof = queue_->eof;
  }
  if (!eof && options_.unblock_reader) {
    // Transport-provided escape hatch: shutdown(SHUT_RD) (or equivalent)
    // turns the parked getline into EOF, so the reader is always joinable.
    options_.unblock_reader();
  } else if (&in_ == &std::cin && !eof) {
    // The sole documented exception: a reader parked in getline on an
    // interactive stdin may never return — detach it; std::cin outlives
    // the process and the thread only touches the co-owned LineQueue.
    queue_->reader.detach();
    return;
  }
  // Every other stream is caller-owned and may be destroyed right after
  // Run() returns (a quit command exits the serve loop before the reader
  // observes EOF), so its reader MUST be joined; such streams (string
  // buffers, files, closed pipes, shutdown sockets) always reach EOF.
  queue_->reader.join();
}

bool Server::Draining() const {
  return options_.drain != nullptr &&
         options_.drain->load(std::memory_order_acquire);
}

void Server::ReleaseSlot() {
  if (!holding_slot_) return;
  holding_slot_ = false;
  options_.admission->Release(options_.client_id);
}

int Server::Run() {
  out_ << "info seqmined ready" << std::endl;

  std::shared_ptr<LineQueue> q = queue_;
  std::istream* in = &in_;
  queue_->reader = std::thread([q, in] {
    std::string line;
    while (std::getline(*in, line)) q->Push(std::move(line));
    q->MarkEof();
  });

  while (!quit_) {
    if (Draining()) break;
    if (inflight_ != nullptr) {
      // A disconnected socket client must not keep the engine mining for
      // nobody: its session is cancelled the moment input hits EOF (the
      // partial response below is written into the void harmlessly).
      if (options_.cancel_inflight_on_eof && queue_->AtEof()) {
        inflight_->Cancel();
      }
      // Answer interruptive commands while the mine runs; park the rest.
      std::string line;
      if (queue_->TryPop(&line)) {
        HandleLine(line);
      } else if (inflight_->WaitFor(kPollMs)) {
        EmitMineResponse();
      }
      continue;
    }
    if (!deferred_.empty()) {
      Command cmd = std::move(deferred_.front());
      deferred_.pop_front();
      Execute(cmd);
      continue;
    }
    std::string line;
    if (!queue_->Pop(&line)) break;  // EOF = quit
    HandleLine(line);
  }

  if (inflight_ != nullptr) {
    // Drain cancels cooperatively; the client still receives its
    // byte-prefix partial result (only the read side is down).
    if (Draining()) inflight_->Cancel();
    inflight_->Wait();
    EmitMineResponse();
  }
  // Under drain, work parked behind the in-flight mine is refused, not
  // silently dropped: each deferred command gets an in-band answer.
  if (Draining()) {
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      out_ << "error draining: command rejected" << std::endl;
    }
  }
  deferred_.clear();
  out_ << "ok quit" << std::endl;
  return 0;
}

void Server::HandleLine(const std::string& line) {
  StatusOr<Command> parsed = ParseCommand(line);
  if (!parsed.ok()) {
    out_ << "error " << parsed.status().message() << std::endl;
    return;
  }
  const Command& cmd = *parsed;
  switch (cmd.kind) {
    case Command::Kind::kNop:
      return;
    case Command::Kind::kStop:
      DoStop();
      return;
    case Command::Kind::kStat:
      DoStat();
      return;
    case Command::Kind::kHelp:
      DoHelp();
      return;
    default:
      break;
  }
  // load / mine / quit run strictly in arrival order.
  if (inflight_ != nullptr) {
    deferred_.push_back(cmd);
    return;
  }
  Execute(cmd);
}

void Server::Execute(const Command& cmd) {
  switch (cmd.kind) {
    case Command::Kind::kLoad:
      DoLoad(cmd);
      return;
    case Command::Kind::kMine:
      DoMine(cmd);
      return;
    case Command::Kind::kQuit:
      quit_ = true;
      return;
    default:
      return;  // kNop / interruptive kinds never reach Execute
  }
}

void Server::DoLoad(const Command& cmd) {
  // LoadPath dispatches on the suffix: .dsa arena files mmap in O(1)
  // (permissive is meaningless there — the format is all-or-nothing),
  // anything else parses as SPMF.
  auto info = engine_->LoadPath(cmd.path, cmd.permissive
                                              ? ParseOptions::Permissive()
                                              : ParseOptions::Strict());
  if (!info.ok()) {
    out_ << "error load: " << info.status().ToString() << std::endl;
    return;
  }
  out_ << "ok load sequences=" << info->sequences
       << " items=" << info->total_items << " max_item=" << info->max_item
       << " skipped=" << info->skipped << std::endl;
}

void Server::DoMine(const Command& cmd) {
  engine::MineRequest request;
  request.algo = cmd.mine.algo;
  request.options.threads = cmd.mine.threads;
  request.options.deadline_ms = cmd.mine.deadline_ms;
  request.options.max_length = cmd.mine.max_length;
  if (cmd.mine.delta >= 1) {
    request.options.min_support_count =
        static_cast<std::uint32_t>(cmd.mine.delta);
  } else {
    request.min_support = cmd.mine.minsup;
  }
  if (cmd.mine.cancel_after != kNoCancelAfter) {
    request.cancel_after = cmd.mine.cancel_after;
  }

  if (options_.admission != nullptr) {
    // Load shedding: an over-limit request is told so immediately, with a
    // backoff hint, instead of queueing unboundedly (docs/SERVER.md).
    const AdmissionDecision decision =
        options_.admission->TryAdmit(options_.client_id);
    if (!decision.admitted) {
      out_ << "err busy retry-after-ms=" << decision.retry_after_ms
           << " reason=" << decision.reason << std::endl;
      return;
    }
    holding_slot_ = true;
    options_.admission->ApplyDefaults(&request);
  }

  auto session = engine_->Submit(request);
  if (!session.ok()) {
    ReleaseSlot();
    out_ << "error mine: " << session.status().message() << std::endl;
    return;
  }
  inflight_ = std::move(*session);
}

void Server::EmitMineResponse() {
  const std::shared_ptr<engine::Session> session = std::move(inflight_);
  inflight_.reset();
  const engine::MineResponse& r = session->response();

  if (!r.status.ok() && !r.partial()) {
    out_ << "error mine: " << r.status.ToString() << std::endl;
    ReleaseSlot();
    return;
  }

  const char* reason = "none";
  if (r.status.code() == StatusCode::kCancelled) reason = "cancelled";
  if (r.status.code() == StatusCode::kDeadlineExceeded) reason = "deadline";
  out_ << "ok mine id=" << session->id() << " algo=" << session->algo()
       << " delta=" << r.delta
       << " status=" << (r.partial() ? "partial" : "complete")
       << " reason=" << reason << " patterns=" << r.patterns.size()
       << " cache=" << engine::CacheOutcomeName(r.cache)
       << " wall_ms=" << FormatMs(r.wall_ms) << "\n";
  out_ << ToSpmfPatternString(r.patterns);
  out_ << "end" << std::endl;
  ReleaseSlot();
}

void Server::DoStop() {
  if (inflight_ != nullptr) {
    inflight_->Cancel();
    out_ << "ok stop id=" << inflight_->id() << std::endl;
    return;
  }
  // Benign when idle: a stop that raced a completed mine is not an error.
  out_ << "ok stop id=none" << std::endl;
}

void Server::DoStat() {
  out_ << "info engine queries=" << engine_->queries()
       << " loads=" << engine_->loads() << " active=" << engine_->active()
       << "\n";
  out_ << "info cache hits=" << engine_->cache().hits()
       << " misses=" << engine_->cache().misses()
       << " bytes=" << engine_->cache().bytes()
       << " slots=" << engine_->cache().slots()
       << " capacity=" << engine_->cache().capacity()
       << " evictions=" << engine_->cache().evictions() << "\n";
  if (options_.admission != nullptr) {
    const AdmissionController::Stats admit = options_.admission->snapshot();
    const AdmissionConfig& cfg = options_.admission->config();
    out_ << "info admit active=" << admit.active
         << " queued=" << admit.queued << " admitted=" << admit.admitted
         << " rejected=" << admit.rejected
         << " max_inflight=" << cfg.max_inflight
         << " max_pending=" << cfg.max_pending
         << " per_client=" << cfg.per_client << "\n";
    for (const AdmissionController::ClientStats& client : admit.clients) {
      out_ << "info client id=" << client.client
           << " active=" << client.active << " admitted=" << client.admitted
           << " rejected=" << client.rejected << "\n";
    }
  }
  // Live runs come from the process-global registry (obs/progress.h);
  // empty when the registry is disabled or compiled out.
  for (const obs::ProgressSnapshot& run :
       obs::RunRegistry::Global().SnapshotActive()) {
    out_ << "info run " << run.ToString() << "\n";
  }
  out_ << "ok stat" << std::endl;
}

void Server::DoHelp() {
  std::istringstream usage(ProtocolUsage());
  std::string line;
  while (std::getline(usage, line)) out_ << "info " << line << "\n";
  out_ << "ok help" << std::endl;
}

}  // namespace server
}  // namespace disc
