// Admission control for the networked serving layer: explicit resource
// budgets instead of unbounded queues.
//
// The moment many untrusted clients share one resident engine
// (server/transport.h), the binding constraint is robustness: a burst of
// `mine` commands must not pile unboundedly into the engine's session
// pool, one greedy client must not starve the rest, and a request that
// cannot be served soon should be told so *immediately* — load shedding —
// rather than parked on a queue whose wait time nobody bounded. The
// AdmissionController enforces three budgets:
//
//   * a global in-flight cap (`max_inflight`): mines running concurrently;
//   * a bounded pending window (`max_pending`): mines admitted beyond the
//     cap — they queue inside the engine's session pool, but only this
//     many deep;
//   * a per-client concurrency limit (`per_client`): concurrent sessions
//     per client identity (peer uid for unix sockets, peer IP for TCP),
//     so one client opening many connections cannot monopolize the
//     window.
//
// Over-limit requests are rejected with a retry-after hint the protocol
// frames as `err busy retry-after-ms=<n> ...` (docs/SERVER.md); the hint
// doubles with every consecutive rejection (capped), so a polite client
// backing off exponentially and an impolite client hammering the socket
// converge on the same bounded server load. Admission also stamps the
// configured default deadline onto requests that carry none, so no query
// can hold a slot forever.
//
// The `admit.reject` fail point (docs/ROBUSTNESS.md) forces rejection, so
// the shedding path is chaos-testable without generating real overload.
#ifndef DISC_SERVER_ADMISSION_H_
#define DISC_SERVER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "disc/engine/engine.h"

namespace disc {
namespace server {

/// Budgets for one serving process. Defaults suit a small shared box.
struct AdmissionConfig {
  /// Mines running concurrently across all clients (>= 1).
  std::uint32_t max_inflight = 4;
  /// Admitted-but-not-yet-running window beyond the cap; 0 = run-or-shed.
  std::uint32_t max_pending = 8;
  /// Concurrent sessions per client identity (>= 1).
  std::uint32_t per_client = 2;
  /// Stamped onto any admitted MineRequest that has no deadline (0 = off):
  /// a slot can then never be held longer than this plus scheduling slack.
  std::uint64_t default_deadline_ms = 0;
  /// First retry-after hint; doubles per consecutive rejection.
  std::uint64_t retry_after_base_ms = 100;
  /// Hint ceiling.
  std::uint64_t retry_after_max_ms = 5000;
};

/// One admission verdict. Exactly one of `admitted` / rejection holds;
/// `queued` refines an admitted verdict (the mine will wait in the
/// engine's pool behind `max_inflight` runners).
struct AdmissionDecision {
  bool admitted = false;
  bool queued = false;
  /// Rejections only: the backoff hint for the `err busy` line.
  std::uint64_t retry_after_ms = 0;
  /// Rejections only: "global" | "client" | "injected" (admit.reject).
  const char* reason = "";
};

/// Thread-safe admission state shared by every connection of one
/// transport. See file comment.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Asks for a mine slot on behalf of `client`. An admitted caller MUST
  /// eventually call Release(client) exactly once (the server does so when
  /// the session's response has been emitted).
  AdmissionDecision TryAdmit(const std::string& client);

  /// Returns an admitted slot.
  void Release(const std::string& client);

  /// Drops the per-client record once its connections are gone (no-op
  /// while the client still holds slots).
  void ForgetClient(const std::string& client);

  /// Stamps config defaults (currently the default deadline) onto an
  /// admitted request. Requests that already carry a deadline keep it.
  void ApplyDefaults(engine::MineRequest* request) const;

  /// The pure hint arithmetic, exposed for tests: base << streak, capped.
  std::uint64_t RetryAfterHint(std::uint32_t reject_streak) const;

  struct ClientStats {
    std::string client;
    std::uint32_t active = 0;      ///< slots currently held
    std::uint64_t admitted = 0;    ///< lifetime admissions
    std::uint64_t rejected = 0;    ///< lifetime rejections
  };
  struct Stats {
    std::uint32_t active = 0;      ///< slots running (<= max_inflight)
    std::uint32_t queued = 0;      ///< admitted beyond the running cap
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::vector<ClientStats> clients;  ///< sorted by client id
  };
  /// Point-in-time snapshot (stat framing, tests).
  Stats snapshot() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  struct ClientState {
    std::uint32_t active = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  AdmissionDecision Reject(ClientState* client, const char* reason);

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::uint32_t total_active_ = 0;      // guarded by mu_
  std::uint32_t reject_streak_ = 0;     // consecutive rejections, guarded by mu_
  std::uint64_t admitted_total_ = 0;    // guarded by mu_
  std::uint64_t rejected_total_ = 0;    // guarded by mu_
  std::map<std::string, ClientState> clients_;  // guarded by mu_
};

}  // namespace server
}  // namespace disc

#endif  // DISC_SERVER_ADMISSION_H_
