// seqmined's serving loop: the line protocol (server/protocol.h) bound to
// an Engine over an istream/ostream pair — stdin/stdout in production
// (examples/seqmined.cpp, `seqmine --serve`), string streams in tests.
//
// Concurrency shape: a reader thread feeds raw lines into a shared queue;
// the serving thread executes commands strictly in arrival order, with one
// carve-out — while a mine is in flight, `stop`, `stat`, and `help` (and
// malformed-line errors) are answered immediately, because their whole
// point is to act on or observe the running query. `load`, `mine`, and
// `quit` queue behind it, so a scripted session (`load; mine; mine; quit`
// piped in one burst) behaves exactly like an interactive one.
//
// Stop semantics: `stop` cancels cooperatively; the interrupted mine still
// emits its `ok mine ... status=partial` response, whose pattern block is
// an exact byte-prefix of what the completed run would have printed
// (docs/ROBUSTNESS.md). `quit` (or EOF) finishes in-flight and queued work
// first, then exits — a prompt exit mid-mine is `stop` then `quit`.
//
// Framing (every response flushed): see docs/SERVER.md. Responses are
// single `ok ...` / `error ...` lines, except `mine` which follows its
// `ok` line with the SPMF pattern block and a bare `end` line, and
// `stat`/`help` which precede their `ok` with `info ` lines.
#ifndef DISC_SERVER_SERVER_H_
#define DISC_SERVER_SERVER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "disc/engine/engine.h"
#include "disc/server/admission.h"
#include "disc/server/protocol.h"

namespace disc {
namespace server {

/// Per-session knobs the transport layer (server/transport.h) threads into
/// each connection's Server. Defaults reproduce the PR-8 stdin behavior:
/// no admission control, no drain flag, EOF finishes in-flight work.
struct ServerOptions {
  /// Client identity for admission accounting and `stat` framing (the peer
  /// uid/IP for sockets, "stdin" for the local session).
  std::string client_id = "stdin";
  /// Shared admission state; nullptr = every mine is admitted. When set,
  /// over-limit `mine` commands are shed with an immediate
  /// `err busy retry-after-ms=<hint> reason=<r>` line.
  AdmissionController* admission = nullptr;
  /// Transport drain flag; when it flips true the serve loop stops taking
  /// commands, cancels its in-flight mine (the client still receives the
  /// byte-prefix partial response), answers deferred commands with
  /// `error draining`, and exits.
  std::atomic<bool>* drain = nullptr;
  /// Unblocks a reader parked in getline (e.g. socket shutdown(SHUT_RD))
  /// so the destructor can always join it. Without this, only an
  /// interactive std::cin reader may be left parked — it is detached, the
  /// sole documented exception to "readers are joinable".
  std::function<void()> unblock_reader;
  /// Cancel an in-flight mine the moment input hits EOF — a disconnected
  /// socket client must not keep the engine mining for nobody. Off for
  /// stdin/scripted sessions, where EOF means "finish queued work, then
  /// quit".
  bool cancel_inflight_on_eof = false;
};

/// One protocol session over a stream pair. See file comment.
class Server {
 public:
  /// `engine` must outlive Run(); the streams must outlive the Server.
  /// The destructor joins the reader thread — via options.unblock_reader
  /// when provided — except for a std::cin reader left parked by a `quit`
  /// on an interactive terminal, which is detached (std::cin outlives the
  /// process). Any other input stream must reach EOF eventually (string
  /// buffers, files, and closed pipes all do) or supply unblock_reader,
  /// or the destructor would block.
  Server(engine::Engine* engine, std::istream& in, std::ostream& out,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until `quit` or EOF. Returns the process exit code (0 — a
  /// protocol session that reached quit/EOF is a success; command
  /// failures were reported in-band as `error` responses).
  int Run();

 private:
  struct LineQueue;  // shared with the reader thread

  void HandleLine(const std::string& line);
  void Execute(const Command& cmd);
  void DoLoad(const Command& cmd);
  void DoMine(const Command& cmd);
  void DoStop();
  void DoStat();
  void DoHelp();
  void EmitMineResponse();
  void ReleaseSlot();
  bool Draining() const;

  engine::Engine* const engine_;
  std::istream& in_;
  std::ostream& out_;
  const ServerOptions options_;
  std::shared_ptr<LineQueue> queue_;

  std::shared_ptr<engine::Session> inflight_;
  bool holding_slot_ = false;     // an admission slot awaiting ReleaseSlot
  std::deque<Command> deferred_;  // load/mine/quit parked behind inflight_
  bool quit_ = false;
};

}  // namespace server
}  // namespace disc

#endif  // DISC_SERVER_SERVER_H_
