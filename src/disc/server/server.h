// seqmined's serving loop: the line protocol (server/protocol.h) bound to
// an Engine over an istream/ostream pair — stdin/stdout in production
// (examples/seqmined.cpp, `seqmine --serve`), string streams in tests.
//
// Concurrency shape: a reader thread feeds raw lines into a shared queue;
// the serving thread executes commands strictly in arrival order, with one
// carve-out — while a mine is in flight, `stop`, `stat`, and `help` (and
// malformed-line errors) are answered immediately, because their whole
// point is to act on or observe the running query. `load`, `mine`, and
// `quit` queue behind it, so a scripted session (`load; mine; mine; quit`
// piped in one burst) behaves exactly like an interactive one.
//
// Stop semantics: `stop` cancels cooperatively; the interrupted mine still
// emits its `ok mine ... status=partial` response, whose pattern block is
// an exact byte-prefix of what the completed run would have printed
// (docs/ROBUSTNESS.md). `quit` (or EOF) finishes in-flight and queued work
// first, then exits — a prompt exit mid-mine is `stop` then `quit`.
//
// Framing (every response flushed): see docs/SERVER.md. Responses are
// single `ok ...` / `error ...` lines, except `mine` which follows its
// `ok` line with the SPMF pattern block and a bare `end` line, and
// `stat`/`help` which precede their `ok` with `info ` lines.
#ifndef DISC_SERVER_SERVER_H_
#define DISC_SERVER_SERVER_H_

#include <deque>
#include <iosfwd>
#include <memory>

#include "disc/engine/engine.h"
#include "disc/server/protocol.h"

namespace disc {
namespace server {

/// One protocol session over a stream pair. See file comment.
class Server {
 public:
  /// `engine` must outlive Run(); the streams must outlive the Server.
  /// The destructor joins the reader thread — except for a std::cin reader
  /// left parked by a `quit` on an interactive terminal, which is detached
  /// (std::cin outlives the process). Any other input stream must reach
  /// EOF eventually (string buffers, files, and closed pipes all do), or
  /// the destructor would block.
  Server(engine::Engine* engine, std::istream& in, std::ostream& out);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until `quit` or EOF. Returns the process exit code (0 — a
  /// protocol session that reached quit/EOF is a success; command
  /// failures were reported in-band as `error` responses).
  int Run();

 private:
  struct LineQueue;  // shared with the reader thread

  void HandleLine(const std::string& line);
  void Execute(const Command& cmd);
  void DoLoad(const Command& cmd);
  void DoMine(const Command& cmd);
  void DoStop();
  void DoStat();
  void DoHelp();
  void EmitMineResponse();

  engine::Engine* const engine_;
  std::istream& in_;
  std::ostream& out_;
  std::shared_ptr<LineQueue> queue_;

  std::shared_ptr<engine::Session> inflight_;
  std::deque<Command> deferred_;  // load/mine/quit parked behind inflight_
  bool quit_ = false;
};

}  // namespace server
}  // namespace disc

#endif  // DISC_SERVER_SERVER_H_
