#include "disc/server/protocol.h"

#include <charconv>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

namespace disc {
namespace server {

namespace {

// Splits on runs of spaces/tabs. Paths with spaces are out of scope for
// the line protocol (documented in docs/SERVER.md).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

// Full-consumption unsigned parse; rejects "", "4k", "1 2", negatives.
bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

// Full-consumption double parse.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

Status UnknownFlag(const char* verb, const std::string& flag) {
  return Status::InvalidArgument(std::string(verb) + ": unknown option '" +
                                 flag + "' (try `help`)");
}

Status BadValue(const std::string& flag, const std::string& value,
                const char* expected) {
  return Status::InvalidArgument("bad value '" + value + "' for " + flag +
                                 " (expected " + expected + ")");
}

// Splits "--flag=value" / consumes the next token for "--flag value".
// Returns false when the flag takes a value but none is present.
bool TakeValue(const std::vector<std::string>& tokens, std::size_t* i,
               std::size_t eq, std::string* value) {
  if (eq != std::string::npos) {
    *value = tokens[*i].substr(eq + 1);
    return true;
  }
  if (*i + 1 >= tokens.size()) return false;
  *value = tokens[++*i];
  return true;
}

StatusOr<Command> ParseMine(const std::vector<std::string>& tokens) {
  Command cmd;
  cmd.kind = Command::Kind::kMine;
  bool saw_minsup = false;
  bool saw_delta = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    const std::string flag = tok.substr(0, eq);
    std::string value;
    if (flag == "--minsup") {
      if (!TakeValue(tokens, &i, eq, &value)) {
        return Status::InvalidArgument("--minsup requires a value");
      }
      if (!ParseDouble(value, &cmd.mine.minsup) || cmd.mine.minsup <= 0.0 ||
          cmd.mine.minsup > 1.0) {
        return BadValue(flag, value, "a fraction in (0, 1]");
      }
      saw_minsup = true;
    } else if (flag == "--delta") {
      if (!TakeValue(tokens, &i, eq, &value)) {
        return Status::InvalidArgument("--delta requires a value");
      }
      std::uint64_t n = 0;
      if (!ParseU64(value, &n) || n == 0 ||
          n > std::numeric_limits<std::uint32_t>::max()) {
        return BadValue(flag, value, "an integer >= 1");
      }
      cmd.mine.delta = static_cast<std::int64_t>(n);
      saw_delta = true;
    } else if (flag == "--algo") {
      if (!TakeValue(tokens, &i, eq, &value) || value.empty()) {
        return Status::InvalidArgument("--algo requires a value");
      }
      cmd.mine.algo = value;
    } else if (flag == "--threads") {
      if (!TakeValue(tokens, &i, eq, &value)) {
        return Status::InvalidArgument("--threads requires a value");
      }
      std::uint64_t n = 0;
      if (!ParseU64(value, &n) ||
          n > std::numeric_limits<std::uint32_t>::max()) {
        return BadValue(flag, value, "a non-negative integer");
      }
      cmd.mine.threads = static_cast<std::uint32_t>(n);
    } else if (flag == "--deadline-ms") {
      if (!TakeValue(tokens, &i, eq, &value)) {
        return Status::InvalidArgument("--deadline-ms requires a value");
      }
      if (!ParseU64(value, &cmd.mine.deadline_ms)) {
        return BadValue(flag, value, "a non-negative integer");
      }
    } else if (flag == "--max-length") {
      if (!TakeValue(tokens, &i, eq, &value)) {
        return Status::InvalidArgument("--max-length requires a value");
      }
      std::uint64_t n = 0;
      if (!ParseU64(value, &n) ||
          n > std::numeric_limits<std::uint32_t>::max()) {
        return BadValue(flag, value, "a non-negative integer");
      }
      cmd.mine.max_length = static_cast<std::uint32_t>(n);
    } else if (flag == "--cancel-after") {
      if (!TakeValue(tokens, &i, eq, &value)) {
        return Status::InvalidArgument("--cancel-after requires a value");
      }
      if (!ParseU64(value, &cmd.mine.cancel_after) ||
          cmd.mine.cancel_after == kNoCancelAfter) {
        return BadValue(flag, value, "a non-negative integer");
      }
    } else {
      return UnknownFlag("mine", tok);
    }
  }
  if (saw_minsup && saw_delta) {
    return Status::InvalidArgument(
        "mine: --minsup and --delta are mutually exclusive");
  }
  if (saw_delta) cmd.mine.minsup = -1.0;
  return cmd;
}

StatusOr<Command> ParseLoad(const std::vector<std::string>& tokens) {
  Command cmd;
  cmd.kind = Command::Kind::kLoad;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "--permissive") {
      cmd.permissive = true;
    } else if (tok.size() >= 2 && tok[0] == '-' && tok[1] == '-') {
      return UnknownFlag("load", tok);
    } else if (cmd.path.empty()) {
      cmd.path = tok;
    } else {
      return Status::InvalidArgument("load: unexpected argument '" + tok +
                                     "'");
    }
  }
  if (cmd.path.empty()) {
    return Status::InvalidArgument("load: missing <path>");
  }
  return cmd;
}

StatusOr<Command> ParseBare(const std::vector<std::string>& tokens,
                            Command::Kind kind) {
  if (tokens.size() > 1) {
    return Status::InvalidArgument(tokens[0] + ": takes no arguments");
  }
  Command cmd;
  cmd.kind = kind;
  return cmd;
}

}  // namespace

StatusOr<Command> ParseCommand(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Command{};  // kNop
  const std::string& verb = tokens[0];
  if (verb == "load") return ParseLoad(tokens);
  if (verb == "mine") return ParseMine(tokens);
  if (verb == "stop") return ParseBare(tokens, Command::Kind::kStop);
  if (verb == "stat") return ParseBare(tokens, Command::Kind::kStat);
  if (verb == "help") return ParseBare(tokens, Command::Kind::kHelp);
  if (verb == "quit") return ParseBare(tokens, Command::Kind::kQuit);
  return Status::InvalidArgument("unknown command '" + verb +
                                 "' (try `help`)");
}

std::string ProtocolUsage() {
  return
      "commands (one per line):\n"
      "  load <path> [--permissive]   load an SPMF database (replaces the "
      "current one)\n"
      "  mine [--minsup <f> | --delta <n>] [--algo <name>] [--threads <n>]\n"
      "       [--deadline-ms <n>] [--max-length <n>] [--cancel-after <n>]\n"
      "                               mine the loaded database (default "
      "--minsup 0.01)\n"
      "  stop                         cancel the in-flight mine (partial "
      "result)\n"
      "  stat                         engine, cache, and live-run status\n"
      "  help                         this text\n"
      "  quit                         finish in-flight and queued work, then "
      "exit";
}

}  // namespace server
}  // namespace disc
