#include "disc/server/admission.h"

#include <algorithm>

#include "disc/common/check.h"
#include "disc/common/failpoint.h"
#include "disc/obs/metrics.h"

namespace disc {
namespace server {

DISC_OBS_COUNTER(g_admit_admitted, "admit.admitted");
DISC_OBS_COUNTER(g_admit_rejected, "admit.rejected");
DISC_OBS_GAUGE(g_admit_active, "admit.active");

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  DISC_CHECK_MSG(config_.max_inflight >= 1, "max_inflight must be >= 1");
  DISC_CHECK_MSG(config_.per_client >= 1, "per_client must be >= 1");
}

std::uint64_t AdmissionController::RetryAfterHint(
    std::uint32_t reject_streak) const {
  // base << streak, saturating at the ceiling. The shift is clamped so a
  // pathological streak can't wrap the multiplication.
  const std::uint32_t shift = std::min<std::uint32_t>(reject_streak, 16);
  const std::uint64_t hint = config_.retry_after_base_ms << shift;
  return std::min(hint, config_.retry_after_max_ms);
}

AdmissionDecision AdmissionController::Reject(ClientState* client,
                                              const char* reason) {
  AdmissionDecision decision;
  decision.retry_after_ms = RetryAfterHint(reject_streak_);
  decision.reason = reason;
  ++reject_streak_;
  ++rejected_total_;
  if (client != nullptr) ++client->rejected;
  DISC_OBS_INC(g_admit_rejected);
  return decision;
}

AdmissionDecision AdmissionController::TryAdmit(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  ClientState& state = clients_[client];
  if (DISC_FAILPOINT("admit.reject") == failpoint::Action::kError) {
    return Reject(&state, "injected");
  }
  if (state.active >= config_.per_client) {
    return Reject(&state, "client");
  }
  const std::uint32_t window = config_.max_inflight + config_.max_pending;
  if (total_active_ >= window) {
    return Reject(&state, "global");
  }
  AdmissionDecision decision;
  decision.admitted = true;
  decision.queued = total_active_ >= config_.max_inflight;
  ++total_active_;
  ++state.active;
  ++state.admitted;
  ++admitted_total_;
  reject_streak_ = 0;
  DISC_OBS_INC(g_admit_admitted);
  DISC_OBS_SET(g_admit_active, static_cast<double>(total_active_));
  return decision;
}

void AdmissionController::Release(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  DISC_CHECK_MSG(total_active_ > 0, "Release without a matching TryAdmit");
  --total_active_;
  // A freed slot means progress: the next rejection starts from the base
  // hint again instead of a stale deep-overload estimate.
  reject_streak_ = 0;
  auto it = clients_.find(client);
  DISC_CHECK_MSG(it != clients_.end() && it->second.active > 0,
                 "Release for a client with no admitted slot");
  --it->second.active;
  DISC_OBS_SET(g_admit_active, static_cast<double>(total_active_));
}

void AdmissionController::ForgetClient(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it != clients_.end() && it->second.active == 0) clients_.erase(it);
}

void AdmissionController::ApplyDefaults(engine::MineRequest* request) const {
  if (config_.default_deadline_ms > 0 && request->options.deadline_ms == 0) {
    request->options.deadline_ms = config_.default_deadline_ms;
  }
}

AdmissionController::Stats AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.active = std::min(total_active_, config_.max_inflight);
  stats.queued = total_active_ - stats.active;
  stats.admitted = admitted_total_;
  stats.rejected = rejected_total_;
  for (const auto& [id, state] : clients_) {
    stats.clients.push_back(
        {id, state.active, state.admitted, state.rejected});
  }
  return stats;
}

}  // namespace server
}  // namespace disc
