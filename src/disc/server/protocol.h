// The seqmined line protocol: parsing and grammar, separated from the
// serving loop (server/server.h) so every command form is testable without
// streams or an engine (tests/server_protocol_test.cc).
//
// One command per line, verb first, `--flag value` or `--flag=value`
// options:
//
//   load <path> [--permissive]
//   mine [--minsup <f>] [--delta <n>] [--algo <name>] [--threads <n>]
//        [--deadline-ms <n>] [--max-length <n>] [--cancel-after <n>]
//   stop
//   stat
//   help
//   quit
//
// `--minsup` is a relative support fraction in (0, 1]; `--delta` an
// absolute count >= 1; giving both is an error, giving neither defaults to
// minsup 0.01. `--cancel-after N` arms a deterministic checkpoint budget
// (the run self-cancels after N cancellation polls — work-bounded
// best-effort mining, and the lever the byte-prefix partial-result tests
// pull). Numbers parse strictly: trailing junk ("0.1x", "4k") is a usage
// error, never silently truncated. See docs/SERVER.md for response
// framing.
#ifndef DISC_SERVER_PROTOCOL_H_
#define DISC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "disc/common/status.h"

namespace disc {
namespace server {

/// No --cancel-after budget given (MineArgs::cancel_after).
inline constexpr std::uint64_t kNoCancelAfter = ~std::uint64_t{0};

/// Options of a `mine` command, defaults applied.
struct MineArgs {
  /// Relative minimum support; < 0 means "use delta". Exactly one of
  /// minsup / delta is active after a successful parse.
  double minsup = 0.01;
  /// Absolute support-count threshold; < 0 means "use minsup".
  std::int64_t delta = -1;
  std::string algo = "disc-all";
  std::uint32_t threads = 1;
  std::uint64_t deadline_ms = 0;
  std::uint32_t max_length = 0;
  std::uint64_t cancel_after = kNoCancelAfter;
};

/// One parsed protocol command.
struct Command {
  enum class Kind { kNop, kLoad, kMine, kStop, kStat, kHelp, kQuit };

  Kind kind = Kind::kNop;
  // kLoad:
  std::string path;
  bool permissive = false;
  // kMine:
  MineArgs mine;
};

/// Parses one protocol line. Empty / whitespace-only lines are kNop.
/// Unknown verbs, unknown flags, malformed or out-of-range values come
/// back as kInvalidArgument with a one-line diagnostic suitable for an
/// `error ...` response.
StatusOr<Command> ParseCommand(const std::string& line);

/// Help text: one grammar line per command, newline-separated (the server
/// prefixes each with "info ").
std::string ProtocolUsage();

}  // namespace server
}  // namespace disc

#endif  // DISC_SERVER_PROTOCOL_H_
