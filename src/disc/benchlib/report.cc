#include "disc/benchlib/report.h"

#include <cstdio>

namespace disc {

void PrintBanner(const std::string& artifact, const std::string& setup,
                 bool scaled_down) {
  std::printf("==== %s ====\n%s\n", artifact.c_str(), setup.c_str());
  if (scaled_down) {
    std::printf(
        "(scaled-down defaults for CI speed; pass --full for paper-sized "
        "inputs)\n");
  }
  std::fflush(stdout);
}

std::string DescribeDatabase(const SequenceDatabase& db) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|DB|=%zu seqs, avg %.2f txns/customer x %.2f items/txn, "
                "%llu item occurrences",
                db.size(), db.AvgTransactionsPerCustomer(),
                db.AvgItemsPerTransaction(),
                static_cast<unsigned long long>(db.TotalItems()));
  return buf;
}

}  // namespace disc
