#include "disc/benchlib/report.h"

#include <cmath>
#include <cstdio>

#include "disc/common/file_util.h"
#include "disc/obs/event_log.h"
#include "disc/obs/expose.h"
#include "disc/obs/json.h"
#include "disc/obs/trace.h"

namespace disc {

std::string LibraryVersion() {
#ifdef DISC_GIT_DESCRIBE
  return DISC_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

void PrintBanner(const std::string& artifact, const std::string& setup,
                 bool scaled_down) {
  std::printf("==== %s ====\n[disc %s] %s\n", artifact.c_str(),
              LibraryVersion().c_str(), setup.c_str());
  if (scaled_down) {
    std::printf(
        "(scaled-down defaults for CI speed; pass --full for paper-sized "
        "inputs)\n");
  }
  std::fflush(stdout);
}

std::string DescribeDatabase(const SequenceDatabase& db) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|DB|=%zu seqs, avg %.2f txns/customer x %.2f items/txn, "
                "%llu item occurrences",
                db.size(), db.AvgTransactionsPerCustomer(),
                db.AvgItemsPerTransaction(),
                static_cast<unsigned long long>(db.TotalItems()));
  return buf;
}

bool PrintBenchUsage(const Flags& flags, const std::string& name,
                     const std::string& specific) {
  if (!flags.GetBool("help", false)) return false;
  std::printf("usage: %s %s\n", name.c_str(), specific.c_str());
  std::printf(
      "  common: [--threads=N] [--stats] [--json-out=FILE]\n"
      "          [--trace-out=FILE] [--progress] [--progress-period-ms=N]\n"
      "          [--metrics-out=FILE] [--events-out=FILE]\n"
      "(docs/BENCHMARKS.md for the workloads, docs/OBSERVABILITY.md for the\n"
      "telemetry flags; pass --full for paper-sized inputs)\n");
  return true;
}

WorkloadInfo MakeWorkloadInfo(const SequenceDatabase& db,
                              const std::string& generator) {
  WorkloadInfo w;
  w.generator = generator;
  w.db_sequences = db.size();
  w.total_items = db.TotalItems();
  w.total_transactions = db.TotalTransactions();
  w.avg_txns_per_customer = db.AvgTransactionsPerCustomer();
  w.avg_items_per_txn = db.AvgItemsPerTransaction();
  w.max_item = db.max_item();
  return w;
}

namespace {

void WriteRun(obs::JsonWriter* w, const obs::MineStats& stats) {
  w->BeginObject();
  w->Key("miner").String(stats.miner);
  w->Key("wall_seconds").Double(stats.wall_seconds);
  w->Key("num_patterns").Uint(stats.num_patterns);
  w->Key("max_length").Uint(stats.max_length);
  w->Key("db_sequences").Uint(stats.db_sequences);
  w->Key("peak_rss_bytes").Uint(stats.peak_rss_bytes);
  w->Key("cancelled").Bool(stats.cancelled);
  w->Key("deadline_exceeded").Bool(stats.deadline_exceeded);
  w->Key("counters").BeginObject();
  for (const auto& [name, value] : stats.counters) {
    w->Key(name).Uint(value);
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, value] : stats.gauges) {
    w->Key(name).Double(value);
  }
  w->EndObject();
  w->EndObject();
}

}  // namespace

std::string BenchReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench_name_);
  w.Key("library_version").String(LibraryVersion());
  w.Key("workload").BeginObject();
  w.Key("generator").String(workload_.generator);
  w.Key("db_sequences").Uint(workload_.db_sequences);
  w.Key("total_items").Uint(workload_.total_items);
  w.Key("total_transactions").Uint(workload_.total_transactions);
  w.Key("avg_txns_per_customer").Double(workload_.avg_txns_per_customer);
  w.Key("avg_items_per_txn").Double(workload_.avg_items_per_txn);
  w.Key("max_item").Uint(workload_.max_item);
  w.Key("min_support_count").Uint(workload_.min_support_count);
  w.EndObject();
  w.Key("runs").BeginArray();
  for (const obs::MineStats& stats : runs_) {
    WriteRun(&w, stats);
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

bool BenchReport::WriteJson(const std::string& path,
                            std::string* error) const {
  // Atomic (temp + rename): a crash or injected failure mid-write never
  // leaves a truncated report where a previous good one stood.
  const Status status = WriteFileAtomic(path, ToJson() + '\n');
  if (!status.ok()) {
    if (error != nullptr) *error = status.message();
    return false;
  }
  return true;
}

bool ValidateBenchReportJson(const std::string& json, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  obs::JsonValue root;
  std::string parse_error;
  if (!obs::JsonParse(json, &root, &parse_error)) {
    return fail("parse error: " + parse_error);
  }
  if (!root.is_object()) return fail("top level is not an object");
  for (const char* key : {"bench", "library_version"}) {
    const obs::JsonValue* v = root.Find(key);
    if (v == nullptr || !v->is_string()) {
      return fail(std::string("missing string field '") + key + "'");
    }
  }
  const obs::JsonValue* workload = root.Find("workload");
  if (workload == nullptr || !workload->is_object()) {
    return fail("missing object field 'workload'");
  }
  for (const char* key : {"db_sequences", "total_items",
                          "avg_txns_per_customer"}) {
    const obs::JsonValue* v = workload->Find(key);
    if (v == nullptr || !v->is_number()) {
      return fail(std::string("workload lacks numeric field '") + key + "'");
    }
  }
  const obs::JsonValue* runs = root.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return fail("missing array field 'runs'");
  }
  for (std::size_t i = 0; i < runs->array_items().size(); ++i) {
    const obs::JsonValue& run = runs->array_items()[i];
    const std::string at = "runs[" + std::to_string(i) + "]";
    if (!run.is_object()) return fail(at + " is not an object");
    const obs::JsonValue* miner = run.Find("miner");
    if (miner == nullptr || !miner->is_string() ||
        miner->string_value().empty()) {
      return fail(at + " lacks a non-empty 'miner'");
    }
    const obs::JsonValue* wall = run.Find("wall_seconds");
    if (wall == nullptr || !wall->is_number() || wall->number_value() < 0 ||
        !std::isfinite(wall->number_value())) {
      return fail(at + " lacks a finite non-negative 'wall_seconds'");
    }
    for (const char* key : {"num_patterns", "peak_rss_bytes"}) {
      const obs::JsonValue* v = run.Find(key);
      if (v == nullptr || !v->is_number()) {
        return fail(at + " lacks numeric field '" + key + "'");
      }
    }
    const obs::JsonValue* counters = run.Find("counters");
    if (counters == nullptr || !counters->is_object()) {
      return fail(at + " lacks object field 'counters'");
    }
    for (const auto& [name, value] : counters->object_items()) {
      if (!value.is_number()) {
        return fail(at + " counter '" + name + "' is not a number");
      }
    }
  }
  return true;
}

ObsSession::ObsSession(std::string bench_name, const Flags& flags)
    : bench_name_(std::move(bench_name)),
      json_out_(flags.GetString("json-out", "")),
      trace_out_(flags.GetString("trace-out", "")),
      metrics_out_(flags.GetString("metrics-out", "")),
      events_out_(flags.GetString("events-out", "")),
      print_stats_(flags.GetBool("stats", false)),
      progress_(flags.GetBool("progress", false)) {
  if (!trace_out_.empty()) obs::Tracer::Global().set_enabled(true);
  if (!events_out_.empty()) {
    const Status status = obs::EventLog::Global().Open(events_out_);
    if (!status.ok()) {
      std::fprintf(stderr, "events-out: %s\n", status.message().c_str());
      events_out_.clear();
    }
  }
  if (progress_) {
    obs::TelemetrySampler::Options options;
    options.period_ms = static_cast<std::uint64_t>(
        flags.GetInt("progress-period-ms", 200));
    sampler_.Start(options, [](const std::vector<obs::ProgressSnapshot>& runs,
                               bool final) {
      // The final tick fires after the last run left the active set; its
      // 100% state is reported by the run snapshot printed below.
      for (const obs::ProgressSnapshot& run : runs) {
        std::fprintf(stderr, "%s\n", run.ToString().c_str());
      }
      if (final) {
        for (const obs::ProgressSnapshot& run :
             obs::RunRegistry::Global().SnapshotAll()) {
          std::fprintf(stderr, "%s\n", run.ToString().c_str());
        }
      }
    });
  }
}

ObsSession::~ObsSession() {
  // A driver that exits early (usage error, load failure) still stops the
  // sampler thread and closes the event sink.
  if (!finished_) {
    sampler_.Stop();
    obs::EventLog::Global().Close();
  }
}

void ObsSession::Record(const obs::MineStats& stats) {
  runs_.push_back(stats);
  if (print_stats_) {
    std::printf("%s\n", stats.ToString().c_str());
    std::fflush(stdout);
  }
}

bool ObsSession::Finish() {
  bool ok = true;
  std::string error;
  finished_ = true;
  sampler_.Stop();  // delivers the final --progress tick
  if (!events_out_.empty()) {
    obs::EventLog& log = obs::EventLog::Global();
    const std::uint64_t records = log.records_written();
    log.Close();
    // Validate what we just wrote: the event log is an API other tools
    // tail, so a malformed file is a bug worth failing the run over.
    std::string text;
    const Status read = ReadFileToString(events_out_, &text);
    if (!read.ok()) {
      std::fprintf(stderr, "events-out: %s\n", read.message().c_str());
      ok = false;
    } else if (!obs::ValidateEventLogJsonl(text, &error)) {
      std::fprintf(stderr, "events-out: invalid event log: %s\n",
                   error.c_str());
      ok = false;
    } else {
      std::printf("wrote %s (%llu events)\n", events_out_.c_str(),
                  static_cast<unsigned long long>(records));
    }
  }
  if (!metrics_out_.empty()) {
    const std::string text = obs::RenderPrometheusText();
    if (!obs::ValidatePrometheusText(text, &error)) {
      std::fprintf(stderr, "metrics-out: invalid exposition: %s\n",
                   error.c_str());
      ok = false;
    } else if (const Status status = WriteFileAtomic(metrics_out_, text);
               !status.ok()) {
      std::fprintf(stderr, "metrics-out: %s\n", status.message().c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", metrics_out_.c_str());
    }
  }
  if (!json_out_.empty()) {
    BenchReport report(bench_name_, workload_);
    for (const obs::MineStats& stats : runs_) report.AddRun(stats);
    if (report.WriteJson(json_out_, &error)) {
      std::printf("wrote %s (%zu runs)\n", json_out_.c_str(), runs_.size());
    } else {
      std::fprintf(stderr, "json-out: %s\n", error.c_str());
      ok = false;
    }
  }
  if (!trace_out_.empty()) {
    if (obs::Tracer::Global().WriteChromeTrace(trace_out_, &error)) {
      std::printf("wrote %s (%zu spans)\n", trace_out_.c_str(),
                  obs::Tracer::Global().events().size());
    } else {
      std::fprintf(stderr, "trace-out: %s\n", error.c_str());
      ok = false;
    }
  }
  std::fflush(stdout);
  return ok;
}

}  // namespace disc
