// Shared workload definitions for the benchmark suite: the exact Quest
// parameterizations of the paper's evaluation section (§4), plus timing
// helpers.
#ifndef DISC_BENCHLIB_WORKLOAD_H_
#define DISC_BENCHLIB_WORKLOAD_H_

#include <cstdint>

#include "disc/algo/miner.h"
#include "disc/common/flags.h"
#include "disc/gen/quest.h"
#include "disc/seq/database.h"

namespace disc {

/// Figure 8 / Table 11 setting: slen 10, tlen 2.5, nitems 1K,
/// seq.patlen 4; ncust is the swept variable (paper: 50K-500K).
QuestParams Fig8Params(std::uint32_t ncust);

/// Figure 9 / Tables 12-13 setting (from [8]): slen = tlen = seq.patlen = 8,
/// nitems 1K; paper ncust 10K.
QuestParams Fig9Params(std::uint32_t ncust);

/// Figure 10 / Table 14 setting: nitems 1K, tlen 2.5, seq.patlen 4; the
/// average transactions per customer θ is swept (paper: ncust 50K,
/// θ 10-40, minsup 0.005).
QuestParams ThetaParams(std::uint32_t ncust, double theta);

/// Runs one timed Mine() and reports seconds, the result size, and the
/// full MineStats harvested from the run (for --stats / --json-out).
struct MineTiming {
  double seconds = 0.0;
  std::size_t num_patterns = 0;
  std::uint32_t max_length = 0;
  obs::MineStats stats;
};
MineTiming TimeMine(Miner* miner, const SequenceDatabase& db,
                    const MineOptions& options);

/// Reads the --threads=N knob shared by the drivers into a
/// MineOptions::threads value (default 1 = serial; 0 = hardware
/// concurrency). Aborts on negative values.
std::uint32_t ThreadsFromFlags(const Flags& flags);

}  // namespace disc

#endif  // DISC_BENCHLIB_WORKLOAD_H_
