#include "disc/benchlib/workload.h"

#include "disc/common/check.h"
#include "disc/common/timer.h"

namespace disc {

QuestParams Fig8Params(std::uint32_t ncust) {
  QuestParams p;
  p.ncust = ncust;
  p.slen = 10.0;
  p.tlen = 2.5;
  p.nitems = 1000;
  p.seq_patlen = 4.0;
  return p;
}

QuestParams Fig9Params(std::uint32_t ncust) {
  QuestParams p;
  p.ncust = ncust;
  p.slen = 8.0;
  p.tlen = 8.0;
  p.nitems = 1000;
  p.seq_patlen = 8.0;
  return p;
}

QuestParams ThetaParams(std::uint32_t ncust, double theta) {
  QuestParams p;
  p.ncust = ncust;
  p.slen = theta;
  p.tlen = 2.5;
  p.nitems = 1000;
  p.seq_patlen = 4.0;
  return p;
}

std::uint32_t ThreadsFromFlags(const Flags& flags) {
  const std::int64_t threads = flags.GetInt("threads", 1);
  DISC_CHECK(threads >= 0);
  return static_cast<std::uint32_t>(threads);
}

MineTiming TimeMine(Miner* miner, const SequenceDatabase& db,
                    const MineOptions& options) {
  Timer timer;
  const PatternSet result = miner->Mine(db, options);
  MineTiming t;
  t.seconds = timer.Seconds();
  t.num_patterns = result.size();
  t.max_length = result.MaxLength();
  t.stats = miner->last_stats();
  return t;
}

}  // namespace disc
