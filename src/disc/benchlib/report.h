// Report helpers for the benchmark binaries: every bench prints a short
// provenance banner (what paper artifact it regenerates, what workload it
// ran) followed by a markdown table that drops straight into
// EXPERIMENTS.md.
#ifndef DISC_BENCHLIB_REPORT_H_
#define DISC_BENCHLIB_REPORT_H_

#include <string>

#include "disc/seq/database.h"

namespace disc {

/// Prints the bench banner: which table/figure, the workload shape, and the
/// scale disclaimer when running below paper size.
void PrintBanner(const std::string& artifact, const std::string& setup,
                 bool scaled_down);

/// One-line database shape summary ("|DB|=10000 seqs, avg 8.1 txns x 7.9
/// items").
std::string DescribeDatabase(const SequenceDatabase& db);

}  // namespace disc

#endif  // DISC_BENCHLIB_REPORT_H_
