// Report helpers for the benchmark binaries: every bench prints a short
// provenance banner (what paper artifact it regenerates, what workload it
// ran) followed by a markdown table that drops straight into
// EXPERIMENTS.md.
//
// On top of the human output, every bench can emit a machine-readable
// BENCH_<name>.json (workload shape, per-miner wall time, work counters,
// peak RSS) and a chrome://tracing span file. ObsSession wires the three
// standard flags --stats, --trace-out=<file>, --json-out=<file> into a
// driver in one line each.
#ifndef DISC_BENCHLIB_REPORT_H_
#define DISC_BENCHLIB_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disc/common/flags.h"
#include "disc/obs/mine_stats.h"
#include "disc/obs/sampler.h"
#include "disc/seq/database.h"

namespace disc {

/// Library version string baked in at configure time (`git describe`;
/// "unknown" outside a git checkout).
std::string LibraryVersion();

/// Prints the bench banner: which table/figure, the workload shape, the
/// library version, and the scale disclaimer when running below paper size.
void PrintBanner(const std::string& artifact, const std::string& setup,
                 bool scaled_down);

/// One-line database shape summary ("|DB|=10000 seqs, avg 8.1 txns x 7.9
/// items"). O(1): the database maintains its aggregates.
std::string DescribeDatabase(const SequenceDatabase& db);

/// Uniform --help across the bench drivers: when --help was given, prints
/// the usage line to stdout — the driver's own flags first, then the flags
/// every driver shares (--threads plus the ObsSession telemetry flags) —
/// and returns true; the caller returns 0 (--help is a success, not a
/// usage error — docs/ROBUSTNESS.md exit-code convention).
///
///   if (PrintBenchUsage(flags, "bench_fig9_minsup",
///                       "[--ncust=N] [--dense] [--seed=N] [--full]")) {
///     return 0;
///   }
bool PrintBenchUsage(const Flags& flags, const std::string& name,
                     const std::string& specific);

/// Workload shape recorded into a bench report.
struct WorkloadInfo {
  std::string generator;  ///< "quest", "spmf:<path>", ...
  std::size_t db_sequences = 0;
  std::uint64_t total_items = 0;
  std::uint64_t total_transactions = 0;
  double avg_txns_per_customer = 0.0;
  double avg_items_per_txn = 0.0;
  std::uint32_t max_item = 0;
  std::uint32_t min_support_count = 0;  ///< 0 when the bench sweeps it
};

/// Fills the database-derived fields of a WorkloadInfo.
WorkloadInfo MakeWorkloadInfo(const SequenceDatabase& db,
                              const std::string& generator);

/// A machine-readable bench report: workload shape plus one MineStats per
/// miner run, serialized as BENCH_<name>.json.
class BenchReport {
 public:
  BenchReport(std::string bench_name, WorkloadInfo workload)
      : bench_name_(std::move(bench_name)), workload_(std::move(workload)) {}

  void AddRun(const obs::MineStats& stats) { runs_.push_back(stats); }
  const std::vector<obs::MineStats>& runs() const { return runs_; }

  /// The report as a JSON document (schema: docs/OBSERVABILITY.md).
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false + `*error` on failure.
  bool WriteJson(const std::string& path, std::string* error = nullptr) const;

 private:
  std::string bench_name_;
  WorkloadInfo workload_;
  std::vector<obs::MineStats> runs_;
};

/// Structural check of a BenchReport JSON document: parses it and verifies
/// the schema fields the tooling relies on (bench/library_version/workload
/// keys, per-run miner + wall_seconds + counters). Returns true when valid;
/// otherwise false with a diagnostic in `*error`. Used by the ctest smoke
/// test via `bench_micro --validate`.
bool ValidateBenchReportJson(const std::string& json, std::string* error);

/// One-line wiring of the standard observability flags into a bench driver:
///
///   ObsSession obs("micro", flags);           // after Flags::Parse
///   ...
///   obs.SetWorkload(MakeWorkloadInfo(db, "quest"));
///   obs.Record(miner.last_stats());           // after each Mine()
///   ...
///   return obs.Finish() ? 0 : 1;              // writes the files
///
/// --stats prints each recorded MineStats; --trace-out=<file> enables the
/// span tracer and writes a Chrome trace; --json-out=<file> writes the
/// BenchReport.
///
/// Live-telemetry flags (the same session wires them for seqmine and every
/// bench driver):
///   --progress             stderr ticker: one line per sampler tick and
///                          per in-flight run ("run=1 miner=disc-all
///                          partitions=12/58 pct=20.7% ... eta=1.2s"),
///                          powered by a background TelemetrySampler that
///                          also gives MineStats its per-run peak RSS
///   --progress-period-ms=N sampler period (default 200, min 10)
///   --events-out=<file>    structured JSONL event log (obs/event_log.h),
///                          opened at construction, validated at Finish
///   --metrics-out=<file>   Prometheus text exposition of the metrics +
///                          run registries, written at Finish
class ObsSession {
 public:
  ObsSession(std::string bench_name, const Flags& flags);
  ~ObsSession();

  void SetWorkload(WorkloadInfo workload) { workload_ = std::move(workload); }

  /// Records one mining run; prints it when --stats was given.
  void Record(const obs::MineStats& stats);

  /// Stops the sampler, writes the requested outputs, and validates the
  /// telemetry files it wrote (Prometheus exposition, JSONL event log).
  /// Returns false (after printing a diagnostic to stderr) if any write or
  /// validation failed.
  bool Finish();

  const std::string& json_out() const { return json_out_; }
  const std::string& trace_out() const { return trace_out_; }
  const std::string& metrics_out() const { return metrics_out_; }
  const std::string& events_out() const { return events_out_; }
  bool stats_enabled() const { return print_stats_; }
  bool progress_enabled() const { return progress_; }

 private:
  std::string bench_name_;
  std::string json_out_;
  std::string trace_out_;
  std::string metrics_out_;
  std::string events_out_;
  bool print_stats_ = false;
  bool progress_ = false;
  bool finished_ = false;
  WorkloadInfo workload_;
  std::vector<obs::MineStats> runs_;
  obs::TelemetrySampler sampler_;
};

}  // namespace disc

#endif  // DISC_BENCHLIB_REPORT_H_
