#include "disc/core/candidate_bound.h"

namespace disc {

CandidateBound CandidateBound::FromExtensions(
    const std::vector<std::pair<Item, ExtType>>& freq) {
  CandidateBound b;
  for (const auto& [x, type] : freq) {
    (void)x;
    if (type == ExtType::kItemset) {
      ++b.itemset_exts;
    } else {
      ++b.sequence_exts;
    }
  }
  return b;
}

}  // namespace disc
