#include "disc/core/counting_array.h"

#include <algorithm>

namespace disc {

CountingArray::CountingArray(Item max_item)
    : i_entries_(static_cast<std::size_t>(max_item) + 1),
      s_entries_(static_cast<std::size_t>(max_item) + 1) {}

CountingArray::~CountingArray() { FlushObs(); }

void CountingArray::FlushObs() {
#if DISC_OBS_ENABLED
  DISC_OBS_COUNTER(g_probes, "counting_array.probes");
  DISC_OBS_COUNTER(g_increments, "counting_array.increments");
  DISC_OBS_COUNTER(g_support_increments, "support.increments");
  DISC_OBS_ADD(g_probes, probes_pending_);
  DISC_OBS_ADD(g_increments, increments_pending_);
  DISC_OBS_ADD(g_support_increments, increments_pending_);
  probes_pending_ = 0;
  increments_pending_ = 0;
#endif
}

std::uint32_t CountingArray::Count(Item x, ExtType type) const {
  DISC_DCHECK(static_cast<std::size_t>(x) < i_entries_.size());
  return type == ExtType::kItemset ? i_entries_[x].count
                                   : s_entries_[x].count;
}

std::vector<std::pair<Item, ExtType>> CountingArray::FrequentExtensions(
    std::uint32_t delta) const {
  std::vector<Item> items = touched_;
  std::sort(items.begin(), items.end());
  std::vector<std::pair<Item, ExtType>> out;
  for (const Item x : items) {
    if (i_entries_[x].count >= delta) out.emplace_back(x, ExtType::kItemset);
    if (s_entries_[x].count >= delta) out.emplace_back(x, ExtType::kSequence);
  }
  return out;
}

void CountingArray::Reset() {
  FlushObs();
  for (const Item x : touched_) {
    i_entries_[x] = Entry{};
    s_entries_[x] = Entry{};
  }
  touched_.clear();
#if DISC_OBS_ENABLED
  increments_since_reset_ = 0;
#endif
}

}  // namespace disc
