#include "disc/core/kms.h"

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

// The extension type by which `bound` grew out of its (k-1)-prefix: itemset
// if the last item shares its transaction with the previous item.
ExtType LastExtType(const Sequence& bound) {
  const std::uint32_t last_txn = bound.NumTransactions() - 1;
  return bound.TxnSize(last_txn) >= 2 ? ExtType::kItemset
                                      : ExtType::kSequence;
}

}  // namespace

KmsResult AprioriKms(SequenceView s,
                     const std::vector<Sequence>& sorted_list,
                     const SequenceIndex* index) {
  DISC_OBS_COUNTER(g_initial_scans, "kms.initial_scans");
  DISC_OBS_INC(g_initial_scans);
  KmsResult result;
  for (std::uint32_t idx = 0; idx < sorted_list.size(); ++idx) {
    const MinExtension ext =
        ScanMinExtension(s, sorted_list[idx], nullptr, false, index);
    if (!ext.found) continue;
    result.found = true;
    result.kmin = Extend(sorted_list[idx], ext.item, ext.type);
    result.prefix_index = idx;
    return result;
  }
  return result;
}

CkmsBound CkmsBound::Make(const Sequence& bound, bool strict) {
  DISC_CHECK(!bound.Empty());
  CkmsBound out;
  out.prefix = bound.Prefix(bound.Length() - 1);
  out.floor = {bound.LastItem(), LastExtType(bound)};
  out.strict = strict;
  return out;
}

KmsResult AprioriCkms(SequenceView s,
                      const std::vector<Sequence>& sorted_list,
                      std::uint32_t start_index, const CkmsBound& bound,
                      const SequenceIndex* index) {
  DISC_OBS_COUNTER(g_ckms_advances, "kms.ckms_advances");
  DISC_OBS_INC(g_ckms_advances);
  KmsResult result;
  // Steps 4-7 of Figure 6: advance to the first list entry >= the bound's
  // prefix. The apriori pointer makes this a short walk.
  std::uint32_t idx = start_index;
  while (idx < sorted_list.size() &&
         CompareSequences(sorted_list[idx], bound.prefix) < 0) {
    ++idx;
  }
  for (; idx < sorted_list.size(); ++idx) {
    const Sequence& prefix = sorted_list[idx];
    // Only extensions of the bound's own prefix are floor-constrained;
    // prefix-compatibility puts every extension of a larger prefix above
    // the bound already.
    const bool at_bound_prefix =
        CompareSequences(prefix, bound.prefix) == 0;
    const MinExtension ext =
        at_bound_prefix
            ? ScanMinExtension(s, prefix, &bound.floor, bound.strict, index)
            : ScanMinExtension(s, prefix, nullptr, false, index);
    if (!ext.found) continue;
    result.found = true;
    result.kmin = Extend(prefix, ext.item, ext.type);
    result.prefix_index = idx;
    return result;
  }
  return result;
}

KmsResult AprioriCkms(SequenceView s,
                      const std::vector<Sequence>& sorted_list,
                      std::uint32_t start_index, const Sequence& bound,
                      bool strict) {
  return AprioriCkms(s, sorted_list, start_index,
                     CkmsBound::Make(bound, strict));
}

}  // namespace disc
