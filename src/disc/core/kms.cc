#include "disc/core/kms.h"

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/simd.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_initial_scans, "kms.initial_scans");
DISC_OBS_COUNTER(g_ckms_advances, "kms.ckms_advances");
DISC_OBS_COUNTER(g_walk_skips, "disc.encode.walk_skips");
DISC_OBS_COUNTER(g_walk_compares, "disc.encode.compares");
DISC_OBS_COUNTER(g_scan_reuses, "disc.encode.scan_reuses");

// The extension type by which `bound` grew out of its (k-1)-prefix: itemset
// if the last item shares its transaction with the previous item.
ExtType LastExtType(const Sequence& bound) {
  const std::uint32_t last_txn = bound.NumTransactions() - 1;
  return bound.TxnSize(last_txn) >= 2 ? ExtType::kItemset
                                      : ExtType::kSequence;
}

// Extension sets of sorted_list[idx] in s through the scan-state cache: a
// hit answers min-extension queries by binary search, skipping both the
// embedding walk and the extension scan. Misses gather into the state's
// vectors, reusing their capacity.
const ExtensionSets& SetsFor(SequenceView s, const Sequence& prefix,
                             std::uint32_t idx, const SequenceIndex* index,
                             KmsScanState* state) {
  if (state->sets_index == idx) {
    DISC_OBS_INC(g_scan_reuses);
    return state->sets;
  }
  ScanExtensionsWithEnds(s, prefix, LeftmostEnds(s, prefix, index), index,
                         &state->sets);
  state->sets_index = idx;
  return state->sets;
}

// One scanned entry of a (C)KMS walk: the minimum extension of
// sorted_list[idx] within s, floored when the entry sits at the bound's
// prefix. Only the floored query consults the scan-state cache — it is the
// one that repeats (successive advances against the same at-bound entry
// with a tightening floor); entries past the bound are each scanned at most
// once per pass, so for them the gather would cost more than the
// allocation-free scan it replaces.
MinExtension ScanEntry(SequenceView s, const Sequence& prefix,
                       std::uint32_t idx,
                       const std::pair<Item, ExtType>* floor, bool strict,
                       const SequenceIndex* index, KmsScanState* state) {
  if (state != nullptr && floor != nullptr) {
    return MinExtensionFromSets(SetsFor(s, prefix, idx, index, state), floor,
                                strict);
  }
  const EmbeddingEnds ends = LeftmostEnds(s, prefix, index);
  if (!ends.contained) return MinExtension{};
  return MinExtensionWithEnds(s, prefix, ends, floor, strict, index);
}

}  // namespace

KmsResult AprioriKms(SequenceView s,
                     const std::vector<Sequence>& sorted_list,
                     const SequenceIndex* index, KmsScanState* state) {
  DISC_OBS_INC(g_initial_scans);
  KmsResult result;
  for (std::uint32_t idx = 0; idx < sorted_list.size(); ++idx) {
    const MinExtension ext =
        ScanEntry(s, sorted_list[idx], idx, nullptr, false, index, state);
    if (!ext.found) continue;
    result.found = true;
    result.kmin = Extend(sorted_list[idx], ext.item, ext.type);
    result.prefix_index = idx;
    return result;
  }
  return result;
}

CkmsBound CkmsBound::Make(const Sequence& bound, bool strict,
                          const ItemEncoder* encoder) {
  DISC_CHECK(!bound.Empty());
  CkmsBound out;
  out.prefix = bound.Prefix(bound.Length() - 1);
  out.floor = {bound.LastItem(), LastExtType(bound)};
  out.strict = strict;
  if (encoder != nullptr) {
    EncodeSequence(out.prefix, *encoder, &out.encoded_prefix);
  }
  return out;
}

KmsResult AprioriCkms(SequenceView s,
                      const std::vector<Sequence>& sorted_list,
                      std::uint32_t start_index, const CkmsBound& bound,
                      const SequenceIndex* index, const EncodedList* elist,
                      KmsScanState* state) {
  DISC_OBS_INC(g_ckms_advances);
  KmsResult result;
  // Steps 4-7 of Figure 6: advance to the first list entry >= the bound's
  // prefix. The apriori pointer makes this a short walk.
  std::uint32_t idx = start_index;
  // Compare result of sorted_list[idx] vs bound.prefix, when known without
  // re-deriving (encoded walk); kUnknown falls back to a per-entry compare.
  constexpr int kUnknown = 2;
  int cmp = kUnknown;
  if (elist != nullptr) {
    DISC_DCHECK(elist->size() == sorted_list.size());
    const EncodedWord* bp = bound.encoded_prefix.data();
    const std::size_t bn = bound.encoded_prefix.size();
    std::uint32_t lcp = 0;
    std::uint32_t walk_compares = 0;
    std::uint32_t walk_skips = 0;
    if (idx < elist->size()) {
      ++walk_compares;
      cmp = SimdCompareFrom(elist->WordsBegin(idx), elist->NumWords(idx), bp,
                            bn, 0, &lcp);
    }
    while (idx < elist->size() && cmp < 0) {
      ++idx;
      if (idx >= elist->size()) break;
      const std::uint32_t p = elist->LcpWithPrev(idx);
      if (p > lcp) {
        // The entry agrees with its predecessor beyond the predecessor's
        // differential point with the bound, so it compares the same way
        // (< 0) with the same LCP: skip it without reading any words.
        ++walk_skips;
        continue;
      }
      if (p < lcp) {
        // The entry departs from its predecessor before the bound does;
        // ascending order forces entry[p] > predecessor[p] == bound[p].
        ++walk_skips;
        cmp = 1;
        lcp = p;
        continue;  // loop condition exits
      }
      ++walk_compares;
      cmp = SimdCompareFrom(elist->WordsBegin(idx), elist->NumWords(idx), bp,
                            bn, lcp, &lcp);
    }
    DISC_OBS_ADD(g_walk_compares, walk_compares);
    if (walk_skips != 0) DISC_OBS_ADD(g_walk_skips, walk_skips);
  } else {
    while (idx < sorted_list.size() &&
           CompareSequences(sorted_list[idx], bound.prefix) < 0) {
      ++idx;
    }
    cmp = kUnknown;
  }
  // Distinct keys: only the first non-less entry can equal the prefix.
  bool maybe_at_bound = true;
  for (; idx < sorted_list.size(); ++idx) {
    const Sequence& prefix = sorted_list[idx];
    // Only extensions of the bound's own prefix are floor-constrained;
    // prefix-compatibility puts every extension of a larger prefix above
    // the bound already.
    const bool at_bound_prefix =
        maybe_at_bound &&
        (cmp != kUnknown ? cmp == 0
                         : CompareSequences(prefix, bound.prefix) == 0);
    maybe_at_bound = cmp == kUnknown;  // legacy mode re-checks every entry
    const MinExtension ext =
        ScanEntry(s, prefix, idx, at_bound_prefix ? &bound.floor : nullptr,
                  at_bound_prefix && bound.strict, index, state);
    if (!ext.found) continue;
    result.found = true;
    result.kmin = Extend(prefix, ext.item, ext.type);
    result.prefix_index = idx;
    return result;
  }
  return result;
}

KmsResult AprioriCkms(SequenceView s,
                      const std::vector<Sequence>& sorted_list,
                      std::uint32_t start_index, const Sequence& bound,
                      bool strict) {
  return AprioriCkms(s, sorted_list, start_index,
                     CkmsBound::Make(bound, strict));
}

}  // namespace disc
