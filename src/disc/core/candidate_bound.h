// Candidate upper bound in the style of Geerts/Goethals/Van den Bussche
// ("A Tight Upper Bound on the Number of Candidate Patterns"), specialized
// to DISC's partition shape: every pattern mined inside a partition extends
// one fixed prefix, and the partition's frequent (k+1)-set is *complete*
// for that prefix (the reassign-forward invariant guarantees every
// supporter is present when the partition is processed). A (k+2)-candidate
// is the prefix plus two one-item extensions e1, e2; dropping either
// extension item leaves a (k+1)-sequence with the same prefix, which must
// itself be frequent. Counting the pairs that survive this check, by
// extension type (ni itemset-form, ns sequence-form frequent extensions):
//
//   <p ⊕ (x,I) ⊕ (y,I)>  x < y, both itemset:     C(ni, 2)
//   <p ⊕ (x,I) ⊕ (y,S)>  itemset then sequence:    ni · ns
//   <p ⊕ (x,S) ⊕ (y,I)>  one new txn {x, y}, x<y:  C(ns, 2)
//   <p ⊕ (x,S) ⊕ (y,S)>  two new txns (y = x ok):  ns²
//
// Bound = C(ni,2) + ni·ns + C(ns,2) + ns² — an upper bound on the number
// of frequent (k+2)-sequences with this prefix. Zero iff ns == 0 and
// ni <= 1, and by anti-monotonicity a zero bound kills every deeper level
// too: the partition cannot yield ANY new frequent sequence, so the miners
// skip its reduce/second-level/DISC machinery entirely (counted by
// "disc.bound.skips"; byte-identical output is pinned by
// tests/candidate_bound_test.cc, which also brute-forces the pair
// enumeration above). "disc.bound.presizes" counts the companion
// optimization: counting structures pre-sized from partition-local
// frequent-set knowledge instead of the database-wide worst case.
#ifndef DISC_CORE_CANDIDATE_BOUND_H_
#define DISC_CORE_CANDIDATE_BOUND_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "disc/order/compare.h"
#include "disc/seq/types.h"

namespace disc {

/// Upper bound on the next level's candidate (hence frequent) pattern
/// count for one partition, from its frequent extension-type tallies.
struct CandidateBound {
  std::uint64_t itemset_exts = 0;   ///< ni: frequent itemset-form extensions
  std::uint64_t sequence_exts = 0;  ///< ns: frequent sequence-form extensions

  /// Tallies a FrequentExtensions() result (any prefix length).
  static CandidateBound FromExtensions(
      const std::vector<std::pair<Item, ExtType>>& freq);

  /// C(ni,2) + ni·ns + C(ns,2) + ns² — see file comment.
  std::uint64_t NextLevelCandidates() const {
    const std::uint64_t ni = itemset_exts;
    const std::uint64_t ns = sequence_exts;
    return ni * (ni - 1) / 2 + ni * ns + ns * (ns - 1) / 2 + ns * ns;
  }

  /// False iff no deeper frequent sequence can exist in this partition
  /// (zero bound + anti-monotonicity), i.e. its remaining machinery can be
  /// skipped without changing the mined PatternSet.
  bool CanYieldNextLevel() const { return NextLevelCandidates() > 0; }

  /// The hot-path form of FromExtensions(freq).CanYieldNextLevel(), O(1)
  /// instead of a full tally (the miners call it once per partition): the
  /// bound is zero iff ns == 0 and ni <= 1, and any two entries — whatever
  /// their forms — already force it nonzero (two itemset entries, or at
  /// least one sequence entry), so only the singleton case needs a look.
  static bool CanYieldNextLevel(
      const std::vector<std::pair<Item, ExtType>>& freq) {
    if (freq.size() != 1) return freq.size() >= 2;
    return freq.front().second == ExtType::kSequence;
  }
};

}  // namespace disc

#endif  // DISC_CORE_CANDIDATE_BOUND_H_
