// The counting array of paper §3.1: per item, two (support count, last CID)
// entries — one for the itemset form <(λx)> and one for the sequence form
// <(λ)(x)> of a one-item extension. The last-CID column prevents counting a
// pattern twice for the same customer sequence, so one scan suffices.
//
// Reset() is O(#touched items), letting a single array be reused across all
// partitions of a mining run.
#ifndef DISC_CORE_COUNTING_ARRAY_H_
#define DISC_CORE_COUNTING_ARRAY_H_

#include <vector>

#include "disc/common/check.h"
#include "disc/obs/metrics.h"
#include "disc/order/compare.h"
#include "disc/seq/types.h"

namespace disc {

/// Support counting for one-item extensions of a fixed prefix. See file
/// comment.
class CountingArray {
 public:
  /// Items 1..max_item are countable.
  explicit CountingArray(Item max_item);
  ~CountingArray();

  CountingArray(const CountingArray&) = delete;
  CountingArray& operator=(const CountingArray&) = delete;

  /// Records that customer `cid` supports the extension (x, type). Repeated
  /// calls with the same cid are idempotent (the last-CID mechanism).
  ///
  /// Inline, and the probe/increment counters are batched into plain
  /// members flushed to the registry at Reset()/destruction: this is the
  /// innermost loop of every bi-level harvest, and three shared atomic
  /// bumps per probe cost more than the probe itself.
  void Add(Item x, ExtType type, Cid cid) {
    DISC_DCHECK(static_cast<std::size_t>(x) < i_entries_.size());
#if DISC_OBS_ENABLED
    ++probes_pending_;
#endif
    Entry& e = type == ExtType::kItemset ? i_entries_[x] : s_entries_[x];
    if (e.last_cid_plus1 == cid + 1) return;
    if (i_entries_[x].count == 0 && s_entries_[x].count == 0) {
      touched_.push_back(x);
    }
    e.last_cid_plus1 = cid + 1;
    ++e.count;
#if DISC_OBS_ENABLED
    ++increments_pending_;
    ++increments_since_reset_;
#endif
  }

  /// Support count of extension (x, type).
  std::uint32_t Count(Item x, ExtType type) const;

  /// All extensions with count >= delta, ascending by (item, type) with the
  /// itemset form first — i.e. in the comparative order of the extended
  /// patterns.
  std::vector<std::pair<Item, ExtType>> FrequentExtensions(
      std::uint32_t delta) const;

  /// Clears all counts (O(#items touched since the last Reset)).
  void Reset();

#if DISC_OBS_ENABLED
  /// Support-count increments (non-idempotent Adds) since the last Reset().
  /// Lets call sites attribute increments to a pattern length — e.g. the
  /// "support.increments.k4plus" counter behind the no-support-counting
  /// invariant test. Only compiled with the observability layer.
  std::uint64_t increments_since_reset() const {
    return increments_since_reset_;
  }
#endif

 private:
  // Publishes the batched probe/increment tallies to the registry counters
  // "counting_array.probes", "counting_array.increments", and
  // "support.increments". No-op when observability is compiled out.
  void FlushObs();

  struct Entry {
    std::uint32_t count = 0;
    std::uint32_t last_cid_plus1 = 0;  // 0 = never seen
  };
  std::vector<Entry> i_entries_;
  std::vector<Entry> s_entries_;
  std::vector<Item> touched_;  // items with any nonzero entry
#if DISC_OBS_ENABLED
  std::uint64_t increments_since_reset_ = 0;
  std::uint64_t probes_pending_ = 0;
  std::uint64_t increments_pending_ = 0;
#endif
};

}  // namespace disc

#endif  // DISC_CORE_COUNTING_ARRAY_H_
