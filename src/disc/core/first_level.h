// Threshold-independent first-level mining state, shared across queries.
//
// DISC's front matter — the per-item support counts, the first-level
// ⟨λ⟩-partition memberships, and the per-partition item alphabets — does
// not depend on the support threshold delta at all: the ⟨λ⟩-partition is
// *exactly* the customer sequences containing λ (disc_all.h step 2), and a
// query only decides which λ are frequent enough to mine. A resident
// engine serving a minsup sweep therefore computes this state once per
// loaded database and hands it to every subsequent run (engine/engine.h),
// which skips straight to partition mining.
//
// Contract: a FirstLevelState is a pure function of the database it was
// built from. Consumers size their per-partition machinery from the cached
// alphabets (max item of the ⟨λ⟩-partition) instead of the global
// db.max_item(); sizing never changes which patterns are emitted, so the
// mined PatternSet is byte-identical with or without a provided state
// (enforced by tests/engine_test.cc at threads 1 and 4).
#ifndef DISC_CORE_FIRST_LEVEL_H_
#define DISC_CORE_FIRST_LEVEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "disc/seq/database.h"
#include "disc/seq/types.h"

namespace disc {

/// Precomputed step-1/step-2 artifacts of one database. Immutable after
/// BuildFirstLevelState; safe to share read-only across pool workers and
/// concurrent engine sessions.
struct FirstLevelState {
  /// Fingerprint of the source database (Matches below): cheap shape
  /// aggregates plus a content hash (ContentHash). The hash matters since
  /// the engine's QueryCache became a multi-database LRU that loads do NOT
  /// invalidate — two databases with identical shape aggregates must not
  /// serve each other's state.
  std::size_t db_sequences = 0;
  std::uint64_t db_total_items = 0;
  Item max_item = 0;
  std::uint64_t db_content_hash = 0;

  /// Per-item support: item_support[x] = number of distinct customer
  /// sequences containing x, for every x in [0, max_item] (no threshold
  /// applied — that is the point).
  std::vector<std::uint32_t> item_support;

  /// First-level partition memberships: members_of[x] = the CIDs of the
  /// sequences containing x, ascending. members_of[x].size() ==
  /// item_support[x].
  std::vector<std::vector<Cid>> members_of;

  /// Per-partition alphabet: alphabet_of[x] = the distinct items occurring
  /// anywhere in the ⟨x⟩-partition's member sequences, ascending — the
  /// universe a partition-local ItemEncoder (order/encoded.h) assigns dense
  /// codes to, and the bound for every counting/filter table the partition
  /// needs.
  std::vector<std::vector<Item>> alphabet_of;

  /// FNV-1a over the database's itemset boundaries and items — one O(n)
  /// pass. Callers probing several cached states against one database
  /// (engine/query_cache.cc) should compute it once and use the
  /// three-argument Matches overload.
  static std::uint64_t ContentHash(const SequenceDatabase& db);

  /// True when this state was built from a database with the same
  /// fingerprint (shape aggregates + content hash).
  bool Matches(const SequenceDatabase& db) const {
    return Matches(db, ContentHash(db));
  }
  /// Matches with the content hash precomputed (`hash = ContentHash(db)`).
  bool Matches(const SequenceDatabase& db, std::uint64_t hash) const {
    return db_sequences == db.size() && db_total_items == db.TotalItems() &&
           max_item == db.max_item() && db_content_hash == hash;
  }

  /// Largest item occurring in the ⟨lambda⟩-partition (the back of its
  /// alphabet); `max_item` when the partition is empty or lambda is out of
  /// range, so callers can use it unconditionally as a sizing bound.
  Item PartitionMaxItem(Item lambda) const {
    if (lambda >= alphabet_of.size() || alphabet_of[lambda].empty()) {
      return max_item;
    }
    return alphabet_of[lambda].back();
  }

  /// Approximate resident size (elements + vector headers), reported as the
  /// "disc.cache.bytes" gauge by the engine's QueryCache.
  std::size_t SizeBytes() const;
};

/// Builds the state in two database scans plus one partition-major alphabet
/// sweep (cost: sum over items x of the total length of the ⟨x⟩-partition's
/// sequences — the same order as one reduce pass of a full mine). Bumps the
/// "disc.first_level.builds" counter.
std::shared_ptr<const FirstLevelState> BuildFirstLevelState(
    const SequenceDatabase& db);

/// Seam grown by the miners that can start from precomputed first-level
/// state (DiscAll, DynamicDiscAll). The engine probes for it with a
/// dynamic_cast and injects the cached state before TryMine; a miner
/// without the seam simply recomputes. Providing a state built from a
/// *different* database is a programming error (DISC_CHECK at mine time).
class FirstLevelConsumer {
 public:
  virtual ~FirstLevelConsumer() = default;

  /// Hands the miner a prebuilt state for the database of its next
  /// DoMine() call. Pass nullptr to clear. The state is retained until
  /// replaced.
  virtual void ProvideFirstLevel(
      std::shared_ptr<const FirstLevelState> state) = 0;
};

}  // namespace disc

#endif  // DISC_CORE_FIRST_LEVEL_H_
