// The DISC-all algorithm (paper §3, Figure 2): two-level partitioning plus
// the DISC strategy.
//
//   1. One database scan finds the frequent 1-sequences and splits the
//      customers into first-level partitions by minimum item.
//   2. Per <(λ)>-partition with λ frequent: a counting array finds the
//      frequent 2-sequences with prefix λ in one scan; customer sequences
//      are reduced (non-frequent 1-/2-sequences removed) and split into
//      second-level partitions by 2-minimum sequence; per second-level
//      partition another counting-array scan finds the frequent
//      3-sequences, and the DISC strategy (bi-level by default, as in the
//      paper's experiments) finds everything longer. Customers are
//      reassigned to their next partition after each partition completes,
//      at both levels.
#ifndef DISC_CORE_DISC_ALL_H_
#define DISC_CORE_DISC_ALL_H_

#include "disc/algo/miner.h"

namespace disc {

/// DISC-all frequent-sequence miner. See file comment.
class DiscAll : public Miner {
 public:
  struct Config {
    /// Use the bi-level technique (§3.2): harvest frequent k- and
    /// (k+1)-sequences in one discovery pass. The paper's experiments use
    /// the bi-level version.
    bool bilevel = true;
    /// Index the k-sorted databases with the locative AVL tree; false
    /// falls back to full re-sorting per DISC iteration (ablation).
    bool use_avl = true;
  };

  DiscAll() : DiscAll(Config{}) {}
  explicit DiscAll(const Config& config) : config_(config) {}

  PatternSet Mine(const SequenceDatabase& db,
                  const MineOptions& options) override;

  std::string name() const override {
    return config_.bilevel ? "disc-all" : "disc-all-nobilevel";
  }

  /// Instrumentation from the last Mine() call.
  struct Stats {
    std::uint64_t disc_iterations = 0;       ///< α₁/α_δ comparisons
    std::uint64_t first_level_partitions = 0;   ///< processed (λ frequent)
    std::uint64_t second_level_partitions = 0;  ///< processed (size >= δ)
    /// Physical non-reduction rates (Equation 2 over *actual* partition
    /// sizes, the variant behind Table 12's "Original" column):
    /// level 0 = avg first-level-partition size / |DB| over processed
    /// partitions; level 1 = avg of (avg second-level size / first-level
    /// size). NaN when no partition was processed at that level.
    double physical_nrr_level0 = 0.0;
    double physical_nrr_level1 = 0.0;
  };
  const Stats& last_stats() const { return stats_; }

 private:
  Config config_;
  Stats stats_;
};

}  // namespace disc

#endif  // DISC_CORE_DISC_ALL_H_
