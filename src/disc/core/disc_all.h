// The DISC-all algorithm (paper §3, Figure 2): two-level partitioning plus
// the DISC strategy.
//
//   1. One database scan finds the frequent 1-sequences and splits the
//      customers into first-level partitions by minimum item.
//   2. Per <(λ)>-partition with λ frequent: a counting array finds the
//      frequent 2-sequences with prefix λ in one scan; customer sequences
//      are reduced (non-frequent 1-/2-sequences removed) and split into
//      second-level partitions by 2-minimum sequence; per second-level
//      partition another counting-array scan finds the frequent
//      3-sequences, and the DISC strategy (bi-level by default, as in the
//      paper's experiments) finds everything longer. Customers are
//      reassigned to their next partition after each second-level
//      partition completes.
//
// The first-level ⟨λ⟩-partition is exactly the customer sequences
// containing λ, so the partitions are statically determined and
// independently minable: with MineOptions::threads > 1 they are fanned out
// largest-first to a thread pool (per-worker scratch state, see
// docs/PARALLELISM.md) and the per-partition results merged in ascending-λ
// order, producing a PatternSet identical to the serial run.
#ifndef DISC_CORE_DISC_ALL_H_
#define DISC_CORE_DISC_ALL_H_

#include <memory>
#include <utility>

#include "disc/algo/miner.h"
#include "disc/core/first_level.h"

namespace disc {

/// DISC-all frequent-sequence miner. See file comment.
class DiscAll : public Miner, public FirstLevelConsumer {
 public:
  struct Config {
    /// Use the bi-level technique (§3.2): harvest frequent k- and
    /// (k+1)-sequences in one discovery pass. The paper's experiments use
    /// the bi-level version.
    bool bilevel = true;
    /// Index the k-sorted databases with the locative AVL tree; false
    /// falls back to full re-sorting per DISC iteration (ablation).
    bool use_avl = true;
    /// Append reduced customer sequences into the per-worker scratch
    /// SequenceArena (reused across partitions; zero allocation once warm).
    /// False falls back to one owning Sequence per reduced customer per
    /// partition — the pre-arena behavior, kept as an ablation/baseline for
    /// the bench_micro --alloc-compare mode. Output is byte-identical
    /// either way.
    bool arena_scratch = true;
    /// Run the k >= 4 DISC loops on the encoded comparative order
    /// (order/encoded.h): dense item remap, word-scan comparisons,
    /// prefix-skip CKMS walks, cached embedding ends. False keeps the
    /// legacy itemset-by-itemset scans as an ablation (bench_kernels
    /// measures the gap; output is byte-identical either way, enforced by
    /// parallel_determinism_test).
    bool encoded_order = true;
    /// Skip a partition's remaining machinery (reduce, second-level
    /// partitioning, DISC loop) when the Geerts-style candidate upper
    /// bound over its frequent extensions proves no deeper frequent
    /// sequence can exist (core/candidate_bound.h). Counted by
    /// "disc.bound.skips"; output is byte-identical either way
    /// (tests/candidate_bound_test.cc). False keeps the unpruned path as
    /// an ablation (bench_kernels' kernel.bound pair measures the gap).
    bool bound_pruning = true;
  };

  DiscAll() : DiscAll(Config{}) {}
  explicit DiscAll(const Config& config) : config_(config) {}

  std::string name() const override {
    std::string n = config_.bilevel ? "disc-all" : "disc-all-nobilevel";
    if (!config_.arena_scratch) n += "-ownedscratch";
    if (!config_.encoded_order) n += "-legacyorder";
    if (!config_.bound_pruning) n += "-nobound";
    return n;
  }

  /// Accepts precomputed first-level state (core/first_level.h): steps 1
  /// and 2 of the next DoMine() reuse the cached supports and partition
  /// memberships instead of rescanning, and each ⟨λ⟩-partition sizes its
  /// tables from the cached alphabet. The state must match the mined
  /// database (DISC_CHECK). Output is byte-identical either way; counted
  /// by "disc.first_level.reuses".
  void ProvideFirstLevel(
      std::shared_ptr<const FirstLevelState> state) override {
    first_level_ = std::move(state);
  }

 protected:
  // Work accounting lands in last_stats() via the obs registry: counters
  // "disc.iterations", "disc.partitions.first_level" /
  // ".second_level", "disc.scratch.reuses", and gauges "mine.threads" and
  // "disc.physical_nrr.level0" / ".level1" (Equation 2 over actual
  // partition sizes, Table 12's "Original" column; unset when no partition
  // was processed at that level).
  PatternSet DoMine(const SequenceDatabase& db,
                    const MineOptions& options) override;

 private:
  Config config_;
  std::shared_ptr<const FirstLevelState> first_level_;
};

}  // namespace disc

#endif  // DISC_CORE_DISC_ALL_H_
