// PartitionMember: a customer sequence enrolled in a partition, together
// with its (optional) occurrence index. Indexes are built once per
// partition scope and reused across every k-sorted pass and counting scan
// over the same sequences.
#ifndef DISC_CORE_MEMBER_H_
#define DISC_CORE_MEMBER_H_

#include <vector>

#include "disc/seq/index.h"
#include "disc/seq/view.h"
#include "disc/seq/types.h"

namespace disc {

/// One partition member. `index`, when non-null, must be built from `seq`;
/// consumers fall back to direct scans otherwise.
struct PartitionMember {
  SequenceView seq;
  const SequenceIndex* index = nullptr;
  Cid cid = 0;
};

using PartitionMembers = std::vector<PartitionMember>;

}  // namespace disc

#endif  // DISC_CORE_MEMBER_H_
