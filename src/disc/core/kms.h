// Apriori-KMS and Apriori-CKMS (paper Figures 5 and 6): generation of the
// (conditional) k-minimum subsequence of a customer sequence, restricted to
// k-sequences whose (k-1)-prefix is frequent.
//
// Both walk the sorted list of frequent (k-1)-sequences ("the (k-1)-sorted
// list") from the smallest qualifying entry; for the first entry F that is
// contained in the customer sequence and admits a valid extension, the
// minimum extension of F is the answer — prefix-compatibility of the
// comparative order guarantees no later entry can beat it.
//
// The minimum extension of F is computed from the complete extension sets
// (ScanExtensions), not from "the minimum item right of the leftmost
// matching point" as printed in the paper; the printed rule misses itemset
// extensions reachable only through non-leftmost embeddings (DESIGN.md
// deviation 2). Both functions are verified against brute-force enumeration
// in tests/kms_test.cc.
#ifndef DISC_CORE_KMS_H_
#define DISC_CORE_KMS_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "disc/order/compare.h"
#include "disc/order/encoded.h"
#include "disc/seq/extension.h"
#include "disc/seq/index.h"
#include "disc/seq/sequence.h"
#include "disc/seq/view.h"

namespace disc {

/// Result of a k-minimum generation.
struct KmsResult {
  /// False when the sequence admits no qualifying k-subsequence (the
  /// customer sequence leaves the k-sorted database).
  bool found = false;
  /// The (conditional) k-minimum subsequence.
  Sequence kmin;
  /// Index into the (k-1)-sorted list of kmin's prefix — the paper's
  /// "apriori pointer", passed back to AprioriCkms to skip re-scanning.
  std::uint32_t prefix_index = 0;
};

/// Reusable per-customer-sequence advance state: the complete extension
/// sets of the last sorted-list prefix scanned for this sequence. The sets
/// depend only on the immutable (sequence, prefix) pair, so when
/// consecutive (C)KMS generations land on the same prefix index — the
/// common case, since a bucket advance usually only changes the bound's
/// tail — the floored minimum is answered by binary search into the cached
/// sets ("disc.encode.scan_reuses") instead of re-walking the customer
/// sequence. Only the single last-scanned entry is worth caching: the
/// apriori pointer is monotone, so every entry past it is scanned at most
/// once per pass (a full per-entry memo was tried and never hit). The state
/// is tied to one sorted list; the k-sorted database owns one per entry and
/// discards it with the pass.
struct KmsScanState {
  static constexpr std::uint32_t kNoIndex =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t sets_index = kNoIndex;  ///< sorted-list index of the cache
  ExtensionSets sets;  ///< ScanExtensions(s, list[sets_index])
};

/// The k-minimum subsequence of s whose (k-1)-prefix appears in
/// `sorted_list` (frequent (k-1)-sequences, ascending). Figure 5.
/// `index`, when provided, must be built from s. `state`, when provided,
/// caches the winning prefix's embedding for the next AprioriCkms call.
KmsResult AprioriKms(SequenceView s,
                     const std::vector<Sequence>& sorted_list,
                     const SequenceIndex* index = nullptr,
                     KmsScanState* state = nullptr);

/// A condition k-sequence, preprocessed for repeated CKMS calls: the DISC
/// loop advances a whole bucket against the same bound, so the prefix split
/// and last-extension decomposition are done once per iteration instead of
/// once per customer sequence.
struct CkmsBound {
  Sequence prefix;                       ///< the bound's (k-1)-prefix
  std::pair<Item, ExtType> floor;        ///< the bound's final extension
  bool strict = false;                   ///< Ω: '>' when true, '>=' else
  /// Encoded form of `prefix` (empty in legacy mode, or when the prefix is
  /// itself empty — the encoded walk keys off its EncodedList instead).
  std::vector<EncodedWord> encoded_prefix;

  /// Decomposes a k-sequence bound. The bound must be non-empty. When
  /// `encoder` is given the prefix is encoded for the prefix-skip walk.
  static CkmsBound Make(const Sequence& bound, bool strict,
                        const ItemEncoder* encoder = nullptr);
};

/// The conditional k-minimum subsequence of s (Definition 2.5): minimum
/// qualifying k-subsequence that compares > bound (strict) or >= bound.
/// The bound's (k-1)-prefix must be in the list. `start_index` is the
/// sequence's apriori pointer (0 is always safe). Figure 6.
///
/// `elist`, when non-null, must be the encoded form of `sorted_list` (and
/// the bound made with the same encoder): the advance-to-bound walk then
/// runs on encoded words and skips entries via the list's precomputed
/// LCP-with-predecessor — an entry whose shared prefix with its predecessor
/// extends past the predecessor's differential point compares identically
/// and is decided without reading a single word. `state` caches the
/// leftmost embedding across calls (see KmsScanState).
KmsResult AprioriCkms(SequenceView s,
                      const std::vector<Sequence>& sorted_list,
                      std::uint32_t start_index, const CkmsBound& bound,
                      const SequenceIndex* index = nullptr,
                      const EncodedList* elist = nullptr,
                      KmsScanState* state = nullptr);

/// Convenience overload decomposing the bound per call.
KmsResult AprioriCkms(SequenceView s,
                      const std::vector<Sequence>& sorted_list,
                      std::uint32_t start_index, const Sequence& bound,
                      bool strict);

}  // namespace disc

#endif  // DISC_CORE_KMS_H_
