#include "disc/core/discovery.h"

#include <algorithm>
#include <deque>

#include "disc/common/check.h"
#include "disc/core/counting_array.h"
#include "disc/core/ksorted.h"
#include "disc/obs/metrics.h"
#include "disc/order/compare.h"
#include "disc/order/encoded.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_iterations, "disc.iterations");
DISC_OBS_COUNTER(g_frequent_buckets, "disc.frequent_buckets");
DISC_OBS_COUNTER(g_infrequent_skips, "disc.infrequent_skips");
DISC_OBS_COUNTER(g_virtual_partitions, "disc.virtual_partitions");
DISC_OBS_COUNTER(g_bound_presizes, "disc.bound.presizes");
DISC_OBS_HISTOGRAM(g_bucket_size, "disc.bucket_size");

// Attributes the increments of a just-finished counting-array pass to the
// length of the patterns being counted. "k4plus" is the invariant the DISC
// strategy is about: pure DISC never support-counts patterns of length >= 4
// (the bi-level technique's k+1 harvests do, which is why the invariant test
// pins disc-all-nobilevel).
void AttributeSupportIncrements(const CountingArray& counts,
                                std::uint32_t pattern_len) {
#if DISC_OBS_ENABLED
  if (pattern_len >= 4) {
    DISC_OBS_COUNTER(g_k4plus, "support.increments.k4plus");
    DISC_OBS_ADD(g_k4plus, counts.increments_since_reset());
  }
#else
  (void)counts;
  (void)pattern_len;
#endif
}

// The re-sort ablation: a flat (key, entry) vector, fully std::sort-ed
// after every advance batch, in place of the locative AVL tree. Same
// semantics, O(n log n) per DISC iteration instead of O(batch · log n).
DiscoveryResult DiscoverFrequentKResort(
    const PartitionMembers& members, const std::vector<Sequence>& sorted_list,
    const DiscoveryOptions& options) {
  DiscoveryResult result;
  struct Slot {
    Sequence key;
    SequenceView seq;
    const SequenceIndex* index;
    Cid cid;
    std::uint32_t apriori;
  };
  std::deque<SequenceIndex> owned;
  std::vector<Slot> slots;
  for (const PartitionMember& m : members) {
    const SequenceIndex* index = m.index;
    if (index == nullptr) {
      owned.emplace_back(m.seq);
      index = &owned.back();
    }
    KmsResult r = AprioriKms(m.seq, sorted_list, index);
    if (!r.found) continue;
    slots.push_back({std::move(r.kmin), m.seq, index, m.cid, r.prefix_index});
  }
  auto resort = [&slots] {
    std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
      return CompareSequences(a.key, b.key) < 0;
    });
  };
  resort();
  CountingArray counts(options.bilevel ? options.max_item : 0);
  while (slots.size() >= options.delta) {
    ++result.iterations;
    DISC_OBS_INC(g_iterations);
    const Sequence alpha1 = slots.front().key;
    const Sequence alpha_delta = slots[options.delta - 1].key;
    const bool frequent = CompareSequences(alpha1, alpha_delta) == 0;
    // The affected prefix of the sorted vector: the equal-key run
    // (frequent) or everything below alpha_delta (non-frequent).
    std::size_t cut = 0;
    while (cut < slots.size() &&
           CompareSequences(slots[cut].key,
                            frequent ? alpha1 : alpha_delta) <
               (frequent ? 1 : 0)) {
      ++cut;
    }
    if (frequent) {
      DISC_OBS_INC(g_frequent_buckets);
      DISC_OBS_RECORD(g_bucket_size, cut);
      result.frequent_k.emplace_back(alpha1,
                                     static_cast<std::uint32_t>(cut));
      if (options.bilevel) {
        DISC_OBS_INC(g_virtual_partitions);
        counts.Reset();
        for (std::size_t i = 0; i < cut; ++i) {
          ForEachExtension(
              slots[i].seq, alpha1,
              [&counts, &slots, i](Item x, ExtType type) {
                counts.Add(x, type, slots[i].cid);
              },
              slots[i].index);
        }
        for (const auto& [x, type] :
             counts.FrequentExtensions(options.delta)) {
          result.frequent_k1.emplace_back(Extend(alpha1, x, type),
                                          counts.Count(x, type));
        }
        AttributeSupportIncrements(counts, options.k + 1);
      }
    } else {
      DISC_OBS_INC(g_infrequent_skips);
    }
    const CkmsBound bound = CkmsBound::Make(alpha_delta, frequent);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < cut; ++i) {
      Slot& s = slots[i];
      KmsResult r = AprioriCkms(s.seq, sorted_list, s.apriori, bound,
                                s.index);
      if (!r.found) continue;
      s.key = std::move(r.kmin);
      s.apriori = r.prefix_index;
      if (keep != i) std::swap(slots[keep], slots[i]);
      ++keep;
    }
    slots.erase(slots.begin() + keep, slots.begin() + cut);
    resort();
  }
  return result;
}

}  // namespace

DiscoveryResult DiscoverFrequentK(const PartitionMembers& members,
                                  const std::vector<Sequence>& sorted_list,
                                  const DiscoveryOptions& options) {
  DISC_CHECK(options.k >= 1);
  DISC_CHECK(options.delta >= 1);
  DiscoveryResult result;
  if (sorted_list.empty()) return result;
  if (!options.use_avl) {
    return DiscoverFrequentKResort(members, sorted_list, options);
  }

  // Encoded-order setup (order/encoded.h): one dense remap per pass over
  // the partition's item universe. Keys generated by (C)KMS draw their
  // prefixes from the sorted list and their extension items from the member
  // sequences, so noting both covers every sequence the pass compares.
  ItemEncoder encoder(options.max_item);
  EncodedList encoded_list;
  EncodedOrder encoded;
  const EncodedOrder* encoded_ptr = nullptr;
  if (options.encoded_order) {
    for (const PartitionMember& m : members) encoder.NoteItems(m.seq);
    for (const Sequence& f : sorted_list) encoder.NoteItems(f);
    encoder.Finalize();
    encoded_list.Build(sorted_list, encoder);
    encoded.encoder = &encoder;
    encoded.list = &encoded_list;
    encoded_ptr = &encoded;
  }

  KSortedDatabase sd(members, &sorted_list, options.k, encoded_ptr);
  // The bi-level harvest only ever counts extension items drawn from the
  // member sequences, all of which the encoder has noted — so when the
  // encoded order is on, size the counting array to the partition's local
  // alphabet instead of the database-wide max_item (the pass-construction
  // cost is the zero-init of 2·(max_item+1) entries).
  Item counts_max = 0;
  if (options.bilevel) {
    counts_max = options.max_item;
    if (options.encoded_order && encoder.max_noted() < counts_max) {
      counts_max = encoder.max_noted();
      DISC_OBS_INC(g_bound_presizes);
    }
  }
  CountingArray counts(counts_max);
  std::vector<std::uint32_t> handles;

  while (sd.size() >= options.delta) {
    ++result.iterations;
    DISC_OBS_INC(g_iterations);
    // Copies, not references: the tree nodes holding these keys are about to
    // be removed.
    const Sequence alpha1 = sd.MinKey();
    const Sequence alpha_delta = sd.SelectKey(options.delta);
    const bool frequent = CompareSequences(alpha1, alpha_delta) == 0;
    handles.clear();
    if (frequent) {
      // Lemma 2.1: the whole minimum bucket supports α₁ and nothing else
      // does, so the bucket size is the exact support.
      sd.PopMinBucket(&handles);
      DISC_CHECK(handles.size() >= options.delta);
      DISC_OBS_INC(g_frequent_buckets);
      DISC_OBS_RECORD(g_bucket_size, handles.size());
      result.frequent_k.emplace_back(
          alpha1, static_cast<std::uint32_t>(handles.size()));
      if (options.bilevel) {
        // The bucket is the paper's "virtual partition": count every valid
        // one-item extension of α₁ per supporter to find the frequent
        // (k+1)-sequences with k-prefix α₁ in the same pass. The counting
        // array is idempotent per customer, so the raw (duplicated)
        // extension stream suffices.
        DISC_OBS_INC(g_virtual_partitions);
        counts.Reset();
        for (const std::uint32_t h : handles) {
          const KSortedEntry& e = sd.entry(h);
          ForEachExtension(
              e.seq, alpha1,
              [&counts, &e](Item x, ExtType type) {
                counts.Add(x, type, e.cid);
              },
              &sd.index(h));
        }
        for (const auto& [x, type] :
             counts.FrequentExtensions(options.delta)) {
          result.frequent_k1.emplace_back(Extend(alpha1, x, type),
                                          counts.Count(x, type));
        }
        AttributeSupportIncrements(counts, options.k + 1);
      }
      // Supporters move strictly past α_δ (== α₁ here).
      const CkmsBound bound = sd.MakeBound(alpha_delta, /*strict=*/true);
      for (const std::uint32_t h : handles) {
        sd.AdvanceAndReinsert(h, bound);
      }
    } else {
      // Lemma 2.2: every k-sequence in [α₁, α_δ) is non-frequent; skip them
      // all by advancing the sub-δ entries to >= α_δ.
      DISC_OBS_INC(g_infrequent_skips);
      sd.PopAllLess(alpha_delta, &handles);
      DISC_CHECK(!handles.empty());
      const CkmsBound bound = sd.MakeBound(alpha_delta, /*strict=*/false);
      for (const std::uint32_t h : handles) {
        sd.AdvanceAndReinsert(h, bound);
      }
    }
  }
  return result;
}

}  // namespace disc
