#include "disc/core/weighted.h"

#include <deque>

#include "disc/common/check.h"
#include "disc/core/kms.h"
#include "disc/core/locative_avl.h"
#include "disc/seq/containment.h"
#include "disc/seq/extension.h"
#include "disc/seq/index.h"

namespace disc {
namespace {

struct Entry {
  SequenceView seq;
  const SequenceIndex* index;
  double weight;
  std::uint32_t apriori = 0;
};

// One weighted DISC pass: all weighted-frequent k-sequences over `entries`
// whose (k-1)-prefix is in `sorted_list`.
std::vector<std::pair<Sequence, double>> DiscoverWeightedK(
    const std::vector<Entry>& members, const std::vector<Sequence>& list,
    double min_weight) {
  std::vector<std::pair<Sequence, double>> out;
  if (list.empty()) return out;

  std::vector<Entry> entries;
  entries.reserve(members.size());
  LocativeAvlTree tree;
  for (const Entry& m : members) {
    KmsResult r = AprioriKms(m.seq, list, m.index);
    if (!r.found) continue;
    entries.push_back(m);
    tree.Insert(std::move(r.kmin),
                static_cast<std::uint32_t>(entries.size() - 1),
                m.weight);
  }

  std::vector<std::uint32_t> handles;
  while (tree.TotalWeight() >= min_weight) {
    const Sequence alpha1 = tree.MinKey();
    const Sequence alpha_delta = tree.SelectKeyByWeight(min_weight);
    handles.clear();
    const bool frequent = CompareSequences(alpha1, alpha_delta) == 0;
    if (frequent) {
      tree.PopMinBucket(&handles);
      double weight = 0.0;
      for (const std::uint32_t h : handles) weight += entries[h].weight;
      DISC_DCHECK(weight >= min_weight - 1e-6 * (1.0 + min_weight));
      out.emplace_back(alpha1, weight);
    } else {
      tree.PopAllLess(alpha_delta, &handles);
      DISC_CHECK(!handles.empty());
    }
    const CkmsBound bound = CkmsBound::Make(alpha_delta, /*strict=*/frequent);
    for (const std::uint32_t h : handles) {
      Entry& e = entries[h];
      KmsResult r = AprioriCkms(e.seq, list, e.apriori, bound, e.index);
      if (!r.found) continue;
      e.apriori = r.prefix_index;
      tree.Insert(std::move(r.kmin), h, e.weight);
    }
  }
  return out;
}

}  // namespace

double WeightedSupport(const SequenceDatabase& db,
                       const std::vector<double>& weights,
                       const Sequence& pattern) {
  DISC_CHECK(weights.size() == db.size());
  double total = 0.0;
  for (Cid cid = 0; cid < db.size(); ++cid) {
    if (Contains(db[cid], pattern)) total += weights[cid];
  }
  return total;
}

WeightedPatternSet MineWeighted(const SequenceDatabase& db,
                                const WeightedOptions& options) {
  DISC_CHECK(options.min_weight > 0.0);
  DISC_CHECK_MSG(options.weights.size() == db.size(),
                 "one weight per customer sequence required");
  for (const double w : options.weights) DISC_CHECK(w >= 0.0);

  WeightedPatternSet out;
  if (db.empty()) return out;

  // Weighted-frequent 1-sequences: one scan accumulating distinct items'
  // weights.
  std::vector<double> item_weight(db.max_item() + 1, 0.0);
  std::vector<std::uint64_t> seen(db.max_item() + 1, 0);
  for (Cid cid = 0; cid < db.size(); ++cid) {
    for (const Item x : db[cid].items()) {
      if (seen[x] != cid + 1u) {
        seen[x] = cid + 1u;
        item_weight[x] += options.weights[cid];
      }
    }
  }
  std::vector<Sequence> list;
  for (Item x = 1; x <= db.max_item(); ++x) {
    if (item_weight[x] >= options.min_weight) {
      Sequence p;
      p.AppendNewItemset(x);
      out.emplace(p, item_weight[x]);
      list.push_back(std::move(p));
    }
  }

  // Zero-weight customers cannot contribute and are skipped outright.
  std::deque<SequenceIndex> indexes;
  std::vector<Entry> members;
  for (Cid cid = 0; cid < db.size(); ++cid) {
    if (options.weights[cid] <= 0.0 || db[cid].Empty()) continue;
    indexes.emplace_back(db[cid]);
    members.push_back(
        Entry{db[cid], &indexes.back(), options.weights[cid], 0});
  }

  // Weighted DISC for k = 2, 3, ... until the weighted-frequent set dries
  // up.
  for (std::uint32_t k = 2; !list.empty(); ++k) {
    if (options.max_length != 0 && k > options.max_length) break;
    const auto frequent_k =
        DiscoverWeightedK(members, list, options.min_weight);
    list.clear();
    for (const auto& [p, w] : frequent_k) {
      out.emplace(p, w);
      list.push_back(p);
    }
  }
  return out;
}

}  // namespace disc
