// λ-range sharding: out-of-core mining over .dsa arena shards.
//
// DISC keys every pattern by its first item — the ⟨λ⟩-partition owns
// exactly the patterns starting with λ (paper §3.1) — so the one split
// that keeps shards independent is by λ-range: shard k answers the
// contiguous range [lambda_lo, lambda_hi] and holds the *full* sequence
// of every customer containing at least one in-range item. Members of the
// ⟨λ⟩-partition for any in-range λ are then exactly the same sequences as
// in the unsharded database (a pattern starting with λ may well continue
// with items outside the range, which is why sequences are stored whole
// and replicated across shards rather than projected).
//
// Mining a shard reuses the stock miners untouched: build the shard's
// FirstLevelState, zero out every out-of-range λ (support 0 means the
// partition scheduler never visits it), and inject the masked state
// through the FirstLevelConsumer seam. In-range partitions see exactly
// the members they would in the unsharded database, so per-shard results
// are exact — and because shards own disjoint first-item ranges and
// PatternSet orders by the comparative order (position 0 first), merging
// per-shard sets in ascending λ order reproduces the unsharded result
// byte-identically (tests/shard_merge_test.cc). A run that stops early
// (cancel / deadline / I/O error on a later shard) returns the merged
// prefix with the stop status — the same comparative-order-prefix
// contract the parallel miners give (docs/ROBUSTNESS.md).
//
// MineShardFiles is the out-of-core path: shards packed by PackShards are
// mapped one at a time (seq/storage.h), so peak memory is one shard plus
// its mining state, never the corpus.
#ifndef DISC_CORE_SHARD_H_
#define DISC_CORE_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disc/algo/miner.h"
#include "disc/common/status.h"
#include "disc/seq/database.h"
#include "disc/seq/storage.h"
#include "disc/seq/types.h"

namespace disc {

/// One shard's λ-range assignment (inclusive bounds).
struct ShardSpec {
  std::uint32_t index = 0;
  Item lambda_lo = 1;
  Item lambda_hi = 1;
};

/// A full shard assignment: contiguous ranges covering [1, max(1,
/// max_item)] in index order.
struct ShardPlan {
  std::vector<ShardSpec> shards;
  std::uint64_t total_customers = 0;  ///< |D| of the unsharded corpus
  Item max_item = 0;
};

/// Splits the alphabet into at most `shard_count` contiguous λ-ranges,
/// balanced by first-level partition size (sum of item supports), which
/// tracks per-shard mining work far better than equal-width ranges. The
/// plan never has more shards than alphabet values: the returned count is
/// min(shard_count, max(1, max_item)). `shard_count` must be >= 1.
ShardPlan PlanShards(const SequenceDatabase& db, std::uint32_t shard_count);

/// Materializes one shard: every sequence of `db` containing at least one
/// item in [spec.lambda_lo, spec.lambda_hi], whole, in CID order.
SequenceDatabase ExtractShard(const SequenceDatabase& db,
                              const ShardSpec& spec);

/// Path of shard `index` of `count` for output base `base`:
/// "<base minus .dsa>.shard<index>of<count>.dsa".
std::string ShardPath(const std::string& base, std::uint32_t index,
                      std::uint32_t count);

/// Plans, extracts, and writes every shard of `db` next to `base` (each
/// via SaveDsa, so faults never leave partial files). On success `paths`
/// (optional) receives the shard file paths in index order.
Status PackShards(const SequenceDatabase& db, const std::string& base,
                  std::uint32_t shard_count,
                  std::vector<std::string>* paths = nullptr);

/// Mines one already-loaded shard for its λ-range only, by masking the
/// shard's FirstLevelState outside [lambda_lo, lambda_hi] and injecting
/// it through the miner's FirstLevelConsumer seam. kInvalidArgument when
/// the miner does not consume first-level state (the seam is how the
/// restriction happens). Exact for in-range patterns.
MineResult MineShardRange(Miner& miner, const SequenceDatabase& shard_db,
                          const MineOptions& options, Item lambda_lo,
                          Item lambda_hi);

/// In-memory sharded mine: plans `shard_count` shards, extracts and mines
/// each in λ order with `miner_name`, merges. Byte-identical to mining
/// `db` unsharded with the same miner and options; on an early stop the
/// merged set is the comparative-order prefix up to the stopped shard.
MineResult MineSharded(const SequenceDatabase& db,
                       const std::string& miner_name,
                       const MineOptions& options, std::uint32_t shard_count);

/// Out-of-core sharded mine: maps the given shard files one at a time (in
/// the given order, which must be index order — validated against each
/// header's shard metadata, including contiguous λ coverage) and mines
/// each for its recorded λ-range. Peak memory is one shard. Merged result
/// as MineSharded.
MineResult MineShardFiles(const std::vector<std::string>& paths,
                          const std::string& miner_name,
                          const MineOptions& options);

}  // namespace disc

#endif  // DISC_CORE_SHARD_H_
