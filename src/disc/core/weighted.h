// Weighted sequence mining — the paper's §5 future-work application.
//
// Real workloads often weight customers unevenly (page weights in web
// traversal mining, gene importance in DNA analysis): a pattern matters
// when the total *weight* of its supporters reaches a threshold Δ, not
// their count. Counting-based miners need to re-aggregate weights per
// candidate; the DISC strategy transfers directly because both lemmas only
// need "the prefix mass of the k-sorted database up to α_δ": replace the
// δ-th *position* with the smallest key whose cumulative supporter weight
// reaches Δ (SelectKeyByWeight on the locative AVL tree) and everything
// else — k-minimum keys, Apriori-KMS/CKMS, conditional re-sorting — is
// unchanged:
//
//   α₁ == α_Δ  ->  α₁'s bucket alone carries weight >= Δ: weighted-frequent
//                  with exact weight = the bucket's weight sum;
//   α₁ != α_Δ  ->  every k-sequence in [α₁, α_Δ) has supporter weight < Δ.
//
// Weights must be non-negative. With all weights 1 and Δ = δ this is
// exactly the unweighted DISC (property-tested).
#ifndef DISC_CORE_WEIGHTED_H_
#define DISC_CORE_WEIGHTED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "disc/order/compare.h"
#include "disc/seq/database.h"

namespace disc {

/// Options for weighted mining.
struct WeightedOptions {
  /// Per-customer weights; weights[cid] pairs with db[cid]. Must have one
  /// non-negative entry per sequence.
  std::vector<double> weights;
  /// A pattern is frequent iff its supporters' total weight >= min_weight.
  /// Must be > 0.
  double min_weight = 1.0;
  /// If non-zero, patterns longer than this are not explored.
  std::uint32_t max_length = 0;
};

/// Weighted pattern -> total supporter weight, in comparative order.
using WeightedPatternSet = std::map<Sequence, double, SequenceLess>;

/// Mines all weighted-frequent sequences with the DISC strategy.
WeightedPatternSet MineWeighted(const SequenceDatabase& db,
                                const WeightedOptions& options);

/// Brute-force oracle: the total weight of the pattern's supporters.
double WeightedSupport(const SequenceDatabase& db,
                       const std::vector<double>& weights,
                       const Sequence& pattern);

}  // namespace disc

#endif  // DISC_CORE_WEIGHTED_H_
