#include "disc/core/first_level.h"

#include <algorithm>

#include "disc/obs/metrics.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_first_level_builds, "disc.first_level.builds");

}  // namespace

std::uint64_t FirstLevelState::ContentHash(const SequenceDatabase& db) {
  // The .dsa loader verified this exact hash against the file and cached
  // it on the database (seq/storage.cc), so mapped databases never rescan.
  if (db.has_cached_content_hash()) return db.cached_content_hash();
  // FNV-1a over every sequence's transaction count, itemset sizes, and
  // items. The sizes fold in itemset boundaries, so <(1 2)> and <(1)(2)>
  // hash differently even though their flattened items agree; the
  // transaction count folds in sequence boundaries, so moving a customer
  // boundary between identical transaction streams changes the hash —
  // which is what lets the on-disk format detect a corrupted
  // sequence-offsets section by recomputing this hash alone
  // (docs/STORAGE.md). Must stay bit-for-bit identical to the walk in
  // seq/storage.cc.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (Cid cid = 0; cid < db.size(); ++cid) {
    const SequenceView seq = db[cid];
    mix(seq.NumTransactions());
    for (std::uint32_t t = 0; t < seq.NumTransactions(); ++t) {
      mix(seq.TxnSize(t));
      for (const Item* it = seq.TxnBegin(t); it != seq.TxnEnd(t); ++it) {
        mix(*it);
      }
    }
  }
  return h;
}

std::size_t FirstLevelState::SizeBytes() const {
  std::size_t bytes = sizeof(FirstLevelState);
  bytes += item_support.capacity() * sizeof(std::uint32_t);
  bytes += members_of.capacity() * sizeof(std::vector<Cid>);
  for (const std::vector<Cid>& m : members_of) {
    bytes += m.capacity() * sizeof(Cid);
  }
  bytes += alphabet_of.capacity() * sizeof(std::vector<Item>);
  for (const std::vector<Item>& a : alphabet_of) {
    bytes += a.capacity() * sizeof(Item);
  }
  return bytes;
}

std::shared_ptr<const FirstLevelState> BuildFirstLevelState(
    const SequenceDatabase& db) {
  DISC_OBS_INC(g_first_level_builds);
  auto state = std::make_shared<FirstLevelState>();
  state->db_sequences = db.size();
  state->db_total_items = db.TotalItems();
  state->max_item = db.max_item();
  state->db_content_hash = FirstLevelState::ContentHash(db);
  const Item max_item = state->max_item;

  // Scan 1: distinct-per-customer support of every item (same stamp trick
  // as DiscAll step 1, but without a threshold).
  state->item_support.assign(max_item + 1, 0);
  std::vector<std::uint64_t> seen(max_item + 1, 0);
  for (Cid cid = 0; cid < db.size(); ++cid) {
    for (const Item x : db[cid].items()) {
      if (seen[x] != cid + 1u) {
        seen[x] = cid + 1u;
        ++state->item_support[x];
      }
    }
  }

  // Scan 2: materialize every ⟨x⟩-partition (ascending CIDs by
  // construction), stamps offset past scan 1's.
  state->members_of.resize(max_item + 1);
  for (Item x = 1; x <= max_item; ++x) {
    state->members_of[x].reserve(state->item_support[x]);
  }
  const std::uint64_t stamp_base = db.size();
  for (Cid cid = 0; cid < db.size(); ++cid) {
    for (const Item x : db[cid].items()) {
      if (seen[x] != stamp_base + cid + 1u) {
        seen[x] = stamp_base + cid + 1u;
        state->members_of[x].push_back(cid);
      }
    }
  }

  // Partition-major alphabet sweep: the ⟨x⟩-partition's alphabet is the
  // distinct items over its members. One reused stamp vector, one stamp
  // per partition.
  state->alphabet_of.resize(max_item + 1);
  std::fill(seen.begin(), seen.end(), 0);
  std::uint64_t stamp = 0;
  for (Item x = 1; x <= max_item; ++x) {
    if (state->members_of[x].empty()) continue;
    ++stamp;
    std::vector<Item>& alphabet = state->alphabet_of[x];
    for (const Cid cid : state->members_of[x]) {
      for (const Item y : db[cid].items()) {
        if (seen[y] != stamp) {
          seen[y] = stamp;
          alphabet.push_back(y);
        }
      }
    }
    std::sort(alphabet.begin(), alphabet.end());
  }
  return state;
}

}  // namespace disc
