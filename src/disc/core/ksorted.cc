#include "disc/core/ksorted.h"

#include "disc/common/check.h"

namespace disc {

KSortedDatabase::KSortedDatabase(const PartitionMembers& members,
                                 const std::vector<Sequence>* sorted_list,
                                 std::uint32_t k)
    : sorted_list_(sorted_list), k_(k) {
  DISC_CHECK(sorted_list_ != nullptr);
  DISC_CHECK(k_ >= 1);
  entries_.reserve(members.size());
  index_ptrs_.reserve(members.size());
  for (const PartitionMember& m : members) {
    const SequenceIndex* index = m.index;
    if (index == nullptr) {
      // Index-less member: build and own one (Apriori-KMS below is already
      // the hottest consumer).
      owned_indexes_.emplace_back(m.seq);
      index = &owned_indexes_.back();
    }
    KmsResult r = AprioriKms(m.seq, *sorted_list_, index);
    if (!r.found) continue;
    DISC_DCHECK(r.kmin.Length() == k_);
    entries_.push_back(KSortedEntry{m.seq, m.cid, r.prefix_index});
    index_ptrs_.push_back(index);
    tree_.Insert(std::move(r.kmin),
                 static_cast<std::uint32_t>(entries_.size() - 1));
  }
}

bool KSortedDatabase::AdvanceAndReinsert(std::uint32_t handle,
                                         const CkmsBound& bound) {
  KSortedEntry& e = entries_[handle];
  KmsResult r = AprioriCkms(e.seq, *sorted_list_, e.apriori, bound,
                            index_ptrs_[handle]);
  if (!r.found) return false;
  DISC_DCHECK(r.kmin.Length() == k_);
  e.apriori = r.prefix_index;
  tree_.Insert(std::move(r.kmin), handle);
  return true;
}

}  // namespace disc
