#include "disc/core/ksorted.h"

#include <utility>

#include "disc/common/check.h"
#include "disc/order/simd.h"

namespace disc {
namespace {

// The encoded key of a k-minimum subsequence: its (k-1)-prefix is
// sorted_list[prefix_index], whose words already sit in the encoded list,
// so the key is that word stream plus one appended word for the final
// extension — no re-walk of the Sequence. The appended boundary bit is 1
// iff the extension opened a new transaction (an s-extension).
void EncodeKmin(const EncodedOrder& encoded, const Sequence& kmin,
                std::uint32_t prefix_index, std::vector<EncodedWord>* out) {
  const EncodedList& list = *encoded.list;
  const EncodedWord* w = list.WordsBegin(prefix_index);
  const std::uint32_t n = list.NumWords(prefix_index);
  out->reserve(n + 1);
  out->assign(w, w + n);
  const std::uint32_t last_txn = kmin.NumTransactions() - 1;
  const EncodedWord boundary = kmin.TxnSize(last_txn) == 1 ? 1 : 0;
  const std::uint32_t code = encoded.encoder->Code(kmin.LastItem());
  DISC_DCHECK(code != 0);
  out->push_back((code << 1) | boundary);
  DISC_DCHECK([&] {  // the shortcut must equal a full re-encode
    std::vector<EncodedWord> full;
    EncodeSequence(kmin, *encoded.encoder, &full);
    return SimdCompare(full, *out) == 0;
  }());
}

}  // namespace

KSortedDatabase::KSortedDatabase(const PartitionMembers& members,
                                 const std::vector<Sequence>* sorted_list,
                                 std::uint32_t k,
                                 const EncodedOrder* encoded)
    : sorted_list_(sorted_list), encoded_(encoded), k_(k) {
  DISC_CHECK(sorted_list_ != nullptr);
  DISC_CHECK(k_ >= 1);
  entries_.reserve(members.size());
  index_ptrs_.reserve(members.size());
  if (encoded_ != nullptr) scan_states_.reserve(members.size());
  for (const PartitionMember& m : members) {
    const SequenceIndex* index = m.index;
    if (index == nullptr) {
      // Index-less member: build and own one (Apriori-KMS below is already
      // the hottest consumer).
      owned_indexes_.emplace_back(m.seq);
      index = &owned_indexes_.back();
    }
    KmsScanState state;
    KmsResult r = AprioriKms(m.seq, *sorted_list_, index,
                             encoded_ != nullptr ? &state : nullptr);
    if (!r.found) continue;
    DISC_DCHECK(r.kmin.Length() == k_);
    entries_.push_back(KSortedEntry{m.seq, m.cid, r.prefix_index});
    index_ptrs_.push_back(index);
    const std::uint32_t handle =
        static_cast<std::uint32_t>(entries_.size() - 1);
    if (encoded_ != nullptr) {
      scan_states_.push_back(state);
      std::vector<EncodedWord> ekey;
      EncodeKmin(*encoded_, r.kmin, r.prefix_index, &ekey);
      tree_.Insert(std::move(r.kmin), std::move(ekey), handle);
    } else {
      tree_.Insert(std::move(r.kmin), handle);
    }
  }
}

void KSortedDatabase::PopAllLess(const Sequence& bound,
                                 std::vector<std::uint32_t>* handles) {
  if (encoded_ == nullptr) {
    tree_.PopAllLess(bound, handles);
    return;
  }
  EncodeSequence(bound, *encoded_->encoder, &ebound_scratch_);
  tree_.PopAllLess(bound, &ebound_scratch_, handles);
}

bool KSortedDatabase::AdvanceAndReinsert(std::uint32_t handle,
                                         const CkmsBound& bound) {
  KSortedEntry& e = entries_[handle];
  const bool enc = encoded_ != nullptr;
  KmsResult r = AprioriCkms(e.seq, *sorted_list_, e.apriori, bound,
                            index_ptrs_[handle],
                            enc ? encoded_->list : nullptr,
                            enc ? &scan_states_[handle] : nullptr);
  if (!r.found) return false;
  DISC_DCHECK(r.kmin.Length() == k_);
  e.apriori = r.prefix_index;
  if (enc) {
    std::vector<EncodedWord> ekey;
    EncodeKmin(*encoded_, r.kmin, r.prefix_index, &ekey);
    tree_.Insert(std::move(r.kmin), std::move(ekey), handle);
  } else {
    tree_.Insert(std::move(r.kmin), handle);
  }
  return true;
}

}  // namespace disc
