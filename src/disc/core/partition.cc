#include "disc/core/partition.h"

#include "disc/common/check.h"
#include "disc/core/discovery.h"
#include "disc/obs/metrics.h"
#include "disc/seq/containment.h"

namespace disc {

void ExtFilter::Build(
    const std::vector<std::pair<Item, ExtType>>& frequent_exts,
    Item max_item) {
  i_ok_.assign(static_cast<std::size_t>(max_item) + 1, false);
  s_ok_.assign(static_cast<std::size_t>(max_item) + 1, false);
  for (const auto& [x, type] : frequent_exts) {
    DISC_DCHECK(x <= max_item);
    (type == ExtType::kItemset ? i_ok_ : s_ok_)[x] = true;
  }
}

std::optional<std::pair<Item, ExtType>> MinFrequentExt(
    const ExtensionSets& exts, const ExtFilter& filter,
    const std::pair<Item, ExtType>* floor_exclusive) {
  std::optional<std::pair<Item, ExtType>> best;
  auto consider = [&](Item x, ExtType t) {
    if (!filter.IsFrequent(x, t)) return false;
    if (floor_exclusive != nullptr &&
        CompareExtensions(x, t, floor_exclusive->first,
                          floor_exclusive->second) <= 0) {
      return false;
    }
    if (!best.has_value() ||
        CompareExtensions(x, t, best->first, best->second) < 0) {
      best = {x, t};
    }
    return true;
  };
  // Each vector is sorted, so the first qualifying entry per type wins.
  for (const Item x : exts.i_items) {
    if (consider(x, ExtType::kItemset)) break;
  }
  for (const Item x : exts.s_items) {
    if (consider(x, ExtType::kSequence)) break;
  }
  return best;
}

std::optional<std::pair<Item, ExtType>> ScanMinFrequentExt(
    SequenceView s, const Sequence& prefix, const ExtFilter& filter,
    const std::pair<Item, ExtType>* floor_exclusive,
    const SequenceIndex* index) {
  std::optional<std::pair<Item, ExtType>> best;
  ForEachExtension(s, prefix, [&](Item x, ExtType t) {
    if (!filter.IsFrequent(x, t)) return;
    if (floor_exclusive != nullptr &&
        CompareExtensions(x, t, floor_exclusive->first,
                          floor_exclusive->second) <= 0) {
      return;
    }
    if (!best.has_value() ||
        CompareExtensions(x, t, best->first, best->second) < 0) {
      best = {x, t};
    }
  }, index);
  return best;
}

DISC_OBS_COUNTER(g_reduced, "partition.reduced_sequences");

namespace {

// Minimum point of a <(λ)>-partition member: the leftmost transaction
// containing λ (λ is the member's minimum frequent item, so it exists).
std::uint32_t MinTxnOf(SequenceView s, Item lambda) {
  for (std::uint32_t t = 0; t < s.NumTransactions(); ++t) {
    if (s.TxnContains(t, lambda)) return t;
  }
  return kNoTxn;
}

// The per-occurrence keep rule (Figure 2, step 2.1.2): whether occurrence x
// in transaction t survives the reduction.
inline bool KeepOccurrence(Item x, Item lambda, bool has_lambda,
                           bool at_min_txn, const CountingArray& counts2,
                           std::uint32_t delta) {
  if (x == lambda) {
    // All occurrences of λ are kept: they may anchor longer patterns.
    return true;
  }
  const bool s_freq =
      counts2.Count(x, ExtType::kSequence) >= delta;  // <(λ)(x)>
  const bool i_freq =
      counts2.Count(x, ExtType::kItemset) >= delta;  // <(λx)>
  if (!has_lambda) {
    return s_freq;  // only the sequence form can use this occurrence
  }
  if (at_min_txn) {
    return i_freq;  // only the itemset form can use this occurrence
  }
  return s_freq || i_freq;
}

}  // namespace

Sequence ReduceCustomerSequence(SequenceView s, Item lambda,
                                const CountingArray& counts2,
                                std::uint32_t delta) {
  DISC_OBS_INC(g_reduced);
  const std::uint32_t min_txn = MinTxnOf(s, lambda);
  DISC_CHECK_MSG(min_txn != kNoTxn, "partition member lacks its λ");

  Sequence out;
  std::vector<Item> kept;
  for (std::uint32_t t = min_txn; t < s.NumTransactions(); ++t) {
    const bool has_lambda = s.TxnContains(t, lambda);
    kept.clear();
    for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
      if (KeepOccurrence(*p, lambda, has_lambda, t == min_txn, counts2,
                         delta)) {
        kept.push_back(*p);
      }
    }
    if (!kept.empty()) out.AppendItemset(Itemset(kept));
  }
  return out;
}

std::uint32_t ReduceCustomerSequenceInto(SequenceView s, Item lambda,
                                         const CountingArray& counts2,
                                         std::uint32_t delta,
                                         std::uint32_t min_length,
                                         SequenceArena* out) {
  DISC_OBS_INC(g_reduced);
  const std::uint32_t min_txn = MinTxnOf(s, lambda);
  DISC_CHECK_MSG(min_txn != kNoTxn, "partition member lacks its λ");

  // Kept items stream straight into the scratch arena; a kept subset of a
  // sorted transaction is itself sorted, so the arena's build invariant
  // holds without re-sorting.
  out->BeginSequence();
  std::uint32_t length = 0;
  for (std::uint32_t t = min_txn; t < s.NumTransactions(); ++t) {
    const bool has_lambda = s.TxnContains(t, lambda);
    bool wrote = false;
    for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
      if (KeepOccurrence(*p, lambda, has_lambda, t == min_txn, counts2,
                         delta)) {
        out->AppendItem(*p);
        wrote = true;
        ++length;
      }
    }
    if (wrote) out->EndTransaction();
  }
  out->EndSequence();
  if (length < min_length) {
    out->PopBack();
    return 0;
  }
  return length;
}

void RunDiscLoop(const PartitionMembers& members,
                 std::vector<Sequence> sorted_list, std::uint32_t start_k,
                 std::uint32_t delta, bool bilevel, Item max_item,
                 std::uint32_t max_length, PatternSet* out,
                 std::uint64_t* iterations, bool use_avl,
                 bool encoded_order) {
  std::uint32_t k = start_k;
  while (!sorted_list.empty() && members.size() >= delta &&
         (max_length == 0 || k <= max_length)) {
    DiscoveryOptions opt;
    opt.k = k;
    opt.delta = delta;
    opt.bilevel = bilevel && (max_length == 0 || k + 1 <= max_length);
    opt.max_item = max_item;
    opt.use_avl = use_avl;
    opt.encoded_order = encoded_order;
    const DiscoveryResult res = DiscoverFrequentK(members, sorted_list, opt);
    if (iterations != nullptr) *iterations += res.iterations;
    for (const auto& [p, sup] : res.frequent_k) out->Add(p, sup);
    for (const auto& [p, sup] : res.frequent_k1) out->Add(p, sup);
    sorted_list.clear();
    const auto& next = opt.bilevel ? res.frequent_k1 : res.frequent_k;
    sorted_list.reserve(next.size());
    for (const auto& [p, sup] : next) {
      (void)sup;
      sorted_list.push_back(p);
    }
    k += opt.bilevel ? 2 : 1;
  }
}

}  // namespace disc
