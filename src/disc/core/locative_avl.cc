#include "disc/core/locative_avl.h"

#include <algorithm>
#include <cstdlib>

#include "disc/common/check.h"
#include "disc/order/simd.h"

namespace disc {

LocativeAvlTree::~LocativeAvlTree() { Destroy(root_); }

void LocativeAvlTree::Destroy(Node* n) {
  if (n == nullptr) return;
  Destroy(n->left);
  Destroy(n->right);
  delete n;
}

void LocativeAvlTree::Update(Node* n) {
  n->height = 1 + std::max(Height(n->left), Height(n->right));
  n->count = n->bucket.size() + Count(n->left) + Count(n->right);
  n->weight = n->bucket_weight + Weight(n->left) + Weight(n->right);
}

LocativeAvlTree::Node* LocativeAvlTree::RotateLeft(Node* n) {
  Node* r = n->right;
  n->right = r->left;
  r->left = n;
  Update(n);
  Update(r);
  return r;
}

LocativeAvlTree::Node* LocativeAvlTree::RotateRight(Node* n) {
  Node* l = n->left;
  n->left = l->right;
  l->right = n;
  Update(n);
  Update(l);
  return l;
}

LocativeAvlTree::Node* LocativeAvlTree::Rebalance(Node* n) {
  Update(n);
  const std::int32_t balance = Height(n->left) - Height(n->right);
  if (balance > 1) {
    if (Height(n->left->left) < Height(n->left->right)) {
      n->left = RotateLeft(n->left);
    }
    return RotateRight(n);
  }
  if (balance < -1) {
    if (Height(n->right->right) < Height(n->right->left)) {
      n->right = RotateRight(n->right);
    }
    return RotateLeft(n);
  }
  return n;
}

LocativeAvlTree::Node* LocativeAvlTree::InsertAt(Node* n, Sequence* key,
                                                 std::uint32_t handle,
                                                 double weight) {
  if (n == nullptr) {
    Node* fresh = new Node;
    fresh->key = std::move(*key);
    fresh->bucket.push_back(handle);
    fresh->count = 1;
    fresh->bucket_weight = weight;
    fresh->weight = weight;
    ++num_nodes_;
    return fresh;
  }
  const int cmp = CompareSequences(*key, n->key);
  if (cmp == 0) {
    n->bucket.push_back(handle);
    ++n->count;
    n->bucket_weight += weight;
    n->weight += weight;
    return n;
  }
  if (cmp < 0) {
    n->left = InsertAt(n->left, key, handle, weight);
  } else {
    n->right = InsertAt(n->right, key, handle, weight);
  }
  return Rebalance(n);
}

void LocativeAvlTree::Insert(const Sequence& key, std::uint32_t handle,
                             double weight) {
  Sequence copy = key;
  root_ = InsertAt(root_, &copy, handle, weight);
  ++size_;
}

void LocativeAvlTree::Insert(Sequence&& key, std::uint32_t handle,
                             double weight) {
  root_ = InsertAt(root_, &key, handle, weight);
  ++size_;
}

LocativeAvlTree::Node* LocativeAvlTree::InsertEncodedAt(
    Node* n, Sequence* key, std::vector<EncodedWord>* ekey,
    std::uint32_t handle, double weight, std::uint32_t llcp,
    std::uint32_t hlcp) {
  if (n == nullptr) {
    Node* fresh = new Node;
    fresh->key = std::move(*key);
    fresh->ekey = std::move(*ekey);
    fresh->bucket.push_back(handle);
    fresh->count = 1;
    fresh->bucket_weight = weight;
    fresh->weight = weight;
    ++num_nodes_;
    return fresh;
  }
  DISC_DCHECK(n->key.Empty() || !n->ekey.empty());  // no mixed-mode trees
  std::uint32_t lcp = 0;
  const int cmp = SimdCompareFrom(ekey->data(), ekey->size(), n->ekey.data(),
                                  n->ekey.size(), std::min(llcp, hlcp), &lcp);
  if (cmp == 0) {
    n->bucket.push_back(handle);
    ++n->count;
    n->bucket_weight += weight;
    n->weight += weight;
    return n;
  }
  if (cmp < 0) {
    // n becomes the tightest upper fence of the left subtree.
    n->left = InsertEncodedAt(n->left, key, ekey, handle, weight, llcp, lcp);
  } else {
    n->right = InsertEncodedAt(n->right, key, ekey, handle, weight, lcp,
                               hlcp);
  }
  return Rebalance(n);
}

void LocativeAvlTree::Insert(Sequence&& key, std::vector<EncodedWord>&& ekey,
                             std::uint32_t handle, double weight) {
  root_ = InsertEncodedAt(root_, &key, &ekey, handle, weight, 0, 0);
  ++size_;
}

const LocativeAvlTree::Node* LocativeAvlTree::MinNode(const Node* n) {
  DISC_CHECK(n != nullptr);
  while (n->left != nullptr) n = n->left;
  return n;
}

const Sequence& LocativeAvlTree::MinKey() const {
  return MinNode(root_)->key;
}

const std::vector<std::uint32_t>& LocativeAvlTree::MinBucket() const {
  return MinNode(root_)->bucket;
}

const Sequence& LocativeAvlTree::SelectKey(std::size_t rank) const {
  DISC_CHECK(rank >= 1 && rank <= size_);
  const Node* n = root_;
  for (;;) {
    const std::size_t left = Count(n->left);
    if (rank <= left) {
      n = n->left;
    } else if (rank <= left + n->bucket.size()) {
      return n->key;
    } else {
      rank -= left + n->bucket.size();
      n = n->right;
    }
  }
}

const Sequence& LocativeAvlTree::SelectKeyByWeight(double w) const {
  DISC_CHECK(w > 0.0 && w <= Weight(root_));
  const Node* n = root_;
  for (;;) {
    DISC_CHECK(n != nullptr);
    const double left = Weight(n->left);
    if (w <= left) {
      n = n->left;
    } else if (w <= left + n->bucket_weight) {
      return n->key;
    } else {
      w -= left + n->bucket_weight;
      n = n->right;
    }
  }
}

double LocativeAvlTree::TotalWeight() const { return Weight(root_); }

LocativeAvlTree::Node* LocativeAvlTree::RemoveMin(Node* n, Node** removed) {
  if (n->left == nullptr) {
    *removed = n;
    return n->right;
  }
  n->left = RemoveMin(n->left, removed);
  return Rebalance(n);
}

void LocativeAvlTree::PopMinBucket(std::vector<std::uint32_t>* out) {
  DISC_CHECK(root_ != nullptr);
  Node* removed = nullptr;
  root_ = RemoveMin(root_, &removed);
  size_ -= removed->bucket.size();
  --num_nodes_;
  out->insert(out->end(), removed->bucket.begin(), removed->bucket.end());
  delete removed;
}

void LocativeAvlTree::PopAllLess(const Sequence& bound,
                                 std::vector<std::uint32_t>* out) {
  while (root_ != nullptr && CompareSequences(MinKey(), bound) < 0) {
    PopMinBucket(out);
  }
}

void LocativeAvlTree::PopAllLess(const Sequence& bound,
                                 const std::vector<EncodedWord>* ebound,
                                 std::vector<std::uint32_t>* out) {
  if (ebound == nullptr) {
    PopAllLess(bound, out);
    return;
  }
  while (root_ != nullptr) {
    const Node* min = MinNode(root_);
    if (SimdCompare(min->ekey, *ebound) >= 0) break;
    PopMinBucket(out);
  }
}

void LocativeAvlTree::Clear() {
  Destroy(root_);
  root_ = nullptr;
  size_ = 0;
  num_nodes_ = 0;
}

void LocativeAvlTree::InorderKeys(std::vector<Sequence>* out) const {
  // Iterative inorder to avoid writing another recursive helper.
  std::vector<const Node*> stack;
  const Node* n = root_;
  while (n != nullptr || !stack.empty()) {
    while (n != nullptr) {
      stack.push_back(n);
      n = n->left;
    }
    n = stack.back();
    stack.pop_back();
    out->push_back(n->key);
    n = n->right;
  }
}

bool LocativeAvlTree::CheckNode(const Node* n, const Sequence** prev,
                                bool* ok) const {
  if (n == nullptr || !*ok) return *ok;
  CheckNode(n->left, prev, ok);
  if (*prev != nullptr && CompareSequences(**prev, n->key) >= 0) *ok = false;
  if (n->bucket.empty()) *ok = false;
  if (n->height != 1 + std::max(Height(n->left), Height(n->right))) *ok = false;
  if (std::abs(Height(n->left) - Height(n->right)) > 1) *ok = false;
  if (n->count != n->bucket.size() + Count(n->left) + Count(n->right)) {
    *ok = false;
  }
  const double expect_w =
      n->bucket_weight + Weight(n->left) + Weight(n->right);
  const double tol = 1e-9 * std::max(1.0, std::abs(expect_w));
  if (n->weight < expect_w - tol || n->weight > expect_w + tol) {
    *ok = false;
  }
  *prev = &n->key;
  CheckNode(n->right, prev, ok);
  return *ok;
}

bool LocativeAvlTree::CheckInvariants() const {
  bool ok = true;
  const Sequence* prev = nullptr;
  CheckNode(root_, &prev, &ok);
  if (Count(root_) != size_) ok = false;
  return ok;
}

}  // namespace disc
