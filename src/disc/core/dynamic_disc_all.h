// The Dynamic DISC-all algorithm (paper Appendix): recursive multi-level
// partitioning that switches to the DISC strategy per partition, as soon as
// the partition's non-reduction rate (NRR, Equation 2) reaches the γ
// threshold.
//
// For a <λ>-partition X (|λ| = k) the algorithm finds the frequent
// (k+1)-sequences with prefix λ (one counting-array scan), computes
//   NRR_X = (1/N) * Σ_children support(child) / |X|
// ("the simplest way" of §4.2: a child partition's size is its pattern's
// support), and either descends into the child partitions (NRR < γ) or runs
// the DISC loop for all remaining lengths (NRR >= γ). The original database
// is the <>-partition with k = 0, so frequent 1-sequences fall out of the
// same code path.
//
// A root child ⟨(x)⟩-partition is exactly the customer sequences containing
// the frequent item x, so the first-level children are statically determined
// and independently minable: with MineOptions::threads > 1 they are fanned
// out largest-first to a thread pool (see docs/PARALLELISM.md) and the
// per-child results merged in comparative order, producing a PatternSet
// identical to the serial recursion.
#ifndef DISC_CORE_DYNAMIC_DISC_ALL_H_
#define DISC_CORE_DYNAMIC_DISC_ALL_H_

#include <memory>
#include <utility>

#include "disc/algo/miner.h"
#include "disc/core/first_level.h"

namespace disc {

/// Dynamic DISC-all miner. See file comment.
class DynamicDiscAll : public Miner, public FirstLevelConsumer {
 public:
  struct Config {
    /// Maximum-NRR threshold γ: partitions with NRR below it are split
    /// further; others switch to DISC. γ <= 0 degenerates to pure DISC
    /// after level 1; γ > 1 partitions all the way down (pure
    /// pattern-growth).
    double gamma = 0.5;
    /// Bi-level DISC passes, as in the paper's experiments.
    bool bilevel = true;
    /// When >= 0, ignore gamma and partition to exactly this many levels
    /// before switching to DISC ("the number of levels should be adaptive"
    /// — §3.1; this knob makes the static depth an ablation axis: 0 = pure
    /// DISC from length 2, 2 = DISC-all's two-level scheme, large = pure
    /// pattern growth).
    std::int32_t fixed_levels = -1;
    /// Run the DISC loops on the encoded comparative order
    /// (order/encoded.h); false keeps the legacy scans as an ablation.
    /// Output is byte-identical either way.
    bool encoded_order = true;
    /// Stop recursing into a partition when the Geerts-style candidate
    /// upper bound over its frequent extensions is zero — no deeper
    /// frequent sequence can exist (core/candidate_bound.h). Counted by
    /// "disc.bound.skips"; output is byte-identical either way.
    bool bound_pruning = true;
  };

  DynamicDiscAll() : DynamicDiscAll(Config{}) {}
  explicit DynamicDiscAll(const Config& config) : config_(config) {}

  std::string name() const override { return "dynamic-disc-all"; }

  /// Accepts precomputed first-level state (core/first_level.h): the root
  /// level of the next DoMine() reuses the cached item supports (the
  /// frequent 1-sequences and the root NRR arithmetic need nothing else)
  /// and, on the parallel path, builds the static root children straight
  /// from the cached partition memberships. Deeper levels are
  /// prefix-dependent and always scan. The state must match the mined
  /// database (DISC_CHECK). Output is byte-identical either way; counted
  /// by "disc.first_level.reuses".
  void ProvideFirstLevel(
      std::shared_ptr<const FirstLevelState> state) override {
    first_level_ = std::move(state);
  }

 protected:
  // Work accounting lands in last_stats() via the obs registry: counters
  // "dynamic.partitions_split" (partitions that descended),
  // "dynamic.partitions_to_disc" (partitions that switched to DISC),
  // "disc.iterations", and the gauge "mine.threads" (resolved worker
  // count).
  PatternSet DoMine(const SequenceDatabase& db,
                    const MineOptions& options) override;

 private:
  Config config_;
  std::shared_ptr<const FirstLevelState> first_level_;
};

}  // namespace disc

#endif  // DISC_CORE_DYNAMIC_DISC_ALL_H_
