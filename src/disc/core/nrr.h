// Non-reduction rate (NRR, paper Equation 2) computed post-hoc from a mined
// pattern set, "the simplest way" of §4.2: the partition for a frequent
// j-sequence P has size support(P); its child partitions are the frequent
// (j+1)-sequences with j-prefix P, each of size equal to its own support.
//
//   NRR_P = (1/N_P) * Σ_children support(child) / support(P)
//
// The level-j average runs over the frequent j-sequences that have at least
// one child; a level with no such partition is reported as NaN (rendered
// "-" like the paper's empty cells). Level 0 ("Original") takes the whole
// database as the partition (size |DB|) and the frequent 1-sequences as
// children.
#ifndef DISC_CORE_NRR_H_
#define DISC_CORE_NRR_H_

#include <vector>

#include "disc/algo/pattern_set.h"

namespace disc {

/// Average NRR per level. Index 0 is the original database; index j >= 1
/// averages over frequent j-sequences. The vector has MaxLength() entries
/// (the deepest partitions have no children and are not reported, matching
/// Table 12's column count).
std::vector<double> AverageNrrByLevel(const PatternSet& patterns,
                                      std::size_t db_size);

}  // namespace disc

#endif  // DISC_CORE_NRR_H_
