// The k-sorted database (paper §1.2 / §3.2): customer sequences keyed by
// their current (conditional) k-minimum subsequence, ordered by the
// comparative order and indexed by a locative AVL tree.
//
// Keys live only in the tree nodes (one copy per distinct key); entries
// carry the paper's "apriori pointer" — the index of the current key's
// (k-1)-prefix in the (k-1)-sorted list — so that conditional
// re-generation (Apriori-CKMS) resumes where the previous generation left
// off.
#ifndef DISC_CORE_KSORTED_H_
#define DISC_CORE_KSORTED_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "disc/core/kms.h"
#include "disc/core/member.h"
#include "disc/core/locative_avl.h"
#include "disc/seq/sequence.h"
#include "disc/seq/types.h"

namespace disc {

/// One customer sequence's slot in a k-sorted database.
struct KSortedEntry {
  SequenceView seq;               ///< the customer sequence (not owned)
  Cid cid = 0;                    ///< caller-scoped id (for counting arrays)
  std::uint32_t apriori = 0;      ///< prefix index of the current key
};

/// K-sorted database. Construction runs Apriori-KMS on every member;
/// members with no qualifying k-subsequence are dropped immediately.
class KSortedDatabase {
 public:
  /// `sorted_list` holds the frequent (k-1)-sequences ascending; for k == 1
  /// pass a single empty sequence. The list is borrowed and must outlive
  /// this object. `encoded`, when non-null, activates the encoded-order
  /// fast paths (docs in order/encoded.h): its list must be the encoded
  /// form of `sorted_list`, keys are stored encoded in the tree, and every
  /// entry keeps a KmsScanState across advances. Both pointees are borrowed.
  KSortedDatabase(const PartitionMembers& members,
                  const std::vector<Sequence>* sorted_list, std::uint32_t k,
                  const EncodedOrder* encoded = nullptr);

  /// Number of customer sequences still present.
  std::size_t size() const { return tree_.size(); }

  /// α₁ — the minimum key. Requires size() > 0.
  const Sequence& MinKey() const { return tree_.MinKey(); }

  /// α_rank — key at the 1-based rank (α_δ for rank δ).
  const Sequence& SelectKey(std::size_t rank) const {
    return tree_.SelectKey(rank);
  }

  /// Pops the minimum bucket (all entries whose key equals α₁); the handles
  /// index entries(). The bucket size is the support of α₁ when it is
  /// frequent.
  void PopMinBucket(std::vector<std::uint32_t>* handles) {
    tree_.PopMinBucket(handles);
  }

  /// Pops every entry with key < bound. The bound must be encodable (any
  /// tree key is) when the database runs in encoded mode.
  void PopAllLess(const Sequence& bound, std::vector<std::uint32_t>* handles);

  /// Decomposes a bound for AdvanceAndReinsert, encoding its prefix when
  /// this database runs in encoded mode.
  CkmsBound MakeBound(const Sequence& bound, bool strict) const {
    return CkmsBound::Make(bound, strict,
                           encoded_ != nullptr ? encoded_->encoder : nullptr);
  }

  /// Entry access by handle (valid for popped handles until re-advanced).
  const KSortedEntry& entry(std::uint32_t handle) const {
    return entries_[handle];
  }

  /// Occurrence index of the entry's sequence (always available).
  const SequenceIndex& index(std::uint32_t handle) const {
    return *index_ptrs_[handle];
  }

  /// Re-generates the entry's key as its conditional k-minimum subsequence
  /// under `bound` and re-inserts it; the entry is dropped when no such
  /// subsequence exists. Returns true if the entry survived.
  bool AdvanceAndReinsert(std::uint32_t handle, const CkmsBound& bound);

  /// The k of this database.
  std::uint32_t k() const { return k_; }

 private:
  const std::vector<Sequence>* sorted_list_;
  const EncodedOrder* encoded_;  // nullptr = legacy comparative-order path
  std::uint32_t k_;
  std::vector<KSortedEntry> entries_;
  std::vector<const SequenceIndex*> index_ptrs_;  // parallel to entries_
  std::vector<KmsScanState> scan_states_;         // parallel (encoded mode)
  std::vector<EncodedWord> ebound_scratch_;       // PopAllLess bound encoding
  std::deque<SequenceIndex> owned_indexes_;       // for index-less members
  LocativeAvlTree tree_;
};

}  // namespace disc

#endif  // DISC_CORE_KSORTED_H_
