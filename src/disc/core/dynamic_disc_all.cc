#include "disc/core/dynamic_disc_all.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "disc/common/cancel.h"
#include "disc/common/check.h"
#include "disc/common/thread_pool.h"
#include "disc/core/candidate_bound.h"
#include "disc/core/counting_array.h"
#include "disc/core/partition.h"
#include "disc/obs/metrics.h"
#include "disc/obs/progress.h"
#include "disc/obs/trace.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_first_level_reuses, "disc.first_level.reuses");
DISC_OBS_COUNTER(g_partitions_split, "dynamic.partitions_split");
DISC_OBS_COUNTER(g_partitions_to_disc, "dynamic.partitions_to_disc");
DISC_OBS_COUNTER(g_bound_skips, "disc.bound.skips");
DISC_OBS_GAUGE(g_mine_threads, "mine.threads");
DISC_OBS_HISTOGRAM(g_partition_nrr, "dynamic.partition_nrr_x1000");

using Members = PartitionMembers;

class Run {
 public:
  /// `ctl` and `tel` may be null (no cancellation/deadline/error plumbing,
  /// no live telemetry). `fl` may be null (the root level scans); non-null,
  /// it must have been built from `db` (core/first_level.h).
  Run(const SequenceDatabase& db, const MineOptions& options,
      const DynamicDiscAll::Config& config, RunControl* ctl,
      obs::RunTelemetry* tel, const FirstLevelState* fl)
      : db_(db),
        options_(options),
        config_(config),
        ctl_(ctl),
        tel_(tel),
        fl_(fl) {}

  bool ShouldStop() { return ctl_ != nullptr && ctl_->ShouldStop(); }

  PatternSet Execute() {
    if (db_.empty() || options_.min_support_count > db_.size()) {
      return std::move(out_);
    }
    // One occurrence index per customer sequence, shared by every level of
    // the recursion and by the DISC passes (memory: O(total items)). Built
    // before any fan-out; immutable afterwards, so workers share it freely.
    Members all;
    all.reserve(db_.size());
    for (Cid cid = 0; cid < db_.size(); ++cid) {
      if (db_[cid].Empty()) continue;
      indexes_.emplace_back(db_[cid]);
      all.push_back({db_[cid], &indexes_.back(), cid});
    }
    const std::size_t nthreads = ResolveThreadCount(options_.threads);
    DISC_OBS_SET(g_mine_threads, static_cast<double>(nthreads));
    if (nthreads <= 1) {
      Recurse(Sequence(), all, &out_);
    } else {
      ParallelRoot(all, nthreads);
    }
    // On a stop the root loop records the first unmined root child; erasing
    // everything from that item yields the exact comparative-order prefix
    // of the full result (same rule as DISC-all; docs/ROBUSTNESS.md).
    if (root_truncated_) out_.EraseFromFirstItem(root_cutoff_);
    return std::move(out_);
  }

 private:
  // Processes the <prefix>-partition `members` (Appendix algorithm; the
  // original database is the empty-prefix partition), adding every frequent
  // sequence to `out`.
  void Recurse(const Sequence& prefix, const Members& members,
               PatternSet* out) {
    const std::uint32_t delta = options_.min_support_count;
    const std::uint32_t k = prefix.Length();
    if (members.size() < delta) return;
    if (options_.max_length != 0 && k >= options_.max_length) return;

    // Step 1: frequent (k+1)-sequences with this prefix. The root level
    // (empty prefix) reads them off provided first-level state when it has
    // one — the extensions of the empty prefix are exactly the frequent
    // items, sequence-form, with support equal to the item support, in the
    // same ascending order FrequentExtensions produces. Deeper levels are
    // prefix-dependent and always scan.
    std::vector<std::pair<Item, ExtType>> freq;
    std::vector<std::uint32_t> sups;
    if (k == 0 && fl_ != nullptr) {
      DISC_OBS_INC(g_first_level_reuses);
      for (Item x = 1; x <= fl_->max_item; ++x) {
        if (fl_->item_support[x] >= delta) {
          freq.emplace_back(x, ExtType::kSequence);
          sups.push_back(fl_->item_support[x]);
        }
      }
    } else {
      CountingArray counts(db_.max_item());
      for (const PartitionMember& m : members) {
        ForEachExtension(
            m.seq, prefix,
            [&counts, &m](Item x, ExtType type) {
              counts.Add(x, type, m.cid);
            },
            m.index);
      }
      freq = counts.FrequentExtensions(delta);
#if DISC_OBS_ENABLED
      // Dynamic DISC-all does support-count patterns of any length while
      // it keeps partitioning; attribute them like the bi-level harvests
      // do.
      if (k + 1 >= 4) {
        DISC_OBS_COUNTER(g_k4plus, "support.increments.k4plus");
        DISC_OBS_ADD(g_k4plus, counts.increments_since_reset());
      }
#endif
      sups.reserve(freq.size());
      for (const auto& [x, type] : freq) {
        sups.push_back(counts.Count(x, type));
      }
    }
    std::uint64_t child_support_sum = 0;
    for (std::size_t j = 0; j < freq.size(); ++j) {
      out->Add(Extend(prefix, freq[j].first, freq[j].second), sups[j]);
      child_support_sum += sups[j];
    }
    if (k == 0 && tel_ != nullptr) {
      tel_->AddPatterns(freq.size());  // the frequent 1-sequences
    }
    if (freq.empty()) return;
    if (options_.max_length != 0 && k + 1 >= options_.max_length) return;

    // Candidate-bound prune: a zero bound over the frequent (k+1)-set
    // means no (k+2)-candidate with this prefix exists, and by
    // anti-monotonicity nothing deeper either — neither splitting further
    // nor switching to DISC can emit another pattern, so both are skipped.
    if (config_.bound_pruning &&
        !CandidateBound::CanYieldNextLevel(freq)) {
      DISC_OBS_INC(g_bound_skips);
      return;
    }

    // Step 2: the non-reduction rate of this partition (or a fixed depth
    // policy when configured).
    const double nrr =
        static_cast<double>(child_support_sum) /
        (static_cast<double>(freq.size()) *
         static_cast<double>(members.size()));
    const bool split =
        config_.fixed_levels >= 0
            ? k < static_cast<std::uint32_t>(config_.fixed_levels)
            : nrr < config_.gamma;
    DISC_OBS_RECORD(g_partition_nrr,
                    static_cast<std::uint64_t>(nrr * 1000.0));

    if (split) {
      // Step 3: partition one level deeper and recurse, reassigning each
      // member to its next child partition afterwards.
      DISC_OBS_INC(g_partitions_split);
      ExtFilter filter;
      filter.Build(freq, db_.max_item());
      auto ext_index = [&](const std::pair<Item, ExtType>& e) {
        const auto it = std::lower_bound(
            freq.begin(), freq.end(), e, [](const auto& a, const auto& b) {
              return CompareExtensions(a.first, a.second, b.first, b.second) <
                     0;
            });
        DISC_DCHECK(it != freq.end() && *it == e);
        return static_cast<std::size_t>(it - freq.begin());
      };
      std::vector<Members> children(freq.size());
      for (const PartitionMember& member : members) {
        const auto key = ScanMinFrequentExt(member.seq, prefix, filter,
                                            nullptr, member.index);
        if (key.has_value()) children[ext_index(*key)].push_back(member);
      }
      // Progress plan (root level only): one unit per root child. The
      // serial reassign-forward loop grows children as it goes, so there
      // is no static per-child weight — progress is count-based (weight 1
      // each; the parallel root, whose children are static, weights them).
      const bool root_tel = k == 0 && tel_ != nullptr;
      if (root_tel) tel_->BeginPartitions(freq.size(), freq.size());
      for (std::size_t j = 0; j < freq.size(); ++j) {
        // Cancellation checkpoint (root children only — one root child is
        // the unit of partial-result bookkeeping, like a ⟨λ⟩-partition in
        // DISC-all). Deeper levels run their child to completion. The same
        // boundary ticks the run telemetry.
        if (k == 0 && ShouldStop()) {
          root_truncated_ = true;
          root_cutoff_ = freq[j].first;
          break;
        }
        if (root_tel) tel_->PartitionStarted(freq[j].first);
        const std::size_t patterns_before = out->size();
        Members child = std::move(children[j]);
        if (!child.empty()) {
          if (child.size() >= delta) {
            Recurse(Extend(prefix, freq[j].first, freq[j].second), child,
                    out);
          }
          for (const PartitionMember& member : child) {
            const auto next = ScanMinFrequentExt(member.seq, prefix, filter,
                                                 &freq[j], member.index);
            if (next.has_value()) {
              children[ext_index(*next)].push_back(member);
            }
          }
        }
        if (root_tel) {
          tel_->PartitionDone(freq[j].first, 1,
                              out->size() - patterns_before);
        }
      }
    } else {
      // Step 4: the partitioning overhead no longer pays; DISC finds every
      // remaining length in this partition. A root partition that goes
      // straight to DISC is one indivisible unit: a stop observed here
      // trims the result to the prefix below the smallest frequent item
      // (i.e. empty).
      if (k == 0 && ShouldStop()) {
        root_truncated_ = true;
        root_cutoff_ = freq[0].first;
        return;
      }
      // A root partition that goes straight to DISC is one progress unit.
      const bool root_tel = k == 0 && tel_ != nullptr;
      if (root_tel) {
        tel_->BeginPartitions(1, 1);
        tel_->PartitionStarted(0);
      }
      DISC_OBS_INC(g_partitions_to_disc);
      std::vector<Sequence> sorted_list;
      sorted_list.reserve(freq.size());
      for (const auto& [x, type] : freq) {
        sorted_list.push_back(Extend(prefix, x, type));
      }
      const std::size_t patterns_before = out->size();
      RunDiscLoop(members, std::move(sorted_list), k + 2, delta,
                  config_.bilevel, db_.max_item(), options_.max_length,
                  out, nullptr, /*use_avl=*/true, config_.encoded_order);
      if (root_tel) {
        tel_->PartitionDone(0, 1, out->size() - patterns_before);
      }
    }
  }

  // The root level of Recurse with the first-level children fanned out to a
  // pool. A root child ⟨(x)⟩-partition is exactly the members whose
  // sequence contains the frequent item x (the serial reassign-forward loop
  // walks each member through the child of every frequent item it
  // contains), so the children are statically determined and independently
  // minable; their PatternSets merge disjointly in comparative (item)
  // order, making the output identical to the serial recursion.
  void ParallelRoot(const Members& members, std::size_t nthreads) {
    const std::uint32_t delta = options_.min_support_count;
    const Sequence empty_prefix;

    // Step 1: frequent 1-sequences (extensions of the empty prefix are the
    // distinct items, sequence-form only) — read off provided first-level
    // state, or found in one scan.
    std::vector<std::pair<Item, ExtType>> freq;
    std::vector<std::uint32_t> sups;
    if (fl_ != nullptr) {
      DISC_OBS_INC(g_first_level_reuses);
      for (Item x = 1; x <= fl_->max_item; ++x) {
        if (fl_->item_support[x] >= delta) {
          freq.emplace_back(x, ExtType::kSequence);
          sups.push_back(fl_->item_support[x]);
        }
      }
    } else {
      CountingArray counts(db_.max_item());
      for (const PartitionMember& m : members) {
        ForEachExtension(
            m.seq, empty_prefix,
            [&counts, &m](Item x, ExtType type) {
              counts.Add(x, type, m.cid);
            },
            m.index);
      }
      freq = counts.FrequentExtensions(delta);
      sups.reserve(freq.size());
      for (const auto& [x, type] : freq) {
        sups.push_back(counts.Count(x, type));
      }
    }
    std::uint64_t child_support_sum = 0;
    for (std::size_t j = 0; j < freq.size(); ++j) {
      out_.Add(Extend(empty_prefix, freq[j].first, freq[j].second), sups[j]);
      child_support_sum += sups[j];
    }
    if (tel_ != nullptr) {
      tel_->AddPatterns(freq.size());  // the frequent 1-sequences
    }
    if (freq.empty()) return;
    if (options_.max_length == 1) return;

    // Step 2: root split decision, same arithmetic as Recurse.
    const double nrr =
        static_cast<double>(child_support_sum) /
        (static_cast<double>(freq.size()) *
         static_cast<double>(members.size()));
    const bool split = config_.fixed_levels >= 0
                           ? 0 < config_.fixed_levels
                           : nrr < config_.gamma;
    DISC_OBS_RECORD(g_partition_nrr,
                    static_cast<std::uint64_t>(nrr * 1000.0));
    if (!split) {
      // The whole database switches to DISC at once — no partitions to
      // fan out; run the loop on the calling thread as the serial path
      // would (and honor a stop the same way).
      if (ShouldStop()) {
        root_truncated_ = true;
        root_cutoff_ = freq[0].first;
        return;
      }
      // One indivisible progress unit, as on the serial path.
      if (tel_ != nullptr) {
        tel_->BeginPartitions(1, 1);
        tel_->PartitionStarted(0);
      }
      DISC_OBS_INC(g_partitions_to_disc);
      std::vector<Sequence> sorted_list;
      sorted_list.reserve(freq.size());
      for (const auto& [x, type] : freq) {
        sorted_list.push_back(Extend(empty_prefix, x, type));
      }
      const std::size_t patterns_before = out_.size();
      RunDiscLoop(members, std::move(sorted_list), 2, delta, config_.bilevel,
                  db_.max_item(), options_.max_length, &out_, nullptr,
                  /*use_avl=*/true, config_.encoded_order);
      if (tel_ != nullptr) {
        tel_->PartitionDone(0, 1, out_.size() - patterns_before);
      }
      return;
    }

    // Step 3: static children — member m joins the child of every frequent
    // item it contains. With first-level state the children come straight
    // from the cached ⟨x⟩-partition memberships (ascending CIDs — the same
    // order the stamp walk below produces); otherwise a plain
    // item -> child-index table replaces the binary search.
    DISC_OBS_INC(g_partitions_split);
    std::vector<Members> children(freq.size());
    if (fl_ != nullptr) {
      // The cached partitions hold CIDs; map them back to this run's
      // member records (position i of `members` is the i-th non-empty
      // sequence, ascending cid).
      constexpr std::uint32_t kNoMember = ~std::uint32_t{0};
      std::vector<std::uint32_t> member_at(db_.size(), kNoMember);
      for (std::size_t i = 0; i < members.size(); ++i) {
        member_at[members[i].cid] = static_cast<std::uint32_t>(i);
      }
      for (std::size_t j = 0; j < freq.size(); ++j) {
        DISC_CHECK(freq[j].second == ExtType::kSequence);
        const std::vector<Cid>& cids = fl_->members_of[freq[j].first];
        children[j].reserve(cids.size());
        for (const Cid cid : cids) {
          DISC_DCHECK(member_at[cid] != kNoMember);
          children[j].push_back(members[member_at[cid]]);
        }
      }
    } else {
      std::vector<std::size_t> child_of(db_.max_item() + 1, freq.size());
      for (std::size_t j = 0; j < freq.size(); ++j) {
        DISC_CHECK(freq[j].second == ExtType::kSequence);
        child_of[freq[j].first] = j;
      }
      std::vector<std::uint64_t> seen(db_.max_item() + 1, 0);
      std::uint64_t stamp = 0;
      for (const PartitionMember& member : members) {
        ++stamp;
        for (const Item x : member.seq.items()) {
          const std::size_t j = child_of[x];
          if (j == freq.size() || seen[x] == stamp) continue;
          seen[x] = stamp;
          children[j].push_back(member);
        }
      }
    }

    // Step 4: fan the viable children out largest-first; merge in child
    // (comparative) order.
    std::vector<std::size_t> viable;
    for (std::size_t j = 0; j < freq.size(); ++j) {
      if (children[j].size() >= delta) viable.push_back(j);
    }
    if (tel_ != nullptr) {
      // Progress plan: the root children are static here, so each viable
      // child is one unit weighted by its member count (non-viable
      // children hold no pattern of length >= 2 and cost nothing).
      std::uint64_t total_weight = 0;
      for (const std::size_t j : viable) total_weight += children[j].size();
      tel_->BeginPartitions(viable.size(), total_weight);
    }
    std::vector<PatternSet> results(viable.size());
    // One flag per viable child, each written by exactly one task; the
    // merge reads them only after pool.Wait().
    std::vector<char> completed(viable.size(), 0);
    std::vector<std::size_t> order(viable.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return children[viable[a]].size() >
                              children[viable[b]].size();
                     });
    {
      DISC_OBS_SPAN("dynamic/partitions");
      ThreadPool pool(nthreads);
      for (const std::size_t i : order) {
        pool.Submit([this, i, &viable, &freq, &children, &results, &completed,
                     &empty_prefix](std::size_t) {
          // Cancellation checkpoint: a stopped task leaves its child
          // incomplete, and the merge below discards it. The same boundary
          // ticks the run telemetry.
          if (ShouldStop()) return;
          DISC_OBS_SPAN("dynamic/partition");
          const std::size_t j = viable[i];
          if (tel_ != nullptr) tel_->PartitionStarted(freq[j].first);
          try {
            Recurse(Extend(empty_prefix, freq[j].first, freq[j].second),
                    children[j], &results[i]);
          } catch (...) {
            if (tel_ != nullptr) tel_->PartitionAborted(freq[j].first);
            throw;  // contained by the pool (TakeFirstError below)
          }
          completed[i] = 1;
          if (tel_ != nullptr) {
            tel_->PartitionDone(freq[j].first, children[j].size(),
                                results[i].size());
          }
        });
      }
      pool.Wait();
      if (std::exception_ptr err = pool.TakeFirstError()) {
        // A worker threw: its child stays incomplete and the pool drained
        // the rest, so the merge degrades to the same exact-prefix partial
        // result as a cancellation.
        if (ctl_ == nullptr) std::rethrow_exception(err);
        try {
          std::rethrow_exception(err);
        } catch (const std::exception& e) {
          ctl_->ReportError(
              Status::Internal(std::string("worker task failed: ") + e.what()));
        } catch (...) {
          ctl_->ReportError(
              Status::Internal("worker task failed: unknown exception"));
        }
      }
    }
    // Merge the leading run of completed children (ascending item order);
    // on a stop, record the first incomplete child as the truncation
    // cutoff. Children below delta are trivially complete — they can hold
    // no pattern of length >= 2 — so only viable ones gate the prefix.
    std::size_t merged = viable.size();
    for (std::size_t i = 0; i < viable.size(); ++i) {
      if (!completed[i]) {
        merged = i;
        break;
      }
    }
    for (std::size_t i = 0; i < merged; ++i) {
      for (const auto& [pattern, support] : results[i]) {
        out_.Add(pattern, support);
      }
    }
    if (merged < viable.size()) {
      root_truncated_ = true;
      root_cutoff_ = freq[viable[merged]].first;
    }
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  const DynamicDiscAll::Config& config_;
  RunControl* ctl_;
  obs::RunTelemetry* tel_;
  const FirstLevelState* fl_;
  std::deque<SequenceIndex> indexes_;
  PatternSet out_;
  // Set when a stop (or contained failure) left root children unmined;
  // Execute() erases every pattern with first item >= root_cutoff_.
  bool root_truncated_ = false;
  Item root_cutoff_ = 0;
};

}  // namespace

PatternSet DynamicDiscAll::DoMine(const SequenceDatabase& db,
                                  const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  // A provided first-level state must describe this database — a stale
  // state would silently mine wrong root children (core/first_level.h).
  const FirstLevelState* fl = first_level_.get();
  if (fl != nullptr) DISC_CHECK(fl->Matches(db));
  Run run(db, options, config_, run_control(), telemetry(), fl);
  return run.Execute();
}

}  // namespace disc
