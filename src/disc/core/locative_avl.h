// The locative AVL tree (paper §3.2): the index behind the k-sorted
// database. An order-statistic AVL tree keyed by sequences under the
// comparative order; every node holds the *bucket* of customer entries whose
// current k-minimum subsequence equals the node's key, and maintains subtree
// entry counts so the entry at any rank — in particular the δ-th position,
// the "condition k-sequence" α_δ — is located in O(log n).
//
// The paper defers the structure's details to an unavailable technical
// report; this implementation provides exactly the operations the DISC loop
// needs: insert, minimum, select-by-rank, pop-minimum-bucket, and
// pop-everything-below-a-bound.
//
// Bucket payloads are opaque 32-bit handles (indices into the caller's entry
// table), keeping the tree independent of the mining state.
#ifndef DISC_CORE_LOCATIVE_AVL_H_
#define DISC_CORE_LOCATIVE_AVL_H_

#include <cstdint>
#include <vector>

#include "disc/order/compare.h"
#include "disc/order/encoded.h"
#include "disc/seq/sequence.h"

namespace disc {

/// Order-statistic AVL tree with per-key buckets. See file comment.
class LocativeAvlTree {
 public:
  LocativeAvlTree() = default;
  ~LocativeAvlTree();

  LocativeAvlTree(const LocativeAvlTree&) = delete;
  LocativeAvlTree& operator=(const LocativeAvlTree&) = delete;

  /// Inserts a handle under the given key (O(log n), plus a key copy when
  /// the key is new). `weight` feeds the weighted rank queries (paper §5's
  /// weighting applications); the default 1.0 makes weighted and plain
  /// ranks coincide.
  void Insert(const Sequence& key, std::uint32_t handle, double weight = 1.0);

  /// Move-inserting variant: a new node takes ownership of the key; when
  /// the key already exists it is simply discarded.
  void Insert(Sequence&& key, std::uint32_t handle, double weight = 1.0);

  /// Encoded-order insert: `ekey` is the encoded form of `key` (same
  /// ItemEncoder for every key of this tree — mixing encoded and plain
  /// inserts in one tree is a programming error, DCHECKed). The descent
  /// compares encoded words and starts each comparison at the longest
  /// common prefix the key is known to share with the narrowing fences:
  /// for lo < x, y < hi under a lexicographic order, lcp(x, y) >=
  /// min(lcp(x, lo), lcp(x, hi)), so deep descents skip most words.
  void Insert(Sequence&& key, std::vector<EncodedWord>&& ekey,
              std::uint32_t handle, double weight = 1.0);

  /// Total number of handles stored.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of distinct keys.
  std::size_t NumKeys() const { return num_nodes_; }

  /// Smallest key (α₁). Tree must be non-empty.
  const Sequence& MinKey() const;

  /// Bucket of the smallest key.
  const std::vector<std::uint32_t>& MinBucket() const;

  /// Key of the entry at 1-based `rank` across bucket multiplicities (the
  /// paper's α_δ for rank δ). Requires 1 <= rank <= size().
  const Sequence& SelectKey(std::size_t rank) const;

  /// Smallest key whose prefix weight (sum of inserted weights over all
  /// entries with keys <= it) reaches `w` — the weighted analogue of α_δ.
  /// Requires 0 < w <= TotalWeight().
  const Sequence& SelectKeyByWeight(double w) const;

  /// Sum of all inserted weights.
  double TotalWeight() const;

  /// Removes the minimum node entirely, appending its handles to `out`.
  void PopMinBucket(std::vector<std::uint32_t>* out);

  /// Removes every entry whose key is strictly below `bound`, appending the
  /// handles to `out` (ascending key order).
  void PopAllLess(const Sequence& bound, std::vector<std::uint32_t>* out);

  /// Encoded-order variant: `ebound` must be the encoded form of `bound`
  /// under the tree's encoder; min-key comparisons run on encoded words.
  void PopAllLess(const Sequence& bound,
                  const std::vector<EncodedWord>* ebound,
                  std::vector<std::uint32_t>* out);

  /// Removes everything.
  void Clear();

  /// Appends all keys in ascending order (testing).
  void InorderKeys(std::vector<Sequence>* out) const;

  /// Verifies AVL balance, counts, and key ordering (testing).
  bool CheckInvariants() const;

 private:
  struct Node {
    Sequence key;
    std::vector<EncodedWord> ekey;  // encoded key (encoded inserts only)
    std::vector<std::uint32_t> bucket;
    Node* left = nullptr;
    Node* right = nullptr;
    std::int32_t height = 1;
    std::size_t count = 0;       // handles in this subtree (incl. bucket)
    double bucket_weight = 0.0;  // sum of this node's entry weights
    double weight = 0.0;         // subtree weight sum
  };

  static std::int32_t Height(const Node* n) { return n == nullptr ? 0 : n->height; }
  static std::size_t Count(const Node* n) { return n == nullptr ? 0 : n->count; }
  static double Weight(const Node* n) { return n == nullptr ? 0.0 : n->weight; }
  static void Update(Node* n);
  static Node* RotateLeft(Node* n);
  static Node* RotateRight(Node* n);
  static Node* Rebalance(Node* n);
  Node* InsertAt(Node* n, Sequence* key, std::uint32_t handle,
                 double weight);
  // Encoded-order descent with fence LCPs: the key shares `llcp` words with
  // the tightest lower fence passed so far and `hlcp` with the upper one.
  Node* InsertEncodedAt(Node* n, Sequence* key,
                        std::vector<EncodedWord>* ekey, std::uint32_t handle,
                        double weight, std::uint32_t llcp, std::uint32_t hlcp);
  static Node* RemoveMin(Node* n, Node** removed);
  static void Destroy(Node* n);
  static const Node* MinNode(const Node* n);
  bool CheckNode(const Node* n, const Sequence** prev, bool* ok) const;

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::size_t num_nodes_ = 0;
};

}  // namespace disc

#endif  // DISC_CORE_LOCATIVE_AVL_H_
