// Frequent k-sequence discovery (paper Figure 4): the DISC strategy's inner
// loop, plus the bi-level technique of §3.2 that additionally harvests the
// frequent (k+1)-sequences from the virtual partitions in the same pass.
//
// Given the members of a partition and the sorted list of frequent
// (k-1)-sequences, the loop maintains a k-sorted database and repeats:
//
//   α₁ == α_δ  ->  α₁ is frequent with support = |min bucket| (Lemma 2.1);
//                  advance the bucket entries past α_δ (strict);
//   α₁ != α_δ  ->  everything in [α₁, α_δ) is non-frequent (Lemma 2.2);
//                  advance all entries below α_δ to >= α_δ (non-strict);
//
// until fewer than δ sequences remain. No support count of a non-frequent
// k-sequence is ever computed.
#ifndef DISC_CORE_DISCOVERY_H_
#define DISC_CORE_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "disc/core/member.h"
#include "disc/seq/sequence.h"
#include "disc/seq/types.h"

namespace disc {

/// Options for one discovery pass.
struct DiscoveryOptions {
  std::uint32_t k = 0;       ///< pattern length this pass discovers
  std::uint32_t delta = 1;   ///< minimum support count
  bool bilevel = false;      ///< also harvest frequent (k+1)-sequences
  Item max_item = 0;         ///< alphabet bound (sizes the counting array)
  /// Index the k-sorted database with the locative AVL tree (the paper's
  /// §3.2 mechanism). When false, a flat vector is fully re-sorted after
  /// every advance batch — the naive strategy the AVL replaces, kept as an
  /// ablation (bench_ablations) and differential oracle. Results are
  /// identical either way.
  bool use_avl = true;
  /// Run the AVL path on the encoded comparative order (order/encoded.h):
  /// dense item remap, word-scan comparisons, prefix-skip CKMS walks, and
  /// cached embedding ends. False keeps the legacy itemset-by-itemset
  /// scans (ablation). Results are identical either way; the re-sort
  /// ablation (use_avl = false) always runs legacy.
  bool encoded_order = true;
};

/// Output of one discovery pass.
struct DiscoveryResult {
  /// Frequent k-sequences with exact supports, ascending.
  std::vector<std::pair<Sequence, std::uint32_t>> frequent_k;
  /// Frequent (k+1)-sequences (bi-level only), ascending.
  std::vector<std::pair<Sequence, std::uint32_t>> frequent_k1;
  /// Iterations of the DISC loop (instrumentation: how many comparisons of
  /// α₁ with α_δ were made).
  std::uint64_t iterations = 0;
};

/// Runs the DISC discovery loop over `members`. `sorted_list` holds the
/// frequent (k-1)-sequences of this partition, ascending; every frequent
/// k-sequence of the partition extends one of them (anti-monotone
/// property).
DiscoveryResult DiscoverFrequentK(const PartitionMembers& members,
                                  const std::vector<Sequence>& sorted_list,
                                  const DiscoveryOptions& options);

}  // namespace disc

#endif  // DISC_CORE_DISCOVERY_H_
