// Shared machinery for the multi-level partitioning scheme (paper §3.1):
// frequent-extension filters, second-level partition keys, the
// customer-sequence reduction rules, and the DISC k-loop that both DISC-all
// (Figure 2, step 2.1.3.2) and Dynamic DISC-all (Appendix, step 4) run once
// partitioning stops.
#ifndef DISC_CORE_PARTITION_H_
#define DISC_CORE_PARTITION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "disc/algo/pattern_set.h"
#include "disc/core/counting_array.h"
#include "disc/core/member.h"
#include "disc/order/compare.h"
#include "disc/seq/arena.h"
#include "disc/seq/extension.h"
#include "disc/seq/sequence.h"
#include "disc/seq/view.h"
#include "disc/seq/types.h"

namespace disc {

/// Membership filter over the frequent one-item extensions of a fixed
/// prefix: answers "is (item, type) frequent?" in O(1).
class ExtFilter {
 public:
  /// Builds the filter for the given frequent extensions; items must not
  /// exceed max_item.
  void Build(const std::vector<std::pair<Item, ExtType>>& frequent_exts,
             Item max_item);

  bool IsFrequent(Item x, ExtType type) const {
    return type == ExtType::kItemset ? i_ok_[x] : s_ok_[x];
  }

 private:
  std::vector<bool> i_ok_, s_ok_;
};

/// The minimum *frequent* extension of a prefix present in the extension
/// sets, optionally restricted to extensions strictly greater than `floor`.
/// This is the partition key ("2-minimum sequence" at level 2) and, with a
/// floor, the "next 2-minimum sequence" used for reassignment.
std::optional<std::pair<Item, ExtType>> MinFrequentExt(
    const ExtensionSets& exts, const ExtFilter& filter,
    const std::pair<Item, ExtType>* floor_exclusive);

/// Single-scan variant: computes the same minimum directly from the
/// customer sequence without materializing the extension sets.
std::optional<std::pair<Item, ExtType>> ScanMinFrequentExt(
    SequenceView s, const Sequence& prefix, const ExtFilter& filter,
    const std::pair<Item, ExtType>* floor_exclusive,
    const SequenceIndex* index = nullptr);

/// Customer-sequence reduction inside a <(λ)>-partition (Figure 2, step
/// 2.1.2): keeps only the transactions from the minimum point onward and
/// drops every occurrence of an item whose applicable 2-sequence forms
/// <(λ)(x)> / <(λx)> are all non-frequent. λ itself is never dropped.
/// `counts2` must hold the partition's 2-sequence counting array. The
/// result may be empty or shorter than 3 items (the caller drops those).
Sequence ReduceCustomerSequence(SequenceView s, Item lambda,
                                const CountingArray& counts2,
                                std::uint32_t delta);

/// Allocation-free variant of ReduceCustomerSequence for the partition hot
/// path: appends the reduced sequence into `out` (a per-worker scratch
/// arena, reused across partitions) instead of materializing an owning
/// Sequence. Returns the reduced length; when it comes out below
/// `min_length` the appended sequence is rolled back and 0 is returned.
/// Produces exactly the sequence ReduceCustomerSequence would (the
/// equivalence is pinned by tests/partition_test.cc).
std::uint32_t ReduceCustomerSequenceInto(SequenceView s, Item lambda,
                                         const CountingArray& counts2,
                                         std::uint32_t delta,
                                         std::uint32_t min_length,
                                         SequenceArena* out);

/// Runs DISC discovery passes for k = start_k, then k+1 (or k+2 when
/// bilevel), ... until no frequent (k-1)-sequences remain or fewer than
/// delta members survive, adding every frequent sequence to `out`.
/// `sorted_list` holds the frequent (start_k - 1)-sequences of the
/// partition. If `iterations` is non-null it accumulates DISC loop
/// iterations (instrumentation).
void RunDiscLoop(const PartitionMembers& members,
                 std::vector<Sequence> sorted_list, std::uint32_t start_k,
                 std::uint32_t delta, bool bilevel, Item max_item,
                 std::uint32_t max_length, PatternSet* out,
                 std::uint64_t* iterations, bool use_avl = true,
                 bool encoded_order = true);

}  // namespace disc

#endif  // DISC_CORE_PARTITION_H_
