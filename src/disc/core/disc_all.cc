#include "disc/core/disc_all.h"

#include <algorithm>
#include <deque>

#include "disc/common/check.h"
#include "disc/core/counting_array.h"
#include "disc/core/partition.h"
#include "disc/obs/metrics.h"
#include "disc/obs/trace.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_first_level_partitions, "disc.partitions.first_level");
DISC_OBS_COUNTER(g_second_level_partitions, "disc.partitions.second_level");
DISC_OBS_GAUGE(g_physical_nrr_level0, "disc.physical_nrr.level0");
DISC_OBS_GAUGE(g_physical_nrr_level1, "disc.physical_nrr.level1");
DISC_OBS_HISTOGRAM(g_first_level_size, "disc.partition_size.first_level");
DISC_OBS_HISTOGRAM(g_second_level_size, "disc.partition_size.second_level");

// Smallest item of s strictly greater than floor (kNoItem floor = smallest
// overall); kNoItem if none. Used for first-level reassignment.
Item NextMinItem(const Sequence& s, Item floor) {
  Item best = kNoItem;
  for (const Item x : s.items()) {
    if (x > floor && (best == kNoItem || x < best)) best = x;
  }
  return best;
}

class Run {
 public:
  Run(const SequenceDatabase& db, const MineOptions& options,
      const DiscAll::Config& config)
      : db_(db), options_(options), config_(config), counts_(db.max_item()) {}

  PatternSet Execute() {
    const std::uint32_t delta = options_.min_support_count;
    if (db_.empty() || delta > db_.size()) return Finish();
    const Item max_item = db_.max_item();

    // ---- Step 1: one scan — frequent 1-sequences and first-level
    // partitions by minimum item.
    std::vector<std::uint32_t> item_support(max_item + 1, 0);
    std::vector<std::uint64_t> seen(max_item + 1, 0);
    std::vector<std::vector<Cid>> first_level(max_item + 1);
    for (Cid cid = 0; cid < db_.size(); ++cid) {
      const Sequence& s = db_[cid];
      if (s.Empty()) continue;
      Item min_item = s.items().front();
      for (const Item x : s.items()) {
        if (x < min_item) min_item = x;
        if (seen[x] != cid + 1u) {
          seen[x] = cid + 1u;
          ++item_support[x];
        }
      }
      first_level[min_item].push_back(cid);
    }
    for (Item x = 1; x <= max_item; ++x) {
      if (item_support[x] >= delta) {
        Sequence p;
        p.AppendNewItemset(x);
        out_.Add(p, item_support[x]);
      }
    }
    if (options_.max_length == 1) return Finish();

    // ---- Step 2: process first-level partitions in ascending item order,
    // reassigning members forward after each.
    DISC_OBS_SPAN("disc/partitions");
    for (Item lambda = 1; lambda <= max_item; ++lambda) {
      std::vector<Cid> members = std::move(first_level[lambda]);
      if (members.empty()) continue;
      if (item_support[lambda] >= delta) {
        DISC_CHECK(members.size() == item_support[lambda]);
        ++first_level_partitions_;
        DISC_OBS_INC(g_first_level_partitions);
        DISC_OBS_RECORD(g_first_level_size, members.size());
        level0_ratio_sum_ +=
            static_cast<double>(members.size()) /
            static_cast<double>(db_.size());
        ProcessFirstLevel(lambda, members, delta, max_item);
      }
      // Step 2.2: reassign to the partition of the next minimum item.
      for (const Cid cid : members) {
        const Item next = NextMinItem(db_[cid], lambda);
        if (next != kNoItem) first_level[next].push_back(cid);
      }
    }
    return Finish();
  }

  // Folds the physical-NRR accumulators into the registry gauges (only set
  // when at least one partition was processed at that level, so MineStats
  // simply lacks the gauge otherwise) and hands out the result set.
  PatternSet Finish() {
    if (first_level_partitions_ > 0) {
      DISC_OBS_SET(g_physical_nrr_level0,
                   level0_ratio_sum_ /
                       static_cast<double>(first_level_partitions_));
    }
    if (level1_partitions_ > 0) {
      DISC_OBS_SET(g_physical_nrr_level1,
                   level1_ratio_sum_ /
                       static_cast<double>(level1_partitions_));
    }
    return std::move(out_);
  }

 private:
  void ProcessFirstLevel(Item lambda, const std::vector<Cid>& members,
                         std::uint32_t delta, Item max_item) {
    Sequence pat1;
    pat1.AppendNewItemset(lambda);

    // Frequent 2-sequences with prefix λ via the counting array (§3.1).
    counts_.Reset();
    for (const Cid cid : members) {
      ForEachExtension(db_[cid], pat1, [this, cid](Item x, ExtType type) {
        counts_.Add(x, type, cid);
      });
    }
    const auto freq2 = counts_.FrequentExtensions(delta);
    for (const auto& [x, type] : freq2) {
      out_.Add(Extend(pat1, x, type), counts_.Count(x, type));
    }
    if (freq2.empty() || options_.max_length == 2) return;

    ExtFilter filter;
    filter.Build(freq2, max_item);
    auto ext_index = [&](const std::pair<Item, ExtType>& e) {
      const auto it = std::lower_bound(
          freq2.begin(), freq2.end(), e,
          [](const auto& a, const auto& b) {
            return CompareExtensions(a.first, a.second, b.first, b.second) <
                   0;
          });
      DISC_DCHECK(it != freq2.end() && *it == e);
      return static_cast<std::size_t>(it - freq2.begin());
    };

    // Reduce members (step 2.1.2) and split into second-level partitions by
    // 2-minimum sequence. Each reduced sequence gets an occurrence index,
    // reused by every later scan over it (keys, counting, DISC passes).
    std::deque<Sequence> reduced;
    std::deque<SequenceIndex> indexes;
    std::vector<std::vector<std::uint32_t>> second_level(freq2.size());
    for (const Cid cid : members) {
      Sequence red =
          ReduceCustomerSequence(db_[cid], lambda, counts_, delta);
      if (red.Length() < 3) continue;
      reduced.push_back(std::move(red));
      indexes.emplace_back(reduced.back());
      const auto key = ScanMinFrequentExt(reduced.back(), pat1, filter,
                                          nullptr, &indexes.back());
      if (!key.has_value()) {
        reduced.pop_back();
        indexes.pop_back();
        continue;
      }
      second_level[ext_index(*key)].push_back(
          static_cast<std::uint32_t>(reduced.size() - 1));
    }

    // Physical level-1 NRR: average second-level size over this
    // first-level partition's size (Equation 2 on actual sizes).
    {
      std::uint64_t child_sum = 0;
      std::uint64_t children = 0;
      for (const auto& slots : second_level) {
        if (slots.empty()) continue;
        child_sum += slots.size();
        ++children;
      }
      if (children > 0) {
        level1_ratio_sum_ +=
            static_cast<double>(child_sum) /
            (static_cast<double>(children) *
             static_cast<double>(members.size()));
        ++level1_partitions_;
      }
    }

    // Process second-level partitions ascending, reassigning forward.
    for (std::size_t j = 0; j < freq2.size(); ++j) {
      std::vector<std::uint32_t> slots = std::move(second_level[j]);
      if (slots.empty()) continue;
      if (slots.size() >= delta) {
        DISC_OBS_INC(g_second_level_partitions);
        DISC_OBS_RECORD(g_second_level_size, slots.size());
        ProcessSecondLevel(Extend(pat1, freq2[j].first, freq2[j].second),
                           reduced, indexes, slots, delta, max_item);
      }
      for (const std::uint32_t slot : slots) {
        const auto next = ScanMinFrequentExt(reduced[slot], pat1, filter,
                                             &freq2[j], &indexes[slot]);
        if (next.has_value()) second_level[ext_index(*next)].push_back(slot);
      }
    }
  }

  void ProcessSecondLevel(const Sequence& pat2,
                          const std::deque<Sequence>& reduced,
                          const std::deque<SequenceIndex>& indexes,
                          const std::vector<std::uint32_t>& slots,
                          std::uint32_t delta, Item max_item) {
    // Frequent 3-sequences with prefix pat2, again in one counting-array
    // scan (step 2.1.3.1).
    counts_.Reset();
    for (const std::uint32_t slot : slots) {
      ForEachExtension(
          reduced[slot], pat2,
          [this, slot](Item x, ExtType type) {
            counts_.Add(x, type, slot);
          },
          &indexes[slot]);
    }
    const auto freq3 = counts_.FrequentExtensions(delta);
    std::vector<Sequence> sorted_list;
    sorted_list.reserve(freq3.size());
    for (const auto& [x, type] : freq3) {
      Sequence p = Extend(pat2, x, type);
      out_.Add(p, counts_.Count(x, type));
      sorted_list.push_back(std::move(p));
    }
    if (options_.max_length != 0 && options_.max_length <= 3) return;

    // DISC for k >= 4 (step 2.1.3.2).
    PartitionMembers pairs;
    pairs.reserve(slots.size());
    for (const std::uint32_t slot : slots) {
      pairs.push_back({&reduced[slot], &indexes[slot], slot});
    }
    RunDiscLoop(pairs, std::move(sorted_list), 4, delta, config_.bilevel,
                max_item, options_.max_length, &out_, nullptr,
                config_.use_avl);
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  const DiscAll::Config& config_;
  CountingArray counts_;
  PatternSet out_;
  std::uint64_t first_level_partitions_ = 0;
  double level0_ratio_sum_ = 0.0;
  double level1_ratio_sum_ = 0.0;
  std::uint64_t level1_partitions_ = 0;
};

}  // namespace

PatternSet DiscAll::DoMine(const SequenceDatabase& db,
                           const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  Run run(db, options, config_);
  return run.Execute();
}

}  // namespace disc
