#include "disc/core/disc_all.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "disc/common/cancel.h"
#include "disc/common/check.h"
#include "disc/common/failpoint.h"
#include "disc/common/thread_pool.h"
#include "disc/core/candidate_bound.h"
#include "disc/core/counting_array.h"
#include "disc/core/partition.h"
#include "disc/obs/metrics.h"
#include "disc/obs/progress.h"
#include "disc/obs/trace.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

DISC_OBS_COUNTER(g_first_level_reuses, "disc.first_level.reuses");
DISC_OBS_COUNTER(g_first_level_partitions, "disc.partitions.first_level");
DISC_OBS_COUNTER(g_second_level_partitions, "disc.partitions.second_level");
DISC_OBS_COUNTER(g_bound_skips, "disc.bound.skips");
DISC_OBS_COUNTER(g_bound_filtered, "disc.bound.filtered_probes");
DISC_OBS_COUNTER(g_scratch_reuses, "disc.scratch.reuses");
DISC_OBS_COUNTER(g_arena_reuses, "disc.arena.reuses");
DISC_OBS_GAUGE(g_arena_bytes, "disc.arena.bytes");
DISC_OBS_GAUGE(g_physical_nrr_level0, "disc.physical_nrr.level0");
DISC_OBS_GAUGE(g_physical_nrr_level1, "disc.physical_nrr.level1");
DISC_OBS_GAUGE(g_mine_threads, "mine.threads");
DISC_OBS_HISTOGRAM(g_first_level_size, "disc.partition_size.first_level");
DISC_OBS_HISTOGRAM(g_second_level_size, "disc.partition_size.second_level");

// Per-worker reusable mining state. A worker processes many ⟨λ⟩-partitions;
// reconstructing the counting array, the reduced-sequence stores, and the
// second-level slot tables for each one is pure allocation churn, so each
// worker keeps one Scratch and the partition miner clears (not frees) it
// between partitions. `warm` distinguishes the first use from a reuse for
// the "disc.scratch.reuses" counter.
struct Scratch {
  explicit Scratch(Item max_item) : counts(max_item) {}

  CountingArray counts;
  // Reduced-sequence store, one of two backends: the flat scratch arena
  // (default; Clear() keeps its slabs, so a warm worker reduces with zero
  // allocation) or one owning Sequence per customer (the pre-arena
  // baseline, Config::arena_scratch == false). `reduced` holds views over
  // whichever backend filled it, collected only after the reduce loop is
  // done appending (arena growth invalidates views).
  SequenceArena arena;
  std::deque<Sequence> reduced_owned;
  std::vector<SequenceView> reduced;
  std::deque<SequenceIndex> indexes;
  // Second-level partition table; inner vectors keep their capacity across
  // partitions (cleared, never moved from).
  std::vector<std::vector<std::uint32_t>> second_level;
  PartitionMembers pairs;
  bool warm = false;
};

// What one first-level partition task reports back. Folded into the run's
// output and gauges on the scheduling thread in ascending-λ (comparative)
// order, so the merged result and the NRR gauges are bit-identical for
// every thread count.
struct PartitionResult {
  PatternSet patterns;
  double level0_ratio = 0.0;  ///< |partition| / |DB| (Equation 2, level 0)
  double level1_ratio = 0.0;  ///< avg second-level size / |partition|
  bool has_level1 = false;
  /// Scratch-arena bytes holding this partition's surviving reduced
  /// sequences (0 on the owned-sequence backend). Folded as a max in
  /// ascending-λ order so the "disc.arena.bytes" gauge is thread-count
  /// invariant.
  std::size_t arena_bytes = 0;
  /// The partition was mined to completion. A task that observed a stop
  /// request at entry (or whose worker threw) leaves this false; the merge
  /// folds only the leading completed run in ascending-λ order, which is
  /// what makes the partial result an exact comparative-order prefix.
  bool completed = false;
};

// Mines one first-level ⟨λ⟩-partition into `result`, using (and warming)
// `scratch`. Pure function of (db, options, config, lambda, members):
// distinct partitions share nothing but the read-only database, which is
// what makes the partition fan-out safe.
class PartitionMiner {
 public:
  PartitionMiner(const SequenceDatabase& db, const MineOptions& options,
                 const DiscAll::Config& config, Item max_item,
                 Scratch* scratch, PartitionResult* result)
      : db_(db),
        options_(options),
        config_(config),
        max_item_(max_item),
        scratch_(*scratch),
        result_(*result) {}

  void Mine(Item lambda, const std::vector<Cid>& members) {
    DISC_OBS_SPAN("disc/partition");
    if (scratch_.warm) {
      DISC_OBS_INC(g_scratch_reuses);
      if (config_.arena_scratch) DISC_OBS_INC(g_arena_reuses);
    } else {
      scratch_.warm = true;
    }
    DISC_OBS_INC(g_first_level_partitions);
    DISC_OBS_RECORD(g_first_level_size, members.size());
    result_.level0_ratio = static_cast<double>(members.size()) /
                           static_cast<double>(db_.size());
    ProcessFirstLevel(lambda, members, options_.min_support_count);
  }

 private:
  void ProcessFirstLevel(Item lambda, const std::vector<Cid>& members,
                         std::uint32_t delta) {
    Sequence pat1;
    pat1.AppendNewItemset(lambda);

    // Frequent 2-sequences with prefix λ via the counting array (§3.1).
    CountingArray& counts = scratch_.counts;
    counts.Reset();
    for (const Cid cid : members) {
      ForEachExtension(db_[cid], pat1, [&counts, cid](Item x, ExtType type) {
        counts.Add(x, type, cid);
      });
    }
    const auto freq2 = counts.FrequentExtensions(delta);
    for (const auto& [x, type] : freq2) {
      result_.patterns.Add(Extend(pat1, x, type), counts.Count(x, type));
    }
    if (freq2.empty() || options_.max_length == 2) return;

    // Candidate-bound prune: when no PAIR of frequent 2-extensions can
    // form a valid 3-sequence, this partition provably holds no frequent
    // sequence of length >= 3 (anti-monotone), so the reduce loop, the
    // second-level partitioning, and every DISC pass below are dead work.
    if (config_.bound_pruning &&
        !CandidateBound::CanYieldNextLevel(freq2)) {
      DISC_OBS_INC(g_bound_skips);
      return;
    }

    ExtFilter filter;
    filter.Build(freq2, max_item_);
    auto ext_index = [&](const std::pair<Item, ExtType>& e) {
      const auto it = std::lower_bound(
          freq2.begin(), freq2.end(), e,
          [](const auto& a, const auto& b) {
            return CompareExtensions(a.first, a.second, b.first, b.second) <
                   0;
          });
      DISC_DCHECK(it != freq2.end() && *it == e);
      return static_cast<std::size_t>(it - freq2.begin());
    };

    // Fault-injection hook covering the scratch/reduction path (the
    // allocation-heavy part of a partition mine).
    if (DISC_FAILPOINT("disc.reduce") == failpoint::Action::kError) {
      throw std::runtime_error("failpoint disc.reduce");
    }

    // Reduce members (step 2.1.2) and split into second-level partitions by
    // 2-minimum sequence. Each reduced sequence gets an occurrence index,
    // reused by every later scan over it (keys, counting, DISC passes).
    // The stores and the slot table come from the worker scratch: clear
    // them, keep their capacity. On the arena backend a reduced sequence
    // is appended straight into the flat scratch slab; the index and the
    // key scan read it through a transient back() view that never survives
    // into the next append (the SequenceIndex copies what it needs), so
    // slab regrowth cannot dangle anything.
    std::deque<SequenceIndex>& indexes = scratch_.indexes;
    indexes.clear();
    SequenceArena& arena = scratch_.arena;
    std::deque<Sequence>& reduced_owned = scratch_.reduced_owned;
    arena.Clear();
    reduced_owned.clear();
    std::vector<std::vector<std::uint32_t>>& second_level =
        scratch_.second_level;
    for (auto& slots : second_level) slots.clear();
    if (second_level.size() < freq2.size()) second_level.resize(freq2.size());
    for (const Cid cid : members) {
      SequenceView red;
      if (config_.arena_scratch) {
        if (ReduceCustomerSequenceInto(db_[cid], lambda, counts, delta, 3,
                                       &arena) == 0) {
          continue;
        }
        red = arena.back();
      } else {
        Sequence r = ReduceCustomerSequence(db_[cid], lambda, counts, delta);
        if (r.Length() < 3) continue;
        reduced_owned.push_back(std::move(r));
        red = reduced_owned.back();
      }
      indexes.emplace_back(red);
      const auto key =
          ScanMinFrequentExt(red, pat1, filter, nullptr, &indexes.back());
      if (!key.has_value()) {
        if (config_.arena_scratch) {
          arena.PopBack();
        } else {
          reduced_owned.pop_back();
        }
        indexes.pop_back();
        continue;
      }
      second_level[ext_index(*key)].push_back(
          static_cast<std::uint32_t>(indexes.size() - 1));
    }

    // The append phase is over; collect stable views of the survivors
    // (slot i of the table is sequence i of the store).
    std::vector<SequenceView>& reduced = scratch_.reduced;
    reduced.clear();
    if (config_.arena_scratch) {
      reduced.reserve(arena.size());
      for (std::size_t i = 0; i < arena.size(); ++i) {
        reduced.push_back(arena[i]);
      }
      result_.arena_bytes = arena.SizeBytes();
    } else {
      reduced.reserve(reduced_owned.size());
      for (const Sequence& r : reduced_owned) reduced.push_back(r);
    }

    // Physical level-1 NRR: average second-level size over this
    // first-level partition's size (Equation 2 on actual sizes).
    {
      std::uint64_t child_sum = 0;
      std::uint64_t children = 0;
      for (std::size_t j = 0; j < freq2.size(); ++j) {
        if (second_level[j].empty()) continue;
        child_sum += second_level[j].size();
        ++children;
      }
      if (children > 0) {
        result_.level1_ratio =
            static_cast<double>(child_sum) /
            (static_cast<double>(children) *
             static_cast<double>(members.size()));
        result_.has_level1 = true;
      }
    }

    // Process second-level partitions ascending, reassigning forward.
    // Reassignments always move a slot to a strictly later entry (the floor
    // is exclusive), so iterating entry j by reference while appending to
    // entries > j is safe — and not moving the slot vectors out keeps
    // their capacity for the next first-level partition.
    for (std::size_t j = 0; j < freq2.size(); ++j) {
      const std::vector<std::uint32_t>& slots = second_level[j];
      if (slots.empty()) continue;
      if (slots.size() >= delta) {
        DISC_OBS_INC(g_second_level_partitions);
        DISC_OBS_RECORD(g_second_level_size, slots.size());
        ProcessSecondLevel(Extend(pat1, freq2[j].first, freq2[j].second),
                           freq2[j].second, filter, reduced, indexes, slots,
                           delta);
      }
      for (const std::uint32_t slot : slots) {
        const auto next = ScanMinFrequentExt(reduced[slot], pat1, filter,
                                             &freq2[j], &indexes[slot]);
        if (next.has_value()) second_level[ext_index(*next)].push_back(slot);
      }
    }
  }

  void ProcessSecondLevel(const Sequence& pat2, ExtType e1_type,
                          const ExtFilter& filter2,
                          const std::vector<SequenceView>& reduced,
                          const std::deque<SequenceIndex>& indexes,
                          const std::vector<std::uint32_t>& slots,
                          std::uint32_t delta) {
    // Frequent 3-sequences with prefix pat2, again in one counting-array
    // scan (step 2.1.3.1).
    //
    // Apriori pre-filter (part of the candidate-bound pruning family, so
    // gated with it): pat2 = <(λ)> ⊕ e1, and a 3-sequence pat2 ⊕ (y, t)
    // contains the 2-subsequence <(λ)> ⊕ e' obtained by dropping e1's
    // item, where e' = (y, t) when e1 is itemset-form (y stays in, or
    // after, λ's transaction) and e' = (y, kSequence) when e1 is
    // sequence-form (y lands in a transaction strictly after λ's). The
    // partition is complete for prefix λ, so freq2 holds EVERY frequent
    // 2-sequence <(λ)> ⊕ e'; when e' is not in it, the 3-sequence's
    // support is provably below delta and the probe can be skipped before
    // it touches the counting array.
    CountingArray& counts = scratch_.counts;
    counts.Reset();
    const bool apriori = config_.bound_pruning;
    const bool e1_itemset = e1_type == ExtType::kItemset;
    std::uint64_t filtered = 0;
    for (const std::uint32_t slot : slots) {
      ForEachExtension(
          reduced[slot], pat2,
          [&](Item x, ExtType type) {
            if (apriori &&
                !filter2.IsFrequent(
                    x, e1_itemset ? type : ExtType::kSequence)) {
              ++filtered;
              return;
            }
            counts.Add(x, type, slot);
          },
          &indexes[slot]);
    }
    DISC_OBS_ADD(g_bound_filtered, filtered);
    const auto freq3 = counts.FrequentExtensions(delta);
    std::vector<Sequence> sorted_list;
    sorted_list.reserve(freq3.size());
    for (const auto& [x, type] : freq3) {
      Sequence p = Extend(pat2, x, type);
      result_.patterns.Add(p, counts.Count(x, type));
      sorted_list.push_back(std::move(p));
    }
    if (options_.max_length != 0 && options_.max_length <= 3) return;

    // Same prune one level down: a zero bound over freq3 means no
    // 4-sequence candidate with prefix pat2 exists, so skip building the
    // k-sorted database (whose Apriori-KMS initial scans dominate small
    // second-level partitions) and the DISC loop.
    if (config_.bound_pruning &&
        !CandidateBound::CanYieldNextLevel(freq3)) {
      DISC_OBS_INC(g_bound_skips);
      return;
    }

    // DISC for k >= 4 (step 2.1.3.2).
    PartitionMembers& pairs = scratch_.pairs;
    pairs.clear();
    pairs.reserve(slots.size());
    for (const std::uint32_t slot : slots) {
      pairs.push_back({reduced[slot], &indexes[slot], slot});
    }
    RunDiscLoop(pairs, std::move(sorted_list), 4, delta, config_.bilevel,
                max_item_, options_.max_length, &result_.patterns, nullptr,
                config_.use_avl, config_.encoded_order);
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  const DiscAll::Config& config_;
  const Item max_item_;
  Scratch& scratch_;
  PartitionResult& result_;
};

class Run {
 public:
  /// `ctl` and `tel` may be null (no cancellation/deadline/error plumbing,
  /// no live telemetry). `fl` may be null (steps 1-2 scan the database);
  /// non-null, it must have been built from `db` (core/first_level.h).
  Run(const SequenceDatabase& db, const MineOptions& options,
      const DiscAll::Config& config, RunControl* ctl, obs::RunTelemetry* tel,
      const FirstLevelState* fl)
      : db_(db),
        options_(options),
        config_(config),
        ctl_(ctl),
        tel_(tel),
        fl_(fl) {}

  bool ShouldStop() { return ctl_ != nullptr && ctl_->ShouldStop(); }

  PatternSet Execute() {
    const std::uint32_t delta = options_.min_support_count;
    if (db_.empty() || delta > db_.size()) return std::move(out_);
    const Item max_item = db_.max_item();

    // ---- Step 1: per-item supports and frequent 1-sequences — reused
    // from the provided first-level state (threshold-independent, see
    // core/first_level.h) or found in one scan.
    std::vector<std::uint32_t> item_support_local;
    std::vector<std::uint64_t> seen;
    if (fl_ == nullptr) {
      item_support_local.assign(max_item + 1, 0);
      seen.assign(max_item + 1, 0);
      for (Cid cid = 0; cid < db_.size(); ++cid) {
        for (const Item x : db_[cid].items()) {
          if (seen[x] != cid + 1u) {
            seen[x] = cid + 1u;
            ++item_support_local[x];
          }
        }
      }
    } else {
      DISC_OBS_INC(g_first_level_reuses);
    }
    const std::vector<std::uint32_t>& item_support =
        fl_ != nullptr ? fl_->item_support : item_support_local;
    for (Item x = 1; x <= max_item; ++x) {
      if (item_support[x] >= delta) {
        Sequence p;
        p.AppendNewItemset(x);
        out_.Add(p, item_support[x]);
      }
    }
    if (options_.max_length == 1) return std::move(out_);

    // ---- Step 2: static first-level partitions. The ⟨λ⟩-partition is
    // exactly the customer sequences containing λ — the serial
    // reassign-forward loop walks each sequence through the partitions of
    // all its items in ascending order, so membership never depends on
    // earlier partitions' results. Materializing the partitions up front
    // (second scan, stamps offset past the first scan's) makes them
    // independently minable — and, being threshold-independent, reusable
    // verbatim from the cached state (which holds every item's partition;
    // the lambdas loop below only walks the frequent ones).
    std::vector<std::vector<Cid>> members_local;
    if (fl_ == nullptr) {
      members_local.resize(max_item + 1);
      for (Item x = 1; x <= max_item; ++x) {
        if (item_support[x] >= delta) {
          members_local[x].reserve(item_support[x]);
        }
      }
      const std::uint64_t stamp_base = db_.size();
      for (Cid cid = 0; cid < db_.size(); ++cid) {
        for (const Item x : db_[cid].items()) {
          if (item_support[x] < delta) continue;
          if (seen[x] != stamp_base + cid + 1u) {
            seen[x] = stamp_base + cid + 1u;
            members_local[x].push_back(cid);
          }
        }
      }
    }
    const std::vector<std::vector<Cid>>& members_of =
        fl_ != nullptr ? fl_->members_of : members_local;
    std::vector<Item> lambdas;
    for (Item x = 1; x <= max_item; ++x) {
      if (item_support[x] >= delta) {
        DISC_CHECK(members_of[x].size() == item_support[x]);
        lambdas.push_back(x);
      }
    }
    if (tel_ != nullptr) {
      // Progress plan: one unit per ⟨λ⟩-partition, weighted by member
      // count (the ETA's cost surrogate — see obs/progress.h).
      std::uint64_t total_weight = 0;
      for (const Item x : lambdas) total_weight += members_of[x].size();
      tel_->BeginPartitions(lambdas.size(), total_weight);
      tel_->AddPatterns(out_.size());  // the frequent 1-sequences
    }

    // ---- Step 3: fan the partitions out (largest first, so no huge
    // partition lands last and stretches the tail), then fold the results
    // in ascending-λ order.
    std::vector<PartitionResult> results(lambdas.size());
    std::size_t nthreads = ResolveThreadCount(options_.threads);
    if (nthreads > lambdas.size()) {
      nthreads = lambdas.size() == 0 ? 1 : lambdas.size();
    }
    DISC_OBS_SET(g_mine_threads, static_cast<double>(nthreads));
    {
      DISC_OBS_SPAN("disc/partitions");
      if (nthreads <= 1) {
        Scratch scratch(max_item);
        for (std::size_t i = 0; i < lambdas.size(); ++i) {
          // Cancellation checkpoint: partitions are all-or-nothing, so a
          // stop between partitions keeps every emitted support exact.
          // The same boundary ticks the run telemetry.
          if (ShouldStop()) break;
          if (tel_ != nullptr) tel_->PartitionStarted(lambdas[i]);
          try {
            PartitionMiner(db_, options_, config_, PartitionBound(lambdas[i]),
                           &scratch, &results[i])
                .Mine(lambdas[i], members_of[lambdas[i]]);
          } catch (const std::exception& e) {
            if (tel_ != nullptr) tel_->PartitionAborted(lambdas[i]);
            if (ctl_ == nullptr) throw;
            ctl_->ReportError(Status::Internal(
                std::string("partition mining failed: ") + e.what()));
            break;
          }
          results[i].completed = true;
          if (tel_ != nullptr) {
            tel_->PartitionDone(lambdas[i], members_of[lambdas[i]].size(),
                                results[i].patterns.size());
          }
        }
      } else {
        std::vector<std::size_t> order(lambdas.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return members_of[lambdas[a]].size() >
                                  members_of[lambdas[b]].size();
                         });
        std::deque<Scratch> scratches;
        for (std::size_t w = 0; w < nthreads; ++w) {
          scratches.emplace_back(max_item);
        }
        ThreadPool pool(nthreads);
        for (const std::size_t i : order) {
          pool.Submit([this, i, &lambdas, &members_of, &scratches,
                       &results](std::size_t worker) {
            // Cancellation checkpoint: a stopped task leaves its result
            // incomplete, and the merge below discards it. The same
            // boundary ticks the run telemetry.
            if (ShouldStop()) return;
            if (tel_ != nullptr) tel_->PartitionStarted(lambdas[i]);
            try {
              PartitionMiner(db_, options_, config_,
                             PartitionBound(lambdas[i]), &scratches[worker],
                             &results[i])
                  .Mine(lambdas[i], members_of[lambdas[i]]);
            } catch (...) {
              if (tel_ != nullptr) tel_->PartitionAborted(lambdas[i]);
              throw;  // contained by the pool (TakeFirstError below)
            }
            results[i].completed = true;
            if (tel_ != nullptr) {
              tel_->PartitionDone(lambdas[i], members_of[lambdas[i]].size(),
                                  results[i].patterns.size());
            }
          });
        }
        pool.Wait();
        if (std::exception_ptr err = pool.TakeFirstError()) {
          // A worker threw (miner bug or injected fault): its partition is
          // incomplete and the pool drained the rest, so the merge below
          // degrades to the same exact-prefix partial result as a
          // cancellation. Surface the root cause as the run's Status; with
          // no RunControl to carry it, fall back to propagating.
          if (ctl_ == nullptr) std::rethrow_exception(err);
          try {
            std::rethrow_exception(err);
          } catch (const std::exception& e) {
            ctl_->ReportError(Status::Internal(
                std::string("worker task failed: ") + e.what()));
          } catch (...) {
            ctl_->ReportError(
                Status::Internal("worker task failed: unknown exception"));
          }
        }
      }
    }

    // ---- Step 4: deterministic merge. Patterns of length >= 2 with
    // minimum item λ are found only in the ⟨λ⟩-partition, so the union is
    // disjoint; folding ascending in λ keeps the gauge arithmetic (and
    // with it MineStats) independent of scheduling.
    //
    // On a stop (cancellation, deadline, contained worker failure) only
    // the leading run of completed partitions is merged, and the
    // 1-sequences from step 1 are trimmed to the same λ cutoff: every
    // pattern whose first item is >= the first incomplete λ is dropped.
    // Because the comparative order decides on position 0 first, what
    // remains is byte-for-byte the prefix of the full serial result below
    // ⟨(λ_cutoff)⟩ — exact supports, no gaps (docs/ROBUSTNESS.md).
    std::size_t merged = results.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].completed) {
        merged = i;
        break;
      }
    }
    std::uint64_t level0_partitions = 0;
    double level0_ratio_sum = 0.0;
    double level1_ratio_sum = 0.0;
    std::uint64_t level1_partitions = 0;
    std::size_t arena_bytes_peak = 0;
    for (std::size_t i = 0; i < merged; ++i) {
      const PartitionResult& r = results[i];
      for (const auto& [pattern, support] : r.patterns) {
        out_.Add(pattern, support);
      }
      ++level0_partitions;
      level0_ratio_sum += r.level0_ratio;
      if (r.has_level1) {
        level1_ratio_sum += r.level1_ratio;
        ++level1_partitions;
      }
      arena_bytes_peak = std::max(arena_bytes_peak, r.arena_bytes);
    }
    if (merged < lambdas.size()) out_.EraseFromFirstItem(lambdas[merged]);
    if (config_.arena_scratch && level0_partitions > 0) {
      DISC_OBS_SET(g_arena_bytes, static_cast<double>(arena_bytes_peak));
    }
    if (level0_partitions > 0) {
      DISC_OBS_SET(g_physical_nrr_level0,
                   level0_ratio_sum /
                       static_cast<double>(level0_partitions));
    }
    if (level1_partitions > 0) {
      DISC_OBS_SET(g_physical_nrr_level1,
                   level1_ratio_sum /
                       static_cast<double>(level1_partitions));
    }
    return std::move(out_);
  }

 private:
  /// Sizing bound for one ⟨λ⟩-partition's tables: the cached alphabet's
  /// largest item when first-level state was provided, the global maximum
  /// otherwise. Sizing only — the emitted patterns are identical either
  /// way (core/first_level.h).
  Item PartitionBound(Item lambda) const {
    return fl_ != nullptr ? fl_->PartitionMaxItem(lambda) : db_.max_item();
  }

  const SequenceDatabase& db_;
  const MineOptions& options_;
  const DiscAll::Config& config_;
  RunControl* ctl_;
  obs::RunTelemetry* tel_;
  const FirstLevelState* fl_;
  PatternSet out_;
};

}  // namespace

PatternSet DiscAll::DoMine(const SequenceDatabase& db,
                           const MineOptions& options) {
  DISC_CHECK(options.min_support_count >= 1);
  // A provided first-level state must describe this database — a stale
  // state would silently mine wrong partitions (core/first_level.h).
  const FirstLevelState* fl = first_level_.get();
  if (fl != nullptr) DISC_CHECK(fl->Matches(db));
  Run run(db, options, config_, run_control(), telemetry(), fl);
  return run.Execute();
}

}  // namespace disc
