#include "disc/core/nrr.h"

#include <cmath>
#include <limits>
#include <map>

#include "disc/obs/metrics.h"
#include "disc/order/compare.h"

namespace disc {

DISC_OBS_COUNTER(g_nrr_levels, "nrr.levels_evaluated");
DISC_OBS_COUNTER(g_nrr_prefix_groups, "nrr.prefix_groups");

std::vector<double> AverageNrrByLevel(const PatternSet& patterns,
                                      std::size_t db_size) {
  const std::uint32_t max_len = patterns.MaxLength();
  std::vector<double> out;
  if (max_len == 0 || db_size == 0) return out;
  DISC_OBS_ADD(g_nrr_levels, max_len);

  // Level 0: the database itself; children are the frequent 1-sequences.
  {
    std::uint64_t sum = 0;
    std::size_t n = 0;
    for (const auto& [p, sup] : patterns) {
      if (p.Length() == 1) {
        sum += sup;
        ++n;
      }
    }
    out.push_back(n == 0 ? std::numeric_limits<double>::quiet_NaN()
                         : static_cast<double>(sum) /
                               (static_cast<double>(n) *
                                static_cast<double>(db_size)));
  }

  // Level j >= 1: group frequent (j+1)-sequences by their j-prefix.
  for (std::uint32_t j = 1; j < max_len; ++j) {
    std::map<Sequence, std::pair<std::uint64_t, std::size_t>, SequenceLess>
        by_prefix;  // prefix -> (sum of child supports, #children)
    for (const auto& [p, sup] : patterns) {
      if (p.Length() != j + 1) continue;
      auto& agg = by_prefix[p.Prefix(j)];
      agg.first += sup;
      agg.second += 1;
    }
    if (by_prefix.empty()) {
      out.push_back(std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    DISC_OBS_ADD(g_nrr_prefix_groups, by_prefix.size());
    double total = 0.0;
    std::size_t partitions = 0;
    for (const auto& [prefix, agg] : by_prefix) {
      const std::uint32_t parent_sup = patterns.SupportOf(prefix);
      if (parent_sup == 0) continue;  // defensive; prefix must be frequent
      total += static_cast<double>(agg.first) /
               (static_cast<double>(agg.second) *
                static_cast<double>(parent_sup));
      ++partitions;
    }
    out.push_back(partitions == 0
                      ? std::numeric_limits<double>::quiet_NaN()
                      : total / static_cast<double>(partitions));
  }
  return out;
}

}  // namespace disc
