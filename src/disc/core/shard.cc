#include "disc/core/shard.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "disc/common/check.h"
#include "disc/core/first_level.h"

namespace disc {
namespace {

// Distinct-per-customer support of every item (the stamp trick of
// BuildFirstLevelState scan 1, without the rest of the state — planning
// must stay cheap next to the pack itself).
std::vector<std::uint32_t> CountItemSupport(const SequenceDatabase& db) {
  std::vector<std::uint32_t> support(db.max_item() + 1, 0);
  std::vector<std::uint64_t> seen(db.max_item() + 1, 0);
  for (Cid cid = 0; cid < db.size(); ++cid) {
    for (const Item x : db[cid].items()) {
      if (seen[x] != cid + 1u) {
        seen[x] = cid + 1u;
        ++support[x];
      }
    }
  }
  return support;
}

void MergeInto(PatternSet* merged, const PatternSet& part) {
  for (const auto& [pattern, sup] : part) {
    merged->Add(pattern, sup);
  }
}

}  // namespace

ShardPlan PlanShards(const SequenceDatabase& db, std::uint32_t shard_count) {
  DISC_CHECK_MSG(shard_count >= 1, "shard_count must be >= 1");
  ShardPlan plan;
  plan.total_customers = db.size();
  plan.max_item = db.max_item();
  if (db.max_item() == 0) {
    plan.shards.push_back(ShardSpec{0, 1, 1});
    return plan;
  }

  const std::vector<std::uint32_t> support = CountItemSupport(db);
  std::uint64_t total_work = 0;
  for (Item x = 1; x <= db.max_item(); ++x) total_work += support[x];

  const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      shard_count, db.max_item()));

  // Greedy contiguous split balanced by partition membership count: close
  // the current shard once it holds its fair share of the work still
  // unassigned, or when exactly enough λ values remain to give every
  // later shard one.
  std::uint64_t done = 0;
  std::uint64_t acc = 0;
  Item lo = 1;
  for (Item x = 1; x <= db.max_item(); ++x) {
    acc += support[x];
    const std::uint32_t k = static_cast<std::uint32_t>(plan.shards.size());
    const std::uint32_t remaining_shards = n - k - 1;  // after this one
    const Item remaining_vals = db.max_item() - x;
    bool close;
    if (remaining_vals == remaining_shards) {
      close = true;  // forced: later shards each need a λ value
    } else if (remaining_shards > 0) {
      close = acc * (n - k) >= total_work - done;
    } else {
      close = x == db.max_item();
    }
    if (close) {
      plan.shards.push_back(ShardSpec{k, lo, x});
      done += acc;
      acc = 0;
      lo = x + 1;
    }
  }
  DISC_CHECK(plan.shards.size() == n);
  DISC_CHECK(plan.shards.back().lambda_hi == db.max_item());
  return plan;
}

SequenceDatabase ExtractShard(const SequenceDatabase& db,
                              const ShardSpec& spec) {
  const auto in_range = [&spec](SequenceView v) {
    for (const Item x : v.items()) {
      if (x >= spec.lambda_lo && x <= spec.lambda_hi) return true;
    }
    return false;
  };
  // Sizing pre-pass so the shard arena is built without a single regrow.
  std::size_t seqs = 0, txns = 0, items = 0;
  for (Cid cid = 0; cid < db.size(); ++cid) {
    const SequenceView v = db[cid];
    if (!in_range(v)) continue;
    ++seqs;
    txns += v.NumTransactions();
    items += v.Length();
  }
  SequenceDatabase out;
  out.Reserve(items, txns, seqs);
  for (Cid cid = 0; cid < db.size(); ++cid) {
    const SequenceView v = db[cid];
    if (in_range(v)) out.Add(v);
  }
  return out;
}

std::string ShardPath(const std::string& base, std::uint32_t index,
                      std::uint32_t count) {
  std::string stem = base;
  if (IsDsaPath(stem)) stem.resize(stem.size() - 4);
  return stem + ".shard" + std::to_string(index) + "of" +
         std::to_string(count) + ".dsa";
}

Status PackShards(const SequenceDatabase& db, const std::string& base,
                  std::uint32_t shard_count,
                  std::vector<std::string>* paths) {
  const ShardPlan plan = PlanShards(db, shard_count);
  const std::uint32_t n = static_cast<std::uint32_t>(plan.shards.size());
  for (const ShardSpec& spec : plan.shards) {
    const SequenceDatabase shard = ExtractShard(db, spec);
    DsaShardMeta meta;
    meta.lambda_lo = spec.lambda_lo;
    meta.lambda_hi = spec.lambda_hi;
    meta.shard_index = spec.index;
    meta.shard_count = n;
    meta.total_customers = plan.total_customers;
    const std::string path = ShardPath(base, spec.index, n);
    DISC_RETURN_IF_ERROR(SaveDsa(shard, path, meta));
    if (paths != nullptr) paths->push_back(path);
  }
  return Status::Ok();
}

MineResult MineShardRange(Miner& miner, const SequenceDatabase& shard_db,
                          const MineOptions& options, Item lambda_lo,
                          Item lambda_hi) {
  auto* consumer = dynamic_cast<FirstLevelConsumer*>(&miner);
  if (consumer == nullptr) {
    MineResult result;
    result.status = Status::InvalidArgument(
        miner.name() +
        " cannot mine a λ-range: it does not consume first-level state");
    return result;
  }
  const std::shared_ptr<const FirstLevelState> base =
      BuildFirstLevelState(shard_db);
  // Mask every out-of-range λ: support 0 means the partition scheduler
  // never visits it, so the miner emits exactly the patterns whose first
  // item lies in [lambda_lo, lambda_hi]. The fingerprint fields stay
  // untouched — the state is still "of" shard_db.
  auto masked = std::make_shared<FirstLevelState>(*base);
  for (std::size_t x = 0; x < masked->item_support.size(); ++x) {
    if (x < lambda_lo || x > lambda_hi) {
      masked->item_support[x] = 0;
      masked->members_of[x].clear();
      masked->alphabet_of[x].clear();
    }
  }
  consumer->ProvideFirstLevel(std::move(masked));
  MineResult result = miner.TryMine(shard_db, options);
  consumer->ProvideFirstLevel(nullptr);
  return result;
}

MineResult MineSharded(const SequenceDatabase& db,
                       const std::string& miner_name,
                       const MineOptions& options,
                       std::uint32_t shard_count) {
  MineResult merged;
  auto miner_or = TryCreateMiner(miner_name);
  if (!miner_or.ok()) {
    merged.status = miner_or.status();
    return merged;
  }
  const ShardPlan plan = PlanShards(db, shard_count);
  for (const ShardSpec& spec : plan.shards) {
    const SequenceDatabase shard = ExtractShard(db, spec);
    MineResult part = MineShardRange(**miner_or, shard, options,
                                     spec.lambda_lo, spec.lambda_hi);
    MergeInto(&merged.patterns, part.patterns);
    if (!part.status.ok()) {
      merged.status = part.status;
      return merged;  // comparative-order prefix up to the stopped shard
    }
  }
  return merged;
}

MineResult MineShardFiles(const std::vector<std::string>& paths,
                          const std::string& miner_name,
                          const MineOptions& options) {
  MineResult merged;
  if (paths.empty()) {
    merged.status = Status::InvalidArgument("no shard files given");
    return merged;
  }
  auto miner_or = TryCreateMiner(miner_name);
  if (!miner_or.ok()) {
    merged.status = miner_or.status();
    return merged;
  }
  Item expect_lo = 1;
  std::uint64_t total_customers = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    DsaInfo info;
    auto db_or = TryLoadDsa(paths[i], &info);
    if (!db_or.ok()) {
      merged.status = db_or.status();
      return merged;
    }
    // The headers must describe the shard set the caller claims: index
    // order, matching cardinality, contiguous λ coverage, one corpus.
    if (info.shard.shard_index != i ||
        info.shard.shard_count != paths.size()) {
      merged.status = Status::InvalidArgument(
          paths[i] + ": header says shard " +
          std::to_string(info.shard.shard_index) + " of " +
          std::to_string(info.shard.shard_count) + ", given as shard " +
          std::to_string(i) + " of " + std::to_string(paths.size()));
      return merged;
    }
    if (info.shard.lambda_lo != expect_lo) {
      merged.status = Status::InvalidArgument(
          paths[i] + ": λ ranges not contiguous (starts at " +
          std::to_string(info.shard.lambda_lo) + ", expected " +
          std::to_string(expect_lo) + ")");
      return merged;
    }
    if (i == 0) {
      total_customers = info.shard.total_customers;
    } else if (info.shard.total_customers != total_customers) {
      merged.status = Status::InvalidArgument(
          paths[i] + ": shard is from a different corpus (total_customers " +
          std::to_string(info.shard.total_customers) + " != " +
          std::to_string(total_customers) + ")");
      return merged;
    }
    MineResult part =
        MineShardRange(**miner_or, *db_or, options, info.shard.lambda_lo,
                       info.shard.lambda_hi);
    MergeInto(&merged.patterns, part.patterns);
    if (!part.status.ok()) {
      merged.status = part.status;
      return merged;
    }
    expect_lo = info.shard.lambda_hi + 1;
  }
  return merged;
}

}  // namespace disc
