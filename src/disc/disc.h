// Umbrella header: the whole libdisc public API in one include.
//
//   #include "disc/disc.h"
//
// See README.md for a tour; the paper being implemented is Chiu, Wu & Chen,
// "An Efficient Algorithm for Mining Frequent Sequences by a New Strategy
// without Support Counting", ICDE 2004.
#ifndef DISC_DISC_H_
#define DISC_DISC_H_

// Robustness substrate: recoverable errors, run control, fault injection.
#include "disc/common/status.h"     // IWYU pragma: export
#include "disc/common/cancel.h"     // IWYU pragma: export
#include "disc/common/failpoint.h"  // IWYU pragma: export
#include "disc/common/file_util.h"  // IWYU pragma: export

// Sequence substrate.
#include "disc/seq/types.h"        // IWYU pragma: export
#include "disc/seq/itemset.h"      // IWYU pragma: export
#include "disc/seq/sequence.h"     // IWYU pragma: export
#include "disc/seq/database.h"     // IWYU pragma: export
#include "disc/seq/parse.h"        // IWYU pragma: export
#include "disc/seq/io.h"           // IWYU pragma: export
#include "disc/seq/containment.h"  // IWYU pragma: export
#include "disc/seq/extension.h"    // IWYU pragma: export
#include "disc/seq/index.h"        // IWYU pragma: export
#include "disc/seq/storage.h"      // IWYU pragma: export

// The comparative order (and the SIMD tier knobs for its scan kernels).
#include "disc/order/compare.h"  // IWYU pragma: export
#include "disc/order/simd.h"     // IWYU pragma: export

// Mining algorithms and results.
#include "disc/algo/miner.h"        // IWYU pragma: export
#include "disc/algo/pattern_set.h"  // IWYU pragma: export
#include "disc/algo/pattern_io.h"   // IWYU pragma: export
#include "disc/algo/postprocess.h"  // IWYU pragma: export
#include "disc/algo/topk.h"         // IWYU pragma: export

// The paper's core, for callers wanting the pieces directly.
#include "disc/core/disc_all.h"          // IWYU pragma: export
#include "disc/core/dynamic_disc_all.h"  // IWYU pragma: export
#include "disc/core/discovery.h"         // IWYU pragma: export
#include "disc/core/first_level.h"       // IWYU pragma: export
#include "disc/core/nrr.h"               // IWYU pragma: export
#include "disc/core/shard.h"             // IWYU pragma: export
#include "disc/core/weighted.h"          // IWYU pragma: export

// The engine layer (resident database + query cache + sessions), the
// seqmined line protocol served over it, and the socket transport with
// admission control that puts it on the network.
#include "disc/engine/query_cache.h"  // IWYU pragma: export
#include "disc/engine/engine.h"       // IWYU pragma: export
#include "disc/server/protocol.h"     // IWYU pragma: export
#include "disc/server/admission.h"    // IWYU pragma: export
#include "disc/server/server.h"       // IWYU pragma: export
#include "disc/server/transport.h"    // IWYU pragma: export

// Synthetic data.
#include "disc/gen/quest.h"  // IWYU pragma: export

// Observability: metrics registry, span tracer, per-run MineStats, and the
// live-telemetry layer (run registry/progress, JSONL event log, Prometheus
// exposition, background sampler).
#include "disc/obs/metrics.h"     // IWYU pragma: export
#include "disc/obs/mine_stats.h"  // IWYU pragma: export
#include "disc/obs/trace.h"       // IWYU pragma: export
#include "disc/obs/progress.h"    // IWYU pragma: export
#include "disc/obs/event_log.h"   // IWYU pragma: export
#include "disc/obs/expose.h"      // IWYU pragma: export
#include "disc/obs/sampler.h"     // IWYU pragma: export

// Bench reporting: banners, machine-readable reports, flag wiring.
#include "disc/benchlib/report.h"  // IWYU pragma: export

#endif  // DISC_DISC_H_
