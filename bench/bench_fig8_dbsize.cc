// Figure 8 — "Comparisons on database sizes": runtime of DISC-all vs
// PrefixSpan vs Pseudo as the number of customers grows, Quest setting of
// Table 11 (slen 10, tlen 2.5, nitems 1K, seq.patlen 4), minimum support
// 0.0025.
//
// Paper sweep: 50K..500K customers. Default here is scaled down for a
// single-core container; pass --full for the paper sizes, or
// --sizes=a,b,c / --minsup=F to customize.
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_fig8_dbsize",
                      "[--sizes=N,N,...] [--minsup=F] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  std::vector<std::uint32_t> sizes =
      full ? std::vector<std::uint32_t>{50000, 100000, 200000, 300000,
                                        400000, 500000}
           : std::vector<std::uint32_t>{2000, 5000, 10000, 20000};
  if (flags.Has("sizes")) {
    sizes.clear();
    const std::string spec = flags.GetString("sizes", "");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      sizes.push_back(static_cast<std::uint32_t>(std::stoul(spec.substr(pos))));
      const std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  const double minsup = flags.GetDouble("minsup", 0.0025);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  ObsSession obs("fig8_dbsize", flags);

  PrintBanner("Figure 8: runtime vs database size (minsup = " +
                  std::to_string(minsup) + ")",
              "Quest slen=10 tlen=2.5 nitems=1K seq.patlen=4; algorithms: "
              "disc-all (bi-level), prefixspan, pseudo",
              !full);

  TablePrinter table({"ncust", "delta", "disc-all (s)", "prefixspan (s)",
                      "pseudo (s)", "#patterns", "maxlen"});
  for (const std::uint32_t ncust : sizes) {
    QuestParams params = Fig8Params(ncust);
    params.seed = seed;
    const SequenceDatabase db = GenerateQuestDatabase(params);
    MineOptions options;
    options.min_support_count =
        MineOptions::CountForFraction(db.size(), minsup);
    options.threads = ThreadsFromFlags(flags);
    const MineTiming disc_t =
        TimeMine(CreateMiner("disc-all").get(), db, options);
    const MineTiming ps_t =
        TimeMine(CreateMiner("prefixspan").get(), db, options);
    const MineTiming pseudo_t =
        TimeMine(CreateMiner("pseudo").get(), db, options);
    WorkloadInfo workload = MakeWorkloadInfo(db, "quest:fig8");
    workload.min_support_count = options.min_support_count;
    obs.SetWorkload(workload);
    obs.Record(disc_t.stats);
    obs.Record(ps_t.stats);
    obs.Record(pseudo_t.stats);
    table.AddRow({std::to_string(ncust),
                  std::to_string(options.min_support_count),
                  TablePrinter::Num(disc_t.seconds),
                  TablePrinter::Num(ps_t.seconds),
                  TablePrinter::Num(pseudo_t.seconds),
                  std::to_string(disc_t.num_patterns),
                  std::to_string(disc_t.max_length)});
    std::printf("  [%s] done: %s\n", std::to_string(ncust).c_str(),
                DescribeDatabase(db).c_str());
    std::fflush(stdout);
  }
  table.Print();
  return obs.Finish() ? 0 : 1;
}
