// Parallel scaling of the partition-scheduled miners: wall time, speedup
// over the serial run, and peak RSS for disc-all and dynamic-disc-all as
// --threads grows, on the Figure 8 Quest workload.
//
// Every multi-threaded run is checked byte-for-byte against the serial
// PatternSet (the deterministic-merge guarantee of docs/PARALLELISM.md);
// any mismatch fails the binary. A machine-readable
// BENCH_parallel_scaling.json is written by default (--json-out overrides
// the path, --json-out= with an empty value suppresses it).
//
//   $ ./bench_parallel [--ncust=10000] [--minsup=0.01]
//                      [--threads-list=1,2,4,8] [--seed=42]
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/common/thread_pool.h"
#include "disc/common/timer.h"

using namespace disc;

namespace {

std::vector<std::uint32_t> ParseThreadsList(const std::string& spec) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    out.push_back(static_cast<std::uint32_t>(std::stoul(spec.substr(pos))));
    const std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_parallel",
                      "[--ncust=N] [--minsup=F] [--threads-list=1,2,4] [--seed=N]")) {
    return 0;
  }
  const std::uint32_t ncust =
      static_cast<std::uint32_t>(flags.GetInt("ncust", 10000));
  const double minsup = flags.GetDouble("minsup", 0.01);
  const std::vector<std::uint32_t> threads_list =
      ParseThreadsList(flags.GetString("threads-list", "1,2,4,8"));
  if (threads_list.empty()) {
    std::fprintf(stderr, "bench_parallel: empty --threads-list\n");
    return 2;
  }

  QuestParams params = Fig8Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);

  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), minsup);

  PrintBanner(
      "Parallel scaling: partition-scheduled disc-all / dynamic-disc-all "
      "(minsup = " + std::to_string(minsup) + ")",
      "Quest slen=10 tlen=2.5 nitems=1K seq.patlen=4, ncust=" +
          std::to_string(ncust) + "; " + std::to_string(ResolveThreadCount(0)) +
          " hardware threads",
      false);

  ObsSession obs("parallel_scaling", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:fig8");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);
  BenchReport report("parallel_scaling", workload);

  bool identical = true;
  TablePrinter table({"algo", "threads", "time (s)", "speedup", "#patterns",
                      "peak RSS (MB)", "identical"});
  for (const std::string algo : {"disc-all", "dynamic-disc-all"}) {
    // The serial run is both the correctness baseline (every thread count
    // must reproduce it byte-for-byte) and the speedup denominator.
    const std::unique_ptr<Miner> baseline_miner = CreateMiner(algo);
    options.threads = 1;
    Timer baseline_timer;
    const std::string baseline =
        baseline_miner->Mine(db, options).ToString();
    const double serial_seconds = baseline_timer.Seconds();
    for (const std::uint32_t threads : threads_list) {
      const std::unique_ptr<Miner> miner = CreateMiner(algo);
      options.threads = threads;
      Timer timer;
      const PatternSet patterns = miner->Mine(db, options);
      const double seconds = timer.Seconds();
      const bool same = patterns.ToString() == baseline;
      identical = identical && same;
      obs.Record(miner->last_stats());
      report.AddRun(miner->last_stats());
      table.AddRow(
          {algo, std::to_string(threads), TablePrinter::Num(seconds),
           TablePrinter::Num(seconds > 0.0 ? serial_seconds / seconds : 0.0),
           std::to_string(patterns.size()),
           TablePrinter::Num(
               static_cast<double>(miner->last_stats().peak_rss_bytes) /
               (1024.0 * 1024.0)),
           same ? "yes" : "NO"});
      std::printf("  [%s --threads=%u] %.3fs (%zu patterns)%s\n", algo.c_str(),
                  threads, seconds, patterns.size(),
                  same ? "" : "  ** PATTERN MISMATCH **");
      std::fflush(stdout);
    }
  }
  table.Print();

  bool ok = obs.Finish();
  std::string json_path = flags.GetString("json-out", "");
  if (json_path.empty() && !flags.Has("json-out")) {
    json_path = "BENCH_parallel_scaling.json";
  }
  if (!json_path.empty() && obs.json_out().empty()) {
    std::string error;
    if (report.WriteJson(json_path, &error)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "bench_parallel: %s\n", error.c_str());
      ok = false;
    }
  }
  if (!identical) {
    std::fprintf(stderr,
                 "bench_parallel: multi-threaded PatternSet differs from the "
                 "serial baseline\n");
    return 1;
  }
  return ok ? 0 : 1;
}
