// Microbenchmarks (google-benchmark) for the library's hot primitives:
// comparative order, containment, extension scan, Apriori-KMS, the
// locative AVL tree, the counting array, and Quest generation throughput.
#include <benchmark/benchmark.h>

#include "disc/core/counting_array.h"
#include "disc/core/kms.h"
#include "disc/core/locative_avl.h"
#include "disc/gen/quest.h"
#include "disc/order/compare.h"
#include "disc/seq/containment.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

SequenceDatabase MicroDb() {
  QuestParams p;
  p.ncust = 2000;
  p.nitems = 200;
  p.slen = 8;
  p.tlen = 3;
  p.npats = 200;
  p.nlits = 400;
  return GenerateQuestDatabase(p);
}

void BM_CompareSequences(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  std::size_t i = 0;
  for (auto _ : state) {
    const Sequence& a = db[i % db.size()];
    const Sequence& b = db[(i * 7 + 1) % db.size()];
    benchmark::DoNotOptimize(CompareSequences(a, b));
    ++i;
  }
}
BENCHMARK(BM_CompareSequences);

void BM_Containment(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  Sequence pattern;
  pattern.AppendNewItemset(3);
  pattern.AppendNewItemset(8);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contains(db[i % db.size()], pattern));
    ++i;
  }
}
BENCHMARK(BM_Containment);

void BM_ScanExtensions(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  Sequence pattern;
  pattern.AppendNewItemset(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanExtensions(db[i % db.size()], pattern));
    ++i;
  }
}
BENCHMARK(BM_ScanExtensions);

void BM_AprioriKms(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  std::vector<Sequence> list;
  for (Item x = 1; x <= 20; ++x) {
    Sequence s;
    s.AppendNewItemset(x);
    list.push_back(s);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AprioriKms(db[i % db.size()], list));
    ++i;
  }
}
BENCHMARK(BM_AprioriKms);

void BM_LocativeAvlInsertSelect(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  for (auto _ : state) {
    LocativeAvlTree tree;
    for (std::uint32_t h = 0; h < 512; ++h) {
      tree.Insert(db[h % db.size()].Prefix(3), h);
    }
    benchmark::DoNotOptimize(tree.SelectKey(tree.size() / 2));
    std::vector<std::uint32_t> out;
    tree.PopMinBucket(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LocativeAvlInsertSelect);

void BM_CountingArray(benchmark::State& state) {
  CountingArray counts(1000);
  std::uint32_t i = 0;
  for (auto _ : state) {
    counts.Add((i * 37) % 1000 + 1,
               (i & 1) ? ExtType::kItemset : ExtType::kSequence, i % 64);
    if (++i % 4096 == 0) counts.Reset();
  }
}
BENCHMARK(BM_CountingArray);

void BM_QuestGenerate(benchmark::State& state) {
  for (auto _ : state) {
    QuestParams p;
    p.ncust = static_cast<std::uint32_t>(state.range(0));
    p.nitems = 500;
    benchmark::DoNotOptimize(GenerateQuestDatabase(p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuestGenerate)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace disc

BENCHMARK_MAIN();
