// Microbenchmarks (google-benchmark) for the library's hot primitives:
// comparative order, containment, extension scan, Apriori-KMS, the
// locative AVL tree, the counting array, and Quest generation throughput.
//
// Besides the google-benchmark suite, the binary doubles as the
// observability smoke driver: any of --stats, --trace-out=<file>,
// --json-out=<file>, or --validate switches it into a sweep of every
// miner over a tiny Quest workload, recording MineStats per run.
// --validate re-parses the emitted report through
// ValidateBenchReportJson and fails the process on schema drift (this is
// what the ctest smoke test runs).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/core/counting_array.h"
#include "disc/core/kms.h"
#include "disc/core/locative_avl.h"
#include "disc/gen/quest.h"
#include "disc/order/compare.h"
#include "disc/seq/containment.h"
#include "disc/seq/extension.h"

namespace disc {
namespace {

SequenceDatabase MicroDb() {
  QuestParams p;
  p.ncust = 2000;
  p.nitems = 200;
  p.slen = 8;
  p.tlen = 3;
  p.npats = 200;
  p.nlits = 400;
  return GenerateQuestDatabase(p);
}

void BM_CompareSequences(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  std::size_t i = 0;
  for (auto _ : state) {
    const Sequence& a = db[i % db.size()];
    const Sequence& b = db[(i * 7 + 1) % db.size()];
    benchmark::DoNotOptimize(CompareSequences(a, b));
    ++i;
  }
}
BENCHMARK(BM_CompareSequences);

void BM_Containment(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  Sequence pattern;
  pattern.AppendNewItemset(3);
  pattern.AppendNewItemset(8);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contains(db[i % db.size()], pattern));
    ++i;
  }
}
BENCHMARK(BM_Containment);

void BM_ScanExtensions(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  Sequence pattern;
  pattern.AppendNewItemset(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanExtensions(db[i % db.size()], pattern));
    ++i;
  }
}
BENCHMARK(BM_ScanExtensions);

void BM_AprioriKms(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  std::vector<Sequence> list;
  for (Item x = 1; x <= 20; ++x) {
    Sequence s;
    s.AppendNewItemset(x);
    list.push_back(s);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AprioriKms(db[i % db.size()], list));
    ++i;
  }
}
BENCHMARK(BM_AprioriKms);

void BM_LocativeAvlInsertSelect(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  for (auto _ : state) {
    LocativeAvlTree tree;
    for (std::uint32_t h = 0; h < 512; ++h) {
      tree.Insert(db[h % db.size()].Prefix(3), h);
    }
    benchmark::DoNotOptimize(tree.SelectKey(tree.size() / 2));
    std::vector<std::uint32_t> out;
    tree.PopMinBucket(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LocativeAvlInsertSelect);

void BM_CountingArray(benchmark::State& state) {
  CountingArray counts(1000);
  std::uint32_t i = 0;
  for (auto _ : state) {
    counts.Add((i * 37) % 1000 + 1,
               (i & 1) ? ExtType::kItemset : ExtType::kSequence, i % 64);
    if (++i % 4096 == 0) counts.Reset();
  }
}
BENCHMARK(BM_CountingArray);

void BM_QuestGenerate(benchmark::State& state) {
  for (auto _ : state) {
    QuestParams p;
    p.ncust = static_cast<std::uint32_t>(state.range(0));
    p.nitems = 500;
    benchmark::DoNotOptimize(GenerateQuestDatabase(p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuestGenerate)->Arg(500)->Arg(2000);

// Runs every miner once over a tiny Quest workload and routes the
// MineStats through ObsSession (--stats / --json-out / --trace-out).
// With --validate the serialized report is parsed back and checked
// against the schema; any violation fails the run.
int RunMinerSweep(const Flags& flags) {
  QuestParams p;
  p.ncust = static_cast<std::uint32_t>(flags.GetInt("ncust", 300));
  p.nitems = 100;
  p.slen = 6;
  p.tlen = 2.5;
  p.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(p);
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(
      db.size(), flags.GetDouble("minsup", 0.05));
  options.threads = ThreadsFromFlags(flags);

  ObsSession obs("micro", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:micro");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);
  BenchReport report("micro", workload);

  std::printf("miner sweep: %s, delta=%u\n", DescribeDatabase(db).c_str(),
              options.min_support_count);
  for (const std::string& name : AllMinerNames()) {
    const MineTiming t = TimeMine(CreateMiner(name).get(), db, options);
    obs.Record(t.stats);
    report.AddRun(t.stats);
    std::printf("  %-18s %8.3fs  %zu patterns\n", name.c_str(), t.seconds,
                t.num_patterns);
  }
  bool ok = obs.Finish();
  if (flags.GetBool("validate", false)) {
    std::string error;
    if (ValidateBenchReportJson(report.ToJson(), &error)) {
      std::printf("validate: report JSON matches the schema\n");
    } else {
      std::fprintf(stderr, "validate: %s\n", error.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (flags.Has("json-out") || flags.Has("trace-out") ||
      flags.GetBool("stats", false) || flags.GetBool("validate", false)) {
    return disc::RunMinerSweep(flags);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
