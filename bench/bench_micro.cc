// Microbenchmarks (google-benchmark) for the library's hot primitives:
// comparative order, containment, extension scan, Apriori-KMS, the
// locative AVL tree, the counting array, and Quest generation throughput.
//
// Besides the google-benchmark suite, the binary doubles as the
// observability smoke driver: any of --stats, --trace-out=<file>,
// --json-out=<file>, or --validate switches it into a sweep of every
// miner over a tiny Quest workload, recording MineStats per run.
// --validate re-parses the emitted report through
// ValidateBenchReportJson and fails the process on schema drift (this is
// what the ctest smoke test runs).
//
// --alloc-compare switches into the allocation/locality comparison: the
// same DiscAll mine is run with the per-worker scratch SequenceArena
// (default) and with the legacy owning-Sequence scratch, and the heap
// bytes allocated plus wall time of each are reported (and written into
// the --json-out report as "bench.alloc.*" gauges). The run fails unless
// the arena path allocates strictly fewer bytes and both paths produce
// byte-identical patterns.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/timer.h"
#include "disc/core/counting_array.h"
#include "disc/core/disc_all.h"
#include "disc/core/kms.h"
#include "disc/core/locative_avl.h"
#include "disc/gen/quest.h"
#include "disc/order/compare.h"
#include "disc/seq/containment.h"
#include "disc/seq/extension.h"

namespace {
// Heap metering for --alloc-compare, local to this binary: the replaced
// global operator new routes through malloc and tallies request bytes.
// Cumulative allocation volume, not live bytes — deallocation is not
// subtracted, so the counter measures churn, which is what the arena path
// is meant to eliminate.
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_calls{0};
}  // namespace

// GCC pairs `new` with `free` at inlined call sites and warns, but pairing
// a replaced malloc-backed operator new with free is exactly the contract
// here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace disc {
namespace {

SequenceDatabase MicroDb() {
  QuestParams p;
  p.ncust = 2000;
  p.nitems = 200;
  p.slen = 8;
  p.tlen = 3;
  p.npats = 200;
  p.nlits = 400;
  return GenerateQuestDatabase(p);
}

void BM_CompareSequences(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  std::size_t i = 0;
  for (auto _ : state) {
    const SequenceView a = db[i % db.size()];
    const SequenceView b = db[(i * 7 + 1) % db.size()];
    benchmark::DoNotOptimize(CompareSequences(a, b));
    ++i;
  }
}
BENCHMARK(BM_CompareSequences);

void BM_Containment(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  Sequence pattern;
  pattern.AppendNewItemset(3);
  pattern.AppendNewItemset(8);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contains(db[i % db.size()], pattern));
    ++i;
  }
}
BENCHMARK(BM_Containment);

void BM_ScanExtensions(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  Sequence pattern;
  pattern.AppendNewItemset(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanExtensions(db[i % db.size()], pattern));
    ++i;
  }
}
BENCHMARK(BM_ScanExtensions);

void BM_AprioriKms(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  std::vector<Sequence> list;
  for (Item x = 1; x <= 20; ++x) {
    Sequence s;
    s.AppendNewItemset(x);
    list.push_back(s);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AprioriKms(db[i % db.size()], list));
    ++i;
  }
}
BENCHMARK(BM_AprioriKms);

void BM_LocativeAvlInsertSelect(benchmark::State& state) {
  const SequenceDatabase db = MicroDb();
  for (auto _ : state) {
    LocativeAvlTree tree;
    for (std::uint32_t h = 0; h < 512; ++h) {
      tree.Insert(db[h % db.size()].Prefix(3), h);
    }
    benchmark::DoNotOptimize(tree.SelectKey(tree.size() / 2));
    std::vector<std::uint32_t> out;
    tree.PopMinBucket(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LocativeAvlInsertSelect);

void BM_CountingArray(benchmark::State& state) {
  CountingArray counts(1000);
  std::uint32_t i = 0;
  for (auto _ : state) {
    counts.Add((i * 37) % 1000 + 1,
               (i & 1) ? ExtType::kItemset : ExtType::kSequence, i % 64);
    if (++i % 4096 == 0) counts.Reset();
  }
}
BENCHMARK(BM_CountingArray);

void BM_QuestGenerate(benchmark::State& state) {
  for (auto _ : state) {
    QuestParams p;
    p.ncust = static_cast<std::uint32_t>(state.range(0));
    p.nitems = 500;
    benchmark::DoNotOptimize(GenerateQuestDatabase(p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuestGenerate)->Arg(500)->Arg(2000);

// Runs every miner once over a tiny Quest workload and routes the
// MineStats through ObsSession (--stats / --json-out / --trace-out).
// With --validate the serialized report is parsed back and checked
// against the schema; any violation fails the run.
int RunMinerSweep(const Flags& flags) {
  QuestParams p;
  p.ncust = static_cast<std::uint32_t>(flags.GetInt("ncust", 300));
  p.nitems = 100;
  p.slen = 6;
  p.tlen = 2.5;
  p.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(p);
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(
      db.size(), flags.GetDouble("minsup", 0.05));
  options.threads = ThreadsFromFlags(flags);

  ObsSession obs("micro", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:micro");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);
  BenchReport report("micro", workload);

  std::printf("miner sweep: %s, delta=%u\n", DescribeDatabase(db).c_str(),
              options.min_support_count);
  for (const std::string& name : AllMinerNames()) {
    const MineTiming t = TimeMine(CreateMiner(name).get(), db, options);
    obs.Record(t.stats);
    report.AddRun(t.stats);
    std::printf("  %-18s %8.3fs  %zu patterns\n", name.c_str(), t.seconds,
                t.num_patterns);
  }
  bool ok = obs.Finish();
  if (flags.GetBool("validate", false)) {
    std::string error;
    if (ValidateBenchReportJson(report.ToJson(), &error)) {
      std::printf("validate: report JSON matches the schema\n");
    } else {
      std::fprintf(stderr, "validate: %s\n", error.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

// Inserts a gauge into a MineStats keeping the by-name sort order intact
// (the JSON writer and Gauge() lookups rely on it).
void InsertGauge(obs::MineStats* stats, const std::string& name,
                 double value) {
  auto it = std::lower_bound(
      stats->gauges.begin(), stats->gauges.end(), name,
      [](const auto& g, const std::string& n) { return g.first < n; });
  stats->gauges.insert(it, {name, value});
}

// One metered DiscAll run: wall time via TimeMine, heap churn via the
// operator-new counters above, both folded into the harvested MineStats.
// The mined patterns are returned through `patterns_out` so the two
// scratch backends can be cross-checked for byte identity.
MineTiming TimeMineMetered(Miner* miner, const SequenceDatabase& db,
                           const MineOptions& options,
                           std::uint64_t* bytes_out,
                           std::string* patterns_out) {
  const std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const std::uint64_t calls0 = g_alloc_calls.load(std::memory_order_relaxed);
  Timer timer;
  const PatternSet result = miner->Mine(db, options);
  MineTiming t;
  t.seconds = timer.Seconds();
  const std::uint64_t bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
  const std::uint64_t calls =
      g_alloc_calls.load(std::memory_order_relaxed) - calls0;
  t.num_patterns = result.size();
  t.max_length = result.MaxLength();
  t.stats = miner->last_stats();
  InsertGauge(&t.stats, "bench.alloc.bytes", static_cast<double>(bytes));
  InsertGauge(&t.stats, "bench.alloc.calls", static_cast<double>(calls));
  *bytes_out = bytes;
  *patterns_out = result.ToString();
  return t;
}

// The --alloc-compare mode: arena scratch vs legacy owning scratch on the
// same workload (see file comment). Returns non-zero when the arena path
// fails to allocate strictly fewer bytes or the outputs diverge.
int RunAllocCompare(const Flags& flags) {
  QuestParams p;
  p.ncust = static_cast<std::uint32_t>(flags.GetInt("ncust", 1000));
  p.nitems = 100;
  p.slen = 6;
  p.tlen = 2.5;
  p.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(p);
  MineOptions options;
  // Default support is lower than the miner sweep's: the arena's win is in
  // the reduce loop, so the comparison workload needs partitions with
  // plenty of surviving reduced sequences.
  options.min_support_count = MineOptions::CountForFraction(
      db.size(), flags.GetDouble("minsup", 0.01));
  options.threads = ThreadsFromFlags(flags);

  ObsSession obs("micro_alloc", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:micro_alloc");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);

  std::printf("alloc compare: %s, delta=%u, threads=%u\n",
              DescribeDatabase(db).c_str(), options.min_support_count,
              options.threads);

  DiscAll::Config legacy_cfg;
  legacy_cfg.arena_scratch = false;
  DiscAll legacy(legacy_cfg);
  DiscAll arena;

  std::uint64_t legacy_bytes = 0, arena_bytes = 0;
  std::string legacy_patterns, arena_patterns;
  const MineTiming legacy_t =
      TimeMineMetered(&legacy, db, options, &legacy_bytes, &legacy_patterns);
  const MineTiming arena_t =
      TimeMineMetered(&arena, db, options, &arena_bytes, &arena_patterns);
  obs.Record(legacy_t.stats);
  obs.Record(arena_t.stats);

  for (const MineTiming* t : {&legacy_t, &arena_t}) {
    std::printf("  %-22s %8.3fs  %12.0f bytes  %10.0f allocs  %zu patterns\n",
                t->stats.miner.c_str(), t->seconds,
                t->stats.Gauge("bench.alloc.bytes"),
                t->stats.Gauge("bench.alloc.calls"), t->num_patterns);
  }

  bool ok = obs.Finish();
  if (arena_patterns != legacy_patterns) {
    std::fprintf(stderr, "alloc compare: FAIL - outputs differ\n");
    ok = false;
  } else if (arena_bytes >= legacy_bytes) {
    std::fprintf(stderr,
                 "alloc compare: FAIL - arena path allocated %llu bytes, "
                 "legacy %llu (expected strictly fewer)\n",
                 static_cast<unsigned long long>(arena_bytes),
                 static_cast<unsigned long long>(legacy_bytes));
    ok = false;
  } else {
    std::printf("alloc compare: arena allocates %.1f%% of legacy bytes\n",
                100.0 * static_cast<double>(arena_bytes) /
                    static_cast<double>(legacy_bytes));
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  // --help before benchmark::Initialize, which would otherwise claim it
  // and print google-benchmark's own usage.
  const disc::Flags flags = disc::Flags::Parse(argc, argv);
  if (disc::PrintBenchUsage(flags, "bench_micro",
                            "[--ncust=N] [--minsup=F] [--seed=N] "
                            "[--alloc-compare]\n                   "
                            "[--validate]")) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (flags.GetBool("alloc-compare", false)) {
    return disc::RunAllocCompare(flags);
  }
  if (flags.Has("json-out") || flags.Has("trace-out") ||
      flags.GetBool("stats", false) || flags.GetBool("validate", false)) {
    return disc::RunMinerSweep(flags);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
