// Storage benchmark — .dsa mmap load vs SPMF parse on the Figure 8
// workload: the cost a resident server pays to get a corpus into memory.
// The same generated database is written both ways, then loaded
// repeatedly through both paths, interleaved, best-of-N per side; the
// ratio is the "bench.storage.load_speedup" gauge in the JSON report
// (runs "storage.parse" and "storage.mmap").
//
// Correctness gate, not just timing: the binary exits non-zero if the
// mapped database is not byte-identical to the parsed one (ToSpmfString),
// or if mining the two at the same delta diverges — the speed claim is
// only meaningful for a load path that changes nothing.
//
// --min-load-speedup=X turns the ratio into a hard floor (the
// tools/check_perf.sh gate runs with 10): exit non-zero below it.
//
// Scaled-down default (20K customers; the paper sweeps 50K-500K on this
// workload); --full for 100K, smoke sizes via --ncust.
#include <chrono>
#include <cstdio>
#include <string>

#include "disc/algo/miner.h"
#include "disc/algo/pattern_io.h"
#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/seq/io.h"
#include "disc/seq/storage.h"

using namespace disc;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_storage",
                      "[--ncust=N] [--reps=N] [--minsup=F] [--workdir=DIR]\n"
                      "  [--min-load-speedup=X] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 100000 : 20000));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const double minsup = flags.GetDouble("minsup", 0.05);
  const double min_speedup = flags.GetDouble("min-load-speedup", 0.0);
  const std::string workdir = flags.GetString("workdir", "/tmp");

  QuestParams params = Fig8Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);

  ObsSession obs("storage", flags);
  obs.SetWorkload(MakeWorkloadInfo(db, "quest:fig8"));
  PrintBanner(".dsa mmap load vs SPMF parse",
              "Figure 8 workload; " + DescribeDatabase(db), !full);

  const std::string spmf_path = workdir + "/bench_storage.spmf";
  const std::string dsa_path = workdir + "/bench_storage.dsa";
  if (!SaveSpmf(db, spmf_path)) {
    std::fprintf(stderr, "bench_storage: cannot write %s\n",
                 spmf_path.c_str());
    return 1;
  }
  if (Status s = SaveDsa(db, dsa_path); !s.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n", s.ToString().c_str());
    return 1;
  }

  // Interleaved best-of-N: each rep loads through both paths back to
  // back, so page cache state and machine load hit both sides alike.
  double best_parse = 0.0;
  double best_mmap = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    double t0 = Now();
    auto parsed = TryLoadSpmf(spmf_path);
    const double parse_s = Now() - t0;
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    t0 = Now();
    auto mapped = TryLoadDsa(dsa_path);
    const double mmap_s = Now() - t0;
    if (!mapped.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    if (best_parse == 0.0 || parse_s < best_parse) best_parse = parse_s;
    if (best_mmap == 0.0 || mmap_s < best_mmap) best_mmap = mmap_s;

    if (rep == 0) {
      // Identity gate, once (it dwarfs the load times themselves).
      if (ToSpmfString(*mapped) != ToSpmfString(*parsed)) {
        std::fprintf(stderr,
                     "bench_storage: FAIL: mapped database differs from "
                     "parsed database\n");
        return 1;
      }
      MineOptions options;
      options.min_support_count =
          MineOptions::CountForFraction(parsed->size(), minsup);
      MineResult a = CreateMiner("disc-all")->TryMine(*parsed, options);
      MineResult b = CreateMiner("disc-all")->TryMine(*mapped, options);
      if (!a.status.ok() || !b.status.ok() ||
          ToSpmfPatternString(a.patterns) != ToSpmfPatternString(b.patterns)) {
        std::fprintf(stderr,
                     "bench_storage: FAIL: mining the mapped database "
                     "diverges from the parsed one\n");
        return 1;
      }
      std::printf("  identity: ok (%zu patterns at delta %u)\n",
                  a.patterns.size(), options.min_support_count);
    }
    std::printf("  [rep %d] parse %.4fs  mmap %.6fs\n", rep + 1, parse_s,
                mmap_s);
    std::fflush(stdout);
  }

  const double speedup = best_mmap > 0.0 ? best_parse / best_mmap : 0.0;

  obs::MineStats parse_stats;
  parse_stats.miner = "storage.parse";
  parse_stats.wall_seconds = best_parse;
  parse_stats.db_sequences = db.size();
  obs.Record(parse_stats);

  obs::MineStats mmap_stats;
  mmap_stats.miner = "storage.mmap";
  mmap_stats.wall_seconds = best_mmap;
  mmap_stats.db_sequences = db.size();
  mmap_stats.gauges.push_back({"bench.storage.load_speedup", speedup});
  obs.Record(mmap_stats);

  TablePrinter table({"path", "best (s)", "speedup"});
  table.AddRow({"spmf parse", TablePrinter::Num(best_parse), "1.00"});
  table.AddRow({".dsa mmap", TablePrinter::Num(best_mmap),
                TablePrinter::Num(speedup)});
  table.Print();

  std::remove(spmf_path.c_str());
  std::remove(dsa_path.c_str());

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_storage: FAIL: load speedup %.2fx below the %.2fx "
                 "floor\n",
                 speedup, min_speedup);
    return 1;
  }
  return obs.Finish() ? 0 : 1;
}
