// Table 13 — "The ratio of Pseudo to DISC-all": wall-clock seconds for
// pseudo-projection PrefixSpan and DISC-all across the Figure 9 support
// sweep, plus their ratio. The paper observes the largest speedup around
// minsup 0.0075 on its hardware.
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_table13_ratio",
                      "[--ncust=N] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 10000 : 1000));
  std::vector<double> sweeps = {0.02, 0.0175, 0.015, 0.0125,
                                0.01, 0.0075, 0.005};
  if (full) sweeps.push_back(0.0025);

  QuestParams params = Fig9Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);

  ObsSession obs("table13_ratio", flags);
  obs.SetWorkload(MakeWorkloadInfo(db, "quest:fig9"));

  PrintBanner("Table 13: Pseudo / DISC-all runtime ratio",
              DescribeDatabase(db), !full);

  TablePrinter table(
      {"minsup", "Pseudo (s)", "DISC-all (s)", "Pseudo/DISC-all"});
  for (const double minsup : sweeps) {
    MineOptions options;
    options.min_support_count =
        MineOptions::CountForFraction(db.size(), minsup);
    const MineTiming pseudo_t =
        TimeMine(CreateMiner("pseudo").get(), db, options);
    const MineTiming disc_t =
        TimeMine(CreateMiner("disc-all").get(), db, options);
    obs.Record(pseudo_t.stats);
    obs.Record(disc_t.stats);
    table.AddRow({TablePrinter::Num(minsup, 4),
                  TablePrinter::Num(pseudo_t.seconds),
                  TablePrinter::Num(disc_t.seconds),
                  TablePrinter::Num(pseudo_t.seconds /
                                        (disc_t.seconds > 0 ? disc_t.seconds
                                                            : 1e-9),
                                    3)});
    std::fflush(stdout);
  }
  table.Print();
  return obs.Finish() ? 0 : 1;
}
