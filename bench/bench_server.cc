// Engine cache benchmark — cold vs cached minsup sweep: the serving
// scenario the engine layer exists for. One resident database, a sweep of
// support thresholds; each threshold is mined twice through the same
// Engine — cold (cache invalidated first: pays the first-level build) and
// cached (reuses the item supports, partition memberships, and alphabets).
// The ratio is the "bench.cache.speedup" gauge in the JSON report.
//
// Correctness gate, not just timing: the binary exits non-zero if any
// cold/cached pattern-set pair is not byte-identical, or if the cache
// outcomes are not miss-then-hit.
//
// Scaled-down default (1K customers on the Figure 9 workload); --full for
// the paper's 10K, --quick for a two-point sweep (CI smoke: the dense
// workload explodes combinatorially once delta bottoms out on a small
// container).
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/engine/engine.h"

using namespace disc;

namespace {

// Inserts a gauge into a MineStats record, keeping the by-name order the
// harvest produces (docs/OBSERVABILITY.md).
void InsertGauge(obs::MineStats* stats, const std::string& name,
                 double value) {
  auto it = stats->gauges.begin();
  while (it != stats->gauges.end() && it->first < name) ++it;
  stats->gauges.insert(it, {name, value});
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_server",
                      "[--ncust=N] [--algo=NAME] [--quick] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 10000 : 1000));
  const std::string algo = flags.GetString("algo", "disc-all");
  const std::vector<double> sweeps =
      flags.GetBool("quick", false)
          ? std::vector<double>{0.1, 0.05}
          : std::vector<double>{0.02, 0.015, 0.01, 0.0075, 0.005};

  QuestParams params = Fig9Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  engine::Engine::Config config;
  config.session_threads = 1;  // timings must not interleave
  engine::Engine engine(config);
  engine.LoadDatabase(GenerateQuestDatabase(params));
  const std::shared_ptr<const SequenceDatabase> db = engine.database();

  ObsSession obs("bench_server", flags);
  obs.SetWorkload(MakeWorkloadInfo(*db, "quest:fig9"));

  PrintBanner("Engine cache: cold vs cached minsup sweep",
              "one resident Engine, " + algo + "; " + DescribeDatabase(*db),
              !full);

  engine::MineRequest request;
  request.algo = algo;
  request.options.threads = ThreadsFromFlags(flags);

  TablePrinter table({"minsup", "delta", "cold (s)", "cached (s)", "speedup",
                      "#patterns"});
  int failures = 0;
  for (const double minsup : sweeps) {
    request.min_support = minsup;

    engine.InvalidateCache();
    engine::MineResponse cold = engine.Mine(request);
    engine::MineResponse cached = engine.Mine(request);
    for (const engine::MineResponse* r : {&cold, &cached}) {
      if (!r->status.ok()) {
        std::fprintf(stderr, "bench_server: mine failed: %s\n",
                     r->status.ToString().c_str());
        return 1;
      }
    }

    if (cold.cache != engine::CacheOutcome::kMiss ||
        cached.cache != engine::CacheOutcome::kHit) {
      std::fprintf(stderr,
                   "bench_server: FAIL minsup %.4f: cache outcomes %s/%s, "
                   "want miss/hit\n",
                   minsup, engine::CacheOutcomeName(cold.cache),
                   engine::CacheOutcomeName(cached.cache));
      ++failures;
    }
    if (cold.patterns != cached.patterns) {
      std::fprintf(stderr,
                   "bench_server: FAIL minsup %.4f: cold and cached pattern "
                   "sets differ:\n%s\n",
                   minsup, cold.patterns.Diff(cached.patterns).c_str());
      ++failures;
    }

    const double speedup =
        cached.wall_ms > 0.0 ? cold.wall_ms / cached.wall_ms : 0.0;
    InsertGauge(&cached.stats, "bench.cache.speedup", speedup);
    obs.Record(cold.stats);
    obs.Record(cached.stats);

    table.AddRow({TablePrinter::Num(minsup, 4), std::to_string(cold.delta),
                  TablePrinter::Num(cold.wall_ms / 1000.0),
                  TablePrinter::Num(cached.wall_ms / 1000.0),
                  TablePrinter::Num(speedup),
                  std::to_string(cold.patterns.size())});
    std::printf("  [minsup %.4f] cold %.3fs cached %.3fs (%zu patterns)\n",
                minsup, cold.wall_ms / 1000.0, cached.wall_ms / 1000.0,
                cold.patterns.size());
    std::fflush(stdout);
  }
  table.Print();

  if (failures != 0) {
    std::fprintf(stderr, "bench_server: %d check(s) failed\n", failures);
    return 1;
  }
  return obs.Finish() ? 0 : 1;
}
