// Ablations (ours; motivated by §3.2 and §4.2-4.3 design choices):
//
//   A. Bi-level on/off — how much does harvesting k and k+1 per DISC pass
//      buy (the paper uses bi-level "as the version for experiments")?
//   B. Dynamic γ sweep — how sensitive is Dynamic DISC-all to the
//      partition/DISC switch threshold?
//   C. Strategy census — every algorithm in the library (incl. GSP, SPADE,
//      SPAM) on one moderate workload, as a Table 5 companion.
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/common/timer.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_ablations",
                      "[--ncust=N] [--minsup=F] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 10000 : 2000));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  // Workload: the Figure 9 shape scaled to container size.
  QuestParams params = Fig9Params(ncust);
  params.seed = seed;
  const SequenceDatabase db = GenerateQuestDatabase(params);
  const double minsup = flags.GetDouble("minsup", 0.0125);
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), minsup);

  ObsSession obs("ablations", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:fig9");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);

  PrintBanner("Ablation A: bi-level vs plain DISC passes",
              DescribeDatabase(db) + ", minsup=" + std::to_string(minsup),
              !full);
  {
    TablePrinter table({"variant", "time (s)", "#patterns",
                        "disc iterations"});
    for (const bool bilevel : {true, false}) {
      DiscAll::Config config;
      config.bilevel = bilevel;
      DiscAll miner(config);
      Timer timer;
      const PatternSet result = miner.Mine(db, options);
      obs.Record(miner.last_stats());
      table.AddRow({bilevel ? "bi-level" : "plain",
                    TablePrinter::Num(timer.Seconds()),
                    std::to_string(result.size()),
                    std::to_string(
                        miner.last_stats().Counter("disc.iterations"))});
    }
    table.Print();
  }

  PrintBanner("Ablation B: Dynamic DISC-all gamma sweep",
              "gamma < NRR switches a partition to DISC; gamma=0 -> pure "
              "DISC after level 0, gamma>1 -> pure pattern growth",
              !full);
  {
    TablePrinter table({"gamma", "time (s)", "partitions split",
                        "partitions to DISC", "#patterns"});
    for (const double gamma : {0.0, 0.25, 0.5, 0.75, 0.9, 1.01}) {
      DynamicDiscAll::Config config;
      config.gamma = gamma;
      DynamicDiscAll miner(config);
      Timer timer;
      const PatternSet result = miner.Mine(db, options);
      obs.Record(miner.last_stats());
      table.AddRow({TablePrinter::Num(gamma, 2),
                    TablePrinter::Num(timer.Seconds()),
                    std::to_string(miner.last_stats().Counter(
                        "dynamic.partitions_split")),
                    std::to_string(miner.last_stats().Counter(
                        "dynamic.partitions_to_disc")),
                    std::to_string(result.size())});
    }
    table.Print();
  }

  PrintBanner("Ablation C: locative AVL tree vs full re-sorting",
              "the k-sorted database indexed by the paper's AVL vs naively "
              "re-sorted after every advance batch",
              !full);
  {
    TablePrinter table({"k-sorted index", "time (s)", "#patterns"});
    for (const bool use_avl : {true, false}) {
      DiscAll::Config config;
      config.use_avl = use_avl;
      DiscAll miner(config);
      Timer timer;
      const PatternSet result = miner.Mine(db, options);
      table.AddRow({use_avl ? "locative AVL" : "re-sort",
                    TablePrinter::Num(timer.Seconds()),
                    std::to_string(result.size())});
    }
    table.Print();
  }

  PrintBanner("Ablation D: partition depth (multi-level partitioning, §3.1)",
              "fixed number of partitioning levels before switching to "
              "DISC; 0 = pure DISC, 2 = the paper's two-level scheme",
              !full);
  {
    TablePrinter table({"levels", "time (s)", "#patterns"});
    for (const std::int32_t levels : {0, 1, 2, 3, 4, 8}) {
      DynamicDiscAll::Config config;
      config.fixed_levels = levels;
      DynamicDiscAll miner(config);
      Timer timer;
      const PatternSet result = miner.Mine(db, options);
      table.AddRow({std::to_string(levels),
                    TablePrinter::Num(timer.Seconds()),
                    std::to_string(result.size())});
    }
    table.Print();
  }

  PrintBanner("Ablation E: strategy census (Table 5 companion)",
              "all miners, one workload; GSP/SPADE/SPAM run a smaller "
              "database (they are not the paper's baselines)",
              !full);
  {
    QuestParams small_params = Fig9Params(full ? 2000 : 500);
    small_params.seed = seed;
    const SequenceDatabase small_db = GenerateQuestDatabase(small_params);
    MineOptions small_options;
    small_options.min_support_count =
        MineOptions::CountForFraction(small_db.size(), 0.02);
    TablePrinter table({"algorithm", "time (s)", "#patterns"});
    for (const std::string& name : AllMinerNames()) {
      const MineTiming t =
          TimeMine(CreateMiner(name).get(), small_db, small_options);
      obs.Record(t.stats);
      table.AddRow({name, TablePrinter::Num(t.seconds),
                    std::to_string(t.num_patterns)});
    }
    table.Print();
  }
  return obs.Finish() ? 0 : 1;
}
