// Figure 10 — "Comparisons on different θ's": runtime of Dynamic DISC-all,
// DISC-all, PrefixSpan and Pseudo as the average number of transactions
// per customer grows from 10 to 40 (minimum support 0.005). The paper's
// headline: Dynamic DISC-all wins everywhere; static DISC-all loses its
// lead at high θ where the deeper-level NRR stays low and partitioning
// would still pay.
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_fig10_theta",
                      "[--ncust=N] [--minsup=F] [--thetas=F,F,...] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 50000 : 2000));
  // Scaled default uses a higher relative support: at 2K customers the
  // paper's 0.005 leaves delta = 10, which floods the dense high-theta
  // databases with hundreds of thousands of patterns.
  const double minsup = flags.GetDouble("minsup", full ? 0.005 : 0.02);
  std::vector<double> thetas = full
                                   ? std::vector<double>{10, 15, 20, 25, 30,
                                                         35, 40}
                                   : std::vector<double>{10, 20, 30, 40};
  if (flags.Has("thetas")) {
    thetas.clear();
    const std::string spec = flags.GetString("thetas", "");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      thetas.push_back(std::stod(spec.substr(pos)));
      const std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  PrintBanner("Figure 10: runtime vs theta (minsup = " +
                  std::to_string(minsup) + ")",
              "Quest tlen=2.5 nitems=1K seq.patlen=4, ncust=" +
                  std::to_string(ncust),
              !full);

  ObsSession obs("fig10_theta", flags);
  TablePrinter table({"theta", "dynamic (s)", "disc-all (s)",
                      "prefixspan (s)", "pseudo (s)", "#patterns"});
  for (const double theta : thetas) {
    QuestParams params = ThetaParams(ncust, theta);
    params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
    const SequenceDatabase db = GenerateQuestDatabase(params);
    MineOptions options;
    options.min_support_count =
        MineOptions::CountForFraction(db.size(), minsup);
    options.threads = ThreadsFromFlags(flags);
    const MineTiming dyn_t =
        TimeMine(CreateMiner("dynamic-disc-all").get(), db, options);
    const MineTiming disc_t =
        TimeMine(CreateMiner("disc-all").get(), db, options);
    const MineTiming ps_t =
        TimeMine(CreateMiner("prefixspan").get(), db, options);
    const MineTiming pseudo_t =
        TimeMine(CreateMiner("pseudo").get(), db, options);
    WorkloadInfo workload = MakeWorkloadInfo(db, "quest:theta");
    workload.min_support_count = options.min_support_count;
    obs.SetWorkload(workload);
    obs.Record(dyn_t.stats);
    obs.Record(disc_t.stats);
    obs.Record(ps_t.stats);
    obs.Record(pseudo_t.stats);
    table.AddRow({TablePrinter::Num(theta, 0),
                  TablePrinter::Num(dyn_t.seconds),
                  TablePrinter::Num(disc_t.seconds),
                  TablePrinter::Num(ps_t.seconds),
                  TablePrinter::Num(pseudo_t.seconds),
                  std::to_string(dyn_t.num_patterns)});
    std::printf("  [theta %.0f] done (%zu patterns)\n", theta,
                dyn_t.num_patterns);
    std::fflush(stdout);
  }
  table.Print();
  return obs.Finish() ? 0 : 1;
}
