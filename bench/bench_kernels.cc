// Comparative-order kernel benchmarks: the encoded order (order/encoded.h)
// against the legacy itemset-by-itemset scans, on the paper's Table 11
// workload (Fig8Params: slen 10, tlen 2.5, nitems 1K, seq.patlen 4).
//
// Three paired kernels, each reported as <name>.legacy / <name>.encoded
// runs in BENCH_kernels.json (tools/check_perf.sh gates the speedups
// against the committed baseline):
//
//   * kernel.compare — pairwise sequence comparisons over the workload's
//     mined pattern pool: CompareSequences vs EncodedCompare on
//     pre-encoded words. Pairs are drawn near each other in the pool's
//     comparative order, mirroring where the comparator actually runs
//     (AVL fences, k-sorted walks compare keys that share long prefixes).
//     Sign agreement is asserted over the whole pair set.
//   * kernel.kms     — the pure DISC loop (DynamicDiscAll fixed_levels=0:
//     no partitioning, every length mined by compare + Apriori-CKMS over
//     the k-sorted database) with encoded_order on vs off.
//   * kernel.mine    — end-to-end disc-all (two-level partitioning + DISC
//     from k = 4) with encoded_order on vs off.
//
// Every encoded mining run is checked byte-for-byte against its legacy
// twin; any mismatch fails the binary. --min-speedup=X additionally fails
// the run when the compare or kms kernel speedup drops below X.
//
//   $ ./bench_kernels [--ncust=2000] [--minsup=0.008] [--pairs=2000000]
//                     [--reps=3] [--seed=42] [--min-speedup=0]
//                     [--kernel=all|compare|kms|mine] [--only=legacy|encoded]
//
// --kernel narrows the run to one kernel; --only skips a mining kernel's
// twin (for profiling one side), which also skips the byte-identity check.
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/common/timer.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"
#include "disc/order/compare.h"
#include "disc/order/encoded.h"

using namespace disc;

namespace {

// Deterministic pair picker (no std:: engine: stable across libstdc++s).
std::uint64_t XorShift(std::uint64_t* s) {
  std::uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

int Sign(int v) { return (v > 0) - (v < 0); }

// One timed run of fn(), folded into a running best-of (-1 = no best yet).
// Paired kernels alternate their two sides through this so a drifting
// machine slows both sides alike.
template <typename Fn>
double MinTime(double best, Fn&& fn) {
  Timer timer;
  fn();
  const double s = timer.Seconds();
  return best < 0.0 || s < best ? s : best;
}

obs::MineStats KernelStats(const std::string& name, double seconds) {
  obs::MineStats stats;
  stats.miner = name;
  stats.wall_seconds = seconds;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::uint32_t ncust =
      static_cast<std::uint32_t>(flags.GetInt("ncust", 2000));
  const double minsup = flags.GetDouble("minsup", 0.008);
  const std::uint64_t npairs =
      static_cast<std::uint64_t>(flags.GetInt("pairs", 2000000));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const double min_speedup = flags.GetDouble("min-speedup", 0.0);
  const std::string kernel_filter = flags.GetString("kernel", "all");
  const std::string only = flags.GetString("only", "");

  QuestParams params = Fig8Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);

  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), minsup);
  options.threads = 1;

  PrintBanner(
      "Comparative-order kernels: encoded (order/encoded.h) vs legacy "
      "(minsup = " + std::to_string(minsup) + ")",
      "Quest slen=10 tlen=2.5 nitems=1K seq.patlen=4 (Table 11), ncust=" +
          std::to_string(ncust),
      false);

  ObsSession obs("kernels", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:fig8");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);
  BenchReport report("kernels", workload);

  TablePrinter table({"kernel", "legacy (s)", "encoded (s)", "speedup"});
  bool ok = true;
  bool ran_compare = false, ran_kms = false;
  double compare_speedup = 0.0, kms_speedup = 0.0;

  // --- kernel.compare: pairwise comparisons over the mined pattern pool ---
  if (kernel_filter == "all" || kernel_filter == "compare") {
    ran_compare = true;
    DiscAll::Config cfg;  // defaults: encoded on — only used to build a pool
    const PatternSet patterns = DiscAll(cfg).Mine(db, options);
    std::vector<Sequence> pool;
    for (const auto& [p, sup] : patterns) {
      (void)sup;
      if (p.Length() >= 2) pool.push_back(p);
      if (pool.size() >= 4096) break;
    }
    if (pool.size() < 2) {
      std::fprintf(stderr,
                   "bench_kernels: pattern pool too small (%zu); lower "
                   "--minsup\n",
                   pool.size());
      return 3;
    }
    ItemEncoder encoder;
    for (const Sequence& p : pool) encoder.NoteItems(p);
    encoder.Finalize();
    std::vector<std::vector<EncodedWord>> epool(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      EncodeSequence(pool[i], encoder, &epool[i]);
    }
    std::vector<std::uint32_t> lhs(npairs), rhs(npairs);
    std::uint64_t rng = params.seed | 1;
    for (std::uint64_t i = 0; i < npairs; ++i) {
      lhs[i] = static_cast<std::uint32_t>(XorShift(&rng) % pool.size());
      // PatternSet iterates in comparative order, so nearby indices share
      // long prefixes — the regime the comparator sees inside the sorted
      // structures (random far-apart pairs differ at word 0 and measure
      // only call overhead).
      const std::uint32_t stride =
          1 + static_cast<std::uint32_t>(XorShift(&rng) % 8);
      rhs[i] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(pool.size() - 1, lhs[i] + stride));
    }
    // Reps interleave the two sides so slow drift in machine load cancels
    // out of the ratio instead of skewing whichever side ran last.
    std::int64_t sum_legacy = 0, sum_encoded = 0;
    double t_legacy = -1.0, t_encoded = -1.0;
    for (int r = 0; r < reps; ++r) {
      t_legacy = MinTime(t_legacy, [&] {
        sum_legacy = 0;
        for (std::uint64_t i = 0; i < npairs; ++i) {
          sum_legacy += Sign(CompareSequences(pool[lhs[i]], pool[rhs[i]]));
        }
      });
      t_encoded = MinTime(t_encoded, [&] {
        sum_encoded = 0;
        for (std::uint64_t i = 0; i < npairs; ++i) {
          sum_encoded += Sign(EncodedCompare(epool[lhs[i]], epool[rhs[i]]));
        }
      });
    }
    if (sum_legacy != sum_encoded) {
      std::fprintf(stderr,
                   "bench_kernels: ** SIGN MISMATCH ** legacy %lld vs "
                   "encoded %lld\n",
                   static_cast<long long>(sum_legacy),
                   static_cast<long long>(sum_encoded));
      ok = false;
    }
    compare_speedup = t_encoded > 0.0 ? t_legacy / t_encoded : 0.0;
    const obs::MineStats cl = KernelStats("kernel.compare.legacy", t_legacy);
    const obs::MineStats ce = KernelStats("kernel.compare.encoded", t_encoded);
    report.AddRun(cl);
    report.AddRun(ce);
    obs.Record(cl);
    obs.Record(ce);
    table.AddRow({"compare (" + std::to_string(npairs) + " pairs, pool " +
                      std::to_string(pool.size()) + ")",
                  TablePrinter::Num(t_legacy), TablePrinter::Num(t_encoded),
                  TablePrinter::Num(compare_speedup)});
  }

  // --- kernel.kms / kernel.mine: paired mining runs, byte-checked ---
  struct MiningKernel {
    const char* name;
    bool pure_disc;  // DynamicDiscAll fixed_levels=0 vs DiscAll
  };
  for (const MiningKernel kernel :
       {MiningKernel{"kernel.kms", true}, MiningKernel{"kernel.mine", false}}) {
    if (kernel_filter != "all" &&
        kernel_filter != (kernel.pure_disc ? "kms" : "mine")) {
      continue;
    }
    if (kernel.pure_disc && only.empty()) ran_kms = true;
    auto make_miner = [&](bool encoded) -> std::unique_ptr<Miner> {
      if (kernel.pure_disc) {
        DynamicDiscAll::Config cfg;
        cfg.fixed_levels = 0;
        cfg.encoded_order = encoded;
        return std::make_unique<DynamicDiscAll>(cfg);
      }
      DiscAll::Config cfg;
      cfg.encoded_order = encoded;
      return std::make_unique<DiscAll>(cfg);
    };
    std::unique_ptr<Miner> legacy =
        only == "encoded" ? nullptr : make_miner(false);
    std::unique_ptr<Miner> encoded =
        only == "legacy" ? nullptr : make_miner(true);
    std::string out_legacy, out_encoded;
    double t_legacy = -1.0, t_encoded = -1.0;
    // Interleave the sides rep by rep (same rationale as kernel.compare).
    for (int r = 0; r < reps; ++r) {
      if (legacy != nullptr) {
        t_legacy = MinTime(t_legacy, [&] {
          out_legacy = legacy->Mine(db, options).ToString();
        });
      }
      if (encoded != nullptr) {
        t_encoded = MinTime(t_encoded, [&] {
          out_encoded = encoded->Mine(db, options).ToString();
        });
      }
    }
    if (t_legacy < 0.0) t_legacy = 0.0;
    if (t_encoded < 0.0) t_encoded = 0.0;
    obs::MineStats stats_legacy, stats_encoded;
    if (legacy != nullptr) {
      stats_legacy = legacy->last_stats();
      stats_legacy.miner = std::string(kernel.name) + ".legacy";
      stats_legacy.wall_seconds = t_legacy;
    }
    if (encoded != nullptr) {
      stats_encoded = encoded->last_stats();
      stats_encoded.miner = std::string(kernel.name) + ".encoded";
      stats_encoded.wall_seconds = t_encoded;
    }
    if (only.empty() && out_legacy != out_encoded) {
      std::fprintf(stderr, "bench_kernels: ** PATTERN MISMATCH ** in %s\n",
                   kernel.name);
      ok = false;
    }
    const double speedup =
        only.empty() && t_encoded > 0.0 ? t_legacy / t_encoded : 0.0;
    if (kernel.pure_disc && only.empty()) kms_speedup = speedup;
    if (only != "encoded") {
      report.AddRun(stats_legacy);
      obs.Record(stats_legacy);
    }
    if (only != "legacy") {
      report.AddRun(stats_encoded);
      obs.Record(stats_encoded);
    }
    table.AddRow({kernel.name, TablePrinter::Num(t_legacy),
                  TablePrinter::Num(t_encoded), TablePrinter::Num(speedup)});
  }
  table.Print();

  if (min_speedup > 0.0 && ((ran_compare && compare_speedup < min_speedup) ||
                            (ran_kms && kms_speedup < min_speedup))) {
    std::fprintf(stderr,
                 "bench_kernels: speedup below --min-speedup=%.2f "
                 "(compare %.2f, kms %.2f)\n",
                 min_speedup, compare_speedup, kms_speedup);
    ok = false;
  }

  ok = obs.Finish() && ok;
  std::string json_path = flags.GetString("json-out", "");
  if (json_path.empty() && !flags.Has("json-out")) {
    json_path = "BENCH_kernels.json";
  }
  if (!json_path.empty() && obs.json_out().empty()) {
    std::string error;
    if (report.WriteJson(json_path, &error)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "bench_kernels: %s\n", error.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
