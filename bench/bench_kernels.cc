// Comparative-order kernel benchmarks: the encoded order (order/encoded.h)
// and its SIMD mismatch-scan kernels (order/simd.h) against the legacy
// scalar paths. Two Quest workloads feed the kernels:
//
//   * the paper's Table 11 shape (Fig8Params: slen 10, tlen 2.5, nitems
//     1K, seq.patlen 4) for kernel.compare and kernel.kms — sparse data,
//     short patterns, the regime the existing baselines were built on;
//   * the paper's Figure 9 shape (Fig9Params: slen = tlen = seq.patlen
//     = 8, nitems 1K) for kernel.lcp, kernel.mine and kernel.bound —
//     dense transactions and long patterns, where the mismatch scans are
//     long and the k >= 4 DISC machinery (what the encoded order, SIMD
//     kernels, and candidate-bound pruning accelerate) carries real
//     weight.
//
// Paired kernels, each reported as <name>.legacy / <name>.encoded runs in
// BENCH_kernels.json (tools/check_perf.sh gates the speedups against the
// committed baseline; the suffixes always mean "baseline side" / "optimized
// side", even where the axis is not the encoding itself):
//
//   * kernel.compare — pairwise sequence comparisons over the workload's
//     mined pattern pool: CompareSequences vs the scalar EncodedCompare on
//     pre-encoded words (the encoding gain alone — no SIMD). Pairs are
//     drawn near each other in the pool's comparative order, mirroring
//     where the comparator actually runs. Sign agreement is asserted.
//   * kernel.lcp     — first-mismatch + LCP scans: the scalar
//     EncodedCompareFrom loop vs the dispatched SIMD kernel
//     (SimdCompareFrom at the active tier — DISC_SIMD / --simd select
//     it). Streams are concatenated encoded dense-workload customer
//     sequences (~256 words) from a small L1-resident pool, and each
//     pair's mismatch position is uniform over the stream — this measures
//     the scan primitive's asymptotic advantage (the words/sec curve);
//     the short-scan call-bound regime is what kernel.compare and
//     kernel.kms capture. Sign and LCP agreement are asserted over the
//     whole pair set.
//   * kernel.kms     — the pure DISC loop (DynamicDiscAll fixed_levels=0)
//     with encoded_order on vs off (bound pruning on for both sides; it
//     cannot fire on the undivided root partition).
//   * kernel.mine    — end-to-end disc-all on the dense workload: the
//     full legacy path (encoded_order off, bound_pruning off) vs the full
//     optimized path (encoded order + SIMD + candidate-bound pruning).
//   * kernel.bound   — bound-pruning ablation: disc-all with the encoded
//     order on both sides, bound_pruning off (.legacy) vs on (.encoded) —
//     isolates the candidate-bound contribution inside kernel.mine.
//
// Every run's JSON entry carries a "bench.words_per_sec" gauge: encoded
// words actually scanned per wall second for compare/lcp, database item
// words processed per wall second for the mining kernels.
//
// Every paired mining run is checked byte-for-byte against its twin; any
// mismatch fails the binary. --min-speedup=X fails the run when the
// compare or kms speedup drops below X; --min-lcp-speedup / --min-mine-
// speedup gate kernel.lcp and kernel.mine the same way.
//
//   $ ./bench_kernels [--ncust=2000] [--minsup=0.008] [--ncust-dense=1000]
//                     [--minsup-dense=0.02] [--pairs=2000000]
//                     [--reps=3] [--seed=42] [--min-speedup=0]
//                     [--min-lcp-speedup=0] [--min-mine-speedup=0]
//                     [--simd=off|sse2|avx2|auto]
//                     [--kernel=all|compare|lcp|kms|mine|bound]
//                     [--only=legacy|encoded]
//
// --kernel narrows the run to one kernel; --only skips a mining kernel's
// twin (for profiling one side), which also skips the byte-identity check.
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/common/timer.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"
#include "disc/order/compare.h"
#include "disc/order/encoded.h"
#include "disc/order/simd.h"

using namespace disc;

namespace {

// Deterministic pair picker (no std:: engine: stable across libstdc++s).
std::uint64_t XorShift(std::uint64_t* s) {
  std::uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

int Sign(int v) { return (v > 0) - (v < 0); }

// One timed run of fn(), folded into a running best-of (-1 = no best yet).
// Paired kernels alternate their two sides through this so a drifting
// machine slows both sides alike.
template <typename Fn>
double MinTime(double best, Fn&& fn) {
  Timer timer;
  fn();
  const double s = timer.Seconds();
  return best < 0.0 || s < best ? s : best;
}

obs::MineStats KernelStats(const std::string& name, double seconds) {
  obs::MineStats stats;
  stats.miner = name;
  stats.wall_seconds = seconds;
  return stats;
}

// Attaches the per-kernel throughput gauge (see file comment).
void AddWordsPerSec(obs::MineStats* stats, double words) {
  if (stats->wall_seconds > 0.0) {
    stats->gauges.emplace_back("bench.words_per_sec",
                               words / stats->wall_seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_kernels",
                      "[--kernel=NAME|all] [--only=legacy|encoded] [--pairs=N]\n                     [--reps=N] [--ncust=N] [--ncust-dense=N] [--minsup=F]\n                     [--minsup-dense=F] [--simd=off|sse2|avx2|auto]\n                     [--min-speedup=F] [--min-lcp-speedup=F]\n                     [--min-mine-speedup=F] [--seed=N]")) {
    return 0;
  }
  const std::uint32_t ncust =
      static_cast<std::uint32_t>(flags.GetInt("ncust", 2000));
  const double minsup = flags.GetDouble("minsup", 0.008);
  const std::uint32_t ncust_dense =
      static_cast<std::uint32_t>(flags.GetInt("ncust-dense", 1000));
  const double minsup_dense = flags.GetDouble("minsup-dense", 0.02);
  const std::uint64_t npairs =
      static_cast<std::uint64_t>(flags.GetInt("pairs", 2000000));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const double min_speedup = flags.GetDouble("min-speedup", 0.0);
  const double min_lcp_speedup = flags.GetDouble("min-lcp-speedup", 0.0);
  const double min_mine_speedup = flags.GetDouble("min-mine-speedup", 0.0);
  const std::string kernel_filter = flags.GetString("kernel", "all");
  const std::string only = flags.GetString("only", "");

  if (flags.Has("simd") &&
      !ConfigureSimd(flags.GetString("simd", "auto"))) {
    std::fprintf(stderr,
                 "bench_kernels: --simd=%s is invalid or unsupported here "
                 "(best tier: %s)\n",
                 flags.GetString("simd", "").c_str(),
                 SimdTierName(BestSimdTier()));
    return 2;
  }

  QuestParams params = Fig8Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);

  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), minsup);
  options.threads = 1;

  // The dense Figure 9 shape behind kernel.lcp/mine/bound (file comment).
  QuestParams dense_params = Fig9Params(ncust_dense);
  dense_params.seed = params.seed;
  const SequenceDatabase dense_db = GenerateQuestDatabase(dense_params);

  MineOptions dense_options;
  dense_options.min_support_count =
      MineOptions::CountForFraction(dense_db.size(), minsup_dense);
  dense_options.threads = 1;

  PrintBanner(
      "Comparative-order kernels: encoded+SIMD (order/simd.h) vs legacy "
      "(minsup = " + std::to_string(minsup) + " sparse, " +
          std::to_string(minsup_dense) + " dense)",
      "Quest fig8 slen=10 tlen=2.5 patlen=4 ncust=" + std::to_string(ncust) +
          " (compare/kms); fig9 slen=8 tlen=8 patlen=8 ncust=" +
          std::to_string(ncust_dense) +
          " (lcp/mine/bound); simd=" + SimdTierName(ActiveSimdTier()),
      false);

  ObsSession obs("kernels", flags);
  WorkloadInfo workload = MakeWorkloadInfo(db, "quest:fig8+fig9");
  workload.min_support_count = options.min_support_count;
  obs.SetWorkload(workload);
  BenchReport report("kernels", workload);

  TablePrinter table({"kernel", "legacy (s)", "encoded (s)", "speedup"});
  bool ok = true;
  bool ran_compare = false, ran_lcp = false, ran_kms = false, ran_mine = false;
  double compare_speedup = 0.0, lcp_speedup = 0.0, kms_speedup = 0.0,
         mine_speedup = 0.0;

  // --- kernel.compare: pairwise comparisons over the mined pattern pool ---
  if (kernel_filter == "all" || kernel_filter == "compare") {
    ran_compare = true;
    DiscAll::Config cfg;  // defaults: encoded on — only used to build a pool
    const PatternSet patterns = DiscAll(cfg).Mine(db, options);
    std::vector<Sequence> pool;
    for (const auto& [p, sup] : patterns) {
      (void)sup;
      if (p.Length() >= 2) pool.push_back(p);
      if (pool.size() >= 4096) break;
    }
    if (pool.size() < 2) {
      std::fprintf(stderr,
                   "bench_kernels: pattern pool too small (%zu); lower "
                   "--minsup\n",
                   pool.size());
      return 3;
    }
    ItemEncoder encoder;
    for (const Sequence& p : pool) encoder.NoteItems(p);
    encoder.Finalize();
    std::vector<std::vector<EncodedWord>> epool(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      EncodeSequence(pool[i], encoder, &epool[i]);
    }
    std::vector<std::uint32_t> lhs(npairs), rhs(npairs);
    std::uint64_t rng = params.seed | 1;
    for (std::uint64_t i = 0; i < npairs; ++i) {
      lhs[i] = static_cast<std::uint32_t>(XorShift(&rng) % pool.size());
      // PatternSet iterates in comparative order, so nearby indices share
      // long prefixes — the regime the comparator sees inside the sorted
      // structures (random far-apart pairs differ at word 0 and measure
      // only call overhead).
      const std::uint32_t stride =
          1 + static_cast<std::uint32_t>(XorShift(&rng) % 8);
      rhs[i] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(pool.size() - 1, lhs[i] + stride));
    }
    // Reps interleave the two sides so slow drift in machine load cancels
    // out of the ratio instead of skewing whichever side ran last.
    std::int64_t sum_legacy = 0, sum_encoded = 0;
    double t_legacy = -1.0, t_encoded = -1.0;
    for (int r = 0; r < reps; ++r) {
      t_legacy = MinTime(t_legacy, [&] {
        sum_legacy = 0;
        for (std::uint64_t i = 0; i < npairs; ++i) {
          sum_legacy += Sign(CompareSequences(pool[lhs[i]], pool[rhs[i]]));
        }
      });
      t_encoded = MinTime(t_encoded, [&] {
        sum_encoded = 0;
        for (std::uint64_t i = 0; i < npairs; ++i) {
          sum_encoded += Sign(EncodedCompare(epool[lhs[i]], epool[rhs[i]]));
        }
      });
    }
    if (sum_legacy != sum_encoded) {
      std::fprintf(stderr,
                   "bench_kernels: ** SIGN MISMATCH ** legacy %lld vs "
                   "encoded %lld\n",
                   static_cast<long long>(sum_legacy),
                   static_cast<long long>(sum_encoded));
      ok = false;
    }
    // Words the scalar word-scan actually touches per pass (untimed).
    std::uint64_t scanned = 0;
    for (std::uint64_t i = 0; i < npairs; ++i) {
      const auto& a = epool[lhs[i]];
      const auto& b = epool[rhs[i]];
      std::uint32_t lcp = 0;
      EncodedCompareFrom(a.data(), a.size(), b.data(), b.size(), 0, &lcp);
      scanned += std::min<std::uint64_t>(lcp + 1, std::min(a.size(), b.size()));
    }
    compare_speedup = t_encoded > 0.0 ? t_legacy / t_encoded : 0.0;
    obs::MineStats cl = KernelStats("kernel.compare.legacy", t_legacy);
    obs::MineStats ce = KernelStats("kernel.compare.encoded", t_encoded);
    AddWordsPerSec(&cl, static_cast<double>(scanned));
    AddWordsPerSec(&ce, static_cast<double>(scanned));
    report.AddRun(cl);
    report.AddRun(ce);
    obs.Record(cl);
    obs.Record(ce);
    table.AddRow({"compare (" + std::to_string(npairs) + " pairs, pool " +
                      std::to_string(pool.size()) + ")",
                  TablePrinter::Num(t_legacy), TablePrinter::Num(t_encoded),
                  TablePrinter::Num(compare_speedup)});
  }

  // --- kernel.lcp: scalar vs SIMD first-mismatch/LCP scans ---
  if (kernel_filter == "all" || kernel_filter == "lcp") {
    ran_lcp = true;
    // Streams are concatenations of 4 encoded dense-workload customer
    // sequences (~256 words) drawn from a 48-stream pool: long enough for
    // the vector loop to dominate call overhead, and small enough that the
    // whole pool is cache-resident, so the scan itself is what gets timed.
    // Pairs share a uniformly random prefix: copy a stream, flip one word
    // at position p, so the scan length is exactly p+1.
    ItemEncoder encoder;
    for (std::size_t c = 0; c < dense_db.size(); ++c) {
      encoder.NoteItems(dense_db[c]);
    }
    encoder.Finalize();
    constexpr std::size_t kLcpPool = 48;
    constexpr std::size_t kLcpConcat = 4;
    std::vector<std::vector<EncodedWord>> pa(kLcpPool), pb(kLcpPool);
    std::uint64_t rng = params.seed | 1;
    std::vector<EncodedWord> scratch;
    for (std::size_t i = 0; i < kLcpPool; ++i) {
      for (std::size_t k = 0; k < kLcpConcat; ++k) {
        const std::size_t c = XorShift(&rng) % dense_db.size();
        EncodeSequence(dense_db[c], encoder, &scratch);
        pa[i].insert(pa[i].end(), scratch.begin(), scratch.end());
      }
      pb[i] = pa[i];
      if (!pb[i].empty()) {
        const std::size_t p = XorShift(&rng) % pb[i].size();
        pb[i][p] ^= 1u << 1;  // shift the item code; boundary bit intact
      }
    }
    const std::uint64_t lcp_pairs = npairs / 8;  // long scans; fewer pairs
    std::vector<std::uint32_t> idx(lcp_pairs);
    // Words one pass over the pair set scans (untimed; feeds the gauge).
    std::uint64_t scanned = 0;
    for (std::uint64_t i = 0; i < lcp_pairs; ++i) {
      idx[i] = static_cast<std::uint32_t>(XorShift(&rng) % kLcpPool);
      const auto& a = pa[idx[i]];
      const auto& b = pb[idx[i]];
      std::uint32_t lcp = 0;
      EncodedCompareFrom(a.data(), a.size(), b.data(), b.size(), 0, &lcp);
      scanned += std::min<std::uint64_t>(lcp + 1, std::min(a.size(), b.size()));
    }
    std::int64_t sum_scalar = 0, sum_simd = 0;
    std::uint64_t lcp_scalar = 0, lcp_simd = 0;
    double t_scalar = -1.0, t_simd = -1.0;
    for (int r = 0; r < reps; ++r) {
      t_scalar = MinTime(t_scalar, [&] {
        sum_scalar = 0;
        lcp_scalar = 0;
        for (std::uint64_t i = 0; i < lcp_pairs; ++i) {
          const auto& a = pa[idx[i]];
          const auto& b = pb[idx[i]];
          std::uint32_t lcp = 0;
          sum_scalar += Sign(EncodedCompareFrom(a.data(), a.size(), b.data(),
                                                b.size(), 0, &lcp));
          lcp_scalar += lcp;
        }
      });
      t_simd = MinTime(t_simd, [&] {
        sum_simd = 0;
        lcp_simd = 0;
        for (std::uint64_t i = 0; i < lcp_pairs; ++i) {
          const auto& a = pa[idx[i]];
          const auto& b = pb[idx[i]];
          std::uint32_t lcp = 0;
          sum_simd += Sign(SimdCompareFrom(a.data(), a.size(), b.data(),
                                           b.size(), 0, &lcp));
          lcp_simd += lcp;
        }
      });
    }
    if (sum_scalar != sum_simd || lcp_scalar != lcp_simd) {
      std::fprintf(stderr,
                   "bench_kernels: ** LCP MISMATCH ** scalar (%lld, %llu) vs "
                   "simd (%lld, %llu)\n",
                   static_cast<long long>(sum_scalar),
                   static_cast<unsigned long long>(lcp_scalar),
                   static_cast<long long>(sum_simd),
                   static_cast<unsigned long long>(lcp_simd));
      ok = false;
    }
    lcp_speedup = t_simd > 0.0 ? t_scalar / t_simd : 0.0;
    obs::MineStats ll = KernelStats("kernel.lcp.legacy", t_scalar);
    obs::MineStats le = KernelStats("kernel.lcp.encoded", t_simd);
    AddWordsPerSec(&ll, static_cast<double>(scanned));
    AddWordsPerSec(&le, static_cast<double>(scanned));
    report.AddRun(ll);
    report.AddRun(le);
    obs.Record(ll);
    obs.Record(le);
    table.AddRow({"lcp (" + std::to_string(lcp_pairs) + " pairs, " +
                      SimdTierName(ActiveSimdTier()) + std::string(")"),
                  TablePrinter::Num(t_scalar), TablePrinter::Num(t_simd),
                  TablePrinter::Num(lcp_speedup)});
  }

  // --- kernel.kms / kernel.mine / kernel.bound: paired mining runs ---
  enum KernelKind { kKms, kMine, kBound };
  struct MiningKernel {
    const char* name;
    const char* filter;
    KernelKind kind;
  };
  for (const MiningKernel kernel :
       {MiningKernel{"kernel.kms", "kms", kKms},
        MiningKernel{"kernel.mine", "mine", kMine},
        MiningKernel{"kernel.bound", "bound", kBound}}) {
    if (kernel_filter != "all" && kernel_filter != kernel.filter) continue;
    if (kernel.kind == kKms && only.empty()) ran_kms = true;
    if (kernel.kind == kMine && only.empty()) ran_mine = true;
    // kms stays on the sparse Table 11 workload its baseline was built on;
    // mine and bound run the dense shape where the k >= 4 machinery (and
    // hence the optimized path's advantage) actually dominates.
    const SequenceDatabase& kdb = kernel.kind == kKms ? db : dense_db;
    const MineOptions& kopts = kernel.kind == kKms ? options : dense_options;
    auto make_miner = [&](bool optimized) -> std::unique_ptr<Miner> {
      switch (kernel.kind) {
        case kKms: {
          DynamicDiscAll::Config cfg;
          cfg.fixed_levels = 0;
          cfg.encoded_order = optimized;
          return std::make_unique<DynamicDiscAll>(cfg);
        }
        case kMine: {
          DiscAll::Config cfg;
          cfg.encoded_order = optimized;
          cfg.bound_pruning = optimized;
          return std::make_unique<DiscAll>(cfg);
        }
        case kBound:
        default: {
          DiscAll::Config cfg;  // encoded order on both sides
          cfg.bound_pruning = optimized;
          return std::make_unique<DiscAll>(cfg);
        }
      }
    };
    std::unique_ptr<Miner> legacy =
        only == "encoded" ? nullptr : make_miner(false);
    std::unique_ptr<Miner> encoded =
        only == "legacy" ? nullptr : make_miner(true);
    std::string out_legacy, out_encoded;
    double t_legacy = -1.0, t_encoded = -1.0;
    // Interleave the sides rep by rep (same rationale as kernel.compare).
    for (int r = 0; r < reps; ++r) {
      if (legacy != nullptr) {
        t_legacy = MinTime(t_legacy, [&] {
          out_legacy = legacy->Mine(kdb, kopts).ToString();
        });
      }
      if (encoded != nullptr) {
        t_encoded = MinTime(t_encoded, [&] {
          out_encoded = encoded->Mine(kdb, kopts).ToString();
        });
      }
    }
    if (t_legacy < 0.0) t_legacy = 0.0;
    if (t_encoded < 0.0) t_encoded = 0.0;
    obs::MineStats stats_legacy, stats_encoded;
    const double db_words = static_cast<double>(kdb.TotalItems());
    if (legacy != nullptr) {
      stats_legacy = legacy->last_stats();
      stats_legacy.miner = std::string(kernel.name) + ".legacy";
      stats_legacy.wall_seconds = t_legacy;
      AddWordsPerSec(&stats_legacy, db_words);
    }
    if (encoded != nullptr) {
      stats_encoded = encoded->last_stats();
      stats_encoded.miner = std::string(kernel.name) + ".encoded";
      stats_encoded.wall_seconds = t_encoded;
      AddWordsPerSec(&stats_encoded, db_words);
    }
    if (only.empty() && out_legacy != out_encoded) {
      std::fprintf(stderr, "bench_kernels: ** PATTERN MISMATCH ** in %s\n",
                   kernel.name);
      ok = false;
    }
    const double speedup =
        only.empty() && t_encoded > 0.0 ? t_legacy / t_encoded : 0.0;
    if (kernel.kind == kKms && only.empty()) kms_speedup = speedup;
    if (kernel.kind == kMine && only.empty()) mine_speedup = speedup;
    if (only != "encoded") {
      report.AddRun(stats_legacy);
      obs.Record(stats_legacy);
    }
    if (only != "legacy") {
      report.AddRun(stats_encoded);
      obs.Record(stats_encoded);
    }
    table.AddRow({kernel.name, TablePrinter::Num(t_legacy),
                  TablePrinter::Num(t_encoded), TablePrinter::Num(speedup)});
  }
  table.Print();

  if (min_speedup > 0.0 && ((ran_compare && compare_speedup < min_speedup) ||
                            (ran_kms && kms_speedup < min_speedup))) {
    std::fprintf(stderr,
                 "bench_kernels: speedup below --min-speedup=%.2f "
                 "(compare %.2f, kms %.2f)\n",
                 min_speedup, compare_speedup, kms_speedup);
    ok = false;
  }
  if (min_lcp_speedup > 0.0 && ran_lcp && lcp_speedup < min_lcp_speedup) {
    std::fprintf(stderr,
                 "bench_kernels: kernel.lcp speedup %.2f below "
                 "--min-lcp-speedup=%.2f\n",
                 lcp_speedup, min_lcp_speedup);
    ok = false;
  }
  if (min_mine_speedup > 0.0 && ran_mine && mine_speedup < min_mine_speedup) {
    std::fprintf(stderr,
                 "bench_kernels: kernel.mine speedup %.2f below "
                 "--min-mine-speedup=%.2f\n",
                 mine_speedup, min_mine_speedup);
    ok = false;
  }

  ok = obs.Finish() && ok;
  std::string json_path = flags.GetString("json-out", "");
  if (json_path.empty() && !flags.Has("json-out")) {
    json_path = "BENCH_kernels.json";
  }
  if (!json_path.empty() && obs.json_out().empty()) {
    std::string error;
    if (report.WriteJson(json_path, &error)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "bench_kernels: %s\n", error.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
