// Figure 9 — "Comparisons on different δ's": runtime vs minimum support on
// the dense workload of [8] (slen = tlen = seq.patlen = 8, nitems 1K).
//
// Paper: 10K customers, minsup 0.02 -> 0.0025. Default is 1K customers and
// the sweep stops at 0.005 (the densest points explode combinatorially on
// a small container); --full restores the paper setting.
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_fig9_minsup",
                      "[--ncust=N] [--dense] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 10000 : 1000));
  std::vector<double> sweeps = {0.02, 0.0175, 0.015, 0.0125, 0.01, 0.0075};
  if (full || flags.GetBool("dense", false)) {
    sweeps.push_back(0.005);
    sweeps.push_back(0.0025);
  } else {
    sweeps.push_back(0.005);
  }

  QuestParams params = Fig9Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);
  ObsSession obs("fig9_minsup", flags);
  obs.SetWorkload(MakeWorkloadInfo(db, "quest:fig9"));

  PrintBanner("Figure 9: runtime vs minimum support",
              "Quest slen=tlen=seq.patlen=8, nitems=1K; " +
                  DescribeDatabase(db),
              !full);

  TablePrinter table({"minsup", "delta", "disc-all (s)", "prefixspan (s)",
                      "pseudo (s)", "#patterns", "maxlen"});
  for (const double minsup : sweeps) {
    MineOptions options;
    options.min_support_count =
        MineOptions::CountForFraction(db.size(), minsup);
    options.threads = ThreadsFromFlags(flags);
    const MineTiming disc_t =
        TimeMine(CreateMiner("disc-all").get(), db, options);
    const MineTiming ps_t =
        TimeMine(CreateMiner("prefixspan").get(), db, options);
    const MineTiming pseudo_t =
        TimeMine(CreateMiner("pseudo").get(), db, options);
    obs.Record(disc_t.stats);
    obs.Record(ps_t.stats);
    obs.Record(pseudo_t.stats);
    table.AddRow({TablePrinter::Num(minsup, 4),
                  std::to_string(options.min_support_count),
                  TablePrinter::Num(disc_t.seconds),
                  TablePrinter::Num(ps_t.seconds),
                  TablePrinter::Num(pseudo_t.seconds),
                  std::to_string(disc_t.num_patterns),
                  std::to_string(disc_t.max_length)});
    std::printf("  [minsup %.4f] done (%zu patterns)\n", minsup,
                disc_t.num_patterns);
    std::fflush(stdout);
  }
  table.Print();
  return obs.Finish() ? 0 : 1;
}
