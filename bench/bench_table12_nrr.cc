// Table 12 — "Average NRR under different δ's": the per-level non-reduction
// rate (Equation 2, support-based variant of §4.2) on the Figure 9
// workload, for minimum supports 0.02 -> 0.0025.
//
// The paper's "Original" column uses the physical first-level partition
// sizes; we report the support-based value for every level uniformly (see
// EXPERIMENTS.md), so absolute values at level 0 differ while the headline
// trend — NRR rises toward 1 with depth, and deeper levels appear as the
// support drops — is directly comparable.
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/core/disc_all.h"
#include "disc/core/nrr.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_table12_nrr",
                      "[--ncust=N] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 10000 : 1000));
  std::vector<double> sweeps = {0.02, 0.0175, 0.015, 0.0125, 0.01, 0.0075,
                                0.005};
  if (full) sweeps.push_back(0.0025);

  QuestParams params = Fig9Params(ncust);
  params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const SequenceDatabase db = GenerateQuestDatabase(params);

  ObsSession obs("table12_nrr", flags);
  obs.SetWorkload(MakeWorkloadInfo(db, "quest:fig9"));

  PrintBanner("Table 12: average NRR per partition level vs minsup",
              DescribeDatabase(db), !full);

  // Mine once per threshold, compute NRR per level from the pattern set.
  const std::uint32_t max_levels = 9;
  std::vector<std::string> headers = {"minsup", "Original"};
  for (std::uint32_t l = 1; l < max_levels; ++l) {
    headers.push_back(std::to_string(l));
  }
  TablePrinter table(headers);
  TablePrinter physical({"minsup", "Original (physical)", "1 (physical)"});
  for (const double minsup : sweeps) {
    MineOptions options;
    options.min_support_count =
        MineOptions::CountForFraction(db.size(), minsup);
    DiscAll miner;
    const PatternSet mined = miner.Mine(db, options);
    obs.Record(miner.last_stats());
    const std::vector<double> nrr = AverageNrrByLevel(mined, db.size());
    std::vector<std::string> row = {TablePrinter::Num(minsup, 4)};
    for (std::uint32_t l = 0; l < max_levels; ++l) {
      if (l < nrr.size()) {
        row.push_back(TablePrinter::Num(nrr[l], l == 0 ? 4 : 2));
      } else {
        row.push_back("-");
      }
    }
    table.AddRow(std::move(row));
    physical.AddRow(
        {TablePrinter::Num(minsup, 4),
         TablePrinter::Num(miner.last_stats().Gauge("disc.physical_nrr.level0"),
                           4),
         TablePrinter::Num(miner.last_stats().Gauge("disc.physical_nrr.level1"),
                           2)});
    std::printf("  [minsup %.4f] %zu patterns, %u levels\n", minsup,
                mined.size(), mined.MaxLength());
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nPhysical-partition variant (actual partition sizes, as the paper's "
      "'Original' column):\n");
  physical.Print();
  return obs.Finish() ? 0 : 1;
}
