// Table 14 — "Average NRR under different θ's": the per-level NRR as the
// average number of transactions per customer (θ = slen) grows from 10 to
// 40, minimum support 0.005. The paper's observation: higher θ lowers the
// NRR at the shallow levels (partitions grow faster than their children).
#include <cstdio>
#include <string>
#include <vector>

#include "disc/benchlib/report.h"
#include "disc/benchlib/workload.h"
#include "disc/common/flags.h"
#include "disc/common/table.h"
#include "disc/core/nrr.h"

using namespace disc;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (PrintBenchUsage(flags, "bench_table14_nrr_theta",
                      "[--ncust=N] [--minsup=F] [--seed=N] [--full]")) {
    return 0;
  }
  const bool full = flags.GetBool("full", false);
  const std::uint32_t ncust = static_cast<std::uint32_t>(
      flags.GetInt("ncust", full ? 50000 : 2000));
  const double minsup = flags.GetDouble("minsup", full ? 0.005 : 0.02);
  const std::vector<double> thetas = {10, 15, 20, 25, 30, 35, 40};
  ObsSession obs("table14_nrr_theta", flags);

  PrintBanner("Table 14: average NRR per level vs theta (minsup = " +
                  std::to_string(minsup) + ")",
              "Quest tlen=2.5 nitems=1K seq.patlen=4, ncust=" +
                  std::to_string(ncust),
              !full);

  const std::uint32_t max_levels = 7;
  std::vector<std::string> headers = {"theta", "Original"};
  for (std::uint32_t l = 1; l < max_levels; ++l) {
    headers.push_back(std::to_string(l));
  }
  TablePrinter table(headers);
  for (const double theta : thetas) {
    QuestParams params = ThetaParams(ncust, theta);
    params.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
    const SequenceDatabase db = GenerateQuestDatabase(params);
    MineOptions options;
    options.min_support_count =
        MineOptions::CountForFraction(db.size(), minsup);
    const std::unique_ptr<Miner> miner = CreateMiner("disc-all");
    const PatternSet mined = miner->Mine(db, options);
    WorkloadInfo workload = MakeWorkloadInfo(db, "quest:theta");
    workload.min_support_count = options.min_support_count;
    obs.SetWorkload(workload);
    obs.Record(miner->last_stats());
    const std::vector<double> nrr = AverageNrrByLevel(mined, db.size());
    std::vector<std::string> row = {TablePrinter::Num(theta, 0)};
    for (std::uint32_t l = 0; l < max_levels; ++l) {
      row.push_back(l < nrr.size() ? TablePrinter::Num(nrr[l], l == 0 ? 4 : 2)
                                   : "-");
    }
    table.AddRow(std::move(row));
    std::printf("  [theta %.0f] %s, %zu patterns\n", theta,
                DescribeDatabase(db).c_str(), mined.size());
    std::fflush(stdout);
  }
  table.Print();
  return obs.Finish() ? 0 : 1;
}
