// Cross-miner MineStats invariants: every algorithm behind the common
// Miner interface must produce a populated, per-run work report, and the
// work counters must reflect each strategy's defining behavior — most
// importantly the paper's headline claim that DISC (without the bi-level
// option the experiments enable) discovers frequent k-sequences for
// k >= 4 without counting supports.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "disc/algo/miner.h"
#include "disc/benchlib/workload.h"
#include "disc/gen/quest.h"
#include "disc/obs/metrics.h"
#include "disc/seq/parse.h"

namespace disc {
namespace {

// Fig9-shaped Quest workload, scaled for unit-test speed.
SequenceDatabase DenseDb() {
  QuestParams params = Fig9Params(200);
  params.nitems = 200;
  params.seed = 7;
  return GenerateQuestDatabase(params);
}

MineOptions DenseOptions(const SequenceDatabase& db) {
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.1);
  return options;
}

// 30 customers, 20 of which contain the planted pattern (a)(b)(c)(d)(e):
// with delta 10 every miner must find frequent 5-sequences, so the
// k >= 4 support-counting attribution is guaranteed to be exercised.
#if DISC_OBS_ENABLED
SequenceDatabase PlantedDb() {
  SequenceDatabase db;
  for (int i = 0; i < 30; ++i) {
    std::string s;
    if (i % 3 != 0) s += "(a)(b)(c)(d)(e)";
    s += "(" + std::string(1, static_cast<char>('f' + i % 5)) + ")";
    s += "(" + std::string(1, static_cast<char>('k' + i % 7)) + ")";
    db.Add(ParseSequence(s));
  }
  return db;
}
#endif  // DISC_OBS_ENABLED

TEST(MineStats, EveryMinerReportsAPopulatedRun) {
  const SequenceDatabase db = DenseDb();
  const MineOptions options = DenseOptions(db);
  std::set<std::string> all_counters;
  std::size_t expected_patterns = 0;
  for (const std::string& name : AllMinerNames()) {
    const auto miner = CreateMiner(name);
    const PatternSet result = miner->Mine(db, options);
    const obs::MineStats& stats = miner->last_stats();
    EXPECT_EQ(stats.miner, name);
    EXPECT_EQ(stats.db_sequences, db.size());
    EXPECT_EQ(stats.num_patterns, result.size());
    EXPECT_EQ(stats.max_length, result.MaxLength());
    EXPECT_GE(stats.wall_seconds, 0.0);
    EXPECT_GT(stats.peak_rss_bytes, 0u);
#if DISC_OBS_ENABLED
    EXPECT_GE(stats.counters.size(), 2u) << name;
#endif
    for (const auto& [counter_name, value] : stats.counters) {
      all_counters.insert(counter_name);
      EXPECT_GT(value, 0u) << name << " harvested a zero-delta counter "
                           << counter_name;
    }
    // All miners agree on the result (the cross-check tests verify the
    // contents; here we only need identical shapes for the stats below).
    if (expected_patterns == 0) expected_patterns = result.size();
    EXPECT_EQ(result.size(), expected_patterns) << name;
  }
#if DISC_OBS_ENABLED
  EXPECT_GE(all_counters.size(), 5u);
#endif
}

TEST(MineStats, StatsAreFreshPerRunAndDeterministic) {
  const SequenceDatabase db = DenseDb();
  const MineOptions options = DenseOptions(db);
  const auto miner = CreateMiner("disc-all");
  miner->Mine(db, options);
  const obs::MineStats first = miner->last_stats();
  miner->Mine(db, options);
  const obs::MineStats& second = miner->last_stats();
  // Mining is deterministic and single-threaded: the second run must
  // harvest exactly the same per-run counter deltas, not an accumulation.
  EXPECT_EQ(first.counters, second.counters);
  EXPECT_EQ(first.num_patterns, second.num_patterns);
}

#if DISC_OBS_ENABLED
TEST(MineStats, DiscMinesLongPatternsWithoutSupportCounting) {
  const SequenceDatabase db = PlantedDb();
  MineOptions options;
  options.min_support_count = 10;

  // The workload must actually produce k >= 4 patterns for the claim to
  // mean anything.
  const auto nobilevel = CreateMiner("disc-all-nobilevel");
  nobilevel->Mine(db, options);
  ASSERT_GE(nobilevel->last_stats().max_length, 5u);

  // DISC without bi-level never support-counts past the partitioning
  // levels (lengths 2 and 3): k >= 4 patterns come from the sorted-set
  // intersection strategy alone.
  EXPECT_EQ(nobilevel->last_stats().Counter("support.increments.k4plus"), 0u);

  // Counting-based baselines must show k >= 4 support counting on the
  // same workload, proving the attribution counter works.
  for (const char* name : {"pseudo", "gsp"}) {
    const auto miner = CreateMiner(name);
    miner->Mine(db, options);
    EXPECT_GT(miner->last_stats().Counter("support.increments.k4plus"), 0u)
        << name;
  }
}

TEST(MineStats, DiscAllReportsPhysicalNrrGauges) {
  const SequenceDatabase db = DenseDb();
  const auto miner = CreateMiner("disc-all");
  miner->Mine(db, DenseOptions(db));
  const obs::MineStats& stats = miner->last_stats();
  ASSERT_TRUE(stats.HasGauge("disc.physical_nrr.level0"));
  const double nrr0 = stats.Gauge("disc.physical_nrr.level0");
  EXPECT_GT(nrr0, 0.0);
  EXPECT_LE(nrr0, 1.0);
}
#endif  // DISC_OBS_ENABLED

TEST(MineStats, TimeMineCarriesTheStats) {
  const SequenceDatabase db = DenseDb();
  const MineOptions options = DenseOptions(db);
  const auto miner = CreateMiner("prefixspan");
  const MineTiming t = TimeMine(miner.get(), db, options);
  EXPECT_EQ(t.stats.miner, "prefixspan");
  EXPECT_EQ(t.stats.num_patterns, t.num_patterns);
  EXPECT_EQ(t.stats.max_length, t.max_length);
}

}  // namespace
}  // namespace disc
