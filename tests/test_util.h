// Shared helpers for the test suite: small deterministic random databases
// and convenience constructors.
#ifndef DISC_TESTS_TEST_UTIL_H_
#define DISC_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "disc/common/rng.h"
#include "disc/gen/quest.h"
#include "disc/seq/database.h"
#include "disc/seq/parse.h"
#include "disc/seq/sequence.h"

namespace disc {
namespace testutil {

/// Shape of a random database.
struct RandomDbSpec {
  std::uint32_t num_seqs = 30;
  std::uint32_t alphabet = 8;
  std::uint32_t max_txns = 5;
  std::uint32_t max_items_per_txn = 3;
  std::uint64_t seed = 1;
};

/// Deterministic random database: every sequence has 1..max_txns
/// transactions of 1..max_items_per_txn distinct items from 1..alphabet.
inline SequenceDatabase MakeRandomDb(const RandomDbSpec& spec = {}) {
  Rng rng(spec.seed);
  SequenceDatabase db;
  for (std::uint32_t i = 0; i < spec.num_seqs; ++i) {
    std::vector<Itemset> itemsets;
    const std::uint32_t ntx =
        1 + static_cast<std::uint32_t>(rng.NextBounded(spec.max_txns));
    for (std::uint32_t t = 0; t < ntx; ++t) {
      std::vector<Item> items;
      const std::uint32_t n =
          1 + static_cast<std::uint32_t>(
                  rng.NextBounded(spec.max_items_per_txn));
      for (std::uint32_t j = 0; j < n; ++j) {
        items.push_back(
            1 + static_cast<Item>(rng.NextBounded(spec.alphabet)));
      }
      itemsets.emplace_back(std::move(items));
    }
    db.Add(Sequence(itemsets));
  }
  return db;
}

/// Seed-first spelling of MakeRandomDb (the spec's own seed is ignored).
inline SequenceDatabase RandomDatabase(std::uint64_t seed,
                                       RandomDbSpec spec = {}) {
  spec.seed = seed;
  return MakeRandomDb(spec);
}

/// Shape of a small-test Quest database: GenerateQuestDatabase with the
/// pattern tables scaled down to the data size, so construction is
/// milliseconds instead of the production-default table burn-in.
struct QuestDbSpec {
  std::uint32_t ncust = 120;
  std::uint32_t nitems = 40;
  double slen = 4.0;
  double tlen = 2.0;
  double seq_patlen = 3.0;
  std::uint32_t npats = 30;
  std::uint32_t nlits = 60;
  std::uint64_t seed = 7;
};

/// Deterministic small Quest database (the shared shape behind the
/// cross-check and determinism suites).
inline SequenceDatabase MakeQuestDb(const QuestDbSpec& spec = {}) {
  QuestParams params;
  params.ncust = spec.ncust;
  params.nitems = spec.nitems;
  params.slen = spec.slen;
  params.tlen = spec.tlen;
  params.seq_patlen = spec.seq_patlen;
  params.npats = spec.npats;
  params.nlits = spec.nlits;
  params.seed = spec.seed;
  return GenerateQuestDatabase(params);
}

/// A random sequence (for per-sequence property tests).
inline Sequence RandomSequence(Rng* rng, std::uint32_t alphabet,
                               std::uint32_t max_txns,
                               std::uint32_t max_items_per_txn) {
  std::vector<Itemset> itemsets;
  const std::uint32_t ntx =
      1 + static_cast<std::uint32_t>(rng->NextBounded(max_txns));
  for (std::uint32_t t = 0; t < ntx; ++t) {
    std::vector<Item> items;
    const std::uint32_t n =
        1 + static_cast<std::uint32_t>(rng->NextBounded(max_items_per_txn));
    for (std::uint32_t j = 0; j < n; ++j) {
      items.push_back(1 + static_cast<Item>(rng->NextBounded(alphabet)));
    }
    itemsets.emplace_back(std::move(items));
  }
  return Sequence(itemsets);
}

/// The paper's Table 1 example database.
inline SequenceDatabase Table1Database() {
  return MakeDatabase({
      "(a,e,g)(b)(h)(f)(c)(b,f)",
      "(b)(d,f)(e)",
      "(b,f,g)",
      "(f)(a,g)(b,f,h)(b,f)",
  });
}

/// The paper's Table 6 example database.
inline SequenceDatabase Table6Database() {
  return MakeDatabase({
      "(a,d)(d)(a,g,h)(c)",
      "(b)(a)(f)(a,c,e,g)",
      "(a,f,g)(a,e,g,h)(c,g,h)",
      "(f)(a,c,f)(a,c,e,g,h)",
      "(a,g)",
      "(a,f)(a,e,g,h)",
      "(a,b,g)(a,e,g)(g,h)",
      "(b,f)(b,e)(e,f,h)",
      "(d,f)(d,f,g,h)",
      "(b,f,g)(c,e,h)",
      "(e,g)(f)(e,f)",
  });
}

/// The paper's Table 8 <(a)(a)>-partition (already reduced).
inline SequenceDatabase Table8Partition() {
  return MakeDatabase({
      "(a)(a,g,h)(c)",
      "(b)(a)(a,c,e,g)",
      "(a,f,g)(a,e,g,h)(c,g,h)",
      "(f)(a,f)(a,c,e,g,h)",
      "(a,f)(a,e,g,h)",
      "(a,g)(a,e,g)(g,h)",
  });
}

inline Sequence Seq(const std::string& text) { return ParseSequence(text); }

}  // namespace testutil
}  // namespace disc

#endif  // DISC_TESTS_TEST_UTIL_H_
