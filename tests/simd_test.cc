// Fuzz tests pinning the SIMD mismatch-scan kernels (order/simd.h) to the
// scalar reference: every supported tier must return the identical
// three-way sign AND the identical LCP as EncodedCompareFrom for every
// stream length 0..130 (crossing the 4-word SSE2 and 8-word AVX2 block
// boundaries many times), every buffer alignment (the kernels take raw
// pointers, so sub-word-block starting addresses exercise the unaligned
// loads), and every `from` offset (the head-skip path). A mining test then
// closes the loop end to end: DiscAll patterns must be byte-identical
// across tier x thread count x bound-pruning, because the tier is a pure
// speed knob.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "disc/common/rng.h"
#include "disc/core/disc_all.h"
#include "disc/gen/quest.h"
#include "disc/order/encoded.h"
#include "disc/order/simd.h"

namespace disc {
namespace {

int Sign(int v) { return (v > 0) - (v < 0); }

// Tiers this machine can actually run (scalar always; wider tiers only
// when SetSimdTier accepts them).
std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  for (const SimdTier t : {SimdTier::kSse2, SimdTier::kAvx2}) {
    if (SetSimdTier(t)) tiers.push_back(t);
  }
  return tiers;
}

// Restores the default dispatch when a test body returns, so a failing
// ASSERT cannot leak a forced tier into later tests.
struct TierGuard {
  ~TierGuard() { SetSimdTier(BestSimdTier()); }
};

TEST(SimdKernel, MatchesScalarForAllLengthsAlignmentsAndOffsets) {
  TierGuard guard;
  Rng rng(0x51D0F00Dull);
  constexpr std::uint32_t kMaxLen = 130;  // crosses many 4/8-word blocks
  constexpr std::uint32_t kAlignSlots = 8;
  // One backing allocation per side with every alignment's slack up front;
  // the kernels see a[align..align+n), so each align value shifts the
  // starting address by one word within a vector block.
  for (const SimdTier tier : SupportedTiers()) {
    ASSERT_TRUE(SetSimdTier(tier)) << SimdTierName(tier);
    ASSERT_EQ(ActiveSimdTier(), tier);
    for (std::uint32_t n = 0; n <= kMaxLen; ++n) {
      for (std::uint32_t align = 0; align < kAlignSlots; ++align) {
        std::vector<EncodedWord> buf_a(align + n), buf_b(align + n);
        for (std::uint32_t i = 0; i < n; ++i) {
          // Word values with the realistic shape (code << 1) | boundary.
          buf_a[align + i] = static_cast<EncodedWord>(
              (rng.NextBounded(1000) + 1) << 1 | rng.NextBounded(2));
          buf_b[align + i] = buf_a[align + i];
        }
        // Half the trials diverge at a random position; half stay equal so
        // the "ranges agree" return (== n) is exercised at every length.
        std::uint32_t mismatch_at = n;
        if (n > 0 && rng.NextBounded(2) == 0) {
          mismatch_at = static_cast<std::uint32_t>(rng.NextBounded(n));
          buf_b[align + mismatch_at] ^= 2u;  // flip a code bit
        }
        const EncodedWord* a = buf_a.data() + align;
        const EncodedWord* b = buf_b.data() + align;
        // Different logical lengths hit the shorter-prefix-first tiebreak.
        const std::uint32_t na = n;
        const std::uint32_t nb =
            n > 0 && rng.NextBounded(4) == 0
                ? static_cast<std::uint32_t>(rng.NextBounded(n))
                : n;
        for (std::uint32_t from = 0; from <= std::min(na, nb); ++from) {
          // The caller contract says words before `from` are equal; only
          // valid offsets are fed.
          if (from > mismatch_at && mismatch_at < std::min(na, nb)) break;
          std::uint32_t lcp_scalar = 0, lcp_simd = 0;
          const int ref = EncodedCompareFrom(a, na, b, nb, from, &lcp_scalar);
          const int got = SimdCompareFrom(a, na, b, nb, from, &lcp_simd);
          ASSERT_EQ(Sign(ref), Sign(got))
              << SimdTierName(tier) << " n=" << n << " align=" << align
              << " from=" << from << " nb=" << nb;
          ASSERT_EQ(lcp_scalar, lcp_simd)
              << SimdTierName(tier) << " n=" << n << " align=" << align
              << " from=" << from << " nb=" << nb;
        }
      }
    }
  }
}

TEST(SimdKernel, MismatchNeverScansPastTheShorterRange) {
  TierGuard guard;
  // Directed boundary cases around every vector block edge: equal ranges
  // must report exactly n, and a mismatch planted at the last word must be
  // found, for n on both sides of the 4- and 8-word block sizes.
  for (const SimdTier tier : SupportedTiers()) {
    ASSERT_TRUE(SetSimdTier(tier)) << SimdTierName(tier);
    for (const std::uint32_t n :
         {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u}) {
      std::vector<EncodedWord> a(n, 42u << 1), b(a);
      EXPECT_EQ(EncodedMismatch(a.data(), b.data(), n, 0), n)
          << SimdTierName(tier) << " n=" << n;
      if (n == 0) continue;
      b[n - 1] ^= 2u;
      EXPECT_EQ(EncodedMismatch(a.data(), b.data(), n, 0), n - 1)
          << SimdTierName(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernel, ParseAndConfigureSpecs) {
  TierGuard guard;
  SimdTier tier;
  EXPECT_TRUE(ParseSimdTier("off", &tier));
  EXPECT_EQ(tier, SimdTier::kScalar);
  EXPECT_TRUE(ParseSimdTier("scalar", &tier));
  EXPECT_EQ(tier, SimdTier::kScalar);
  EXPECT_TRUE(ParseSimdTier("auto", &tier));
  EXPECT_EQ(tier, BestSimdTier());
  EXPECT_TRUE(ParseSimdTier("", &tier));
  EXPECT_EQ(tier, BestSimdTier());
  EXPECT_FALSE(ParseSimdTier("avx512", &tier));
  EXPECT_FALSE(ConfigureSimd("bogus"));
  EXPECT_TRUE(ConfigureSimd("off"));
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
}

TEST(SimdMining, PatternsIdenticalAcrossTierThreadsAndBound) {
  TierGuard guard;
  QuestParams params;
  params.ncust = 150;
  params.seed = 7;
  const SequenceDatabase db = GenerateQuestDatabase(params);
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.03);

  std::string reference;
  for (const SimdTier tier : SupportedTiers()) {
    ASSERT_TRUE(SetSimdTier(tier)) << SimdTierName(tier);
    for (const int threads : {1, 4}) {
      for (const bool bound : {false, true}) {
        DiscAll::Config cfg;
        cfg.bound_pruning = bound;
        options.threads = threads;
        const std::string got = DiscAll(cfg).Mine(db, options).ToString();
        if (reference.empty()) reference = got;
        ASSERT_EQ(got, reference)
            << SimdTierName(tier) << " threads=" << threads
            << " bound=" << bound;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace disc
