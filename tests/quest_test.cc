#include "disc/gen/quest.h"

#include <gtest/gtest.h>

#include "disc/algo/miner.h"

namespace disc {
namespace {

TEST(Quest, DeterministicUnderSeed) {
  QuestParams p;
  p.ncust = 200;
  p.nitems = 100;
  p.npats = 50;
  p.nlits = 100;
  p.seed = 123;
  const SequenceDatabase a = GenerateQuestDatabase(p);
  const SequenceDatabase b = GenerateQuestDatabase(p);
  ASSERT_EQ(a.size(), b.size());
  for (Cid cid = 0; cid < a.size(); ++cid) {
    ASSERT_EQ(a[cid], b[cid]) << cid;
  }
  p.seed = 124;
  const SequenceDatabase c = GenerateQuestDatabase(p);
  bool any_diff = false;
  for (Cid cid = 0; cid < a.size() && !any_diff; ++cid) {
    if (!(a[cid] == c[cid])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Quest, RespectsBasicShapeKnobs) {
  QuestParams p;
  p.ncust = 1500;
  p.slen = 10.0;
  p.tlen = 2.5;
  p.nitems = 400;
  p.npats = 200;
  p.nlits = 500;
  const SequenceDatabase db = GenerateQuestDatabase(p);
  EXPECT_EQ(db.size(), 1500u);
  // Average transactions per customer tracks slen within a loose band
  // (corruption and dedup shave a little off).
  EXPECT_NEAR(db.AvgTransactionsPerCustomer(), p.slen, 2.5);
  // Average items per transaction tracks tlen within a loose band.
  EXPECT_NEAR(db.AvgItemsPerTransaction(), p.tlen, 1.0);
  EXPECT_LE(db.max_item(), p.nitems);
}

TEST(Quest, ThetaKnobScales) {
  QuestParams p;
  p.ncust = 600;
  p.nitems = 300;
  p.npats = 100;
  p.nlits = 200;
  p.slen = 6.0;
  const double t6 =
      GenerateQuestDatabase(p).AvgTransactionsPerCustomer();
  p.slen = 18.0;
  const double t18 =
      GenerateQuestDatabase(p).AvgTransactionsPerCustomer();
  EXPECT_GT(t18, 2.0 * t6);
}

TEST(Quest, AllSequencesWellFormedAndNonEmpty) {
  QuestParams p;
  p.ncust = 400;
  p.nitems = 60;
  p.npats = 40;
  p.nlits = 80;
  p.tlen = 1.2;
  p.slen = 2.0;
  const SequenceDatabase db = GenerateQuestDatabase(p);
  for (const SequenceView s : db) {
    EXPECT_TRUE(s.IsWellFormed());
    EXPECT_GE(s.Length(), 1u);
  }
}

TEST(Quest, EmbedsMineablePatterns) {
  // The whole point of the generator: at a sane threshold the database
  // contains multi-item sequential patterns, with a long tail (more
  // 1-sequences than 3-sequences).
  QuestParams p;
  p.ncust = 800;
  p.nitems = 120;
  p.npats = 40;
  p.nlits = 80;
  p.slen = 6.0;
  p.tlen = 2.0;
  p.seq_patlen = 4.0;
  const SequenceDatabase db = GenerateQuestDatabase(p);
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.02);
  options.max_length = 4;
  const PatternSet mined = CreateMiner("pseudo")->Mine(db, options);
  const auto by_len = mined.CountByLength();
  ASSERT_TRUE(by_len.count(1));
  EXPECT_TRUE(by_len.count(2)) << "no frequent 2-sequences generated";
  EXPECT_TRUE(by_len.count(3)) << "no frequent 3-sequences generated";
}

TEST(Quest, CountForFraction) {
  EXPECT_EQ(MineOptions::CountForFraction(1000, 0.005), 5u);
  EXPECT_EQ(MineOptions::CountForFraction(1000, 0.0049), 5u);  // ceil
  EXPECT_EQ(MineOptions::CountForFraction(10, 0.001), 1u);     // floor of 1
  EXPECT_EQ(MineOptions::CountForFraction(100, 1.0), 100u);
}

}  // namespace
}  // namespace disc
