// Socket transport tests (server/transport.h, server/admission.h wired
// through server/server.h): loopback unix + TCP round trips, per-client
// load shedding with the `err busy` line, mid-mine disconnect cancelling
// the session and releasing its admission slot, drain delivering
// byte-prefix partial results before a zero exit, idle timeouts, and
// admission state in `stat` framing.
//
// Everything runs in-process: the transport serves on a background thread
// while the test plays one or more clients over DialAddress/FdStream.
// Timing-dependent phases synchronize on observable state (admission
// snapshots, engine.active()) rather than sleeps, except where a
// `pool.task=delay` fail point pins a session in flight deterministically.
#include "disc/server/transport.h"

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "disc/common/failpoint.h"
#include "disc/engine/engine.h"
#include "disc/server/admission.h"
#include "test_util.h"

namespace disc {
namespace server {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Polls `cond` until true or ~5s; true when the condition was met.
template <typename Cond>
bool WaitUntil(Cond cond) {
  const auto deadline = steady_clock::now() + milliseconds(5000);
  while (steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return cond();
}

/// One protocol client over a dialed connection.
struct Client {
  std::unique_ptr<FdStream> stream;

  bool Connect(const std::string& address) {
    StatusOr<int> fd = DialAddress(address);
    if (!fd.ok()) return false;
    stream = std::make_unique<FdStream>(*fd);
    return true;
  }
  void Send(const std::string& line) { *stream << line << "\n" << std::flush; }
  bool ReadLine(std::string* line) {
    return static_cast<bool>(std::getline(*stream, *line));
  }
  /// Reads one `ok mine` (or error/busy) header; on `ok mine`, collects
  /// the pattern block through its `end` frame into `block`.
  bool ReadMineResponse(std::string* header, std::vector<std::string>* block) {
    if (!ReadLine(header)) return false;
    if (header->rfind("ok mine", 0) != 0) return true;  // busy/error line
    std::string line;
    while (ReadLine(&line)) {
      if (line == "end") return true;
      block->push_back(line);
    }
    return false;
  }
};

class SocketTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<engine::Engine>();
    engine_->LoadDatabase(testutil::MakeQuestDb(
        {.ncust = 120, .nitems = 50, .slen = 5, .tlen = 2.0}));
    socket_path_ = ::testing::TempDir() + "disc_tt_" +
                   std::to_string(::getpid()) + ".sock";
  }

  void TearDown() override {
    StopTransport();
    failpoint::Reset();
  }

  void Start(TransportOptions options) {
    options.unix_path = options.tcp_port >= 0 ? "" : socket_path_;
    transport_ = std::make_unique<SocketTransport>(engine_.get(), options);
    ASSERT_TRUE(transport_->Listen().ok());
    serve_thread_ = std::thread([this] { exit_code_ = transport_->Serve(); });
  }

  void StopTransport() {
    if (transport_ == nullptr) return;
    transport_->RequestDrain();
    if (serve_thread_.joinable()) serve_thread_.join();
    transport_.reset();
  }

  std::string UnixAddress() const { return "unix:" + socket_path_; }

  /// Connects and consumes the greeting.
  void ConnectReady(Client* client, const std::string& address) {
    ASSERT_TRUE(client->Connect(address)) << address;
    std::string line;
    ASSERT_TRUE(client->ReadLine(&line));
    EXPECT_EQ(line, "info seqmined ready");
  }

  std::unique_ptr<engine::Engine> engine_;
  std::string socket_path_;
  std::unique_ptr<SocketTransport> transport_;
  std::thread serve_thread_;
  int exit_code_ = -1;
};

TEST_F(SocketTransportTest, UnixRoundTripMinesAndQuits) {
  Start(TransportOptions{});
  Client client;
  ConnectReady(&client, UnixAddress());

  client.Send("mine --minsup 0.1");
  std::string header;
  std::vector<std::string> block;
  ASSERT_TRUE(client.ReadMineResponse(&header, &block));
  EXPECT_EQ(header.rfind("ok mine ", 0), 0u) << header;
  EXPECT_NE(header.find("status=complete"), std::string::npos) << header;
  EXPECT_FALSE(block.empty());

  client.Send("quit");
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "ok quit");
  EXPECT_FALSE(client.ReadLine(&line)) << "connection must close after quit";
  EXPECT_TRUE(WaitUntil([&] { return transport_->active_connections() == 0; }));
}

TEST_F(SocketTransportTest, TcpEphemeralPortRoundTrip) {
  TransportOptions options;
  options.tcp_port = 0;  // ephemeral; resolved after Listen()
  Start(options);
  ASSERT_GT(transport_->tcp_port(), 0);

  Client client;
  ConnectReady(&client,
               "127.0.0.1:" + std::to_string(transport_->tcp_port()));
  client.Send("mine --minsup 0.1");
  std::string header;
  std::vector<std::string> block;
  ASSERT_TRUE(client.ReadMineResponse(&header, &block));
  EXPECT_NE(header.find("status=complete"), std::string::npos) << header;
  EXPECT_FALSE(block.empty());
  client.Send("quit");
}

TEST_F(SocketTransportTest, PerClientLimitShedsWithBusyLineThenRecovers) {
  TransportOptions options;
  options.admission.per_client = 1;
  Start(options);
  // Pin the first mine in flight: its pool task sleeps before mining, so
  // the slot is held while the second client is (deterministically) shed.
  ASSERT_TRUE(failpoint::Configure("pool.task=delay:500").ok());

  Client first, second;
  ConnectReady(&first, UnixAddress());
  ConnectReady(&second, UnixAddress());

  first.Send("mine --minsup 0.1");
  ASSERT_TRUE(WaitUntil([&] {
    return transport_->admission().snapshot().active >= 1;
  })) << "first mine never took its admission slot";

  // Both connections come from this process (same uid), so the per-client
  // limit sees through them and sheds the second mine immediately.
  second.Send("mine --minsup 0.1");
  std::string busy;
  ASSERT_TRUE(second.ReadLine(&busy));
  EXPECT_EQ(busy.rfind("err busy retry-after-ms=", 0), 0u) << busy;
  EXPECT_NE(busy.find("reason=client"), std::string::npos) << busy;

  failpoint::Reset();
  std::string header;
  std::vector<std::string> block;
  ASSERT_TRUE(first.ReadMineResponse(&header, &block));
  EXPECT_NE(header.find("status=complete"), std::string::npos) << header;

  // The slot is free again: the polite retry is admitted.
  second.Send("mine --minsup 0.1");
  std::string retry_header;
  std::vector<std::string> retry_block;
  ASSERT_TRUE(second.ReadMineResponse(&retry_header, &retry_block));
  EXPECT_EQ(retry_header.rfind("ok mine ", 0), 0u) << retry_header;
  EXPECT_EQ(retry_block, block) << "same query, same database, same bytes";

  first.Send("quit");
  second.Send("quit");
}

TEST_F(SocketTransportTest, MidMineDisconnectCancelsSessionAndReleasesSlot) {
  Start(TransportOptions{});
  ASSERT_TRUE(failpoint::Configure("pool.task=delay:500").ok());

  {
    Client client;
    ConnectReady(&client, UnixAddress());
    client.Send("mine --minsup 0.1");
    ASSERT_TRUE(WaitUntil([&] {
      return transport_->admission().snapshot().active >= 1;
    }));
  }  // ~Client closes the socket with the mine still in flight

  // The dead client's session must be cancelled, its admission slot
  // released, and its connection reaped — nothing wedged, nothing leaked.
  EXPECT_TRUE(WaitUntil([&] { return engine_->active() == 0; }))
      << "disconnect must cancel the in-flight session";
  EXPECT_TRUE(WaitUntil([&] {
    return transport_->admission().snapshot().active == 0;
  })) << "disconnect must release the admission slot";
  EXPECT_TRUE(WaitUntil([&] { return transport_->active_connections() == 0; }))
      << "disconnect must reap the connection";
}

TEST_F(SocketTransportTest, DrainDeliversBytePrefixPartialThenExitsZero) {
  Start(TransportOptions{});
  Client client;
  ConnectReady(&client, UnixAddress());

  // Reference run: the full pattern block for this query.
  client.Send("mine --minsup 0.05");
  std::string full_header;
  std::vector<std::string> full;
  ASSERT_TRUE(client.ReadMineResponse(&full_header, &full));
  ASSERT_NE(full_header.find("status=complete"), std::string::npos);
  ASSERT_FALSE(full.empty());

  // Same query pinned in flight, then drain (what SIGTERM triggers via
  // InstallDrainSignalHandlers). The client must still receive its
  // response — a byte-prefix of the full block — before the server exits.
  ASSERT_TRUE(failpoint::Configure("pool.task=delay:500").ok());
  client.Send("mine --minsup 0.05");
  ASSERT_TRUE(WaitUntil([&] {
    return transport_->admission().snapshot().active >= 1;
  }));
  transport_->RequestDrain();

  std::string header;
  std::vector<std::string> partial;
  ASSERT_TRUE(client.ReadMineResponse(&header, &partial));
  EXPECT_NE(header.find("status=partial"), std::string::npos) << header;
  EXPECT_NE(header.find("reason=cancelled"), std::string::npos) << header;
  ASSERT_LE(partial.size(), full.size());
  for (std::size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i], full[i])
        << "drained block must be a byte-prefix of the full block (line "
        << i << ")";
  }

  serve_thread_.join();
  EXPECT_EQ(exit_code_, 0) << "a clean drain is exit 0";
}

TEST_F(SocketTransportTest, IdleTimeoutDropsASilentConnection) {
  TransportOptions options;
  options.idle_timeout_ms = 100;
  Start(options);

  Client client;
  ConnectReady(&client, UnixAddress());
  // Send nothing: the server must drop us instead of parking a thread on
  // a silent peer forever. EOF (after the close-out framing) is the
  // observable signal.
  std::string line;
  while (client.ReadLine(&line)) {
  }
  EXPECT_TRUE(WaitUntil([&] { return transport_->active_connections() == 0; }));
}

TEST_F(SocketTransportTest, StatReportsAdmissionAndCacheState) {
  Start(TransportOptions{});
  Client client;
  ConnectReady(&client, UnixAddress());

  client.Send("mine --minsup 0.1");
  std::string header;
  std::vector<std::string> block;
  ASSERT_TRUE(client.ReadMineResponse(&header, &block));

  client.Send("stat");
  bool saw_admit = false, saw_client = false, saw_cache = false;
  std::string line;
  while (client.ReadLine(&line) && line != "ok stat") {
    if (line.rfind("info admit active=", 0) == 0) {
      saw_admit = true;
      EXPECT_NE(line.find(" rejected="), std::string::npos) << line;
      EXPECT_NE(line.find(" max_inflight="), std::string::npos) << line;
    }
    if (line.rfind("info client id=uid:", 0) == 0) saw_client = true;
    if (line.rfind("info cache hits=", 0) == 0) {
      saw_cache = true;
      EXPECT_NE(line.find(" slots="), std::string::npos) << line;
      EXPECT_NE(line.find(" capacity="), std::string::npos) << line;
      EXPECT_NE(line.find(" evictions="), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_admit) << "stat must expose global admission state";
  EXPECT_TRUE(saw_client) << "stat must expose per-client admission state";
  EXPECT_TRUE(saw_cache);
  client.Send("quit");
}

TEST(DialAddressTest, RejectsMalformedAndUnreachableAddresses) {
  EXPECT_EQ(DialAddress("nonsense").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DialAddress("unix:").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(DialAddress("unix:/nonexistent/disc.sock").ok());
  EXPECT_FALSE(DialAddress("127.0.0.1:1").ok())
      << "nothing listens on a privileged low port in the test env";
}

}  // namespace
}  // namespace server
}  // namespace disc
