// Failure-injection and fuzz-ish robustness tests: malformed inputs must
// abort loudly (never corrupt results), and serialization must round-trip
// arbitrary well-formed databases.
#include <gtest/gtest.h>

#include "disc/algo/miner.h"
#include "disc/common/rng.h"
#include "disc/seq/io.h"
#include "disc/seq/parse.h"
#include "test_util.h"

namespace disc {
namespace {

using testutil::Seq;

TEST(RobustnessDeathTest, MalformedSequenceLiteralsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(ParseSequence("(a"), "unterminated|expected");
  EXPECT_DEATH(ParseSequence("a)"), "expected");
  EXPECT_DEATH(ParseSequence("(a,)"), "expected");
  EXPECT_DEATH(ParseSequence("()"), "expected");
  EXPECT_DEATH(ParseSequence("(0)"), "reserved");
}

TEST(RobustnessDeathTest, MalformedSpmfAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(FromSpmfString("1 -2"), "closed");
  EXPECT_DEATH(FromSpmfString("-1 -2"), "empty itemset");
  EXPECT_DEATH(FromSpmfString("1 -1"), "unterminated");
  EXPECT_DEATH(FromSpmfString("0 -1 -2"), "positive");
  EXPECT_DEATH(LoadSpmf("/nonexistent/path/db.spmf"), "cannot open");
}

TEST(RobustnessDeathTest, MinerMisuseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CreateMiner("no-such-algorithm"), "unknown miner");
  SequenceDatabase db;
  db.Add(Seq("(a)"));
  MineOptions options;
  options.min_support_count = 0;  // invalid: delta must be >= 1
  EXPECT_DEATH(CreateMiner("disc-all")->Mine(db, options), "min_support");
}

TEST(Robustness, SpmfRoundTripFuzz) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    testutil::RandomDbSpec spec;
    spec.num_seqs = 20 + static_cast<std::uint32_t>(rng.NextBounded(30));
    spec.alphabet = 1 + static_cast<std::uint32_t>(rng.NextBounded(200));
    spec.max_txns = 1 + static_cast<std::uint32_t>(rng.NextBounded(8));
    spec.max_items_per_txn =
        1 + static_cast<std::uint32_t>(rng.NextBounded(5));
    const SequenceDatabase db = testutil::RandomDatabase(rng.Next(), spec);
    const SequenceDatabase back = FromSpmfString(ToSpmfString(db));
    ASSERT_EQ(back.size(), db.size());
    for (Cid cid = 0; cid < db.size(); ++cid) {
      ASSERT_EQ(back[cid], db[cid]);
    }
  }
}

TEST(Robustness, ParsePrintRoundTrip) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const Sequence s = testutil::RandomSequence(&rng, 26, 5, 4);
    EXPECT_EQ(ParseSequence(s.ToString()), s);
  }
}

TEST(Robustness, LargeItemIdsWork) {
  // Items near the top of a large alphabet must flow through every miner
  // (counting arrays are sized by max_item).
  SequenceDatabase db;
  db.Add(ParseSequence("(999)(1000)"));
  db.Add(ParseSequence("(999)(1000)"));
  db.Add(ParseSequence("(7)(999)"));
  MineOptions options;
  options.min_support_count = 2;
  const PatternSet reference = CreateMiner("pseudo")->Mine(db, options);
  EXPECT_EQ(reference.SupportOf(ParseSequence("(999)(1000)")), 2u);
  for (const std::string& name : AllMinerNames()) {
    EXPECT_EQ(CreateMiner(name)->Mine(db, options), reference) << name;
  }
}

TEST(Robustness, ManyIdenticalSingleItemTransactions) {
  // Degenerate repetition: one item repeated; patterns are pure chains.
  SequenceDatabase db;
  std::vector<Itemset> txns(30, Itemset({1}));
  for (int i = 0; i < 3; ++i) db.Add(Sequence(txns));
  MineOptions options;
  options.min_support_count = 3;
  options.max_length = 6;
  const PatternSet reference = CreateMiner("pseudo")->Mine(db, options);
  EXPECT_EQ(reference.size(), 6u);  // (a), (a)(a), ..., length 6
  for (const std::string& name : AllMinerNames()) {
    EXPECT_EQ(CreateMiner(name)->Mine(db, options), reference) << name;
  }
}

}  // namespace
}  // namespace disc
