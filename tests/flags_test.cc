#include "disc/common/flags.h"

#include <cmath>

#include <gtest/gtest.h>

#include "disc/common/table.h"

namespace disc {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceSyntax) {
  const Flags f = ParseArgs({"--ncust=500", "--minsup", "0.01", "--full"});
  EXPECT_EQ(f.GetInt("ncust", 0), 500);
  EXPECT_DOUBLE_EQ(f.GetDouble("minsup", 0.0), 0.01);
  EXPECT_TRUE(f.GetBool("full", false));
  EXPECT_TRUE(f.Has("full"));
  EXPECT_FALSE(f.Has("absent"));
}

TEST(Flags, Defaults) {
  const Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 2.5), 2.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("b", true));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(ParseArgs({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=1"}).GetBool("x", false));
  EXPECT_FALSE(ParseArgs({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x=no"}).GetBool("x", true));
}

TEST(Flags, Positional) {
  const Flags f = ParseArgs({"input.spmf", "--n=3", "out.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.spmf");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

using FlagsDeath = ::testing::Test;

TEST(FlagsDeath, MalformedNumericValuesAreUsageErrors) {
  // Trailing junk must not silently truncate ("--slen=2.5x" reading as
  // 2.5); the getter reports the flag and exits with the usage code 2.
  EXPECT_EXIT(ParseArgs({"--slen=2.5x"}).GetDouble("slen", 0.0),
              ::testing::ExitedWithCode(2), "flag --slen=2.5x: expects a "
                                            "number");
  EXPECT_EXIT(ParseArgs({"--slen=abc"}).GetDouble("slen", 0.0),
              ::testing::ExitedWithCode(2), "expects a number");
  EXPECT_EXIT(ParseArgs({"--ncust=2x"}).GetInt("ncust", 0),
              ::testing::ExitedWithCode(2), "flag --ncust=2x: expects an "
                                            "integer");
  EXPECT_EXIT(ParseArgs({"--ncust=1.5"}).GetInt("ncust", 0),
              ::testing::ExitedWithCode(2), "expects an integer");
  EXPECT_EXIT(ParseArgs({"--ncust="}).GetInt("ncust", 0),
              ::testing::ExitedWithCode(2), "expects an integer");
  EXPECT_EXIT(ParseArgs({"--x=maybe"}).GetBool("x", false),
              ::testing::ExitedWithCode(2), "expects a boolean");
}

TEST(FlagsDeath, OutOfRangeNumericValuesAreUsageErrors) {
  EXPECT_EXIT(ParseArgs({"--n=99999999999999999999"}).GetInt("n", 0),
              ::testing::ExitedWithCode(2), "integer out of range");
  EXPECT_EXIT(ParseArgs({"--x=1e999"}).GetDouble("x", 0.0),
              ::testing::ExitedWithCode(2), "number out of range");
}

TEST(Flags, ValidNumericEdgeValuesStillParse) {
  EXPECT_EQ(ParseArgs({"--n=-7"}).GetInt("n", 0), -7);
  EXPECT_DOUBLE_EQ(ParseArgs({"--x=-0.5"}).GetDouble("x", 0.0), -0.5);
  EXPECT_DOUBLE_EQ(ParseArgs({"--x=1e3"}).GetDouble("x", 0.0), 1000.0);
  // Denormal underflow is not a usage error: strtod sets ERANGE but
  // returns the (usable) tiny magnitude, not HUGE_VAL.
  EXPECT_GT(ParseArgs({"--x=1e-320"}).GetDouble("x", 1.0), 0.0);
}

TEST(Table, MarkdownRendering) {
  TablePrinter t({"col", "value"});
  t.AddRow({"a", TablePrinter::Num(1.2345, 2)});
  t.AddRow({"bb", "-"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| col | value |"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("|  bb |"), std::string::npos);
}

TEST(Table, NumFormatsNaNAsDash) {
  EXPECT_EQ(TablePrinter::Num(std::nan(""), 2), "-");
  EXPECT_EQ(TablePrinter::Num(0.5, 3), "0.500");
}

}  // namespace
}  // namespace disc
