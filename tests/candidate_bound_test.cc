// Tests pinning the candidate upper bound (core/candidate_bound.h) that
// lets the miners skip provably-fruitless partitions:
//
//   * the closed-form Bound = C(ni,2) + ni*ns + C(ns,2) + ns^2 equals a
//     brute-force enumeration of the admissible extension pairs for random
//     frequent-extension lists;
//   * the O(1) early-exit CanYieldNextLevel(freq) agrees with the tallied
//     form on every list;
//   * on the golden corpus, for every mined prefix the bound really does
//     dominate the number of frequent two-level-deeper patterns, and a
//     zero bound means NO deeper pattern with that prefix exists at any
//     depth (the anti-monotonicity argument the skip relies on);
//   * mining with bound_pruning on and off is byte-identical — this also
//     covers the Apriori second-level counting filter, which is gated by
//     the same config bit.
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "disc/algo/pattern_io.h"
#include "disc/common/rng.h"
#include "disc/core/candidate_bound.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"
#include "disc/seq/io.h"

namespace disc {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(DISC_TEST_DATA_DIR) + "/" + name;
}

// Brute-force count of admissible (k+2)-candidates p + e1 + e2: dropping
// either new item must leave a frequent (k+1)-extension of p, so each
// candidate is admitted by a pair of entries from the frequent-extension
// list — the four category rules from the candidate_bound.h file comment.
// Note the two candidates a sequence-form pair (x,S), (y,S) admits: two
// single-item transactions {x}{y} (any order, y == x allowed), and the
// merged transaction {x, y} for x < y — whose second witness is p + (y,S),
// NOT an itemset-form entry, because dropping x from {x, y} leaves the
// single-item new transaction {y}.
std::uint64_t BruteForcePairs(
    const std::vector<std::pair<Item, ExtType>>& freq) {
  std::uint64_t total = 0;
  for (const auto& [x, tx] : freq) {
    for (const auto& [y, ty] : freq) {
      if (tx == ExtType::kItemset && ty == ExtType::kItemset) {
        if (x < y) ++total;  // second item joins the same itemset
      } else if (tx == ExtType::kItemset && ty == ExtType::kSequence) {
        ++total;  // new transaction {y} after the extended itemset
      } else if (tx == ExtType::kSequence && ty == ExtType::kSequence) {
        ++total;             // two new transactions {x}{y}
        if (x < y) ++total;  // one merged new transaction {x, y}
      }
    }
  }
  return total;
}

TEST(CandidateBound, FormulaMatchesBruteForceEnumeration) {
  Rng rng(0xB0D5ull);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::pair<Item, ExtType>> freq;
    const int n = static_cast<int>(rng.NextBounded(12));
    // Distinct items, each present in itemset form, sequence form, or both
    // — the shape FrequentExtensions() produces.
    for (Item x = 1; static_cast<int>(freq.size()) < n; ++x) {
      const std::uint64_t kind = rng.NextBounded(3);
      if (kind != 1) freq.emplace_back(x, ExtType::kItemset);
      if (kind != 0) freq.emplace_back(x, ExtType::kSequence);
    }
    const CandidateBound bound = CandidateBound::FromExtensions(freq);
    EXPECT_EQ(bound.NextLevelCandidates(), BruteForcePairs(freq));
    EXPECT_EQ(bound.CanYieldNextLevel(),
              CandidateBound::CanYieldNextLevel(freq));
  }
}

TEST(CandidateBound, ZeroExactlyWhenNoSequenceExtAndAtMostOneItemsetExt) {
  using P = std::pair<Item, ExtType>;
  const std::vector<P> empty;
  const std::vector<P> one_itemset = {P{3, ExtType::kItemset}};
  const std::vector<P> one_sequence = {P{3, ExtType::kSequence}};
  const std::vector<P> two_itemsets = {P{3, ExtType::kItemset},
                                       P{5, ExtType::kItemset}};
  const std::vector<P> both_forms = {P{3, ExtType::kItemset},
                                     P{3, ExtType::kSequence}};
  EXPECT_FALSE(CandidateBound::CanYieldNextLevel(empty));
  EXPECT_FALSE(CandidateBound::CanYieldNextLevel(one_itemset));
  EXPECT_TRUE(CandidateBound::CanYieldNextLevel(one_sequence));
  EXPECT_TRUE(CandidateBound::CanYieldNextLevel(two_itemsets));
  EXPECT_TRUE(CandidateBound::CanYieldNextLevel(both_forms));
}

// Classifies how a (k+1)-pattern extends its k-prefix: appending to the
// last itemset leaves a last transaction of size >= 2; a sequence-form
// extension is a fresh single-item transaction.
ExtType LastExtType(const Sequence& q) {
  const std::uint32_t t = q.NumTransactions() - 1;
  return q.TxnEnd(t) - q.TxnBegin(t) >= 2 ? ExtType::kItemset
                                          : ExtType::kSequence;
}

TEST(CandidateBound, DominatesGoldenCorpusAndZeroMeansBarren) {
  struct Corpus {
    const char* db;
    std::uint32_t delta;
  };
  for (const Corpus corpus : {Corpus{"quest_tiny.spmf", 4u},
                              Corpus{"quest_mid.spmf", 6u}}) {
    SCOPED_TRACE(corpus.db);
    const SequenceDatabase db = LoadSpmf(DataPath(corpus.db));
    MineOptions options;
    options.min_support_count = corpus.delta;
    const PatternSet patterns = DiscAll().Mine(db, options);
    ASSERT_GT(patterns.size(), 0u);

    // Index the mined set by length, serialized for cheap equality.
    std::map<std::uint32_t, std::vector<Sequence>> by_length;
    for (const auto& [p, sup] : patterns) {
      (void)sup;
      by_length[p.Length()].push_back(p);
    }
    const std::uint32_t max_len = by_length.rbegin()->first;

    std::uint64_t zero_bounds = 0;
    for (const auto& [k, prefixes] : by_length) {
      for (const Sequence& p : prefixes) {
        // p's frequent one-item extensions, recovered from the mined set:
        // the partition's FrequentExtensions() result is exactly this list
        // (the reassign-forward invariant makes partition support global).
        std::vector<std::pair<Item, ExtType>> freq;
        for (const Sequence& q : by_length[k + 1]) {
          if (q.Prefix(k) == p) freq.emplace_back(q.LastItem(), LastExtType(q));
        }
        const CandidateBound bound = CandidateBound::FromExtensions(freq);

        // Count the frequent patterns two levels deeper with prefix p.
        std::uint64_t two_deeper = 0;
        for (const Sequence& r : by_length[k + 2]) {
          if (r.Prefix(k) == p) ++two_deeper;
        }
        EXPECT_LE(two_deeper, bound.NextLevelCandidates()) << p.ToString();

        if (!bound.CanYieldNextLevel()) {
          ++zero_bounds;
          // Anti-monotonicity: a zero bound forbids descendants at EVERY
          // deeper level, which is what licenses skipping the partition.
          for (std::uint32_t deeper = k + 2; deeper <= max_len; ++deeper) {
            for (const Sequence& r : by_length[deeper]) {
              EXPECT_NE(r.Prefix(k), p)
                  << "zero-bound prefix " << p.ToString()
                  << " has deeper frequent pattern " << r.ToString();
            }
          }
        }
      }
    }
    // The corpus must actually exercise the skip path, or this test pins
    // nothing.
    EXPECT_GT(zero_bounds, 0u);
  }
}

TEST(CandidateBound, MiningIsByteIdenticalWithAndWithoutPruning) {
  for (const char* name : {"quest_tiny.spmf", "quest_mid.spmf"}) {
    SCOPED_TRACE(name);
    const SequenceDatabase db = LoadSpmf(DataPath(name));
    MineOptions options;
    options.min_support_count = 4;
    for (const std::uint32_t threads : {1u, 4u}) {
      options.threads = threads;
      DiscAll::Config on, off;
      on.bound_pruning = true;
      off.bound_pruning = false;
      EXPECT_EQ(ToSpmfPatternString(DiscAll(on).Mine(db, options)),
                ToSpmfPatternString(DiscAll(off).Mine(db, options)));
      DynamicDiscAll::Config don, doff;
      don.bound_pruning = true;
      doff.bound_pruning = false;
      EXPECT_EQ(ToSpmfPatternString(DynamicDiscAll(don).Mine(db, options)),
                ToSpmfPatternString(DynamicDiscAll(doff).Mine(db, options)));
    }
  }
}

}  // namespace
}  // namespace disc
