// Cross-algorithm agreement across Quest workload *shapes*: the paper's
// evaluation sweeps database size, density (tlen), sequence length (slen)
// and pattern length; this suite sweeps the same axes at test scale and
// demands identical output from every miner.
#include <tuple>

#include <gtest/gtest.h>

#include "disc/algo/miner.h"
#include "disc/common/rng.h"
#include "disc/core/weighted.h"
#include "disc/gen/quest.h"
#include "test_util.h"

namespace disc {
namespace {

class QuestShapes
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(QuestShapes, AllMinersAgree) {
  const auto [slen, tlen, patlen] = GetParam();
  const SequenceDatabase db = testutil::MakeQuestDb({.ncust = 150,
                                                     .nitems = 50,
                                                     .slen = slen,
                                                     .tlen = tlen,
                                                     .seq_patlen = patlen,
                                                     .npats = 40,
                                                     .nlits = 80,
                                                     .seed = 20240705});
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.08);
  options.max_length = 4;  // bounds GSP's candidate sets on dense corners
  const PatternSet reference = CreateMiner("pseudo")->Mine(db, options);
  EXPECT_FALSE(reference.empty());
  for (const std::string& name : AllMinerNames()) {
    if (name == "pseudo") continue;
    const PatternSet got = CreateMiner(name)->Mine(db, options);
    EXPECT_EQ(got, reference)
        << name << " on slen=" << slen << " tlen=" << tlen
        << " patlen=" << patlen << "\n"
        << reference.Diff(got);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuestShapes,
    ::testing::Values(std::make_tuple(4.0, 1.5, 3.0),   // sparse short
                      std::make_tuple(10.0, 2.5, 4.0),  // Figure 8 shape
                      std::make_tuple(8.0, 8.0, 8.0),   // Figure 9 shape
                      std::make_tuple(14.0, 2.5, 4.0),  // high theta
                      std::make_tuple(3.0, 6.0, 2.0),   // wide baskets
                      std::make_tuple(12.0, 1.2, 6.0)   // near-item sequences
                      ));

class WeightedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedSweep, WeightedMatchesOracleEverywhere) {
  // Random weights over random shapes: every reported pattern's weight is
  // oracle-exact, and unit weights reduce to the unweighted miner.
  Rng rng(GetParam());
  testutil::RandomDbSpec spec;
  spec.num_seqs = 25;
  spec.alphabet = 6;
  spec.max_txns = 4;
  spec.max_items_per_txn = 2;
  const SequenceDatabase db = testutil::RandomDatabase(rng.Next(), spec);
  WeightedOptions options;
  for (Cid cid = 0; cid < db.size(); ++cid) {
    options.weights.push_back(0.25 + rng.NextDouble() * 2.0);
  }
  options.min_weight = 6.0;
  const WeightedPatternSet got = MineWeighted(db, options);
  for (const auto& [p, w] : got) {
    EXPECT_NEAR(w, WeightedSupport(db, options.weights, p), 1e-6)
        << p.ToString();
  }
  // Downward closure under weights (weights are non-negative, so prefixes
  // weigh at least as much).
  for (const auto& [p, w] : got) {
    for (std::uint32_t k = 1; k < p.Length(); ++k) {
      const auto it = got.find(p.Prefix(k));
      ASSERT_NE(it, got.end()) << p.Prefix(k).ToString();
      EXPECT_GE(it->second + 1e-9, w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSweep,
                         ::testing::Range<std::uint64_t>(500, 510));

}  // namespace
}  // namespace disc
