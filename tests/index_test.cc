#include "disc/seq/index.h"

#include <gtest/gtest.h>

#include "disc/common/rng.h"
#include "disc/seq/containment.h"
#include "disc/seq/extension.h"
#include "test_util.h"

namespace disc {
namespace {

using testutil::Seq;

TEST(SequenceIndex, NextTxnWithItem) {
  const Sequence s = Seq("(a,c)(b)(a)(c)");
  const SequenceIndex idx(s);
  EXPECT_EQ(idx.NextTxnWithItem(1, 0), 0u);
  EXPECT_EQ(idx.NextTxnWithItem(1, 1), 2u);
  EXPECT_EQ(idx.NextTxnWithItem(1, 3), kNoTxn);
  EXPECT_EQ(idx.NextTxnWithItem(2, 0), 1u);
  EXPECT_EQ(idx.NextTxnWithItem(3, 1), 3u);
  EXPECT_EQ(idx.NextTxnWithItem(9, 0), kNoTxn);
  EXPECT_EQ(idx.NumTransactions(), 4u);
}

TEST(SequenceIndex, NextTxnWithItemset) {
  const Sequence s = Seq("(a,b)(a)(a,b,c)(b,c)");
  const SequenceIndex idx(s);
  const Item ab[] = {1, 2};
  EXPECT_EQ(idx.NextTxnWithItemset(0, ab, ab + 2), 0u);
  EXPECT_EQ(idx.NextTxnWithItemset(1, ab, ab + 2), 2u);
  EXPECT_EQ(idx.NextTxnWithItemset(3, ab, ab + 2), kNoTxn);
  const Item abc[] = {1, 2, 3};
  EXPECT_EQ(idx.NextTxnWithItemset(0, abc, abc + 3), 2u);
  const Item bd[] = {2, 4};
  EXPECT_EQ(idx.NextTxnWithItemset(0, bd, bd + 2), kNoTxn);
}

TEST(SequenceIndex, SuffixMinItem) {
  const Sequence s = Seq("(d)(b,c)(e)(c)");
  const SequenceIndex idx(s);
  EXPECT_EQ(idx.SuffixMinItem(0), 2u);
  EXPECT_EQ(idx.SuffixMinItem(1), 2u);
  EXPECT_EQ(idx.SuffixMinItem(2), 3u);
  EXPECT_EQ(idx.SuffixMinItem(3), 3u);
  EXPECT_EQ(idx.SuffixMinItem(4), kNoItem);
  EXPECT_EQ(idx.SuffixMinItem(99), kNoItem);
}

// Property: every index query agrees with the direct scan.
TEST(SequenceIndex, MatchesDirectScans) {
  Rng rng(808);
  for (int trial = 0; trial < 150; ++trial) {
    const Sequence s = testutil::RandomSequence(&rng, 6, 6, 3);
    const SequenceIndex idx(s);
    for (std::uint32_t start = 0; start <= s.NumTransactions(); ++start) {
      for (Item x = 1; x <= 7; ++x) {
        const Item itemset1[] = {x};
        EXPECT_EQ(idx.NextTxnWithItem(x, start),
                  FindTxnWithItemset(s, start, itemset1, itemset1 + 1));
      }
      for (Item x = 1; x <= 6; ++x) {
        for (Item y = x + 1; y <= 6; ++y) {
          const Item pair[] = {x, y};
          EXPECT_EQ(idx.NextTxnWithItemset(start, pair, pair + 2),
                    FindTxnWithItemset(s, start, pair, pair + 2));
        }
      }
      // Suffix minimum.
      Item expect = kNoItem;
      for (std::uint32_t t = start; t < s.NumTransactions(); ++t) {
        for (const Item* p = s.TxnBegin(t); p != s.TxnEnd(t); ++p) {
          if (expect == kNoItem || *p < expect) expect = *p;
        }
      }
      EXPECT_EQ(idx.SuffixMinItem(start), expect);
    }
  }
}

// Property: indexed and index-less extension machinery agree.
TEST(SequenceIndex, IndexedScansMatchUnindexed) {
  Rng rng(909);
  for (int trial = 0; trial < 200; ++trial) {
    const Sequence s = testutil::RandomSequence(&rng, 6, 5, 3);
    const SequenceIndex idx(s);
    const Sequence pattern = testutil::RandomSequence(&rng, 6, 3, 2);
    const EmbeddingEnds a = LeftmostEnds(s, pattern);
    const EmbeddingEnds b = LeftmostEnds(s, pattern, &idx);
    EXPECT_EQ(a.contained, b.contained);
    EXPECT_EQ(a.full_end, b.full_end);
    EXPECT_EQ(a.prefix_end, b.prefix_end);

    const MinExtension m1 = ScanMinExtension(s, pattern);
    const MinExtension m2 =
        ScanMinExtension(s, pattern, nullptr, false, &idx);
    EXPECT_EQ(m1.contained, m2.contained);
    EXPECT_EQ(m1.found, m2.found);
    if (m1.found) {
      EXPECT_EQ(m1.item, m2.item);
      EXPECT_EQ(m1.type, m2.type);
    }

    std::vector<std::pair<Item, ExtType>> e1, e2;
    ForEachExtension(s, pattern,
                     [&](Item x, ExtType t) { e1.emplace_back(x, t); });
    ForEachExtension(
        s, pattern, [&](Item x, ExtType t) { e2.emplace_back(x, t); }, &idx);
    std::sort(e1.begin(), e1.end());
    std::sort(e2.begin(), e2.end());
    e1.erase(std::unique(e1.begin(), e1.end()), e1.end());
    e2.erase(std::unique(e2.begin(), e2.end()), e2.end());
    EXPECT_EQ(e1, e2) << pattern.ToString() << " in " << s.ToString();
  }
}

TEST(SequenceIndex, WideItemsetFallback) {
  // Itemsets wider than the inline cursor buffer take the fallback path.
  std::vector<Item> wide;
  for (Item x = 1; x <= 40; ++x) wide.push_back(x);
  Sequence s;
  s.AppendItemset(Itemset({50}));
  s.AppendItemset(Itemset(wide));
  const SequenceIndex idx(s);
  EXPECT_EQ(idx.NextTxnWithItemset(0, wide.data(), wide.data() + 40), 1u);
  EXPECT_EQ(idx.NextTxnWithItemset(2, wide.data(), wide.data() + 40),
            kNoTxn);
}

}  // namespace
}  // namespace disc
