// Golden-corpus regression tests: every registered miner, at 1 and 4
// threads, must reproduce the committed golden pattern files byte for
// byte on three small Quest datasets (tests/data/*.spmf).
//
// The goldens pin the full mining contract at once — the pattern set, the
// exact supports, and the canonical comparative-order serialization — so
// any drift in an algorithm, the order, or the SPMF writer shows up as a
// diff against a file in version control. Refresh a golden only for an
// intentional contract change:
//
//   $ build/examples/seqmine tests/data/<db>.spmf --algo=disc-all \
//         --delta=<delta> --out=tests/data/<db>.delta<delta>.golden.spmf
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "disc/algo/miner.h"
#include "disc/algo/pattern_io.h"
#include "disc/seq/io.h"
#include "disc/seq/storage.h"

namespace disc {
namespace {

struct Corpus {
  const char* db;      // SPMF database under tests/data/
  const char* golden;  // expected patterns (SPMF pattern format)
  std::uint32_t delta;
};

constexpr Corpus kCorpora[] = {
    {"quest_tiny.spmf", "quest_tiny.delta4.golden.spmf", 4},
    {"quest_mid.spmf", "quest_mid.delta6.golden.spmf", 6},
    {"quest_dense.spmf", "quest_dense.delta8.golden.spmf", 8},
};

std::string DataPath(const std::string& name) {
  return std::string(DISC_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GoldenCorpus, EveryMinerMatchesGoldenAtOneAndFourThreads) {
  for (const Corpus& corpus : kCorpora) {
    SCOPED_TRACE(corpus.db);
    const SequenceDatabase db = LoadSpmf(DataPath(corpus.db));
    const std::string golden = ReadFileOrDie(DataPath(corpus.golden));
    ASSERT_FALSE(golden.empty());
    MineOptions options;
    options.min_support_count = corpus.delta;
    for (const std::string& name : AllMinerNames()) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(name + " threads=" + std::to_string(threads));
        options.threads = threads;
        const PatternSet patterns = CreateMiner(name)->Mine(db, options);
        EXPECT_EQ(ToSpmfPatternString(patterns), golden);
      }
    }
  }
}

// Packed variant: each corpus pushed through the .dsa arena format
// (SaveDsa -> mmap TryLoadDsa) must mine to the same goldens. This is the
// end-to-end storage guarantee — a mapped database is not merely
// "equal", it produces byte-identical mining output.
TEST(GoldenCorpus, PackedDatabasesMatchGolden) {
  for (const Corpus& corpus : kCorpora) {
    SCOPED_TRACE(corpus.db);
    const SequenceDatabase db = LoadSpmf(DataPath(corpus.db));
    const std::string golden = ReadFileOrDie(DataPath(corpus.golden));
    ASSERT_FALSE(golden.empty());

    const std::string packed =
        ::testing::TempDir() + "/golden_packed_" + corpus.db + ".dsa";
    ASSERT_TRUE(SaveDsa(db, packed).ok());
    auto mapped = TryLoadDsa(packed);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    ASSERT_TRUE(mapped->mapped());

    MineOptions options;
    options.min_support_count = corpus.delta;
    for (const std::string& name : {std::string("disc-all"),
                                    std::string("dynamic-disc-all")}) {
      SCOPED_TRACE(name);
      const PatternSet patterns = CreateMiner(name)->Mine(*mapped, options);
      EXPECT_EQ(ToSpmfPatternString(patterns), golden);
    }
  }
}

// The goldens themselves must round-trip through the pattern reader, so a
// hand-edited or truncated golden fails loudly rather than silently
// "matching" a similarly broken writer.
TEST(GoldenCorpus, GoldenFilesRoundTrip) {
  for (const Corpus& corpus : kCorpora) {
    SCOPED_TRACE(corpus.golden);
    const std::string golden = ReadFileOrDie(DataPath(corpus.golden));
    const PatternSet parsed = FromSpmfPatternString(golden);
    EXPECT_GT(parsed.size(), 0u);
    EXPECT_EQ(ToSpmfPatternString(parsed), golden);
  }
}

}  // namespace
}  // namespace disc
