// AdmissionController tests (server/admission.h): the cap/queue/shed
// state machine (global window, queued refinement, per-client limits),
// the retry-after backoff-hint arithmetic, default-deadline stamping, the
// `admit.reject` fail point, and snapshot accounting.
#include "disc/server/admission.h"

#include <string>

#include <gtest/gtest.h>

#include "disc/common/failpoint.h"

namespace disc {
namespace server {
namespace {

AdmissionConfig SmallConfig() {
  AdmissionConfig config;
  config.max_inflight = 2;
  config.max_pending = 1;
  config.per_client = 2;
  config.retry_after_base_ms = 100;
  config.retry_after_max_ms = 5000;
  return config;
}

class AdmissionTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(AdmissionTest, AdmitsUpToTheWindowThenShedsGlobally) {
  AdmissionController admission(SmallConfig());
  // Window = max_inflight (2) + max_pending (1) = 3, spread over two
  // clients so the per-client limit (2) never interferes.
  EXPECT_TRUE(admission.TryAdmit("a").admitted);
  EXPECT_TRUE(admission.TryAdmit("a").admitted);
  EXPECT_TRUE(admission.TryAdmit("b").admitted);

  const AdmissionDecision shed = admission.TryAdmit("b");
  EXPECT_FALSE(shed.admitted);
  EXPECT_STREQ(shed.reason, "global");
  EXPECT_GT(shed.retry_after_ms, 0u);
}

TEST_F(AdmissionTest, QueuedRefinesAdmissionBeyondTheInflightCap) {
  AdmissionController admission(SmallConfig());
  EXPECT_FALSE(admission.TryAdmit("a").queued) << "slot 1 of 2 runs";
  EXPECT_FALSE(admission.TryAdmit("b").queued) << "slot 2 of 2 runs";
  const AdmissionDecision third = admission.TryAdmit("c");
  EXPECT_TRUE(third.admitted);
  EXPECT_TRUE(third.queued) << "beyond max_inflight waits in the pool";
}

TEST_F(AdmissionTest, PerClientLimitShedsBeforeTheGlobalWindow) {
  AdmissionController admission(SmallConfig());
  EXPECT_TRUE(admission.TryAdmit("greedy").admitted);
  EXPECT_TRUE(admission.TryAdmit("greedy").admitted);
  const AdmissionDecision shed = admission.TryAdmit("greedy");
  EXPECT_FALSE(shed.admitted);
  EXPECT_STREQ(shed.reason, "client");
  // The window still has room for everyone else.
  EXPECT_TRUE(admission.TryAdmit("polite").admitted);
}

TEST_F(AdmissionTest, ReleaseFreesTheSlotForReadmission) {
  AdmissionConfig config = SmallConfig();
  config.per_client = 1;
  AdmissionController admission(config);
  EXPECT_TRUE(admission.TryAdmit("a").admitted);
  EXPECT_FALSE(admission.TryAdmit("a").admitted);
  admission.Release("a");
  EXPECT_TRUE(admission.TryAdmit("a").admitted);
}

TEST_F(AdmissionTest, RetryAfterHintDoublesPerStreakAndSaturates) {
  AdmissionController admission(SmallConfig());
  EXPECT_EQ(admission.RetryAfterHint(0), 100u);
  EXPECT_EQ(admission.RetryAfterHint(1), 200u);
  EXPECT_EQ(admission.RetryAfterHint(2), 400u);
  EXPECT_EQ(admission.RetryAfterHint(5), 3200u);
  EXPECT_EQ(admission.RetryAfterHint(6), 5000u) << "capped at the ceiling";
  EXPECT_EQ(admission.RetryAfterHint(60), 5000u)
      << "pathological streaks must not wrap the shift";
}

TEST_F(AdmissionTest, ConsecutiveRejectionsGrowTheHintUntilProgress) {
  AdmissionConfig config = SmallConfig();
  config.max_inflight = 1;
  config.max_pending = 0;
  config.per_client = 1;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.TryAdmit("holder").admitted);

  EXPECT_EQ(admission.TryAdmit("x").retry_after_ms, 100u);
  EXPECT_EQ(admission.TryAdmit("y").retry_after_ms, 200u);
  EXPECT_EQ(admission.TryAdmit("z").retry_after_ms, 400u);

  // A freed slot is progress: the streak resets to the base hint.
  admission.Release("holder");
  ASSERT_TRUE(admission.TryAdmit("x").admitted);
  EXPECT_EQ(admission.TryAdmit("y").retry_after_ms, 100u);
}

TEST_F(AdmissionTest, ApplyDefaultsStampsOnlyMissingDeadlines) {
  AdmissionConfig config = SmallConfig();
  config.default_deadline_ms = 750;
  AdmissionController admission(config);

  engine::MineRequest bare;
  admission.ApplyDefaults(&bare);
  EXPECT_EQ(bare.options.deadline_ms, 750u);

  engine::MineRequest explicit_deadline;
  explicit_deadline.options.deadline_ms = 50;
  admission.ApplyDefaults(&explicit_deadline);
  EXPECT_EQ(explicit_deadline.options.deadline_ms, 50u)
      << "a caller-provided deadline must win";
}

TEST_F(AdmissionTest, InjectedRejectionViaFailPoint) {
  AdmissionController admission(SmallConfig());
  ASSERT_TRUE(failpoint::Configure("admit.reject=error").ok());
  const AdmissionDecision shed = admission.TryAdmit("anyone");
  EXPECT_FALSE(shed.admitted);
  EXPECT_STREQ(shed.reason, "injected");
  failpoint::Reset();
  EXPECT_TRUE(admission.TryAdmit("anyone").admitted);
}

TEST_F(AdmissionTest, SnapshotTracksGlobalAndPerClientCounts) {
  AdmissionController admission(SmallConfig());
  admission.TryAdmit("a");
  admission.TryAdmit("a");
  admission.TryAdmit("b");
  admission.TryAdmit("b");  // rejected: window full

  AdmissionController::Stats stats = admission.snapshot();
  EXPECT_EQ(stats.active, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  ASSERT_EQ(stats.clients.size(), 2u);
  EXPECT_EQ(stats.clients[0].client, "a");
  EXPECT_EQ(stats.clients[0].active, 2u);
  EXPECT_EQ(stats.clients[1].client, "b");
  EXPECT_EQ(stats.clients[1].rejected, 1u);

  admission.Release("a");
  admission.Release("a");
  admission.Release("b");
  stats = admission.snapshot();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.queued, 0u);

  // ForgetClient drops only idle records.
  admission.TryAdmit("a");
  admission.ForgetClient("a");
  admission.ForgetClient("b");
  stats = admission.snapshot();
  ASSERT_EQ(stats.clients.size(), 1u);
  EXPECT_EQ(stats.clients[0].client, "a");
}

}  // namespace
}  // namespace server
}  // namespace disc
