// Weighted DISC mining (paper §5 future work) against the brute-force
// weighted-support oracle, plus consistency with unweighted mining when all
// weights are 1.
#include "disc/core/weighted.h"

#include <gtest/gtest.h>

#include "disc/algo/miner.h"
#include "disc/common/rng.h"
#include "disc/core/locative_avl.h"
#include "disc/order/kmin_brute.h"
#include "test_util.h"

namespace disc {
namespace {

using testutil::Seq;

TEST(Weighted, HandExample) {
  SequenceDatabase db;
  db.Add(Seq("(a)(b)"));  // weight 5
  db.Add(Seq("(a)(b)"));  // weight 0.5
  db.Add(Seq("(a)(c)"));  // weight 1
  WeightedOptions options;
  options.weights = {5.0, 0.5, 1.0};
  options.min_weight = 5.0;
  const WeightedPatternSet got = MineWeighted(db, options);
  // (a): 6.5, (b): 5.5, (a)(b): 5.5; (c) and (a)(c) only weigh 1.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got.at(Seq("(a)")), 6.5);
  EXPECT_DOUBLE_EQ(got.at(Seq("(b)")), 5.5);
  EXPECT_DOUBLE_EQ(got.at(Seq("(a)(b)")), 5.5);
}

TEST(Weighted, UnitWeightsEqualUnweighted) {
  for (std::uint64_t seed = 70; seed < 76; ++seed) {
    const SequenceDatabase db = testutil::RandomDatabase(seed);
    MineOptions plain;
    plain.min_support_count = 3;
    const PatternSet reference = CreateMiner("disc-all")->Mine(db, plain);
    WeightedOptions options;
    options.weights.assign(db.size(), 1.0);
    options.min_weight = 3.0;
    const WeightedPatternSet got = MineWeighted(db, options);
    ASSERT_EQ(got.size(), reference.size()) << "seed " << seed;
    for (const auto& [p, w] : got) {
      EXPECT_EQ(static_cast<std::uint32_t>(w + 0.5), reference.SupportOf(p))
          << p.ToString();
    }
  }
}

TEST(Weighted, MatchesBruteForceOracle) {
  Rng rng(313);
  for (std::uint64_t seed = 80; seed < 88; ++seed) {
    const SequenceDatabase db = testutil::RandomDatabase(seed);
    WeightedOptions options;
    options.weights.reserve(db.size());
    for (Cid cid = 0; cid < db.size(); ++cid) {
      options.weights.push_back(rng.NextDouble() * 4.0);
    }
    options.min_weight = 8.0;
    const WeightedPatternSet got = MineWeighted(db, options);
    // Soundness: every reported pattern's weight matches the oracle.
    for (const auto& [p, w] : got) {
      EXPECT_NEAR(w, WeightedSupport(db, options.weights, p), 1e-6)
          << p.ToString();
      EXPECT_GE(w, options.min_weight);
    }
    // Completeness for lengths 1-3 by brute-force enumeration.
    std::set<Sequence, SequenceLess> candidates;
    for (const SequenceView s : db) {
      for (std::uint32_t k = 1; k <= 3; ++k) {
        for (const Sequence& sub : AllDistinctKSubsequences(s, k)) {
          candidates.insert(sub);
        }
      }
    }
    for (const Sequence& c : candidates) {
      const double w = WeightedSupport(db, options.weights, c);
      EXPECT_EQ(got.count(c) > 0, w >= options.min_weight)
          << c.ToString() << " weight " << w;
    }
  }
}

TEST(Weighted, ZeroWeightCustomersAreInert) {
  SequenceDatabase db;
  db.Add(Seq("(a)(b)"));
  db.Add(Seq("(a)(b)"));
  db.Add(Seq("(z)(z)"));
  WeightedOptions options;
  options.weights = {1.0, 1.0, 0.0};
  options.min_weight = 2.0;
  const WeightedPatternSet got = MineWeighted(db, options);
  EXPECT_TRUE(got.count(Seq("(a)(b)")));
  EXPECT_FALSE(got.count(Seq("(z)")));
  EXPECT_FALSE(got.count(Seq("(z)(z)")));
}

TEST(Weighted, MaxLengthRespected) {
  SequenceDatabase db;
  for (int i = 0; i < 3; ++i) db.Add(Seq("(a)(b)(c)(d)"));
  WeightedOptions options;
  options.weights.assign(db.size(), 1.0);
  options.min_weight = 3.0;
  options.max_length = 2;
  const WeightedPatternSet got = MineWeighted(db, options);
  for (const auto& [p, w] : got) {
    (void)w;
    EXPECT_LE(p.Length(), 2u);
  }
  EXPECT_EQ(got.size(), 4u + 6u);  // four 1-sequences, six 2-sequences
}

TEST(WeightedDeathTest, InvalidOptionsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SequenceDatabase db;
  db.Add(Seq("(a)"));
  WeightedOptions options;
  options.weights = {1.0, 2.0};  // size mismatch
  EXPECT_DEATH(MineWeighted(db, options), "one weight per");
  options.weights = {-1.0};
  EXPECT_DEATH(MineWeighted(db, options), "w >= 0");
  options.weights = {1.0};
  options.min_weight = 0.0;
  EXPECT_DEATH(MineWeighted(db, options), "min_weight");
}

TEST(LocativeAvlWeighted, SelectByWeight) {
  LocativeAvlTree tree;
  tree.Insert(Seq("(a)"), 0, 2.0);
  tree.Insert(Seq("(b)"), 1, 0.5);
  tree.Insert(Seq("(c)"), 2, 3.0);
  EXPECT_DOUBLE_EQ(tree.TotalWeight(), 5.5);
  EXPECT_EQ(tree.SelectKeyByWeight(0.1).ToString(), "(a)");
  EXPECT_EQ(tree.SelectKeyByWeight(2.0).ToString(), "(a)");
  EXPECT_EQ(tree.SelectKeyByWeight(2.2).ToString(), "(b)");
  EXPECT_EQ(tree.SelectKeyByWeight(5.5).ToString(), "(c)");
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<std::uint32_t> handles;
  tree.PopMinBucket(&handles);
  EXPECT_DOUBLE_EQ(tree.TotalWeight(), 3.5);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace disc
