#include "disc/seq/itemset.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(Itemset, SortsAndDeduplicates) {
  const Itemset s({5, 1, 3, 1, 5});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 5u);
}

TEST(Itemset, Contains) {
  const Itemset s({2, 4, 6});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Contains(7));
}

TEST(Itemset, SubsetOf) {
  const Itemset super({1, 2, 3, 5, 8});
  EXPECT_TRUE(Itemset({2, 5}).IsSubsetOf(super));
  EXPECT_TRUE(Itemset({1, 2, 3, 5, 8}).IsSubsetOf(super));
  EXPECT_TRUE(Itemset{}.IsSubsetOf(super));
  EXPECT_FALSE(Itemset({2, 4}).IsSubsetOf(super));
  EXPECT_FALSE(Itemset({9}).IsSubsetOf(super));
  EXPECT_FALSE(super.IsSubsetOf(Itemset({1, 2})));
}

TEST(Itemset, InsertErase) {
  Itemset s({3, 7});
  s.Insert(5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 5u);
  s.Insert(5);  // duplicate: no-op
  EXPECT_EQ(s.size(), 3u);
  s.Erase(3);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Contains(3));
  s.Erase(99);  // absent: no-op
  EXPECT_EQ(s.size(), 2u);
}

TEST(Itemset, Max) {
  EXPECT_EQ(Itemset({4, 9, 2}).Max(), 9u);
  EXPECT_EQ(Itemset({1}).Max(), 1u);
}

TEST(Itemset, SortedRangeIsSubsetEdges) {
  const Item sub[] = {2, 3};
  const Item super[] = {1, 2, 3, 4};
  EXPECT_TRUE(SortedRangeIsSubset(sub, sub + 2, super, super + 4));
  EXPECT_TRUE(SortedRangeIsSubset(sub, sub, super, super + 4));  // empty sub
  EXPECT_FALSE(SortedRangeIsSubset(sub, sub + 2, super, super));  // empty sup
  const Item dup[] = {2, 2};
  // A strictly sorted superset cannot absorb a duplicated requirement.
  EXPECT_FALSE(SortedRangeIsSubset(dup, dup + 2, super, super + 4));
}

}  // namespace
}  // namespace disc
