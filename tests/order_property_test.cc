// Property tests establishing that the comparative order has exactly the
// structure the DISC lemmas require: a strict total order on sequences that
// is prefix-compatible (F < F' implies every extension of F precedes every
// extension of F').
#include <gtest/gtest.h>

#include "disc/common/rng.h"
#include "disc/order/compare.h"
#include "test_util.h"

namespace disc {
namespace {

class OrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderProperty, TotalOrderAxioms) {
  Rng rng(GetParam());
  std::vector<Sequence> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(testutil::RandomSequence(&rng, 4, 3, 2));
  }
  for (const Sequence& a : pool) {
    EXPECT_EQ(CompareSequences(a, a), 0);  // reflexive equality
    for (const Sequence& b : pool) {
      const int ab = CompareSequences(a, b);
      const int ba = CompareSequences(b, a);
      // Antisymmetry of the three-way comparison.
      EXPECT_EQ(ab < 0, ba > 0);
      EXPECT_EQ(ab == 0, ba == 0);
      // Comparison equality coincides with structural equality.
      EXPECT_EQ(ab == 0, a == b);
      for (const Sequence& c : pool) {
        // Transitivity.
        if (ab <= 0 && CompareSequences(b, c) <= 0) {
          EXPECT_LE(CompareSequences(a, c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

TEST_P(OrderProperty, PrefixCompatibility) {
  // For random same-length F < F', every one-item extension of F precedes
  // every one-item extension of F'.
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    const Sequence f1 = testutil::RandomSequence(&rng, 4, 3, 2);
    Sequence f2 = testutil::RandomSequence(&rng, 4, 3, 2);
    if (f1.Length() != f2.Length()) continue;
    const int cmp = CompareSequences(f1, f2);
    if (cmp == 0) continue;
    const Sequence& lo = cmp < 0 ? f1 : f2;
    const Sequence& hi = cmp < 0 ? f2 : f1;
    for (Item z = 1; z <= 5; ++z) {
      for (Item w = 1; w <= 5; ++w) {
        std::vector<Sequence> lo_exts = {Extend(lo, z, ExtType::kSequence)};
        if (z > lo.LastItem()) {
          lo_exts.push_back(Extend(lo, z, ExtType::kItemset));
        }
        std::vector<Sequence> hi_exts = {Extend(hi, w, ExtType::kSequence)};
        if (w > hi.LastItem()) {
          hi_exts.push_back(Extend(hi, w, ExtType::kItemset));
        }
        for (const Sequence& le : lo_exts) {
          for (const Sequence& he : hi_exts) {
            EXPECT_LT(CompareSequences(le, he), 0)
                << le.ToString() << " should precede " << he.ToString()
                << " (prefixes " << lo.ToString() << " < " << hi.ToString()
                << ")";
          }
        }
      }
    }
  }
}

TEST_P(OrderProperty, ExtensionOrderMatchesSequenceOrder) {
  // CompareExtensions must be the comparative order restricted to
  // extensions of a common pattern.
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence base = testutil::RandomSequence(&rng, 4, 3, 2);
    for (Item z = 1; z <= 5; ++z) {
      for (Item w = 1; w <= 5; ++w) {
        for (const ExtType tz : {ExtType::kItemset, ExtType::kSequence}) {
          for (const ExtType tw : {ExtType::kItemset, ExtType::kSequence}) {
            if (tz == ExtType::kItemset && z <= base.LastItem()) continue;
            if (tw == ExtType::kItemset && w <= base.LastItem()) continue;
            const int ext_cmp = CompareExtensions(z, tz, w, tw);
            const int seq_cmp =
                CompareSequences(Extend(base, z, tz), Extend(base, w, tw));
            EXPECT_EQ(ext_cmp < 0, seq_cmp < 0);
            EXPECT_EQ(ext_cmp == 0, seq_cmp == 0);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace disc
