// Property tests establishing that the comparative order has exactly the
// structure the DISC lemmas require: a strict total order on sequences that
// is prefix-compatible (F < F' implies every extension of F precedes every
// extension of F').
#include <gtest/gtest.h>

#include "disc/common/rng.h"
#include "disc/order/compare.h"
#include "disc/order/encoded.h"
#include "test_util.h"

namespace disc {
namespace {

int Sign(int v) { return (v > 0) - (v < 0); }

class OrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderProperty, TotalOrderAxioms) {
  Rng rng(GetParam());
  std::vector<Sequence> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(testutil::RandomSequence(&rng, 4, 3, 2));
  }
  for (const Sequence& a : pool) {
    EXPECT_EQ(CompareSequences(a, a), 0);  // reflexive equality
    for (const Sequence& b : pool) {
      const int ab = CompareSequences(a, b);
      const int ba = CompareSequences(b, a);
      // Antisymmetry of the three-way comparison.
      EXPECT_EQ(ab < 0, ba > 0);
      EXPECT_EQ(ab == 0, ba == 0);
      // Comparison equality coincides with structural equality.
      EXPECT_EQ(ab == 0, a == b);
      for (const Sequence& c : pool) {
        // Transitivity.
        if (ab <= 0 && CompareSequences(b, c) <= 0) {
          EXPECT_LE(CompareSequences(a, c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

TEST_P(OrderProperty, PrefixCompatibility) {
  // For random same-length F < F', every one-item extension of F precedes
  // every one-item extension of F'.
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    const Sequence f1 = testutil::RandomSequence(&rng, 4, 3, 2);
    Sequence f2 = testutil::RandomSequence(&rng, 4, 3, 2);
    if (f1.Length() != f2.Length()) continue;
    const int cmp = CompareSequences(f1, f2);
    if (cmp == 0) continue;
    const Sequence& lo = cmp < 0 ? f1 : f2;
    const Sequence& hi = cmp < 0 ? f2 : f1;
    for (Item z = 1; z <= 5; ++z) {
      for (Item w = 1; w <= 5; ++w) {
        std::vector<Sequence> lo_exts = {Extend(lo, z, ExtType::kSequence)};
        if (z > lo.LastItem()) {
          lo_exts.push_back(Extend(lo, z, ExtType::kItemset));
        }
        std::vector<Sequence> hi_exts = {Extend(hi, w, ExtType::kSequence)};
        if (w > hi.LastItem()) {
          hi_exts.push_back(Extend(hi, w, ExtType::kItemset));
        }
        for (const Sequence& le : lo_exts) {
          for (const Sequence& he : hi_exts) {
            EXPECT_LT(CompareSequences(le, he), 0)
                << le.ToString() << " should precede " << he.ToString()
                << " (prefixes " << lo.ToString() << " < " << hi.ToString()
                << ")";
          }
        }
      }
    }
  }
}

TEST_P(OrderProperty, ExtensionOrderMatchesSequenceOrder) {
  // CompareExtensions must be the comparative order restricted to
  // extensions of a common pattern.
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence base = testutil::RandomSequence(&rng, 4, 3, 2);
    for (Item z = 1; z <= 5; ++z) {
      for (Item w = 1; w <= 5; ++w) {
        for (const ExtType tz : {ExtType::kItemset, ExtType::kSequence}) {
          for (const ExtType tw : {ExtType::kItemset, ExtType::kSequence}) {
            if (tz == ExtType::kItemset && z <= base.LastItem()) continue;
            if (tw == ExtType::kItemset && w <= base.LastItem()) continue;
            const int ext_cmp = CompareExtensions(z, tz, w, tw);
            const int seq_cmp =
                CompareSequences(Extend(base, z, tz), Extend(base, w, tw));
            EXPECT_EQ(ext_cmp < 0, seq_cmp < 0);
            EXPECT_EQ(ext_cmp == 0, seq_cmp == 0);
          }
        }
      }
    }
  }
}

TEST_P(OrderProperty, EncodedCompareAgreesWithCompareSequences) {
  // The encoded word streams (order/encoded.h) must induce exactly the
  // comparative order: for every pair in a fuzzed pool sharing one
  // ItemEncoder, EncodedCompare's sign equals CompareSequences's.
  Rng rng(GetParam() + 3000);
  std::vector<Sequence> pool;
  for (int i = 0; i < 48; ++i) {
    // A wide alphabet with few sequences AND a narrow alphabet with long
    // sequences: the former exercises the dense remap, the latter long
    // shared prefixes.
    pool.push_back(i % 2 == 0 ? testutil::RandomSequence(&rng, 40, 4, 3)
                              : testutil::RandomSequence(&rng, 3, 6, 2));
  }
  ItemEncoder encoder;
  for (const Sequence& s : pool) encoder.NoteItems(s);
  encoder.Finalize();
  std::vector<std::vector<EncodedWord>> epool(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EncodeSequence(pool[i], encoder, &epool[i]);
    ASSERT_EQ(epool[i].size(), pool[i].Length());
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = 0; j < pool.size(); ++j) {
      EXPECT_EQ(Sign(CompareSequences(pool[i], pool[j])),
                Sign(EncodedCompare(epool[i], epool[j])))
          << pool[i].ToString() << " vs " << pool[j].ToString();
    }
  }
}

TEST_P(OrderProperty, EncodedCompareIsAStrictTotalOrder) {
  // Antisymmetry, equality-iff-structural-equality, and transitivity of
  // EncodedCompare itself (spot checks mirroring TotalOrderAxioms), plus
  // the EncodedCompareFrom contract: the reported LCP is the true common
  // prefix, and restarting the comparison from any point at or below it
  // reproduces the word-0 result.
  Rng rng(GetParam() + 4000);
  std::vector<Sequence> pool;
  for (int i = 0; i < 20; ++i) {
    pool.push_back(testutil::RandomSequence(&rng, 4, 3, 2));
  }
  ItemEncoder encoder;
  for (const Sequence& s : pool) encoder.NoteItems(s);
  encoder.Finalize();
  std::vector<std::vector<EncodedWord>> epool(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EncodeSequence(pool[i], encoder, &epool[i]);
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto& a = epool[i];
    EXPECT_EQ(EncodedCompare(a, a), 0);
    for (std::size_t j = 0; j < pool.size(); ++j) {
      const auto& b = epool[j];
      const int ab = EncodedCompare(a, b);
      const int ba = EncodedCompare(b, a);
      EXPECT_EQ(ab < 0, ba > 0);
      EXPECT_EQ(ab == 0, ba == 0);
      EXPECT_EQ(ab == 0, pool[i] == pool[j]);
      std::uint32_t lcp = 0;
      EXPECT_EQ(EncodedCompareFrom(a.data(), a.size(), b.data(), b.size(), 0,
                                   &lcp),
                ab);
      std::uint32_t true_lcp = 0;
      while (true_lcp < a.size() && true_lcp < b.size() &&
             a[true_lcp] == b[true_lcp]) {
        ++true_lcp;
      }
      EXPECT_EQ(lcp, true_lcp);
      for (std::uint32_t from = 0; from <= lcp; ++from) {
        EXPECT_EQ(EncodedCompareFrom(a.data(), a.size(), b.data(), b.size(),
                                     from, nullptr),
                  ab);
      }
      for (std::size_t k = 0; k < pool.size(); ++k) {
        if (ab <= 0 && EncodedCompare(b, epool[k]) <= 0) {
          EXPECT_LE(EncodedCompare(a, epool[k]), 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace disc
