#include "disc/core/counting_array.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(CountingArray, CountsPerCustomerOnce) {
  CountingArray c(10);
  c.Add(3, ExtType::kSequence, 0);
  c.Add(3, ExtType::kSequence, 0);  // same cid: idempotent
  c.Add(3, ExtType::kSequence, 1);
  EXPECT_EQ(c.Count(3, ExtType::kSequence), 2u);
  EXPECT_EQ(c.Count(3, ExtType::kItemset), 0u);
}

TEST(CountingArray, FormsAreIndependent) {
  CountingArray c(10);
  c.Add(5, ExtType::kItemset, 0);
  c.Add(5, ExtType::kSequence, 0);
  EXPECT_EQ(c.Count(5, ExtType::kItemset), 1u);
  EXPECT_EQ(c.Count(5, ExtType::kSequence), 1u);
}

TEST(CountingArray, LastCidAllowsRevisitingEarlierCustomers) {
  // The last-CID mechanism only suppresses *consecutive* duplicates, which
  // is exactly what one scan produces; revisiting an older cid after
  // another one counts again only if it is a genuinely different pass —
  // users must scan customers in order. Same-cid-later is the documented
  // single-scan contract: a! -> b -> a would double-count a.
  CountingArray c(4);
  c.Add(1, ExtType::kSequence, 0);
  c.Add(1, ExtType::kSequence, 1);
  c.Add(1, ExtType::kSequence, 1);
  EXPECT_EQ(c.Count(1, ExtType::kSequence), 2u);
}

TEST(CountingArray, FrequentExtensionsAscending) {
  CountingArray c(10);
  for (Cid cid = 0; cid < 3; ++cid) {
    c.Add(7, ExtType::kSequence, cid);
    c.Add(2, ExtType::kItemset, cid);
    c.Add(2, ExtType::kSequence, cid);
  }
  c.Add(9, ExtType::kItemset, 0);
  const auto freq = c.FrequentExtensions(3);
  ASSERT_EQ(freq.size(), 3u);
  EXPECT_EQ(freq[0], std::make_pair(Item{2}, ExtType::kItemset));
  EXPECT_EQ(freq[1], std::make_pair(Item{2}, ExtType::kSequence));
  EXPECT_EQ(freq[2], std::make_pair(Item{7}, ExtType::kSequence));
}

TEST(CountingArray, ResetClearsEverything) {
  CountingArray c(6);
  c.Add(4, ExtType::kSequence, 0);
  c.Add(4, ExtType::kItemset, 0);
  c.Reset();
  EXPECT_EQ(c.Count(4, ExtType::kSequence), 0u);
  EXPECT_EQ(c.Count(4, ExtType::kItemset), 0u);
  EXPECT_TRUE(c.FrequentExtensions(1).empty());
  // Reusable after reset; cid 0 counts again.
  c.Add(4, ExtType::kSequence, 0);
  EXPECT_EQ(c.Count(4, ExtType::kSequence), 1u);
}

}  // namespace
}  // namespace disc
