#include "disc/core/nrr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "disc/algo/miner.h"
#include "test_util.h"

namespace disc {
namespace {

using testutil::Seq;

TEST(Nrr, HandComputedExample) {
  PatternSet p;
  p.Add(Seq("(a)"), 10);
  p.Add(Seq("(b)"), 20);
  p.Add(Seq("(a)(b)"), 5);
  p.Add(Seq("(a,b)"), 2);  // prefix (a)
  p.Add(Seq("(b)(b)"), 10);
  const auto nrr = AverageNrrByLevel(p, 100);
  ASSERT_EQ(nrr.size(), 2u);
  // Level 0: (10 + 20) / (2 * 100).
  EXPECT_NEAR(nrr[0], 30.0 / 200.0, 1e-12);
  // Level 1: partition (a): (5+2)/(2*10) = 0.35; partition (b): 10/20 = 0.5.
  EXPECT_NEAR(nrr[1], (0.35 + 0.5) / 2.0, 1e-12);
}

TEST(Nrr, LevelsWithoutChildrenAreNaN) {
  PatternSet p;
  p.Add(Seq("(a)"), 4);
  p.Add(Seq("(b)"), 4);
  const auto nrr = AverageNrrByLevel(p, 8);
  ASSERT_EQ(nrr.size(), 1u);  // only the Original level
  EXPECT_NEAR(nrr[0], (4.0 + 4.0) / (2.0 * 8.0), 1e-12);

  // A gap: 1-sequences and 2-sequences but nothing longer.
  PatternSet q;
  q.Add(Seq("(a)"), 4);
  q.Add(Seq("(a)(a)"), 2);
  const auto nrr_q = AverageNrrByLevel(q, 8);
  ASSERT_EQ(nrr_q.size(), 2u);
  EXPECT_FALSE(std::isnan(nrr_q[1]));
}

TEST(Nrr, EmptyInputs) {
  EXPECT_TRUE(AverageNrrByLevel(PatternSet(), 10).empty());
  PatternSet p;
  p.Add(Seq("(a)"), 1);
  EXPECT_TRUE(AverageNrrByLevel(p, 0).empty());
}

TEST(Nrr, ValuesAreRatiosInUnitInterval) {
  const SequenceDatabase db = testutil::RandomDatabase(12);
  MineOptions options;
  options.min_support_count = 3;
  const PatternSet mined = CreateMiner("disc-all")->Mine(db, options);
  const auto nrr = AverageNrrByLevel(mined, db.size());
  ASSERT_FALSE(nrr.empty());
  for (const double v : nrr) {
    if (std::isnan(v)) continue;
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Nrr, DeeperLevelsTrendLarger) {
  // The paper's §4.2 observation: partitions approach size δ at depth, so
  // the NRR rises toward 1. Check the last reported level exceeds level 1
  // on a workload with some depth.
  SequenceDatabase db;
  for (int i = 0; i < 6; ++i) db.Add(Seq("(a)(b)(c)(d)(e)"));
  for (int i = 0; i < 6; ++i) db.Add(Seq("(a)(c)(e)"));
  MineOptions options;
  options.min_support_count = 6;
  const PatternSet mined = CreateMiner("disc-all")->Mine(db, options);
  const auto nrr = AverageNrrByLevel(mined, db.size());
  ASSERT_GE(nrr.size(), 3u);
  EXPECT_GT(nrr.back(), nrr[0]);
}

}  // namespace
}  // namespace disc
