#include "disc/algo/pattern_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace disc {
namespace {

using testutil::Seq;

TEST(PatternSet, AddAndQuery) {
  PatternSet p;
  p.Add(Seq("(a)"), 5);
  p.Add(Seq("(a)(b)"), 3);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Contains(Seq("(a)")));
  EXPECT_EQ(p.SupportOf(Seq("(a)(b)")), 3u);
  EXPECT_EQ(p.SupportOf(Seq("(b)")), 0u);
  EXPECT_FALSE(p.Contains(Seq("(b)")));
}

TEST(PatternSet, DuplicateAddWithSameSupportIsIdempotent) {
  PatternSet p;
  p.Add(Seq("(a)"), 5);
  p.Add(Seq("(a)"), 5);
  EXPECT_EQ(p.size(), 1u);
}

TEST(PatternSet, IterationIsInComparativeOrder) {
  PatternSet p;
  p.Add(Seq("(b)"), 1);
  p.Add(Seq("(a)(b)"), 1);
  p.Add(Seq("(a,b)"), 1);
  p.Add(Seq("(a)"), 1);
  std::vector<std::string> order;
  for (const auto& [pat, sup] : p) {
    (void)sup;
    order.push_back(pat.ToString());
  }
  EXPECT_EQ(order, (std::vector<std::string>{"(a)", "(a,b)", "(a)(b)", "(b)"}));
}

TEST(PatternSet, LengthHelpers) {
  PatternSet p;
  p.Add(Seq("(a)"), 1);
  p.Add(Seq("(b)"), 1);
  p.Add(Seq("(a)(b)"), 1);
  EXPECT_EQ(p.MaxLength(), 2u);
  const auto by_len = p.CountByLength();
  EXPECT_EQ(by_len.at(1), 2u);
  EXPECT_EQ(by_len.at(2), 1u);
  const auto len2 = p.PatternsOfLength(2);
  ASSERT_EQ(len2.size(), 1u);
  EXPECT_EQ(len2[0].ToString(), "(a)(b)");
}

TEST(PatternSet, EqualityAndDiff) {
  PatternSet a;
  a.Add(Seq("(a)"), 2);
  a.Add(Seq("(b)"), 3);
  PatternSet b;
  b.Add(Seq("(a)"), 2);
  b.Add(Seq("(b)"), 3);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.Diff(b).empty());
  b.Add(Seq("(c)"), 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a.Diff(b).find("only in right"), std::string::npos);
  PatternSet c;
  c.Add(Seq("(a)"), 2);
  c.Add(Seq("(b)"), 4);
  EXPECT_NE(a.Diff(c).find("support mismatch"), std::string::npos);
}

TEST(PatternSet, ToStringDump) {
  PatternSet p;
  p.Add(Seq("(a)(b)"), 7);
  EXPECT_EQ(p.ToString(), "(a)(b) #7\n");
}

}  // namespace
}  // namespace disc
