#include "disc/order/kmin_brute.h"

#include <gtest/gtest.h>

#include "disc/seq/containment.h"
#include "test_util.h"

namespace disc {
namespace {

using testutil::Seq;

TEST(KminBrute, EnumeratesAllDistinctSubsequences) {
  // (a,b)(a): 2-subsequences are (a,b), (a)(a), (b)(a) — and (a) x2
  // collapses for k=1.
  const Sequence s = Seq("(a,b)(a)");
  const std::vector<Sequence> k1 = AllDistinctKSubsequences(s, 1);
  ASSERT_EQ(k1.size(), 2u);
  EXPECT_EQ(k1[0].ToString(), "(a)");
  EXPECT_EQ(k1[1].ToString(), "(b)");
  const std::vector<Sequence> k2 = AllDistinctKSubsequences(s, 2);
  ASSERT_EQ(k2.size(), 3u);
  // Token order: (a)(a) < (a,b) (second token (a,2) < (b,1) on item).
  EXPECT_EQ(k2[0].ToString(), "(a)(a)");
  EXPECT_EQ(k2[1].ToString(), "(a,b)");
  EXPECT_EQ(k2[2].ToString(), "(b)(a)");
  const std::vector<Sequence> k3 = AllDistinctKSubsequences(s, 3);
  ASSERT_EQ(k3.size(), 1u);
  EXPECT_EQ(k3[0].ToString(), "(a,b)(a)");
  EXPECT_TRUE(AllDistinctKSubsequences(s, 4).empty());
}

TEST(KminBrute, ResultsAreSortedAndContained) {
  const Sequence s = Seq("(c,a)(b)(a,c)");
  for (std::uint32_t k = 1; k <= s.Length(); ++k) {
    const std::vector<Sequence> all = AllDistinctKSubsequences(s, k);
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i].Length(), k);
      EXPECT_TRUE(Contains(s, all[i]));
      if (i > 0) EXPECT_LT(CompareSequences(all[i - 1], all[i]), 0);
    }
  }
}

TEST(KminBrute, KMinExamples) {
  EXPECT_EQ(BruteKMin(Seq("(b)(d,f)(e)"), 3)->ToString(), "(b)(d)(e)");
  EXPECT_EQ(BruteKMin(Seq("(b,f,g)"), 3)->ToString(), "(b,f,g)");
  EXPECT_FALSE(BruteKMin(Seq("(a)"), 2).has_value());
}

TEST(KminBrute, FrequentPrefixRestriction) {
  const Sequence s = Seq("(a)(b)(c)");
  // Unrestricted 2-min is (a)(b); restricting prefixes to {(b)} forces
  // (b)(c).
  EXPECT_EQ(BruteKMin(s, 2)->ToString(), "(a)(b)");
  const std::vector<Sequence> only_b = {Seq("(b)")};
  EXPECT_EQ(BruteKMinWithFrequentPrefix(s, 2, only_b)->ToString(), "(b)(c)");
  const std::vector<Sequence> only_c = {Seq("(c)")};
  EXPECT_FALSE(BruteKMinWithFrequentPrefix(s, 2, only_c).has_value());
}

TEST(KminBrute, ConditionalBounds) {
  const Sequence s = Seq("(a)(b)(c)");
  const std::vector<Sequence> prefixes = {Seq("(a)"), Seq("(b)")};
  // Strictly above (a)(b): next qualifying is (a)(c).
  EXPECT_EQ(BruteConditionalKMin(s, 2, prefixes, Seq("(a)(b)"), true)
                ->ToString(),
            "(a)(c)");
  // At-or-above (a)(b): (a)(b) itself.
  EXPECT_EQ(BruteConditionalKMin(s, 2, prefixes, Seq("(a)(b)"), false)
                ->ToString(),
            "(a)(b)");
  // Above everything: nothing qualifies.
  EXPECT_FALSE(
      BruteConditionalKMin(s, 2, prefixes, Seq("(z)(z)"), false).has_value());
}

}  // namespace
}  // namespace disc
