// Determinism of the partition-scheduled miners: the mined PatternSet must
// be byte-identical for every thread count (docs/PARALLELISM.md), and the
// disc-all-nobilevel support-counting invariant must hold under
// parallelism exactly as it does serially.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "disc/algo/miner.h"
#include "disc/core/disc_all.h"
#include "disc/core/dynamic_disc_all.h"
#include "disc/gen/quest.h"
#include "test_util.h"

namespace disc {
namespace {

SequenceDatabase QuestDb() {
  return testutil::MakeQuestDb(
      {.ncust = 250, .nitems = 100, .slen = 6, .tlen = 2.5});
}

constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8};

TEST(ParallelDeterminism, DiscAllByteIdenticalAcrossThreadCounts) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string baseline =
      CreateMiner("disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(CreateMiner("disc-all")->Mine(db, options).ToString(), baseline)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, DynamicDiscAllByteIdenticalAcrossThreadCounts) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string baseline =
      CreateMiner("dynamic-disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(CreateMiner("dynamic-disc-all")->Mine(db, options).ToString(),
              baseline)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, ArenaScratchByteIdenticalToOwnedScratch) {
  // The per-worker scratch arena (default) and the legacy owning-Sequence
  // scratch must mine byte-identical PatternSets at every thread count.
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  DiscAll::Config legacy;
  legacy.arena_scratch = false;
  const std::string baseline = DiscAll(legacy).Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(DiscAll().Mine(db, options).ToString(), baseline)
        << "arena threads=" << threads;
    EXPECT_EQ(DiscAll(legacy).Mine(db, options).ToString(), baseline)
        << "owned threads=" << threads;
  }
}

TEST(ParallelDeterminism, EncodedOrderByteIdenticalToLegacyAcrossThreads) {
  // The encoded comparative-order kernels (order/encoded.h) and the legacy
  // itemset-by-itemset scans must mine byte-identical PatternSets for
  // every (encoded, threads) combination, for both partition-scheduled
  // DISC miners.
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  DiscAll::Config legacy_cfg;
  legacy_cfg.encoded_order = false;
  const std::string baseline =
      DiscAll(legacy_cfg).Mine(db, options).ToString();
  DynamicDiscAll::Config dyn_legacy_cfg;
  dyn_legacy_cfg.encoded_order = false;
  const std::string dyn_baseline =
      DynamicDiscAll(dyn_legacy_cfg).Mine(db, options).ToString();
  EXPECT_EQ(baseline, dyn_baseline);
  for (const bool encoded : {false, true}) {
    for (const std::uint32_t threads : kThreadCounts) {
      options.threads = threads;
      const std::string label = std::string("encoded=") +
                                (encoded ? "on" : "off") +
                                " threads=" + std::to_string(threads);
      DiscAll::Config cfg;
      cfg.encoded_order = encoded;
      EXPECT_EQ(DiscAll(cfg).Mine(db, options).ToString(), baseline)
          << "disc-all " << label;
      DynamicDiscAll::Config dyn_cfg;
      dyn_cfg.encoded_order = encoded;
      EXPECT_EQ(DynamicDiscAll(dyn_cfg).Mine(db, options).ToString(),
                baseline)
          << "dynamic-disc-all " << label;
    }
  }
}

TEST(ParallelDeterminism, HardwareThreadsMatchSerial) {
  // threads = 0 resolves to the hardware concurrency, whatever it is here.
  const SequenceDatabase db = testutil::RandomDatabase(3);
  MineOptions options;
  options.min_support_count = 2;
  for (const char* algo : {"disc-all", "dynamic-disc-all"}) {
    options.threads = 1;
    const std::string baseline = CreateMiner(algo)->Mine(db, options).ToString();
    options.threads = 0;
    EXPECT_EQ(CreateMiner(algo)->Mine(db, options).ToString(), baseline)
        << algo;
  }
}

// --- Cancellation: the partial result is a byte-prefix of the full one ---

// Asserts `partial` is a (not necessarily proper) byte-prefix of `full`.
void ExpectBytePrefix(const std::string& partial, const std::string& full,
                      const std::string& label) {
  ASSERT_LE(partial.size(), full.size()) << label;
  EXPECT_EQ(full.compare(0, partial.size(), partial), 0) << label;
}

TEST(CancelDeterminism, DiscAllPartialIsBytePrefixAtEveryThreadCount) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string full =
      CreateMiner("disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{3},
                                       std::uint64_t{10}}) {
      CancelToken token;
      token.CancelAfter(budget);
      options.threads = threads;
      options.cancel = &token;
      const auto miner = CreateMiner("disc-all");
      MineResult result = miner->TryMine(db, options);
      const std::string label = "threads=" + std::to_string(threads) +
                                " budget=" + std::to_string(budget);
      EXPECT_EQ(result.status.code(), StatusCode::kCancelled) << label;
      EXPECT_TRUE(miner->last_stats().cancelled) << label;
      EXPECT_FALSE(miner->last_stats().deadline_exceeded) << label;
      ExpectBytePrefix(result.patterns.ToString(), full, label);
    }
  }
  options.cancel = nullptr;
}

TEST(CancelDeterminism, DynamicDiscAllPartialIsBytePrefixAtEveryThreadCount) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string full =
      CreateMiner("dynamic-disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{2},
                                       std::uint64_t{7}}) {
      CancelToken token;
      token.CancelAfter(budget);
      options.threads = threads;
      options.cancel = &token;
      MineResult result = CreateMiner("dynamic-disc-all")->TryMine(db, options);
      const std::string label = "threads=" + std::to_string(threads) +
                                " budget=" + std::to_string(budget);
      EXPECT_EQ(result.status.code(), StatusCode::kCancelled) << label;
      ExpectBytePrefix(result.patterns.ToString(), full, label);
    }
  }
  options.cancel = nullptr;
}

TEST(CancelDeterminism, SerialCancelAtPartitionKIsExactPrefix) {
  // Serially, CancelAfter(k) stops exactly before the (k+1)-th partition,
  // so the prefix grows monotonically with k and reaches the full result.
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string full =
      CreateMiner("disc-all")->Mine(db, options).ToString();
  std::string previous;
  for (std::uint64_t k = 0; k < 200; k += 20) {
    CancelToken token;
    token.CancelAfter(k);
    options.cancel = &token;
    MineResult result = CreateMiner("disc-all")->TryMine(db, options);
    const std::string partial = result.patterns.ToString();
    ExpectBytePrefix(previous, partial, "k=" + std::to_string(k));
    ExpectBytePrefix(partial, full, "k=" + std::to_string(k));
    previous = partial;
  }
  options.cancel = nullptr;
}

TEST(CancelDeterminism, UncancelledTokenChangesNothing) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string full =
      CreateMiner("disc-all")->Mine(db, options).ToString();
  CancelToken token;  // never cancelled, no budget
  options.cancel = &token;
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    MineResult result = CreateMiner("disc-all")->TryMine(db, options);
    EXPECT_TRUE(result.status.ok()) << "threads=" << threads;
    EXPECT_EQ(result.patterns.ToString(), full) << "threads=" << threads;
  }
  options.cancel = nullptr;
}

TEST(CancelDeterminism, DeadlinePartialIsBytePrefix) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string full =
      CreateMiner("disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    options.deadline_ms = 1;
    const auto miner = CreateMiner("disc-all");
    MineResult result = miner->TryMine(db, options);
    const std::string label = "threads=" + std::to_string(threads);
    // The run may or may not finish within 1ms; either way the result must
    // be a byte-prefix of the full result and the status must match the
    // stats flags.
    if (result.status.ok()) {
      EXPECT_EQ(result.patterns.ToString(), full) << label;
      EXPECT_FALSE(miner->last_stats().deadline_exceeded) << label;
    } else {
      EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded) << label;
      EXPECT_TRUE(miner->last_stats().deadline_exceeded) << label;
      ExpectBytePrefix(result.patterns.ToString(), full, label);
    }
  }
  options.deadline_ms = 0;
}

TEST(CancelDeterminism, NoBilevelCancelKeepsCountingInvariant) {
  // Cancellation must not leak k>=4 support counting into the nobilevel
  // configuration at any thread count.
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  for (const std::uint32_t threads : kThreadCounts) {
    CancelToken token;
    token.CancelAfter(5);
    options.threads = threads;
    options.cancel = &token;
    const std::unique_ptr<Miner> miner = CreateMiner("disc-all-nobilevel");
    miner->TryMine(db, options);
    EXPECT_EQ(miner->last_stats().Counter("support.increments.k4plus"), 0u)
        << "threads=" << threads;
  }
  options.cancel = nullptr;
}

TEST(ParallelDeterminism, NoBilevelNeverCountsLongSupports) {
  // disc-all-nobilevel harvests at most 3-sequences by support counting;
  // "support.increments.k4plus" must stay zero at every thread count (the
  // counter is zero trivially when the obs layer is compiled out).
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    const std::unique_ptr<Miner> miner = CreateMiner("disc-all-nobilevel");
    miner->Mine(db, options);
    EXPECT_EQ(miner->last_stats().Counter("support.increments.k4plus"), 0u)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace disc
