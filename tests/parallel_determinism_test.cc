// Determinism of the partition-scheduled miners: the mined PatternSet must
// be byte-identical for every thread count (docs/PARALLELISM.md), and the
// disc-all-nobilevel support-counting invariant must hold under
// parallelism exactly as it does serially.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "disc/algo/miner.h"
#include "disc/core/disc_all.h"
#include "disc/gen/quest.h"
#include "test_util.h"

namespace disc {
namespace {

SequenceDatabase QuestDb() {
  QuestParams p;
  p.ncust = 250;
  p.nitems = 100;
  p.slen = 6;
  p.tlen = 2.5;
  p.seed = 7;
  return GenerateQuestDatabase(p);
}

constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8};

TEST(ParallelDeterminism, DiscAllByteIdenticalAcrossThreadCounts) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string baseline =
      CreateMiner("disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(CreateMiner("disc-all")->Mine(db, options).ToString(), baseline)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, DynamicDiscAllByteIdenticalAcrossThreadCounts) {
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  const std::string baseline =
      CreateMiner("dynamic-disc-all")->Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(CreateMiner("dynamic-disc-all")->Mine(db, options).ToString(),
              baseline)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, ArenaScratchByteIdenticalToOwnedScratch) {
  // The per-worker scratch arena (default) and the legacy owning-Sequence
  // scratch must mine byte-identical PatternSets at every thread count.
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  options.threads = 1;
  DiscAll::Config legacy;
  legacy.arena_scratch = false;
  const std::string baseline = DiscAll(legacy).Mine(db, options).ToString();
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(DiscAll().Mine(db, options).ToString(), baseline)
        << "arena threads=" << threads;
    EXPECT_EQ(DiscAll(legacy).Mine(db, options).ToString(), baseline)
        << "owned threads=" << threads;
  }
}

TEST(ParallelDeterminism, HardwareThreadsMatchSerial) {
  // threads = 0 resolves to the hardware concurrency, whatever it is here.
  const SequenceDatabase db = testutil::RandomDatabase(3);
  MineOptions options;
  options.min_support_count = 2;
  for (const char* algo : {"disc-all", "dynamic-disc-all"}) {
    options.threads = 1;
    const std::string baseline = CreateMiner(algo)->Mine(db, options).ToString();
    options.threads = 0;
    EXPECT_EQ(CreateMiner(algo)->Mine(db, options).ToString(), baseline)
        << algo;
  }
}

TEST(ParallelDeterminism, NoBilevelNeverCountsLongSupports) {
  // disc-all-nobilevel harvests at most 3-sequences by support counting;
  // "support.increments.k4plus" must stay zero at every thread count (the
  // counter is zero trivially when the obs layer is compiled out).
  const SequenceDatabase db = QuestDb();
  MineOptions options;
  options.min_support_count = MineOptions::CountForFraction(db.size(), 0.05);
  for (const std::uint32_t threads : kThreadCounts) {
    options.threads = threads;
    const std::unique_ptr<Miner> miner = CreateMiner("disc-all-nobilevel");
    miner->Mine(db, options);
    EXPECT_EQ(miner->last_stats().Counter("support.increments.k4plus"), 0u)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace disc
